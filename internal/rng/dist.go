package rng

// This file provides exact integer-valued distribution samplers for the
// batched count engine (internal/countsim/batch.go): Binomial,
// Hypergeometric, and their vector forms Multinomial and
// MultivariateHypergeometric.
//
// All scalar draws consume exactly one Float64 from the stream and invert
// the CDF directly, so the consumed-stream length is a deterministic
// function of the drawn value — a property the seed-stability tests rely
// on. Two inversion strategies are used:
//
//   - Sequential inversion from the low end (Kachitvichyanukul & Schmeiser
//     call this BINV): walk x = 0, 1, ... accumulating pmf mass via the
//     ratio recurrence until the uniform is covered. O(mean) iterations and
//     no Lgamma calls — the right tool when the mean is small, which is the
//     common case for the per-cell conditional binomials of a multinomial
//     chain.
//   - Mode inversion: start at the distribution's mode (pmf evaluated once
//     via math.Lgamma) and walk outward, alternating sides, again via the
//     ratio recurrence. O(standard deviation) iterations, so huge means
//     stay cheap.
//
// Both are exact inversions of the same CDF ordering — they differ only in
// enumeration order of the support, which is part of the deterministic
// contract (reordering enumeration would change sampled values for a given
// seed, so the thresholds below are frozen constants, not tunables).
import "math"

// binvCutoff is the mean below which Binomial uses low-end sequential
// inversion instead of mode inversion. Frozen: changing it changes the
// support enumeration order and therefore the sampled stream.
const binvCutoff = 32

// poissonCutoff is the trial count above which Binomial switches to a
// Poisson(np) draw. Two reasons, both kicking in at the same scale: the
// Lgamma difference in lchoose cancels catastrophically once n's
// magnitude eats the fraction bits (ulp(Lgamma(2⁴⁰)) is already ~1e-4),
// and by Le Cam's inequality the approximation error is bounded in total
// variation by p itself — which at n > 2⁴⁰ with any mean the samplers
// ever request (≤ ~2²² in the batch engine) is below 4e-6. Frozen for the
// same stream-stability reason as binvCutoff.
const poissonCutoff int64 = 1 << 40

// lchoose returns log C(n, k) for 0 <= k <= n via math.Lgamma.
func lchoose(n, k int64) float64 {
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// Binomial returns a draw from Binomial(n, p): the number of successes in
// n independent trials of probability p. It consumes exactly one Float64.
// n <= 0 or p <= 0 returns 0; p >= 1 returns n.
func (r *Rand) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Work on the smaller tail so the walk length tracks min(p, 1-p).
	flip := p > 0.5
	if flip {
		p = 1 - p
	}
	var x int64
	switch {
	case float64(n)*p < binvCutoff:
		x = r.binomialLow(n, p)
	case n > poissonCutoff:
		x = r.poissonMode(float64(n) * p)
		if x > n {
			x = n
		}
	default:
		x = r.binomialMode(n, p)
	}
	if flip {
		return n - x
	}
	return x
}

// binomialLow inverts the CDF from x = 0 upward. Requires p in (0, 0.5].
func (r *Rand) binomialLow(n int64, p float64) int64 {
	u := r.Float64()
	f := math.Exp(float64(n) * math.Log1p(-p)) // pmf(0) = (1-p)^n
	odds := p / (1 - p)
	var x int64
	for u > f && x < n && f > 0 {
		// f > 0 guards float exhaustion: once the pmf underflows past the
		// representable range no further mass can cover u, and without the
		// guard the walk would crawl to n one step at a time.
		u -= f
		x++
		// pmf(x) = pmf(x-1) · (n-x+1)/x · p/(1-p)
		f *= float64(n-x+1) / float64(x) * odds
	}
	return x
}

// binomialMode inverts the CDF outward from the mode ⌊(n+1)p⌋.
func (r *Rand) binomialMode(n int64, p float64) int64 {
	mode := int64(math.Floor(float64(n+1) * p))
	if mode > n {
		mode = n
	}
	lpmf := lchoose(n, mode) + float64(mode)*math.Log(p) +
		float64(n-mode)*math.Log1p(-p)
	fm := math.Exp(lpmf)
	odds := p / (1 - p)
	u := r.Float64()
	if u <= fm {
		return mode
	}
	u -= fm
	lo, hi := mode, mode
	flo, fhi := fm, fm
	for {
		// A side is exhausted when it hits its support bound or its pmf
		// underflows to zero — past ~40 standard deviations no further mass
		// is representable, and without the underflow check the walk would
		// crawl an astronomically wide support to its end. When both sides
		// are exhausted the remaining u is accumulated float residue; the
		// mode is the max-probability answer.
		up := hi < n && fhi > 0
		down := lo > 0 && flo > 0
		if !up && !down {
			return mode
		}
		if up {
			// pmf(hi+1)/pmf(hi) = (n-hi)/(hi+1) · odds
			fhi *= float64(n-hi) / float64(hi+1) * odds
			hi++
			if u <= fhi {
				return hi
			}
			u -= fhi
		}
		if down {
			// pmf(lo-1)/pmf(lo) = lo / ((n-lo+1) · odds)
			flo *= float64(lo) / (float64(n-lo+1) * odds)
			lo--
			if u <= flo {
				return lo
			}
			u -= flo
		}
	}
}

// poissonMode draws Poisson(lambda) by mode inversion. Only reached via
// Binomial's poissonCutoff branch, so lambda is large enough that the
// upward walk is O(√lambda); the pmf at the mode is cancellation-free
// (-λ + k·lnλ - Lgamma(k+1) keeps every term near the same magnitude).
func (r *Rand) poissonMode(lambda float64) int64 {
	mode := int64(math.Floor(lambda))
	lg, _ := math.Lgamma(float64(mode + 1))
	fm := math.Exp(-lambda + float64(mode)*math.Log(lambda) - lg)
	u := r.Float64()
	if u <= fm {
		return mode
	}
	u -= fm
	lo, hi := mode, mode
	flo, fhi := fm, fm
	for {
		up := fhi > 0
		down := lo > 0 && flo > 0
		if !up && !down {
			return mode // both sides exhausted; see binomialMode
		}
		if up {
			// pmf(hi+1)/pmf(hi) = lambda/(hi+1)
			fhi *= lambda / float64(hi+1)
			hi++
			if u <= fhi {
				return hi
			}
			u -= fhi
		}
		if down {
			// pmf(lo-1)/pmf(lo) = lo/lambda
			flo *= float64(lo) / lambda
			lo--
			if u <= flo {
				return lo
			}
			u -= flo
		}
	}
}

// Hypergeometric returns the number of "good" items among draws taken
// without replacement from an urn of good + bad items. It consumes exactly
// one Float64 (zero when the support is a single point). It panics if any
// argument is negative or draws > good + bad.
func (r *Rand) Hypergeometric(draws, good, bad int64) int64 {
	if draws < 0 || good < 0 || bad < 0 {
		panic("rng: Hypergeometric with negative argument")
	}
	if draws > good+bad {
		panic("rng: Hypergeometric draws exceed population")
	}
	lo := draws - bad // support lower bound, before clamping at 0
	if lo < 0 {
		lo = 0
	}
	hi := draws
	if hi > good {
		hi = good
	}
	if lo == hi {
		return lo
	}
	// Mode of the hypergeometric: ⌊(draws+1)(good+1)/(good+bad+2)⌋.
	mode := int64(math.Floor(float64(draws+1) * float64(good+1) /
		float64(good+bad+2)))
	if mode < lo {
		mode = lo
	}
	if mode > hi {
		mode = hi
	}
	lpmf := lchoose(good, mode) + lchoose(bad, draws-mode) -
		lchoose(good+bad, draws)
	fm := math.Exp(lpmf)
	u := r.Float64()
	if u <= fm {
		return mode
	}
	u -= fm
	l, h := mode, mode
	fl, fh := fm, fm
	for {
		up := h < hi && fh > 0
		down := l > lo && fl > 0
		if !up && !down {
			return mode // both sides exhausted; see binomialMode
		}
		if up {
			// pmf(h+1)/pmf(h) = (good-h)(draws-h) / ((h+1)(bad-draws+h+1))
			fh *= float64(good-h) * float64(draws-h) /
				(float64(h+1) * float64(bad-draws+h+1))
			h++
			if u <= fh {
				return h
			}
			u -= fh
		}
		if down {
			// pmf(l-1)/pmf(l) = l(bad-draws+l) / ((good-l+1)(draws-l+1))
			fl *= float64(l) * float64(bad-draws+l) /
				(float64(good-l+1) * float64(draws-l+1))
			l--
			if u <= fl {
				return l
			}
			u -= fl
		}
	}
}

// Multinomial distributes total draws over len(weights) cells with
// probabilities proportional to weights, writing the per-cell counts into
// out (which must have the same length). It uses the conditional-binomial
// chain, so cells are filled in index order and the stream consumption per
// cell is one Float64 (zero for forced cells). The out entries always sum
// to total exactly. It panics on negative weights or if total > 0 while
// all weights are zero.
func (r *Rand) Multinomial(total int64, weights []int64, out []int64) {
	if len(out) != len(weights) {
		panic("rng: Multinomial out length mismatch")
	}
	var wsum int64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Multinomial negative weight")
		}
		wsum += w
	}
	if total > 0 && wsum == 0 {
		panic("rng: Multinomial positive total with zero weight")
	}
	rem := total
	for i, w := range weights {
		if rem == 0 || w == 0 {
			out[i] = 0
			wsum -= w
			continue
		}
		if w == wsum {
			// Last cell with remaining weight takes the exact remainder;
			// going through float probabilities here could leak a draw.
			out[i] = rem
			rem = 0
			wsum = 0
			continue
		}
		x := r.Binomial(rem, float64(w)/float64(wsum))
		out[i] = x
		rem -= x
		wsum -= w
	}
}

// MultivariateHypergeometric draws `draws` items without replacement from a
// population partitioned into len(counts) classes and writes the per-class
// draw counts into out (same length). Classes are filled in index order via
// the conditional-hypergeometric chain; the out entries always sum to draws
// exactly (the support bounds of each conditional force completion). It
// panics on negative counts or if draws exceeds the population.
func (r *Rand) MultivariateHypergeometric(draws int64, counts []int64, out []int64) {
	if len(out) != len(counts) {
		panic("rng: MultivariateHypergeometric out length mismatch")
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			panic("rng: MultivariateHypergeometric negative count")
		}
		total += c
	}
	if draws > total {
		panic("rng: MultivariateHypergeometric draws exceed population")
	}
	rem := draws
	for i, c := range counts {
		total -= c
		if rem == 0 || c == 0 {
			out[i] = 0
			continue
		}
		x := r.Hypergeometric(rem, c, total)
		out[i] = x
		rem -= x
	}
}
