// Command kpart-scale runs the uniform k-partition protocol at scales the
// agent-level engine (and the paper's own evaluation) does not reach,
// using the count-based engine with geometric null-run skipping
// (internal/countsim): populations are limited by time-to-stability, not
// by memory, and the null-dominated tail is sampled in closed form.
//
// Usage:
//
//	kpart-scale -n 100000 -k 8 -trials 5 [-seed 1]
//	kpart-scale -n 960 -k 16,20,24 -trials 10     # extend Figure 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/countsim"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "population size")
		ksFlag = flag.String("k", "8", "comma-separated group counts")
		trials = flag.Int("trials", 5, "trials per k")
		seed   = flag.Uint64("seed", 1, "root seed")
	)
	flag.Parse()

	var ks []int
	for _, part := range strings.Split(*ksFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 2 {
			fatal(fmt.Errorf("bad k %q", part))
		}
		ks = append(ks, k)
	}

	tbl := report.NewTable("n", "k", "trials", "mean_interactions", "ci95",
		"mean_productive", "skip_factor", "wall_per_trial")
	for ki, k := range ks {
		p, err := core.New(k)
		if err != nil {
			fatal(err)
		}
		stable, err := p.StableChecker(*n)
		if err != nil {
			fatal(err)
		}
		var xs []float64
		var productive, interactions uint64
		start := time.Now()
		for t := 0; t < *trials; t++ {
			s, err := countsim.New(p, *n, rng.StreamSeed(*seed, uint64(ki), uint64(t)))
			if err != nil {
				fatal(err)
			}
			ok, err := s.RunUntil(stable, 1<<62)
			if err != nil {
				fatal(err)
			}
			if !ok {
				fatal(fmt.Errorf("n=%d k=%d trial %d did not stabilize", *n, k, t))
			}
			xs = append(xs, float64(s.Interactions()))
			interactions += s.Interactions()
			productive += s.Productive()
		}
		wall := time.Since(start) / time.Duration(*trials)
		skip := float64(interactions) / float64(productive)
		tbl.AddRow(*n, k, *trials, stats.Mean(xs), stats.CI95(xs),
			float64(productive)/float64(*trials), skip, wall.Round(time.Millisecond).String())
	}
	fmt.Println("count-based engine (exact distribution, null runs skipped geometrically)")
	tbl.WriteTo(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-scale:", err)
	os.Exit(1)
}
