// Golden input for the determinism analyzer's internal/twin scope: the
// twin has no edge files — a prediction is cache content and gate
// subject, so every file is held to the engine-package standard.
package twin

import "time"

// Predict sketches a surrogate answering with wall-clock leakage.
func Predict(n, k int) float64 {
	start := time.Now() // want `time\.Now in deterministic package`
	_ = start
	return float64(n * k)
}

// Warm sketches a cache-warming loop that schedules against the clock.
func Warm() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer`
	defer t.Stop()
	time.Sleep(time.Millisecond) // want `time\.Sleep`
}
