# Tier-1 verification plus the slower guards. `make check` is what CI
# (and ROADMAP.md's tier-1 line) runs; the individual targets exist so a
# hot loop can run just the piece it touched.

GO ?= go

.PHONY: check build vet fmt-check lint lint-sarif test race fuzz-smoke bench bench-json serve-smoke serve-bench-json bench-diff bench-diff-report twin-check twin-check-report

check: build vet fmt-check lint test race bench-diff-report twin-check-report

build:
	$(GO) build ./...

# -tests=true is vet's default but is pinned explicitly: the test files
# carry the statistical soaks and differential harnesses this repo's
# claims lean on, and a future "speed up vet" edit must not silently
# drop them from analysis. The high-value analyzers for this codebase —
# copylocks (Registry/Journal hold mutexes and must not be copied) and
# unreachable — are already in vet's default set, so no -vettool or
# flag surgery is needed beyond this pin.
vet:
	$(GO) vet -tests=true ./...

# Enforced formatting: gofmt over the whole tree (testdata included —
# the golden lint packages are real parsed Go and drift there is drift).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The repo's own static-analysis gate: the per-package analyzers
# (determinism, rngdiscipline, maporder, atomicfield, errclose,
# tableclosure, docpresence) plus the interprocedural suite built on the
# whole-program call graph — ctxflow (reachable unbounded work must poll
# a context), lockguard (`// guarded by <mu>` field accesses), goroutinelife
# (every go statement needs a provable exit path), speclosure (every
# TrialSpec field reaches SpecKey, ValidateSpec, and the serve JSON
# mapping). See internal/lint/analyzers and DESIGN.md §9. Exits non-zero
# on any finding; suppressions require `//lint:allow <analyzer> -- reason`.
lint:
	$(GO) run ./cmd/kpart-lint ./...

# The same findings as SARIF 2.1.0 (lint.sarif) for editors and
# code-scanning upload; exit status matches `lint`.
lint-sarif:
	$(GO) run ./cmd/kpart-lint -sarif ./... > lint.sarif

test:
	$(GO) test ./...

# Race pass over the concurrency-bearing packages: the obs metrics core
# (atomic counters shared across workers), the parallel trial harness
# (whose journal is appended from every worker), the checkpoint layer,
# the engines the trials drive (countsim includes the batched engine and
# its seed-stability trajectory test; rng the samplers it draws from),
# and the HTTP serving layer (worker pool + admission queue + shared
# LRU). internal/twin runs here because its mean-field rung shares a
# mutex-guarded endgame-chain cache across /v1/predict request
# goroutines. The scenario layer (topology, fairness meters, the weak
# adversary) is sequential by design but runs here too: its types are
# shared across harness workers, so the race detector exercises that
# sharing through the harness tests. -short skips the minutes-long
# statistical soaks (they run
# race-free under `test`); the concurrency surface is fully covered
# either way.
race:
	$(GO) test -race -short ./internal/obs ./internal/obs/span ./internal/harness \
		./internal/sim ./internal/checkpoint ./internal/countsim ./internal/rng \
		./internal/serve ./internal/topology ./internal/fairness ./internal/sched \
		./internal/twin

# Short exploratory pass over every fuzz target (the plain corpora run
# under `test`); a real campaign raises -fuzztime.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=5s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRestore -fuzztime=5s ./internal/checkpoint
	$(GO) test -run='^$$' -fuzz=FuzzSuppression -fuzztime=5s ./internal/lint
	$(GO) test -run='^$$' -fuzz=FuzzReadJSONL -fuzztime=5s ./internal/obs/span
	$(GO) test -run='^$$' -fuzz=FuzzBatchApply -fuzztime=5s ./internal/countsim
	$(GO) test -run='^$$' -fuzz=FuzzGuardedBy -fuzztime=5s ./internal/lint/analyzers

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Machine-readable perf trajectory; compare BENCH_kpart.json across PRs.
bench-json:
	$(GO) run ./cmd/kpart-bench -out BENCH_kpart.json

# End-to-end liveness check of the serving layer: boots a loopback
# kpart-serve, round-trips a trial, proves the cache hit is
# byte-identical, streams a sweep, and shuts down cleanly.
serve-smoke:
	$(GO) run ./cmd/kpart-serve -smoke

# Service perf trajectory: req/s, latency quantiles, cache hit rate
# under a fixed loopback mix; compare BENCH_serve.json across PRs.
serve-bench-json:
	$(GO) run ./cmd/kpart-serve-bench -out BENCH_serve.json

# Regression gate: run both benchmark suites fresh and diff them against
# the committed BENCH_serve.json / BENCH_kpart.json baselines
# (throughput-class metrics gate at 20%, latency-class at 75% —
# internal/benchdiff holds the policy). The kpart suite includes the
# batched-engine points, so a sampler regression that slows the n=10⁸
# headline shows up here. `bench-diff` fails the build on a regression;
# `bench-diff-report` (the `check` flavor) prints the same comparison
# without failing, so tier-1 stays green on noisy hardware.
BENCH_DIFF_FLAGS ?=
bench-diff:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/kpart-serve-bench -out "$$tmp/BENCH_serve.json" >/dev/null && \
	$(GO) run ./cmd/kpart-bench-diff $(BENCH_DIFF_FLAGS) BENCH_serve.json "$$tmp/BENCH_serve.json" && \
	$(GO) run ./cmd/kpart-bench -out "$$tmp/BENCH_kpart.json" >/dev/null && \
	$(GO) run ./cmd/kpart-bench-diff $(BENCH_DIFF_FLAGS) BENCH_kpart.json "$$tmp/BENCH_kpart.json"

bench-diff-report:
	@$(MAKE) --no-print-directory bench-diff BENCH_DIFF_FLAGS=-report-only

# Accuracy gate for the analytical twin: solve both surrogate rungs live
# and hold them to their documented error budgets (twin.RelErrExact /
# twin.RelErrFluid) against TWIN_baseline.json — exact references are
# recomputed from internal/markov at gate time, simulation references
# replay from the committed summaries, so the gate costs well under a
# second. `twin-check` fails the build on a budget violation;
# `twin-check-report` (the `check` flavor) prints the same comparison
# without failing. After a legitimate trial-pipeline change, regenerate
# the sim side with `go run ./cmd/kpart-twin-check -write` and commit
# the diff.
TWIN_CHECK_FLAGS ?=
twin-check:
	$(GO) run ./cmd/kpart-twin-check $(TWIN_CHECK_FLAGS)

twin-check-report:
	@$(MAKE) --no-print-directory twin-check TWIN_CHECK_FLAGS=-report-only
