package span

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestSpanIDsFollowStartOrder(t *testing.T) {
	tr := NewTrace("t1")
	root := tr.Root("request")
	q := root.Child("queue")
	trial := root.Child("trial")
	q.End()
	trial.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// IDs are assigned in start order: request, queue, trial.
	wantNames := map[string]string{"00000001": "request", "00000002": "queue", "00000003": "trial"}
	for _, s := range spans {
		if wantNames[s.ID] != s.Name {
			t.Errorf("span %s has name %q, want %q", s.ID, s.Name, wantNames[s.ID])
		}
	}
}

// TestSpanIDOrderSurvivesManySpans pins the fixed-width invariant: span
// IDs must sort lexicographically in start order even past the 4-hex
// boundary (0xffff → 0x10000) where a narrower format would wrap.
func TestSpanIDOrderSurvivesManySpans(t *testing.T) {
	tr := NewTrace("t")
	tr.seq = 0xffff - 1 // jump near the old-format boundary
	var prev string
	for i := 0; i < 3; i++ {
		s := tr.Root("r")
		if id := s.ID(); prev != "" && !(prev < id) {
			t.Fatalf("span ID %q does not sort after predecessor %q", id, prev)
		} else {
			prev = id
		}
		s.End()
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *ActiveSpan
	c := s.Child("x")
	if c != nil {
		t.Fatal("Child of nil span must be nil")
	}
	s.SetAttr("k", "v").SetSeq(1, 2).SetWall(3, 4)
	s.End() // must not panic
	if s.Trace() != nil || s.ID() != "" {
		t.Fatal("nil span must report empty trace and ID")
	}
	var col *Collector
	if col.NewTrace("t") != nil || col.Export() != nil || col.Err() != nil {
		t.Fatal("nil collector must be inert")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Root("r")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestAttrsSortedAndOverwritten(t *testing.T) {
	tr := NewTrace("t")
	s := tr.Root("r")
	s.SetAttr("z", "1").SetAttr("a", "2").SetAttr("z", "3")
	s.End()
	attrs := tr.Spans()[0].Attrs
	if len(attrs) != 2 || attrs[0].Key != "a" || attrs[1].Key != "z" || attrs[1].Value != "3" {
		t.Fatalf("attrs = %v, want sorted a=2, z=3", attrs)
	}
}

func TestDeriveTraceIDOccurrences(t *testing.T) {
	if got := DeriveTraceID("abc", 1); got != "abc" {
		t.Errorf("first occurrence = %q, want abc", got)
	}
	if got := DeriveTraceID("abc", 3); got != "abc.3" {
		t.Errorf("third occurrence = %q, want abc.3", got)
	}
	var q Sequencer
	if q.Next("k") != 1 || q.Next("k") != 2 || q.Next("other") != 1 {
		t.Error("Sequencer must count per key")
	}
}

// TestTraceForIDSequencesRepeats pins the client-header path: a
// repeated caller-supplied ID must come out occurrence-suffixed, never
// as two traces sharing one ID (which would collide their root span IDs
// at export).
func TestTraceForIDSequencesRepeats(t *testing.T) {
	col := NewCollector(nil)
	if got := col.TraceForID("shared").ID(); got != "shared" {
		t.Errorf("first use = %q, want shared", got)
	}
	if got := col.TraceForID("shared").ID(); got != "shared.2" {
		t.Errorf("second use = %q, want shared.2", got)
	}
	if got := col.TraceForSpec("shared").ID(); got != "shared.3" {
		t.Errorf("spec sharing the namespace = %q, want shared.3", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no span")
	}
	tr := NewTrace("t")
	s := tr.Root("r")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("context did not round-trip the span")
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"abc", "a.b-c_d", "0123456789abcdef"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", strings.Repeat("x", 129)} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
}

// TestCollectorSinkFlushPerTrace pins the incremental-export contract: a
// trace's spans hit the sink the moment its last span ends, not at
// process exit.
func TestCollectorSinkFlushPerTrace(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector(&buf)
	tr := col.TraceForSpec("deadbeef")
	root := tr.Root("request")
	child := root.Child("work")
	child.End()
	if buf.Len() != 0 {
		t.Fatal("sink written before the trace completed")
	}
	root.End()
	if buf.Len() == 0 {
		t.Fatal("sink not written when the trace completed")
	}
	spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Trace != "deadbeef" {
		t.Fatalf("sink holds %v", spans)
	}
	if col.Err() != nil {
		t.Fatal(col.Err())
	}
}

// TestCollectorDeliversEachSpanOnce pins the delivery latch: a trace
// whose open count transiently reaches zero (the request root ended
// while the job was still queued) delivers twice, but the second
// delivery streams only the spans that finished since — no span may
// reach the sink more than once.
func TestCollectorDeliversEachSpanOnce(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector(&buf)
	tr := col.TraceForSpec("feedbeef")
	root := tr.Root("request")
	q := root.Child("queue")
	root.End() // client gave up while the job sat in the queue
	q.End()    // open hits zero: first delivery (request, queue)
	first, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("first delivery streamed %d spans, want 2", len(first))
	}
	trial := root.Child("trial") // the worker reopens the trace
	ph := trial.Child("phase/grouping")
	ph.End()
	trial.End() // open hits zero again: second delivery
	all, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("sink holds %d spans, want 4 (each exactly once): %+v", len(all), all)
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if seen[s.ID] {
			t.Fatalf("span %s delivered twice", s.ID)
		}
		seen[s.ID] = true
	}
	if col.Err() != nil {
		t.Fatal(col.Err())
	}
}

// TestIdenticalPipelinesExportIdentically is the package-level half of
// the determinism property: the same sequence of trace operations
// yields byte-identical exports (modulo wall stamps, which this
// pipeline never sets).
func TestIdenticalPipelinesExportIdentically(t *testing.T) {
	build := func() []byte {
		col := NewCollector(nil)
		tr := col.TraceForSpec("cafe")
		root := tr.Root("request").SetAttr("endpoint", "trials")
		q := root.Child("queue")
		q.End()
		trial := root.Child("trial").SetSeq(0, 100)
		for i := 0; i < 3; i++ {
			ph := trial.Child("phase/grouping").SetSeq(uint64(i*30), uint64(i*30+30))
			ph.SetAttr("index", string(rune('1'+i)))
			ph.End()
		}
		trial.End()
		root.End()
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, col.Export()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical pipelines exported differently:\n%s\n%s", a, b)
	}
}
