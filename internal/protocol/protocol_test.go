package protocol

import (
	"errors"
	"strings"
	"testing"
)

// twoState is a tiny hand-written Protocol used to exercise the validators
// independently of the Table implementation.
type twoState struct {
	badDelta bool
	badGroup bool
	asym     bool
}

func (p twoState) Name() string        { return "two-state" }
func (p twoState) NumStates() int      { return 2 }
func (p twoState) InitialState() State { return 0 }
func (p twoState) NumGroups() int      { return 2 }
func (p twoState) Group(s State) int {
	if p.badGroup {
		return 5
	}
	return int(s) + 1
}
func (p twoState) StateName(s State) string { return []string{"a", "b"}[s] }
func (p twoState) Delta(a, b State) (Pair, bool) {
	if p.badDelta {
		return Pair{9, 9}, true
	}
	if p.asym && a == 0 && b == 0 {
		return Pair{0, 1}, true
	}
	if a == 0 && b == 1 {
		return Pair{1, 0}, true
	}
	return Pair{a, b}, false
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := Validate(twoState{}); err != nil {
		t.Fatalf("Validate rejected well-formed protocol: %v", err)
	}
}

func TestValidateCatchesDeltaEscape(t *testing.T) {
	err := Validate(twoState{badDelta: true})
	if !errors.Is(err, ErrDeltaOutside) {
		t.Fatalf("got %v, want ErrDeltaOutside", err)
	}
}

func TestValidateCatchesGroupEscape(t *testing.T) {
	err := Validate(twoState{badGroup: true})
	if !errors.Is(err, ErrGroupOutside) {
		t.Fatalf("got %v, want ErrGroupOutside", err)
	}
}

func TestCheckSymmetric(t *testing.T) {
	if _, ok := CheckSymmetric(twoState{}); !ok {
		t.Error("symmetric protocol flagged asymmetric")
	}
	if s, ok := CheckSymmetric(twoState{asym: true}); ok || s != 0 {
		t.Errorf("asymmetric rule not flagged (state %d, ok %v)", s, ok)
	}
}

func TestRuleIsSymmetric(t *testing.T) {
	cases := []struct {
		r    Rule
		want bool
	}{
		{Rule{Pair{0, 0}, Pair{1, 1}}, true},  // same-state, same result
		{Rule{Pair{0, 0}, Pair{0, 1}}, false}, // same-state, split result
		{Rule{Pair{0, 1}, Pair{2, 3}}, true},  // distinct states always fine
		{Rule{Pair{2, 2}, Pair{2, 2}}, true},  // identity
	}
	for _, c := range cases {
		if got := c.r.IsSymmetric(); got != c.want {
			t.Errorf("IsSymmetric(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRuleIsNullAndString(t *testing.T) {
	r := Rule{Pair{1, 2}, Pair{1, 2}}
	if !r.IsNull() {
		t.Error("identity rule not null")
	}
	if s := r.String(); !strings.Contains(s, "->") {
		t.Errorf("String = %q", s)
	}
}

func TestRulesEnumeration(t *testing.T) {
	rules := Rules(twoState{})
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1: %v", len(rules), rules)
	}
	want := Rule{Pair{0, 1}, Pair{1, 0}}
	if rules[0] != want {
		t.Fatalf("got %v, want %v", rules[0], want)
	}
}

func TestFormatRules(t *testing.T) {
	out := FormatRules(twoState{}, Rules(twoState{}))
	if !strings.Contains(out, "(a, b) -> (b, a)") {
		t.Errorf("FormatRules output %q", out)
	}
}

// --- Table / Builder ---

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("toy", true)
	a := b.AddState("a", 1)
	c := b.AddState("c", 2)
	b.SetInitial(a)
	b.AddRule(a, a, c, c)
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "toy" || tab.NumStates() != 2 || tab.NumGroups() != 2 {
		t.Fatalf("metadata wrong: %s %d %d", tab.Name(), tab.NumStates(), tab.NumGroups())
	}
	out, fired := tab.Delta(a, a)
	if !fired || out != (Pair{c, c}) {
		t.Fatalf("delta(a,a) = %v fired=%v", out, fired)
	}
	out, fired = tab.Delta(c, c)
	if fired || out != (Pair{c, c}) {
		t.Fatalf("delta(c,c) = %v fired=%v, want identity/unfired", out, fired)
	}
	if err := Validate(tab); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderMirrors(t *testing.T) {
	b := NewBuilder("toy", true)
	a := b.AddState("a", 1)
	c := b.AddState("c", 1)
	x := b.AddState("x", 1)
	y := b.AddState("y", 1)
	b.SetInitial(a)
	b.AddRule(a, c, x, y)
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, fired := tab.Delta(c, a)
	if !fired || out != (Pair{y, x}) {
		t.Fatalf("mirror delta(c,a) = %v fired=%v, want (y,x)", out, fired)
	}
}

func TestBuilderRejectsMirrorConflict(t *testing.T) {
	// An explicit rule for (c,a) that disagrees with the mirror of the
	// (a,c) rule makes the unordered-encounter semantics ambiguous; the
	// builder must reject it rather than pick a winner silently.
	b := NewBuilder("toy", false)
	a := b.AddState("a", 1)
	c := b.AddState("c", 1)
	x := b.AddState("x", 1)
	b.SetInitial(a)
	b.AddRule(a, c, x, x)
	b.AddRule(c, a, c, a) // conflicts with the implied mirror (c,a)->(x,x)
	if _, err := b.Build(); !errors.Is(err, ErrNotDeterministic) {
		t.Fatalf("got %v, want ErrNotDeterministic", err)
	}
	// A consistent explicit mirror must be accepted.
	b2 := NewBuilder("toy", false)
	a2 := b2.AddState("a", 1)
	c2 := b2.AddState("c", 1)
	x2 := b2.AddState("x", 1)
	b2.SetInitial(a2)
	b2.AddRule(a2, c2, x2, x2)
	b2.AddRule(c2, a2, x2, x2)
	if _, err := b2.Build(); err != nil {
		t.Fatalf("consistent explicit mirror rejected: %v", err)
	}
}

func TestBuilderRejectsConflicts(t *testing.T) {
	b := NewBuilder("toy", false)
	a := b.AddState("a", 1)
	c := b.AddState("c", 1)
	b.SetInitial(a)
	b.AddRule(a, c, a, a)
	b.AddRule(a, c, c, c)
	if _, err := b.Build(); !errors.Is(err, ErrNotDeterministic) {
		t.Fatalf("got %v, want ErrNotDeterministic", err)
	}
}

func TestBuilderRejectsAsymmetric(t *testing.T) {
	b := NewBuilder("toy", true)
	a := b.AddState("a", 1)
	c := b.AddState("c", 1)
	b.SetInitial(a)
	b.AddRule(a, a, a, c) // asymmetric: same pair, split result
	if _, err := b.Build(); !errors.Is(err, ErrAsymmetric) {
		t.Fatalf("got %v, want ErrAsymmetric", err)
	}
	// The same rule must be accepted when symmetry is not required.
	b2 := NewBuilder("toy", false)
	a2 := b2.AddState("a", 1)
	c2 := b2.AddState("c", 1)
	b2.SetInitial(a2)
	b2.AddRule(a2, a2, a2, c2)
	if _, err := b2.Build(); err != nil {
		t.Fatalf("asymmetric protocol rejected without symmetric flag: %v", err)
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder("e", true).Build(); !errors.Is(err, ErrNoStates) {
		t.Fatalf("got %v, want ErrNoStates", err)
	}
}

func TestBuilderRejectsRuleOutOfRange(t *testing.T) {
	b := NewBuilder("toy", false)
	a := b.AddState("a", 1)
	b.SetInitial(a)
	b.AddRule(a, 7, a, a)
	if _, err := b.Build(); !errors.Is(err, ErrDeltaOutside) {
		t.Fatalf("got %v, want ErrDeltaOutside", err)
	}
}

func TestBuilderRejectsBadInitial(t *testing.T) {
	b := NewBuilder("toy", false)
	b.AddState("a", 1)
	b.SetInitial(5)
	if _, err := b.Build(); !errors.Is(err, ErrInitialOutside) {
		t.Fatalf("got %v, want ErrInitialOutside", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid builder")
		}
	}()
	NewBuilder("e", true).MustBuild()
}

func TestTableStateNameFallback(t *testing.T) {
	b := NewBuilder("toy", true)
	a := b.AddState("a", 1)
	b.SetInitial(a)
	tab := b.MustBuild()
	if got := tab.StateName(99); !strings.Contains(got, "99") {
		t.Errorf("fallback name %q", got)
	}
}

func TestAddOrderedRuleNoMirror(t *testing.T) {
	b := NewBuilder("toy", false)
	x := b.AddState("x", 1)
	y := b.AddState("y", 1)
	bl := b.AddState("bl", 1)
	b.SetInitial(x)
	b.AddOrderedRule(x, y, x, bl)
	b.AddOrderedRule(y, x, y, bl)
	tab := b.MustBuild()
	out, _ := tab.Delta(x, y)
	if out != (Pair{x, bl}) {
		t.Fatalf("delta(x,y) = %v", out)
	}
	out, _ = tab.Delta(y, x)
	if out != (Pair{y, bl}) {
		t.Fatalf("delta(y,x) = %v; ordered rules must not mirror", out)
	}
}

func TestOrderedRuleRejectedInSymmetricBuilder(t *testing.T) {
	b := NewBuilder("toy", true)
	x := b.AddState("x", 1)
	y := b.AddState("y", 1)
	b.SetInitial(x)
	b.AddOrderedRule(x, y, y, x)
	if _, err := b.Build(); !errors.Is(err, ErrAsymmetric) {
		t.Fatalf("got %v, want ErrAsymmetric", err)
	}
}

func TestNonNullRuleCount(t *testing.T) {
	b := NewBuilder("toy", true)
	a := b.AddState("a", 1)
	c := b.AddState("c", 1)
	b.SetInitial(a)
	b.AddRule(a, c, c, a) // 1 explicit + 1 mirror = 2 ordered entries
	tab := b.MustBuild()
	if got := tab.NonNullRuleCount(); got != 2 {
		t.Errorf("NonNullRuleCount = %d, want 2", got)
	}
}

func TestWriteDot(t *testing.T) {
	b := NewBuilder(`toy"quoted`, true)
	a := b.AddState("a", 1)
	c := b.AddState("c", 2)
	b.SetInitial(a)
	b.AddRule(a, c, c, c)
	tab := b.MustBuild()
	var sb strings.Builder
	if err := WriteDot(&sb, tab); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "doublecircle", "s0 -> s1", `\"quoted`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
}
