package countsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/protocol"
	"repro/internal/protocols/bipartition"
	"repro/internal/protocols/interval"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	p := core.MustNew(3)
	if _, err := New(p, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := FromCounts(p, []int{1, 2}, 1); err == nil {
		t.Fatal("short counts accepted")
	}
	if _, err := FromCounts(p, []int{-1, 3, 0, 0, 0, 0, 0}, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

// The incremental null-weight bookkeeping must match the O(S²) audit after
// every single step, across protocols with different null structure
// (symmetric k-partition, asymmetric interval splitting).
func TestNullWeightAudit(t *testing.T) {
	protos := []protocol.Protocol{core.MustNew(4), interval.MustNew(5), bipartition.New()}
	for _, p := range protos {
		s, err := New(p, 30, 7)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 2000; step++ {
			if want := s.auditNullWeight(); want != s.NullWeight() {
				t.Fatalf("%s step %d: incremental nullW %d, audit %d", p.Name(), step, s.NullWeight(), want)
			}
			total := 0
			for _, c := range s.CountsView() {
				if c < 0 {
					t.Fatalf("%s step %d: negative count", p.Name(), step)
				}
				total += c
			}
			if total != 30 {
				t.Fatalf("%s step %d: population %d", p.Name(), step, total)
			}
			if _, _, err := s.Step(); err != nil {
				if errors.Is(err, ErrDead) {
					break
				}
				t.Fatal(err)
			}
		}
	}
}

// Every applied transition must be a real productive transition of the
// protocol, applied correctly to the counts.
func TestStepsAreLegalTransitions(t *testing.T) {
	p := core.MustNew(4)
	s, err := New(p, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Counts()
	for i := 0; i < 3000; i++ {
		from, to, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := p.Delta(from.P, from.Q)
		if want != to {
			t.Fatalf("applied (%d,%d)->(%d,%d), delta says (%d,%d)",
				from.P, from.Q, to.P, to.Q, want.P, want.Q)
		}
		if from == to {
			t.Fatal("null transition returned by Step")
		}
		cur := s.Counts()
		prev[from.P]--
		prev[from.Q]--
		prev[to.P]++
		prev[to.Q]++
		for st := range cur {
			if cur[st] != prev[st] {
				t.Fatalf("step %d: counts diverged at state %d", i, st)
			}
		}
		prev = cur
	}
}

// Lemma 1 must hold along count-level executions too.
func TestInvariantAlongCountExecutions(t *testing.T) {
	p := core.MustNew(5)
	s, err := New(p, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckInvariant(s.CountsView()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if p.IsStable(s.CountsView()) {
			return
		}
	}
	t.Fatal("never stabilized")
}

// THE equivalence check: countsim's interaction counts must have the same
// distribution as the agent-level engine's. Compare the mean to the EXACT
// Markov expectation (4 standard errors over many cheap trials).
func TestMatchesExactExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("40k-trial distribution check; skipped in -short runs")
	}
	cases := []struct{ n, k int }{{5, 2}, {6, 3}, {8, 4}}
	for _, cse := range cases {
		p := core.MustNew(cse.k)
		exact, err := markov.ExpectedStabilization(p, cse.n)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 40000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			s, err := New(p, cse.n, rng.StreamSeed(0xc0de, uint64(cse.n), uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := s.RunUntil(p.IsStable, 10_000_000)
			if err != nil || !ok {
				t.Fatalf("trial %d: %v ok=%v", i, err, ok)
			}
			x := float64(s.Interactions())
			sum += x
			sumsq += x * x
		}
		mean := sum / trials
		se := math.Sqrt(((sumsq - sum*sum/trials) / (trials - 1)) / trials)
		if diff := math.Abs(mean - exact); diff > 4*se+1e-9 {
			t.Errorf("n=%d k=%d: countsim mean %.3f vs exact %.3f (diff %.3f > 4·SE %.3f)",
				cse.n, cse.k, mean, exact, diff, 4*se)
		}
	}
}

// NOTE: the countsim-vs-agent-engine comparison at sizes the Markov chain
// cannot reach lives in the root integration suite (TestThreeEnginesAgree)
// — importing internal/harness here would create an import cycle now that
// the harness can run trials on this engine.

// countsim.IsStable detection for the paper's protocol: the stable
// configuration with a leftover free agent keeps bar-flipping, which ARE
// productive steps — RunUntil must still stop because IsStable
// canonicalizes the two I-states.
func TestStableWithRemainderOne(t *testing.T) {
	p := core.MustNew(3)
	s, err := New(p, 10, 3) // r = 1
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.RunUntil(p.IsStable, 10_000_000)
	if err != nil || !ok {
		t.Fatalf("%v %v", err, ok)
	}
	sizes := p.GroupSizesFromCounts(s.CountsView())
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("group sizes %v", sizes)
	}
}

// Quiescent configurations: Step returns ErrDead, RunUntil returns pred's
// verdict.
func TestDeadConfiguration(t *testing.T) {
	p := interval.MustNew(4)
	counts := make([]int, p.NumStates())
	counts[p.Interval(1, 1)] = 3
	counts[p.Interval(2, 2)] = 3
	s, err := FromCounts(p, counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(); !errors.Is(err, ErrDead) {
		t.Fatalf("got %v, want ErrDead", err)
	}
	ok, err := s.RunUntil(func([]int) bool { return false }, 100)
	if err != nil || ok {
		t.Fatalf("RunUntil on dead config: %v %v", err, ok)
	}
}

// Null-run skipping must actually skip: on a configuration dominated by
// null pairs, interactions must advance much faster than productive steps.
func TestNullSkipping(t *testing.T) {
	p := core.MustNew(3)
	counts := make([]int, p.NumStates())
	// 997 settled agents (null amongst themselves), one m2 + its g1, one
	// free agent: most encounters are null.
	counts[p.G(1)] = 333
	counts[p.G(2)] = 332
	counts[p.G(3)] = 332
	counts[p.Initial()] = 3
	s, err := FromCounts(p, counts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Interactions() < 10*s.Productive() {
		t.Fatalf("little skipping: %d interactions for %d productive steps",
			s.Interactions(), s.Productive())
	}
}

// Large-population smoke test: a million agents, k = 2, far beyond what
// an exhaustive structure could handle, in O(|Q|²) memory.
func TestMillionAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := bipartition.New()
	const n = 1_000_000
	s, err := New(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	stable := func(c []int) bool {
		// All agents assigned except at most one free.
		return c[bipartition.Initial]+c[bipartition.InitialBar] <= n%2
	}
	ok, err := s.RunUntil(stable, 1<<62)
	if err != nil || !ok {
		t.Fatalf("%v %v", err, ok)
	}
	if r := s.CountsView()[bipartition.R]; r != n/2 {
		t.Fatalf("group r has %d agents", r)
	}
	t.Logf("n=1e6 bipartition: %d interactions, %d productive", s.Interactions(), s.Productive())
}

func BenchmarkCountStep(b *testing.B) {
	// n = 961 leaves a remainder agent at stability whose parity keeps
	// flipping, so a productive step always exists no matter how large
	// b.N grows (n = 960 would eventually quiesce and kill the bench).
	p := core.MustNew(8)
	s, err := New(p, 961, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// Tail speedup on the Figure 6 shape: time-to-stability via countsim
// versus the agent engine; the custom metric shows the skip factor.
func BenchmarkTailSkipFactor(b *testing.B) {
	p := core.MustNew(8)
	var interactions, productive uint64
	for i := 0; i < b.N; i++ {
		s, err := New(p, 960, rng.StreamSeed(4, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		ok, err := s.RunUntil(p.IsStable, 1<<62)
		if err != nil || !ok {
			b.Fatal(err)
		}
		interactions += s.Interactions()
		productive += s.Productive()
	}
	b.ReportMetric(float64(interactions)/float64(b.N), "interactions/run")
	b.ReportMetric(float64(interactions)/float64(productive), "skip-factor")
}
