// Package serve is the goroutinelife golden fixture: go statements
// launching workers with and without provable exit paths, including a
// channel whose close site lives in another function (carried by a
// fact) and a launch through an unresolvable function value.
package serve

type worker struct {
	queue chan int
	done  chan struct{}
}

// Close shuts the queue down; the close fact this exports is what lets
// drain's range pass.
func (w *worker) Close() {
	close(w.queue)
}

func (w *worker) start(fn func(int8) int8) {
	go w.drain()
	go w.spin()     // want `goroutine may never exit: condition-less for loop with no break or return`
	go w.leak()     // want `goroutine may never exit: range over channel done that nothing in the program closes`
	go w.indirect() // want `goroutine may never exit: condition-less for loop with no break or return at .* \(in serve\.spinHelper\)`
	go w.block()    // want `goroutine may never exit: empty select\{\}`
	go w.wait()
	go fn(0) // want `goroutine target cannot be resolved; launch a named function or literal so its exit path is checkable`
	go func() {
		<-w.done
	}()
}

// drain exits when Close closes the queue.
func (w *worker) drain() {
	for v := range w.queue {
		_ = v
	}
}

// spin can run forever with no escape.
func (w *worker) spin() {
	for {
	}
}

// leak ranges a channel nothing ever closes.
func (w *worker) leak() {
	for range w.done {
	}
}

// indirect diverges through a static callee.
func (w *worker) indirect() {
	spinHelper()
}

func spinHelper() {
	for {
	}
}

// block parks forever on an empty select.
func (w *worker) block() {
	select {}
}

// wait loops but every iteration can return.
func (w *worker) wait() {
	for {
		select {
		case <-w.done:
			return
		case v := <-w.queue:
			_ = v
		}
	}
}
