// Package fairness quantifies how fair a finite execution prefix is.
//
// Global fairness is a property of infinite executions and cannot be
// observed directly; what CAN be measured on a prefix is how evenly the
// scheduler exercised the interaction space — the practical proxy the
// paper leans on when it equates the uniform-random scheduler with global
// fairness "with probability 1". This package computes, from a recorded
// trace or live hook:
//
//   - per-pair encounter counts and their dispersion (coefficient of
//     variation, Gini coefficient): a uniform scheduler drives both to 0
//     as the prefix grows, while the hostile scheduler of internal/sched
//     keeps entire pair classes starved forever;
//   - starvation: pairs never scheduled, and the longest gap between
//     encounters of the most-starved pair;
//   - per-agent participation balance.
//
// The tests use these metrics to separate the three schedulers cleanly.
package fairness

import (
	"math"
	"sort"

	"repro/internal/population"
	"repro/internal/sim"
)

// Meter accumulates pair-encounter statistics; it implements sim.Hook so
// it can ride along any run.
type Meter struct {
	n int
	// counts[pairIndex(i,j)] for i < j.
	counts []uint64
	// lastSeen[pairIndex] is the interaction number of the pair's last
	// encounter; used for gap analysis.
	lastSeen []uint64
	// maxGap[pairIndex] is the longest observed gap.
	maxGap []uint64
	agent  []uint64
	steps  uint64
}

// NewMeter creates a meter for a population of n agents.
func NewMeter(n int) *Meter {
	pairs := n * (n - 1) / 2
	return &Meter{
		n:        n,
		counts:   make([]uint64, pairs),
		lastSeen: make([]uint64, pairs),
		maxGap:   make([]uint64, pairs),
		agent:    make([]uint64, n),
	}
}

func (m *Meter) pairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Index of (i, j), i < j, in row-major upper-triangular order.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// Init implements sim.Hook.
func (m *Meter) Init(pop *population.Population) {}

// OnStep implements sim.Hook.
func (m *Meter) OnStep(pop *population.Population, s sim.StepInfo) {
	m.Record(s.I, s.J)
}

// Record notes one encounter between agents i and j.
func (m *Meter) Record(i, j int) {
	m.steps++
	idx := m.pairIndex(i, j)
	if gap := m.steps - m.lastSeen[idx]; gap > m.maxGap[idx] {
		m.maxGap[idx] = gap
	}
	m.lastSeen[idx] = m.steps
	m.counts[idx]++
	m.agent[i]++
	m.agent[j]++
}

// Steps returns the number of recorded encounters.
func (m *Meter) Steps() uint64 { return m.steps }

// Report summarizes the prefix.
type Report struct {
	Steps        uint64
	Pairs        int
	StarvedPairs int     // pairs never scheduled
	MinCount     uint64  // least-scheduled pair
	MaxCount     uint64  // most-scheduled pair
	CV           float64 // coefficient of variation of pair counts
	Gini         float64 // Gini coefficient of pair counts
	MaxGap       uint64  // longest inter-encounter gap over all pairs
	AgentCV      float64 // coefficient of variation of per-agent counts
}

// Report computes the summary.
func (m *Meter) Report() Report {
	r := Report{Steps: m.steps, Pairs: len(m.counts)}
	if len(m.counts) == 0 {
		return r
	}
	r.MinCount = m.counts[0]
	var sum float64
	for _, c := range m.counts {
		if c == 0 {
			r.StarvedPairs++
		}
		if c < r.MinCount {
			r.MinCount = c
		}
		if c > r.MaxCount {
			r.MaxCount = c
		}
		sum += float64(c)
	}
	mean := sum / float64(len(m.counts))
	if mean > 0 {
		var ss float64
		for _, c := range m.counts {
			d := float64(c) - mean
			ss += d * d
		}
		r.CV = math.Sqrt(ss/float64(len(m.counts))) / mean
		r.Gini = gini(m.counts)
	}
	// Gap: include the tail gap (pairs not seen since lastSeen).
	for idx := range m.counts {
		g := m.maxGap[idx]
		if tail := m.steps - m.lastSeen[idx]; tail > g {
			g = tail
		}
		if g > r.MaxGap {
			r.MaxGap = g
		}
	}
	var asum float64
	for _, c := range m.agent {
		asum += float64(c)
	}
	amean := asum / float64(len(m.agent))
	if amean > 0 {
		var ss float64
		for _, c := range m.agent {
			d := float64(c) - amean
			ss += d * d
		}
		r.AgentCV = math.Sqrt(ss/float64(len(m.agent))) / amean
	}
	return r
}

// gini computes the Gini coefficient of a count vector: 0 = perfectly
// even, approaching 1 = one pair hoards all encounters.
func gini(counts []uint64) float64 {
	n := len(counts)
	sorted := make([]float64, n)
	var total float64
	for i, c := range counts {
		sorted[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += v
		weighted += cum
		_ = i
	}
	// Gini = 1 + 1/n − 2·Σ cumulative / (n·total)
	return 1 + 1/float64(n) - 2*weighted/(float64(n)*total)
}

// PairCount returns how often agents i and j met.
func (m *Meter) PairCount(i, j int) uint64 { return m.counts[m.pairIndex(i, j)] }
