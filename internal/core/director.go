package core

import (
	"repro/internal/protocol"
)

// Director is a protocol-aware scheduler that realizes the constructive
// executions inside the paper's proofs of Lemmas 2–5: at every
// configuration it schedules a pair that makes measurable progress toward
// the stable configuration. It demonstrates (and the tests bound) that
// under a favorable schedule the protocol stabilizes in O(n + k²)
// productive interactions — the gap between this and the random
// scheduler's exponential-in-k behavior (Figure 6) is exactly the paper's
// open question about time complexity under probabilistic fairness.
//
// The priority order mirrors the case analysis of Lemma 3:
//
//  1. d-state cleanup (Cd): a d_i agent meets its g_i partner
//     (rules 9/10), freeing agents;
//  2. two m-heads (Cm2): crash them into d-states (rule 8);
//  3. a single m-head (Cm1): feed it a free agent (rules 6/7), growing
//     the current grouping;
//  4. no m-head (Cm0 / Lemma 2): create one via the initial/initial'
//     handshake — pair opposite I-parities (rule 5), or flip two
//     same-parity free agents (rules 1/2) when all parities agree.
//
// Director implements sched.Scheduler (structurally; it avoids importing
// the package to keep core dependency-free).
type Director struct {
	p *Protocol
}

// NewDirector returns a Director for p.
func NewDirector(p *Protocol) *Director { return &Director{p: p} }

// Name identifies the scheduler.
func (d *Director) Name() string { return "director" }

// view is the subset of sched.View the Director needs (kept local so core
// does not import sched).
type view interface {
	N() int
	State(i int) protocol.State
}

// Next returns the next pair to interact. If the configuration is stable
// (no progress possible), it returns a harmless pair (the leftover free
// agent with any partner, or (0, 1)); the engine's stop condition is
// expected to fire before that matters.
func (d *Director) Next(v view) (int, int) {
	n := v.N()
	p := d.p

	// Single scan, bucketing the indices the case analysis needs.
	var (
		firstD       = -1
		firstDIdx    int // d-level of firstD
		firstM       = -1
		firstMIdx    int
		secondM      = -1
		firstIni     = -1
		firstBar     = -1
		freeA, freeB = -1, -1 // any two free agents
		gByLevel     = make([]int, p.k+1)
	)
	for i := range gByLevel {
		gByLevel[i] = -1
	}
	for i := 0; i < n; i++ {
		s := v.State(i)
		kind, idx := p.Decode(s)
		switch kind {
		case KindD:
			if firstD == -1 {
				firstD, firstDIdx = i, idx
			}
		case KindM:
			if firstM == -1 {
				firstM, firstMIdx = i, idx
			} else if secondM == -1 {
				secondM = i
			}
		case KindInitial:
			if firstIni == -1 {
				firstIni = i
			}
			if freeA == -1 {
				freeA = i
			} else if freeB == -1 {
				freeB = i
			}
		case KindInitialBar:
			if firstBar == -1 {
				firstBar = i
			}
			if freeA == -1 {
				freeA = i
			} else if freeB == -1 {
				freeB = i
			}
		case KindG:
			if gByLevel[idx] == -1 {
				gByLevel[idx] = i
			}
		}
	}

	// Case 1 (Cd): unwind a d-state against its matching g-level. Lemma 1
	// guarantees the partner exists.
	if firstD != -1 && gByLevel[firstDIdx] != -1 {
		return firstD, gByLevel[firstDIdx]
	}
	// Case 2 (Cm2): crash two m-heads into d-states.
	if firstM != -1 && secondM != -1 {
		return firstM, secondM
	}
	// Case 3 (Cm1): feed the single m-head a free agent.
	if firstM != -1 && (firstIni != -1 || firstBar != -1) {
		free := firstIni
		if free == -1 {
			free = firstBar
		}
		return free, firstM
	}
	_ = firstMIdx
	// Case 4 (Cm0 / Lemma 2): start a new grouping. Opposite parities
	// trigger rule 5 directly. With uniform parity, flip exactly ONE free
	// agent via a non-free partner (rules 3/4) when possible — flipping a
	// pair (rules 1/2) would keep exactly-two free agents locked in the
	// same parity forever, the Figure 1 loop. Only when the whole
	// population is free (n >= 3) does the pair flip make progress.
	if firstIni != -1 && firstBar != -1 {
		return firstIni, firstBar
	}
	if freeA != -1 && freeB != -1 {
		for lvl := 1; lvl <= p.k; lvl++ {
			if gByLevel[lvl] != -1 {
				return gByLevel[lvl], freeA
			}
		}
		if firstD != -1 {
			return firstD, freeA
		}
		return freeA, freeB
	}
	// Stable (or only one free agent left): nothing useful to schedule.
	if freeA != -1 {
		other := 0
		if other == freeA {
			other = 1
		}
		return freeA, other
	}
	return 0, 1
}
