// Command kpart-bench is the machine-readable companion to the
// bench_test.go families: it runs a fixed suite of representative
// workload points (one per figure of the paper's evaluation, plus a raw
// engine-throughput probe) and writes BENCH_kpart.json, so successive
// PRs have a perf trajectory to compare against instead of eyeballing
// `go test -bench` text output.
//
// Usage:
//
//	kpart-bench [-out BENCH_kpart.json] [-trials 5] [-debug-addr :6060]
//	kpart-bench -resume [-trial-timeout 5m] [-retries 1]
//
// The seeds match bench_test.go's (StreamSeed(0xbe9c4, n, k, trial)),
// so interactions/run agrees with the benchmarks point for point.
//
// Completed suite trials are checkpointed to <out>.journal; after a
// crash or SIGINT, -resume reuses them (including their recorded wall
// times) instead of re-measuring from scratch.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

// benchPoint is one suite entry's aggregated outcome.
type benchPoint struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	K      int    `json:"k"`
	Engine string `json:"engine"`
	Trials int    `json:"trials"`
	// Scenario points only: how the trials ended. Scenario runs are
	// allowed to freeze or stall (that is what they measure); the
	// convergence split is part of the benchmark's identity, so a
	// regression here is as real as a wall-time one.
	Scenario  string `json:"scenario,omitempty"`
	Converged int    `json:"converged,omitempty"`
	Frozen    int    `json:"frozen,omitempty"`
	// MeanInteractions is the paper's y-axis, interactions/run.
	MeanInteractions float64 `json:"mean_interactions"`
	// Wall-clock per trial, nanoseconds.
	WallNSMean   float64 `json:"wall_ns_mean"`
	WallNSMedian float64 `json:"wall_ns_median"`
	WallNSP90    float64 `json:"wall_ns_p90"`
	// InteractionsPerSec is the simulator's own throughput at this point.
	InteractionsPerSec float64 `json:"interactions_per_sec"`
}

// benchDoc is the BENCH_kpart.json document.
type benchDoc struct {
	CreatedAt  string       `json:"created_at"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []benchPoint `json:"points"`
}

func main() {
	var (
		out          = flag.String("out", "BENCH_kpart.json", "output path for the benchmark document")
		trials       = flag.Int("trials", 5, "trials per suite point")
		debugAddr    = flag.String("debug-addr", "", "serve pprof and /debug/vars on this address (e.g. :6060)")
		resume       = flag.Bool("resume", false, "resume from <out>.journal, reusing completed suite trials")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall deadline (0 = none)")
		retries      = flag.Int("retries", 0, "extra attempts for transiently failed trials")
	)
	flag.Parse()

	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kpart-bench: debug server on http://%s/debug/pprof\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opts := harness.RunOptions{TrialTimeout: *trialTimeout, Retries: *retries}
	journalPath := *out + ".journal"
	meta := fmt.Sprintf("kpart-bench trials=%d", *trials)
	var j *harness.Journal
	{
		var err error
		if *resume {
			j, err = harness.OpenJournal(journalPath, meta)
		} else {
			j, err = harness.CreateJournal(journalPath, meta)
		}
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		if *resume && j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "kpart-bench: resuming, %d trials already journaled in %s\n", j.Len(), journalPath)
		}
		opts.Journal = j
	}

	doc := benchDoc{
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Representative points: one per benchmark family in bench_test.go,
	// kept small enough that the suite finishes in well under a minute.
	// The scale-batch point is the headline of the batched engine: a
	// hundred-million-agent population to stability in about a second; its
	// interaction budget must be explicit because ~5·10¹⁶ interactions
	// dwarf the harness default cap.
	suite := []struct {
		name            string
		n, k            int
		engine          harness.Engine
		maxInteractions uint64
		topology        harness.TopologySpec
		fairness        harness.Fairness
		scenario        bool
	}{
		{name: "fig3/k=4/n=24", n: 24, k: 4, engine: harness.EngineAgent},
		{name: "fig3/k=6/n=36", n: 36, k: 6, engine: harness.EngineAgent},
		{name: "fig5/k=4/n=120", n: 120, k: 4, engine: harness.EngineAgent},
		{name: "fig6/k=8/n=960", n: 960, k: 8, engine: harness.EngineAgent},
		{name: "fig6-count/k=8/n=960", n: 960, k: 8, engine: harness.EngineCount},
		{name: "fig6-count/k=12/n=960", n: 960, k: 12, engine: harness.EngineCount},
		{name: "fig6-batch/k=8/n=960", n: 960, k: 8, engine: harness.EngineBatch},
		{name: "scale-batch/k=8/n=1e8", n: 100_000_000, k: 8, engine: harness.EngineBatch, maxInteractions: 1 << 62},
		// Scenario points measure the scenario seam's overhead, not
		// convergence speed: the ring point runs the edge scheduler plus
		// the orbit-closure freeze detector to its (usually frozen) end;
		// the weak point drives the adversary a fixed 500k interactions
		// (it stalls by design, so wall/interaction is the metric).
		{name: "scenario-ring/k=3/n=60", n: 60, k: 3, engine: harness.EngineAgent,
			maxInteractions: 5_000_000, topology: harness.TopologySpec{Kind: harness.TopologyRing}, scenario: true},
		{name: "scenario-weak/k=3/n=12", n: 12, k: 3, engine: harness.EngineAgent,
			maxInteractions: 500_000, fairness: harness.FairnessWeak, scenario: true},
	}
	for _, s := range suite {
		base := harness.TrialSpec{
			N: s.n, K: s.k,
			Engine:          s.engine,
			MaxInteractions: s.maxInteractions,
			Topology:        s.topology,
			Fairness:        s.fairness,
		}
		pt, err := runPoint(ctx, opts, s.name, base, *trials, s.scenario)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "kpart-bench: interrupted; completed trials saved in %s — rerun with -resume to continue\n", journalPath)
				os.Exit(130)
			}
			fatal(err)
		}
		doc.Points = append(doc.Points, pt)
		fmt.Printf("%-24s %12.0f interactions/run  %12s/trial  %10.3g interactions/sec\n",
			pt.Name, pt.MeanInteractions,
			time.Duration(pt.WallNSMedian).Round(time.Microsecond), pt.InteractionsPerSec)
	}
	doc.Points = append(doc.Points, engineThroughput())
	last := doc.Points[len(doc.Points)-1]
	fmt.Printf("%-24s %39s  %10.3g interactions/sec\n", last.Name, "(raw engine loop)", last.InteractionsPerSec)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// runPoint executes trials at one point and aggregates wall times and
// interaction counts. Journaled trials (a -resume run) contribute their
// recorded wall times instead of being re-measured. Scenario points
// tolerate unconverged trials (freezes and stalls are their workload);
// for everything else a failure to stabilize aborts the suite.
func runPoint(ctx context.Context, opts harness.RunOptions, name string, base harness.TrialSpec, trials int, scenarioPoint bool) (benchPoint, error) {
	pt := benchPoint{Name: name, N: base.N, K: base.K, Engine: base.Engine.String(), Trials: trials}
	if scenarioPoint {
		pt.Scenario = fmt.Sprintf("topology=%s fairness=%s", base.Topology, base.Fairness)
	}
	var wallNS, interactions []float64
	var totalI uint64
	var totalWall time.Duration
	for t := 0; t < trials; t++ {
		spec := base
		spec.Seed = rng.StreamSeed(0xbe9c4, uint64(base.N), uint64(base.K), uint64(t))
		var res harness.TrialResult
		var wall time.Duration
		if e, ok := opts.Journal.Lookup(spec); ok {
			res, wall = e.Result, time.Duration(e.WallUS)*time.Microsecond
		} else {
			start := time.Now()
			r, err := harness.RunTrialCtx(ctx, spec, opts)
			wall = time.Since(start)
			if err != nil {
				return pt, fmt.Errorf("%s trial %d: %w", name, t, err)
			}
			res = r
			if err := opts.Journal.Append(spec, res, wall); err != nil {
				return pt, err
			}
		}
		if scenarioPoint {
			if res.Converged {
				pt.Converged++
			}
			if res.Frozen {
				pt.Frozen++
			}
		} else if !res.Converged {
			return pt, fmt.Errorf("%s trial %d did not stabilize", name, t)
		}
		wallNS = append(wallNS, float64(wall.Nanoseconds()))
		interactions = append(interactions, float64(res.Interactions))
		totalI += res.Interactions
		totalWall += wall
	}
	pt.MeanInteractions = stats.Mean(interactions)
	pt.WallNSMean = stats.Mean(wallNS)
	pt.WallNSMedian = stats.QuantileOf(wallNS, 0.5)
	pt.WallNSP90 = stats.QuantileOf(wallNS, 0.9)
	if totalWall > 0 {
		pt.InteractionsPerSec = float64(totalI) / totalWall.Seconds()
	}
	return pt, nil
}

// engineThroughput measures the raw agent-engine loop (scheduler +
// interact, no stop condition), mirroring BenchmarkEngineThroughput: the
// substrate cost every figure sits on and the number the <2% obs-off
// regression budget is checked against.
func engineThroughput() benchPoint {
	const n, k, steps = 960, 8, 5_000_000
	p := harness.Proto(k)
	pop := population.New(p, n)
	s := sched.NewRandom(1)
	start := time.Now()
	for i := 0; i < steps; i++ {
		x, y := s.Next(pop)
		pop.Interact(x, y)
	}
	wall := time.Since(start)
	return benchPoint{
		Name: "engine-throughput", N: n, K: k, Engine: "agent", Trials: 1,
		WallNSMean:         float64(wall.Nanoseconds()) / steps,
		WallNSMedian:       float64(wall.Nanoseconds()) / steps,
		WallNSP90:          float64(wall.Nanoseconds()) / steps,
		InteractionsPerSec: steps / wall.Seconds(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-bench:", err)
	os.Exit(1)
}
