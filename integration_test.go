package repro_test

// Integration tests: full-stack flows that cross package boundaries the
// unit suites don't — a miniature end-to-end reproduction of the paper's
// evaluation pipeline, trace round-trips feeding the fairness meter, and
// the three engines (agent-level, count-level, exact Markov) agreeing on
// the same experiment.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/countsim"
	"repro/internal/fairness"
	"repro/internal/harness"
	"repro/internal/markov"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// A miniature Figure 3 + Figure 6 pipeline: sweep, aggregate, growth-fit —
// asserting the paper's two qualitative conclusions on freshly generated
// data (small trials; the full version lives in cmd/kpart-experiments).
func TestMiniEvaluationPipeline(t *testing.T) {
	// Mini Figure 3: k=4, n in 8..31, 10 trials.
	series, err := harness.RunFig3(harness.Fig3Config{
		Ks: []int{4}, NMin: 8, NMax: 31, NStep: 1, Trials: 10, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	// Growth: last point well above first.
	if pts[len(pts)-1].Mean < 3*pts[0].Mean {
		t.Fatalf("no growth across the sweep: %v -> %v", pts[0].Mean, pts[len(pts)-1].Mean)
	}
	// Jaggedness: at least one decrease when n increases (the paper's
	// period-k dips). With 24 consecutive n this is robust even at 10
	// trials.
	decreases := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].Mean < pts[i-1].Mean {
			decreases++
		}
	}
	if decreases == 0 {
		t.Fatal("monotone sweep: the n mod k jaggedness did not reproduce")
	}

	// Mini Figure 6: n=120, k in {2,3,4,6,8,10}, 10 trials; exponential
	// growth in k must beat the linear fit.
	fig6, err := harness.RunFig6(harness.Fig6Config{
		N: 120, Ks: []int{2, 3, 4, 6, 8, 10}, Trials: 10, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for _, p := range fig6 {
		xs = append(xs, float64(p.K))
		ys = append(ys, p.Mean)
	}
	g, err := stats.FitGrowth(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if g.Exponential.R2 < g.Linear.R2 {
		t.Fatalf("exponential fit (r²=%.3f) does not beat linear (r²=%.3f)",
			g.Exponential.R2, g.Linear.R2)
	}
}

// Record an execution, serialize it, decode it, replay it, and run the
// fairness meter over the replayed events — every artifact must agree.
func TestTraceReplayFairnessRoundTrip(t *testing.T) {
	p := core.MustNew(3)
	const n = 12
	pop := population.New(p, n)
	rec := &trace.Recorder{}
	meter := fairness.NewMeter(n)
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(pop, sched.NewRandom(5), sim.NewCountTarget(p.CanonMap(), target),
		sim.Options{Hooks: []sim.Hook{rec, meter}})
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}

	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.Replay(p, hdr, events)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsStable(replayed.Counts()) {
		t.Fatal("replayed run not stable")
	}

	meter2 := fairness.NewMeter(n)
	for _, e := range events {
		meter2.Record(e.I, e.J)
	}
	r1, r2 := meter.Report(), meter2.Report()
	if r1 != r2 {
		t.Fatalf("fairness reports diverge: %+v vs %+v", r1, r2)
	}
}

// Four engines, one number: for a small (n, k), the exact Markov
// expectation, the agent-level mean, the count-level mean, and the batched
// engine at matching size 1 (which reproduces the sequential law exactly)
// must coincide (each simulated mean within 4 SE of exact).
func TestThreeEnginesAgree(t *testing.T) {
	const n, k, trials = 7, 3, 20000
	p := core.MustNew(k)

	exact, err := markov.ExpectedStabilization(p, n)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, runOne func(i int) uint64) {
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			x := float64(runOne(i))
			sum += x
			sumsq += x * x
		}
		mean := sum / trials
		se := math.Sqrt(((sumsq - sum*sum/trials) / (trials - 1)) / trials)
		if diff := math.Abs(mean - exact); diff > 4*se {
			t.Errorf("%s mean %.3f vs exact %.3f (diff %.3f > 4·SE %.3f)",
				name, mean, exact, diff, 4*se)
		}
	}

	check("agent", func(i int) uint64 {
		res, err := harness.RunTrial(harness.TrialSpec{
			N: n, K: k, Seed: rng.StreamSeed(0x111, uint64(i)),
		})
		if err != nil || !res.Converged {
			t.Fatalf("%v", err)
		}
		return res.Interactions
	})
	check("count", func(i int) uint64 {
		s, err := countsim.New(p, n, rng.StreamSeed(0x222, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ok, err := s.RunUntil(p.IsStable, 1<<40)
		if err != nil || !ok {
			t.Fatalf("%v", err)
		}
		return s.Interactions()
	})
	check("batch", func(i int) uint64 {
		res, err := harness.RunTrial(harness.TrialSpec{
			N: n, K: k, Seed: rng.StreamSeed(0x333, uint64(i)),
			Engine: harness.EngineBatch, BatchSize: 1,
		})
		if err != nil || !res.Converged {
			t.Fatalf("%v", err)
		}
		return res.Interactions
	})
}

// The Director reaches the same stable partition the random scheduler
// does, orders of magnitude faster, and the rule-tally confirms it never
// needs the demolition machinery from the all-initial configuration.
func TestDirectorVsRandomEndToEnd(t *testing.T) {
	const n, k = 120, 8
	p := core.MustNew(k)
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}

	dir := core.NewDirector(p)
	dirSched := sched.Func{SchedName: dir.Name(), F: func(v sched.View) (int, int) { return dir.Next(v) }}
	tally := core.NewTally(p)
	popD := population.New(p, n)
	resD, err := sim.Run(popD, dirSched, sim.NewCountTarget(p.CanonMap(), target), sim.Options{
		Hooks: []sim.Hook{sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
			tally.Observe(s.Before.P, s.Before.Q)
		})},
	})
	if err != nil || !resD.Converged {
		t.Fatalf("director: %v %+v", err, resD)
	}
	if tally.Counts[core.Rule8] != 0 || tally.Counts[core.Rule9] != 0 || tally.Counts[core.Rule10] != 0 {
		t.Fatalf("director used demolition rules: %v", tally.Counts)
	}

	popR := population.New(p, n)
	resR, err := sim.Run(popR, sched.NewRandom(3), sim.NewCountTarget(p.CanonMap(), target), sim.Options{})
	if err != nil || !resR.Converged {
		t.Fatalf("random: %v %+v", err, resR)
	}

	for i := range resD.GroupSizes {
		if resD.GroupSizes[i] != resR.GroupSizes[i] {
			t.Fatalf("different stable partitions: %v vs %v", resD.GroupSizes, resR.GroupSizes)
		}
	}
	if resD.Interactions*10 > resR.Interactions {
		t.Fatalf("director (%d) not clearly faster than random (%d)",
			resD.Interactions, resR.Interactions)
	}
}
