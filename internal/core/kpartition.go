// Package core implements the paper's primary contribution: the symmetric
// uniform k-partition population protocol with designated initial states
// under global fairness (Algorithm 1 of Yasumi, Kitamura, Ooshita, Izumi,
// Inoue; IJNC 9(1), 2019).
//
// The protocol uses 3k−2 states,
//
//	Q = I ∪ G ∪ M ∪ D
//	I = {initial, initial'}          (the "free" states; f = 1)
//	G = {g1 .. gk}                   (membership states; f(gi) = i)
//	M = {m2 .. m(k−1)}               (chain heads; f(mi) = i)
//	D = {d1 .. d(k−2)}               (demolition states; f(di) = 1)
//
// and the ten transition families of Algorithm 1. The basic strategy
// (rules 1–7) grows one complete set {g1..gk} at a time: two free agents
// rendezvous through the initial/initial' handshake and become (g1, m2);
// the m-head then converts free agents to g2, g3, … while climbing to
// m(k−1); the final conversion yields (g(k−1), gk). Rules 8–10 resolve the
// overproduction problem: two m-heads that meet demote to d-states, and a
// d-state unwinds exactly the g-agents its former m-chain created, one
// level per interaction, returning everyone involved to initial.
//
// For k = 2, M and D are empty and the protocol degenerates to the
// four-state uniform bipartition protocol of Yasumi et al. (OPODIS 2017),
// exactly as Section 4 of the paper notes.
package core

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
)

// Kind classifies a state into the four subsets of Q.
type Kind uint8

// The four state subsets of Algorithm 1.
const (
	KindInitial    Kind = iota // initial
	KindInitialBar             // initial'
	KindG                      // g1..gk
	KindM                      // m2..m(k-1)
	KindD                      // d1..d(k-2)
)

// String returns the subset's name.
func (k Kind) String() string {
	switch k {
	case KindInitial:
		return "initial"
	case KindInitialBar:
		return "initial'"
	case KindG:
		return "G"
	case KindM:
		return "M"
	case KindD:
		return "D"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ErrBadK is returned for k < 2; the problem is defined for k >= 2.
var ErrBadK = errors.New("core: uniform k-partition requires k >= 2")

// Protocol is the uniform k-partition protocol for a fixed k. It embeds
// the compiled transition table (so it satisfies protocol.Protocol) and
// adds the state codec, the Lemma 1 invariant, and the stable-configuration
// signature of Lemmas 4–6. Immutable after New; safe for concurrent readers.
type Protocol struct {
	*protocol.Table
	k int
}

// New constructs the protocol for k groups. The returned protocol has
// exactly 3k−2 states and only symmetric rules.
func New(k int) (*Protocol, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	p := &Protocol{k: k}
	b := protocol.NewBuilder(fmt.Sprintf("uniform-%d-partition", k), true)

	// State layout (dense indices):
	//   0            initial
	//   1            initial'
	//   2 .. k+1     g1 .. gk
	//   k+2 .. 2k-1  m2 .. m(k-1)   (k >= 3 only)
	//   2k .. 3k-3   d1 .. d(k-2)   (k >= 3 only)
	ini := b.AddState("initial", 1)
	iniBar := b.AddState("initial'", 1)
	for i := 1; i <= k; i++ {
		b.AddState(fmt.Sprintf("g%d", i), i)
	}
	for i := 2; i <= k-1; i++ {
		b.AddState(fmt.Sprintf("m%d", i), i)
	}
	for i := 1; i <= k-2; i++ {
		b.AddState(fmt.Sprintf("d%d", i), 1)
	}
	b.SetInitial(ini)

	free := []protocol.State{ini, iniBar}
	bar := func(s protocol.State) protocol.State {
		if s == ini {
			return iniBar
		}
		return ini
	}

	// Rule 1: (initial, initial) -> (initial', initial')
	b.AddRule(ini, ini, iniBar, iniBar)
	// Rule 2: (initial', initial') -> (initial, initial)
	b.AddRule(iniBar, iniBar, ini, ini)
	// Rule 3: (di, ini) -> (di, bar(ini))
	for i := 1; i <= k-2; i++ {
		for _, f := range free {
			b.AddRule(p.D(i), f, p.D(i), bar(f))
		}
	}
	// Rule 4: (gi, ini) -> (gi, bar(ini))
	for i := 1; i <= k; i++ {
		for _, f := range free {
			b.AddRule(p.G(i), f, p.G(i), bar(f))
		}
	}
	// Rule 5: (initial, initial') -> (g1, m2); for k = 2 the m-chain is
	// empty and the pair completes immediately as (g1, g2).
	if k >= 3 {
		b.AddRule(ini, iniBar, p.G(1), p.M(2))
	} else {
		b.AddRule(ini, iniBar, p.G(1), p.G(2))
	}
	// Rule 6: (ini, mi) -> (gi, m(i+1)), 2 <= i <= k-2.
	for i := 2; i <= k-2; i++ {
		for _, f := range free {
			b.AddRule(f, p.M(i), p.G(i), p.M(i+1))
		}
	}
	// Rule 7: (ini, m(k-1)) -> (g(k-1), gk).
	if k >= 3 {
		for _, f := range free {
			b.AddRule(f, p.M(k-1), p.G(k-1), p.G(k))
		}
	}
	// Rule 8: (mi, mj) -> (d(i-1), d(j-1)), 2 <= i, j <= k-1.
	for i := 2; i <= k-1; i++ {
		for j := 2; j <= k-1; j++ {
			b.AddRule(p.M(i), p.M(j), p.D(i-1), p.D(j-1))
		}
	}
	// Rule 9: (di, gi) -> (d(i-1), initial), 2 <= i <= k-2.
	for i := 2; i <= k-2; i++ {
		b.AddRule(p.D(i), p.G(i), p.D(i-1), ini)
	}
	// Rule 10: (d1, g1) -> (initial, initial).
	if k >= 3 {
		b.AddRule(p.D(1), p.G(1), ini, ini)
	}

	tab, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building k=%d table: %w", k, err)
	}
	p.Table = tab
	return p, nil
}

// MustNew is New that panics on error, for k known to be valid.
func MustNew(k int) *Protocol {
	p, err := New(k)
	if err != nil {
		panic(err)
	}
	return p
}

// K returns the number of groups.
func (p *Protocol) K() int { return p.k }

// Initial returns the state index of "initial".
func (p *Protocol) Initial() protocol.State { return 0 }

// InitialBar returns the state index of "initial'".
func (p *Protocol) InitialBar() protocol.State { return 1 }

// G returns the state index of g_i, 1 <= i <= k.
func (p *Protocol) G(i int) protocol.State {
	if i < 1 || i > p.k {
		panic(fmt.Sprintf("core: g%d out of range for k=%d", i, p.k))
	}
	return protocol.State(2 + i - 1)
}

// M returns the state index of m_i, 2 <= i <= k-1.
func (p *Protocol) M(i int) protocol.State {
	if i < 2 || i > p.k-1 {
		panic(fmt.Sprintf("core: m%d out of range for k=%d", i, p.k))
	}
	return protocol.State(p.k + 2 + i - 2)
}

// D returns the state index of d_i, 1 <= i <= k-2.
func (p *Protocol) D(i int) protocol.State {
	if i < 1 || i > p.k-2 {
		panic(fmt.Sprintf("core: d%d out of range for k=%d", i, p.k))
	}
	return protocol.State(2*p.k + i - 1)
}

// Decode classifies state s and returns its within-subset index: 0 for the
// I states, i for g_i / m_i / d_i.
func (p *Protocol) Decode(s protocol.State) (Kind, int) {
	switch {
	case s == 0:
		return KindInitial, 0
	case s == 1:
		return KindInitialBar, 0
	case int(s) <= p.k+1:
		return KindG, int(s) - 1
	case int(s) <= 2*p.k-1:
		return KindM, int(s) - p.k
	default:
		return KindD, int(s) - 2*p.k + 1
	}
}

// IsFree reports whether s is in I = {initial, initial'}.
func (p *Protocol) IsFree(s protocol.State) bool { return s <= 1 }

// ParityOrbit returns the set of states an agent in state s can move
// through without changing group while the rest of the configuration is
// fixed: both I-states for a free agent (rules 1–4 flip parity, f = 1 for
// both), the singleton otherwise. This is the orbit function the
// graph-restricted frozenness check (internal/topology) needs for
// soundness: every group-preserving transition of Algorithm 1 is a parity
// flip.
func (p *Protocol) ParityOrbit(s protocol.State) []protocol.State {
	if p.IsFree(s) {
		return []protocol.State{p.Initial(), p.InitialBar()}
	}
	return []protocol.State{s}
}
