package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("got %v", err)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample std with n−1: variance = 32/7.
	if !approx(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("std %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v %v", s.Min, s.Max)
	}
	if !approx(s.Median, 4.5, 1e-12) {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 3.5 || s.Median != 3.5 {
		t.Fatalf("%+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMeanUint64(t *testing.T) {
	if got := MeanUint64([]uint64{10, 20, 30}); !approx(got, 20, 1e-12) {
		t.Fatalf("got %v", got)
	}
	if MeanUint64(nil) != 0 {
		t.Fatal("empty mean nonzero")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(1)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.Float64()
	}
	for i := range large {
		large[i] = r.Float64()
	}
	if CI95(small) <= CI95(large) {
		t.Fatalf("CI did not shrink: %v vs %v", CI95(small), CI95(large))
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI of single sample nonzero")
	}
}

func TestStudentT(t *testing.T) {
	if !approx(StudentT97_5(1), 12.706, 1e-9) {
		t.Fatal("df=1")
	}
	if !approx(StudentT97_5(1000), 1.96, 1e-9) {
		t.Fatal("df large")
	}
	v := StudentT97_5(12) // interpolated between 10 and 15
	if v >= StudentT97_5(10) || v <= StudentT97_5(15) {
		t.Fatalf("interpolation out of bracket: %v", v)
	}
	if !math.IsNaN(StudentT97_5(0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-12) || !approx(fit.Intercept, 1, 1e-12) || !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("%+v", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 0, 1e-12) || !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("%+v", fit)
	}
}

// Property: FitLinear recovers the generating line from noiseless data.
func TestFitLinearRecovery(t *testing.T) {
	f := func(a, b float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a + b*x[i]
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return approx(fit.Slope, b, 1e-6*(1+math.Abs(b))) &&
			approx(fit.Intercept, a, 1e-6*(1+math.Abs(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitGrowthClassifiesExponential(t *testing.T) {
	x := []float64{2, 3, 4, 5, 6, 8}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 100 * math.Exp(0.9*x[i])
	}
	g, err := FitGrowth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if g.BestModel() != "exponential" {
		t.Fatalf("classified %q: %+v", g.BestModel(), g)
	}
	if !approx(g.Exponential.Slope, 0.9, 1e-9) {
		t.Fatalf("rate %v", g.Exponential.Slope)
	}
}

func TestFitGrowthClassifiesPower(t *testing.T) {
	x := []float64{120, 240, 360, 480, 600, 720}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * math.Pow(x[i], 1.7)
	}
	g, err := FitGrowth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if g.BestModel() != "power" {
		t.Fatalf("classified %q", g.BestModel())
	}
	if !approx(g.Power.Slope, 1.7, 1e-9) {
		t.Fatalf("exponent %v", g.Power.Slope)
	}
}

func TestFitGrowthClassifiesLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{10.1, 19.8, 30.2, 39.9, 50.1, 60.0}
	g, err := FitGrowth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Linear data is also a perfect-ish power law with exponent ~1, so
	// accept either classification but require the linear r² to be ~1.
	if g.Linear.R2 < 0.999 {
		t.Fatalf("linear r² = %v", g.Linear.R2)
	}
}

func TestFitGrowthRejectsNonPositive(t *testing.T) {
	if _, err := FitGrowth([]float64{1, 2}, []float64{0, 3}); err == nil {
		t.Fatal("zero y accepted")
	}
	if _, err := FitGrowth([]float64{-1, 2}, []float64{1, 3}); err == nil {
		t.Fatal("negative x accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bucket %d has %d, want 2: %v", i, c, h.Counts)
		}
	}
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Fatal("empty accepted")
	}
	// All-equal sample lands in bucket 0.
	h, _ = NewHistogram([]float64{4, 4, 4}, 3)
	if h.Counts[0] != 3 {
		t.Fatalf("constant sample: %v", h.Counts)
	}
}
