// Package markov computes exact expected stabilization times for small
// populations by analyzing the configuration Markov chain induced by the
// uniform-random scheduler (the paper's Section 5 interaction model:
// every ordered agent pair equally likely each step).
//
// For a protocol with state multiset configurations c, the chain's step
// distribution is
//
//	P(pick ordered states (a, b)) = c[a]·(c[b] − [a = b]) / (n·(n−1)),
//
// and the paper's time metric — interactions until a stable configuration
// — is the hitting time of the stable set. Because stability is closed
// (no transition leaves the stable set), hitting times solve the linear
// system E[c] = 1 + Σ P(c→c')·E[c'] over transient configurations with
// E = 0 on the stable set.
//
// The package solves the system two ways: Gauss–Seidel sweeps (scales to
// the tens of thousands of reachable configurations typical for n ≤ 12)
// and dense Gaussian elimination (small systems; used by tests to validate
// the iterative solver). Comparing these exact values against simulation
// means is the strongest correctness check the repository has for the
// whole simulation stack — generator, scheduler, engine, and detector
// must all be unbiased for the two to agree.
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/explore"
	"repro/internal/protocol"
)

// Edge is one outgoing transition of a configuration with its probability.
type Edge struct {
	To int     // target node id in the Chain's graph
	P  float64 // probability of this step (aggregated over state pairs)
}

// Chain is the configuration Markov chain of a protocol at population n.
type Chain struct {
	Graph *explore.Graph
	// Out[i] lists node i's outgoing edges to OTHER nodes; SelfLoop[i]
	// is the probability of staying (null interactions plus productive
	// interactions that happen to reproduce the same multiset).
	Out      [][]Edge
	SelfLoop []float64
	// Stable marks the absorbing target set (group-frozen closure).
	Stable []bool
}

// New builds the chain for p with n agents.
func New(p protocol.Protocol, n int) (*Chain, error) {
	g, err := explore.Build(p, n)
	if err != nil {
		return nil, err
	}
	ch := &Chain{
		Graph:    g,
		Out:      make([][]Edge, len(g.Nodes)),
		SelfLoop: make([]float64, len(g.Nodes)),
		Stable:   g.StableNodes(),
	}
	S := p.NumStates()
	total := float64(n) * float64(n-1)
	for i, node := range g.Nodes {
		probs := make(map[int]float64)
		var self float64
		for a := 0; a < S; a++ {
			ca := node.Counts[a]
			if ca == 0 {
				continue
			}
			for b := 0; b < S; b++ {
				cb := node.Counts[b]
				if b == a {
					cb--
				}
				if cb <= 0 {
					continue
				}
				w := float64(ca) * float64(cb) / total
				out, _ := p.Delta(protocol.State(a), protocol.State(b))
				if int(out.P) == a && int(out.Q) == b {
					self += w
					continue
				}
				next := explore.Config{Counts: append([]int(nil), node.Counts...)}
				next.Counts[a]--
				next.Counts[b]--
				next.Counts[out.P]++
				next.Counts[out.Q]++
				id, ok := g.Lookup(next)
				if !ok {
					return nil, fmt.Errorf("markov: node %d transitions outside the reachable graph", i)
				}
				if id == i {
					self += w
				} else {
					probs[id] += w
				}
			}
		}
		ch.SelfLoop[i] = self
		for id, w := range probs {
			ch.Out[i] = append(ch.Out[i], Edge{To: id, P: w})
		}
		// Edge order must not inherit map iteration order: the solvers
		// sum these in sequence, and float addition is order-sensitive,
		// so an unsorted list makes hitting times vary across runs.
		sort.Slice(ch.Out[i], func(a, b int) bool { return ch.Out[i][a].To < ch.Out[i][b].To })
	}
	return ch, nil
}

// Errors returned by the solvers.
var (
	ErrNoStable   = errors.New("markov: no stable configuration reachable")
	ErrNoConverge = errors.New("markov: Gauss-Seidel did not converge")
)

// HittingTimes solves for the expected number of interactions from every
// configuration to the stable set, by Gauss–Seidel iteration to the given
// sup-norm tolerance. Stable nodes get 0. Nodes that cannot reach the
// stable set would have infinite expectation; Build-time liveness (see
// explore.Check) rules those out for the paper's protocol, but the solver
// still detects the situation and errors rather than looping forever.
func (ch *Chain) HittingTimes(tol float64, maxIter int) ([]float64, error) {
	return ch.HittingTimesTo(ch.Stable, tol, maxIter)
}

// SecondMoments solves for E[T²] given the first moments E[T] (from
// HittingTimes): conditioning on the first step, T_i = 1 + T_J with J the
// next configuration, so
//
//	E[T_i²] = 1 + 2·Σ_j P_ij·E[T_j] + Σ_j P_ij·E[T_j²],
//
// another linear system with the same matrix, solved by the same
// Gauss–Seidel sweeps. Together with HittingTimes this yields the exact
// variance of the stabilization time — the paper reports only means, but
// the simulation CIs suggest heavy tails, and this makes the dispersion
// exact at small n (see Variance).
func (ch *Chain) SecondMoments(E []float64, tol float64, maxIter int) ([]float64, error) {
	nNodes := len(ch.Graph.Nodes)
	if len(E) != nNodes {
		return nil, fmt.Errorf("markov: E has %d entries, chain has %d nodes", len(E), nNodes)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 2_000_000
	}
	M := make([]float64, nNodes)
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := 0; i < nNodes; i++ {
			if ch.Stable[i] {
				continue
			}
			// E[T_i²]·(1 − p_ii) = 1 + 2·(p_ii·E_i + Σ_out p·E_j)
			//                      + Σ_out p·M_j  + p_ii·(2·?)...
			// Derive carefully with the self-loop: T_i = 1 + T_next where
			// next = i with prob p_ii. E[T_i²] = 1 + 2Σp·E + Σp·M, where
			// sums include the self term p_ii·E_i and p_ii·M_i.
			sum := 1.0 + 2*ch.SelfLoop[i]*E[i]
			acc := ch.SelfLoop[i] // coefficient of M_i moved to LHS below
			for _, e := range ch.Out[i] {
				sum += 2*e.P*E[e.To] + e.P*M[e.To]
			}
			denom := 1 - acc
			if denom <= 0 {
				return nil, fmt.Errorf("%w: node %d is fully self-looping", ErrNoStable, i)
			}
			next := sum / denom
			if d := math.Abs(next - M[i]); d > maxDelta {
				maxDelta = d
			}
			M[i] = next
		}
		if maxDelta < tol*(1+M[0]) {
			return M, nil
		}
	}
	return nil, ErrNoConverge
}

// Variance returns the exact variance of the interactions-to-stability
// from the all-initial configuration.
func Variance(p protocol.Protocol, n int) (mean, variance float64, err error) {
	ch, err := New(p, n)
	if err != nil {
		return 0, 0, err
	}
	E, err := ch.HittingTimes(1e-12, 0)
	if err != nil {
		return 0, 0, err
	}
	M, err := ch.SecondMoments(E, 1e-12, 0)
	if err != nil {
		return 0, 0, err
	}
	return E[0], M[0] - E[0]*E[0], nil
}

// ExpectedStabilization returns the exact expected number of interactions
// from the all-initial configuration to the stable set.
func ExpectedStabilization(p protocol.Protocol, n int) (float64, error) {
	ch, err := New(p, n)
	if err != nil {
		return 0, err
	}
	E, err := ch.HittingTimes(1e-10, 0)
	if err != nil {
		return 0, err
	}
	return E[0], nil
}

// Survival computes the exact distribution tail of the stabilization time:
// P(T > t) for each t in 0..maxT, where T is the number of interactions
// until the stable set is first entered, starting from the all-initial
// configuration. It iterates the probability vector over the chain
// (absorbing the stable set), O(edges) per step — the exact counterpart of
// the heavy-tail observation the simulation quantiles make at large n.
func (ch *Chain) Survival(maxT int) []float64 {
	n := len(ch.Graph.Nodes)
	cur := make([]float64, n)
	next := make([]float64, n)
	if ch.Stable[0] {
		out := make([]float64, maxT+1)
		return out // starts absorbed; P(T > t) = 0 everywhere
	}
	cur[0] = 1
	out := make([]float64, 0, maxT+1)
	alive := 1.0
	for t := 0; t <= maxT; t++ {
		out = append(out, alive)
		if alive == 0 {
			continue
		}
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			next[i] += p * ch.SelfLoop[i]
			for _, e := range ch.Out[i] {
				if ch.Stable[e.To] {
					continue // absorbed; leaves the survival mass
				}
				next[e.To] += p * e.P
			}
		}
		cur, next = next, cur
		alive = 0
		for _, p := range cur {
			alive += p
		}
	}
	return out
}

// SolveDense computes hitting times by dense Gaussian elimination with
// partial pivoting — O(m³), for cross-validating the iterative solver on
// small chains (tests) and for chains where Gauss–Seidel converges slowly.
func (ch *Chain) SolveDense() ([]float64, error) {
	n := len(ch.Graph.Nodes)
	var transient []int
	index := make([]int, n)
	for i := range index {
		index[i] = -1
	}
	for i := 0; i < n; i++ {
		if !ch.Stable[i] {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	m := len(transient)
	if m == 0 {
		return make([]float64, n), nil
	}
	if m > 2000 {
		return nil, fmt.Errorf("markov: dense solver limited to 2000 transient nodes, got %d", m)
	}
	// Build (I − Q) x = 1 over transient nodes.
	A := make([][]float64, m)
	bvec := make([]float64, m)
	for r, node := range transient {
		A[r] = make([]float64, m)
		A[r][r] = 1 - ch.SelfLoop[node]
		for _, e := range ch.Out[node] {
			if j := index[e.To]; j >= 0 {
				A[r][j] -= e.P
			}
		}
		bvec[r] = 1
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-14 {
			return nil, ErrNoStable
		}
		A[col], A[piv] = A[piv], A[col]
		bvec[col], bvec[piv] = bvec[piv], bvec[col]
		for r := col + 1; r < m; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				A[r][c] -= f * A[col][c]
			}
			bvec[r] -= f * bvec[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		s := bvec[r]
		for c := r + 1; c < m; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	E := make([]float64, n)
	for r, node := range transient {
		E[node] = x[r]
	}
	return E, nil
}
