package analyzers

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzGuardedBy drives arbitrary comment text through the guarded-by
// parser and checks its invariants rather than specific outputs:
//
//   - never panics (the fuzzer's real job);
//   - (ok, err, mutex) are coherent: a mutex is returned only on
//     well-formed annotations, an error only on recognized-but-malformed
//     ones, and never both;
//   - a returned mutex is a dot-separated ASCII identifier path — the
//     contract lockguard's sibling-field lookup depends on;
//   - parsing is insensitive to a leading "//" and to surrounding
//     space, so lockguard may feed comment text in either form;
//   - non-annotations stay non-annotations when the phrase is not a
//     prefix of the trimmed text.
func FuzzGuardedBy(f *testing.F) {
	for _, seed := range []string{
		"// guarded by mu",
		"guarded by mu",
		"//\tguarded by\tc.mu",
		"// guarded by",
		"// guarded by mu and sometimes rw",
		"// guarded by 1bad",
		"// guarded by a.b.c",
		"// guarded by a..b",
		"// guarded byte slices",
		"// the map is guarded by mu",
		"// guarded by mu\x00",
		"// guarded by µ",
		"//// guarded by mu",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		mutex, ok, err := ParseGuardedBy(text)
		if !ok {
			if mutex != "" || err != nil {
				t.Fatalf("ParseGuardedBy(%q) = (%q, false, %v): non-annotations must return empty/nil", text, mutex, err)
			}
			return
		}
		if err != nil {
			if mutex != "" {
				t.Fatalf("ParseGuardedBy(%q) returned both a mutex %q and an error %v", text, mutex, err)
			}
			return
		}
		if mutex == "" {
			t.Fatalf("ParseGuardedBy(%q) = ok with no error but empty mutex", text)
		}
		for _, seg := range strings.Split(mutex, ".") {
			if !validIdent(seg) {
				t.Fatalf("ParseGuardedBy(%q) returned non-identifier-path mutex %q", text, mutex)
			}
		}
		if !utf8.ValidString(mutex) {
			t.Fatalf("ParseGuardedBy(%q) returned invalid UTF-8 %q", text, mutex)
		}
		// Idempotence across the "//" and whitespace normalization the
		// parser itself performs: re-feeding a canonical form must parse
		// to the same designator.
		again, ok2, err2 := ParseGuardedBy("// guarded by " + mutex)
		if !ok2 || err2 != nil || again != mutex {
			t.Fatalf("round-trip of %q = (%q, %v, %v)", mutex, again, ok2, err2)
		}
	})
}
