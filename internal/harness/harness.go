// Package harness runs the paper's experiments: it fans simulation trials
// out over a worker pool, aggregates them into per-point statistics, and
// hands the experiment binaries ready-to-render series for every figure of
// Section 5 (and for the ablations DESIGN.md adds).
//
// Seeding discipline: every trial's generator is derived as
// StreamSeed(rootSeed, pointIndex, trialIndex), so any single cell of any
// figure can be reproduced in isolation, and results are independent of
// worker count and scheduling order.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/countsim"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Engine selects the simulation backend for a trial.
type Engine uint8

// The available engines.
const (
	// EngineAgent is the agent-level engine (internal/sim): every
	// scheduled encounter is walked explicitly. The default.
	EngineAgent Engine = iota
	// EngineCount is the count-based engine (internal/countsim): null
	// runs are skipped geometrically. Identical output distribution,
	// much faster on null-dominated workloads (large n, large k).
	EngineCount
	// EngineBatch is the batched count engine (countsim.Batch): whole
	// windows of interactions are drawn and applied per O(S²) batch,
	// with invariants re-checked only at batch boundaries and automatic
	// sequential fallback near stability. BatchSize selects the mode:
	// 0 is the adaptive aggregate mode (approximate within batches,
	// exact in every invariant — the differential tests in
	// internal/countsim pin down the contract), a positive size is the
	// exact fixed-size matching mode.
	EngineBatch
)

// TrialSpec describes one simulation trial of the k-partition protocol.
type TrialSpec struct {
	N, K int
	Seed uint64
	// MaxInteractions caps the run (0 = engine default).
	MaxInteractions uint64
	// Grouping requests per-grouping interaction marks (Figure 4).
	Grouping bool
	// Engine selects the backend (default EngineAgent).
	Engine Engine
	// BatchSize, meaningful only for EngineBatch, selects fixed-size
	// matching mode with this many disjoint pairs per batch (2·BatchSize
	// ≤ N required); 0 selects adaptive aggregate mode. ValidateSpec
	// rejects a non-zero BatchSize on any other engine.
	BatchSize uint64
	// Topology restricts interactions to a graph (zero value: the
	// paper's complete graph). Non-complete topologies require
	// EngineAgent and an explicit MaxInteractions cap (scenario runs can
	// freeze short of uniformity; see TrialResult.Frozen).
	Topology TopologySpec
	// Fairness selects the scheduling regime (zero value: the paper's
	// uniform-random scheduler). FairnessWeak requires EngineAgent and
	// an explicit MaxInteractions cap.
	Fairness Fairness
	// Churn schedules mid-run population changes (zero value: none).
	// Requires EngineAgent, an explicit MaxInteractions cap, and a
	// topology that can be rebuilt at any size (complete, ring, star).
	Churn ChurnSpec
}

// TrialResult is the outcome of one trial.
type TrialResult struct {
	Spec         TrialSpec
	Interactions uint64
	Productive   uint64
	Converged    bool
	Spread       int
	// Marks holds NI_i (total interactions at the i-th grouping) when
	// Spec.Grouping was set.
	Marks []uint64
	// Attempts is how many executions it took to get this result (1 =
	// first try). Retried attempts run under deterministically re-derived
	// seeds (RetrySeed), recorded in Spec.Seed, so every result remains
	// reproducible from its own spec regardless of the retry history.
	Attempts int `json:",omitempty"`
	// Frozen reports that a restricted-topology run stopped because the
	// configuration group-froze (no reachable interaction can change any
	// agent's group again) WITHOUT reaching the uniform target — the
	// star-graph failure mode, surfaced as data rather than a timeout.
	Frozen bool `json:",omitempty"`
	// FinalN is the population size at the end of a churn run (0 when
	// the population never changed).
	FinalN int `json:",omitempty"`
}

// protoCache shares immutable protocol tables across trials; building a
// table is O(k²) but there is no reason to do it 100 times per point.
type protoCache struct {
	mu sync.Mutex
	m  map[int]*core.Protocol // guarded by mu
}

var cache = protoCache{m: make(map[int]*core.Protocol)}

// Proto returns the shared uniform k-partition protocol instance for k.
func Proto(k int) *core.Protocol {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if p, ok := cache.m[k]; ok {
		return p
	}
	p := core.MustNew(k)
	cache.m[k] = p
	return p
}

// RunOptions is the execution policy of a trial or batch: deadlines,
// retries, journaling, progress. It deliberately lives OUTSIDE TrialSpec —
// the spec is a trial's reproducible identity (it is what the sweep
// journal hashes), while RunOptions only shapes how patiently the harness
// pursues that identity. The zero value means: no deadline, no retries,
// no journal — exactly the pre-resilience behavior.
type RunOptions struct {
	// TrialTimeout is the per-trial wall deadline; a trial (each attempt
	// separately) exceeding it is aborted with context.DeadlineExceeded.
	// 0 means no wall deadline.
	TrialTimeout time.Duration
	// Retries is how many additional attempts a transiently failed trial
	// gets. Each retry runs under RetrySeed(seed, attempt) so the retry
	// stream is itself deterministic. Invalid-spec errors (ErrInvalidSpec)
	// and batch cancellation are never retried.
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt and capped at MaxRetryBackoff; 0 means DefaultRetryBackoff.
	// The sleep respects cancellation.
	Backoff time.Duration
	// Journal, when non-nil, is consulted before running each trial of a
	// batch (completed trials are returned from the journal instead of
	// re-run) and appended to after each success — the sweep
	// checkpoint/resume mechanism.
	Journal *Journal
	// Progress, when non-zero, emits a progress report every Progress
	// interactions (count engine: at the first productive step past each
	// multiple). Used by the scale binary for hours-long single trials.
	Progress uint64
}

// Retry/backoff tuning shared by every binary.
const (
	// DefaultRetryBackoff is the base retry delay when Backoff is 0.
	DefaultRetryBackoff = 50 * time.Millisecond
	// MaxRetryBackoff caps the exponential backoff growth.
	MaxRetryBackoff = 2 * time.Second
)

// ErrInvalidSpec marks trial failures that no retry can fix (bad n/k,
// malformed spec); RunTrialCtx fails such trials immediately.
var ErrInvalidSpec = errors.New("harness: invalid trial spec")

// RetrySeed deterministically derives the seed of the attempt-th retry
// (attempt >= 1) of a trial originally seeded with seed. Keeping the
// derivation pure means a resumed or re-run sweep retries identically,
// so results stay reproducible even through failure paths.
func RetrySeed(seed uint64, attempt int) uint64 {
	return rng.StreamSeed(seed, 0x9e7291, uint64(attempt))
}

// backoffDelay is the sleep before retry number attempt (1-based).
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base << (attempt - 1)
	if d <= 0 || d > MaxRetryBackoff {
		d = MaxRetryBackoff
	}
	return d
}

// sleepCtx waits d or until ctx fires, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RunTrial executes one trial to stability (or the interaction cap),
// recording per-trial metrics when a registry is installed (SetMetrics).
func RunTrial(spec TrialSpec) (TrialResult, error) {
	return RunTrialCtx(context.Background(), spec, RunOptions{})
}

// RunTrialCtx executes one trial under ctx with the given policy: each
// attempt gets opts.TrialTimeout of wall clock, transient failures are
// retried up to opts.Retries times under deterministically re-derived
// seeds, and per-trial metrics (including retry/timeout counters) are
// recorded when a registry is installed. The returned result's Spec
// carries the seed that actually produced it.
//
// When ctx carries a span (span.FromContext), the run is traced: a
// "trial" span with one "attempt" child per execution (retries show up
// as extra attempts under their re-derived seeds), each attempt holding
// its engine span and per-#gk phase spans. The span tree's identity is
// deterministic for a fixed spec; only the wall stamps, taken here at
// the harness edge, vary run to run.
func RunTrialCtx(ctx context.Context, spec TrialSpec, opts RunOptions) (TrialResult, error) {
	reg := Metrics()
	tspan := span.FromContext(ctx).Child("trial")
	tspan.SetAttr("n", fmt.Sprint(spec.N)).
		SetAttr("k", fmt.Sprint(spec.K)).
		SetAttr("seed", fmt.Sprintf("%#x", spec.Seed)).
		SetAttr("engine", spec.Engine.String())
	if spec.HasScenario() {
		tspan.SetAttr("topology", spec.Topology.String()).
			SetAttr("fairness", spec.Fairness.String())
		if spec.Churn.Enabled() {
			tspan.SetAttr("churn", spec.Churn.String())
		}
	}
	tsw := span.StartWall()
	endTrial := func(res TrialResult, err error) (TrialResult, error) {
		if err != nil {
			tspan.SetAttr("outcome", "error")
		} else {
			tspan.SetAttr("outcome", "ok").
				SetAttr("converged", fmt.Sprint(res.Converged)).
				SetAttr("attempts", fmt.Sprint(res.Attempts))
			tspan.SetSeq(0, res.Interactions)
		}
		tsw.StopInto(tspan)
		tspan.End()
		return res, err
	}
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			reg.Counter("harness/canceled").Inc()
			return endTrial(TrialResult{}, err)
		}
		tctx := ctx
		cancel := context.CancelFunc(nil)
		if opts.TrialTimeout > 0 {
			tctx, cancel = context.WithTimeout(ctx, opts.TrialTimeout)
		}
		aspan := tspan.Child("attempt").
			SetAttr("attempt", fmt.Sprint(attempt+1)).
			SetAttr("seed", fmt.Sprintf("%#x", spec.Seed))
		asw := span.StartWall()
		start := time.Now()
		res, err := runTrial(span.NewContext(tctx, aspan), spec, opts)
		wall := time.Since(start)
		asw.StopInto(aspan)
		if err != nil {
			aspan.SetAttr("outcome", "error")
		} else {
			aspan.SetSeq(0, res.Interactions)
		}
		aspan.End()
		if cancel != nil {
			cancel()
		}
		observeTrial(reg, res, err, wall)
		if err == nil {
			res.Attempts = attempt + 1
			return endTrial(res, nil)
		}
		if ctx.Err() != nil {
			// The batch (not this trial's deadline) was cancelled.
			reg.Counter("harness/canceled").Inc()
			return endTrial(TrialResult{}, ctx.Err())
		}
		if errors.Is(err, context.DeadlineExceeded) {
			reg.Counter("harness/timeouts").Inc()
			err = fmt.Errorf("harness: n=%d k=%d seed=%#x: attempt %d exceeded trial timeout %v: %w",
				spec.N, spec.K, spec.Seed, attempt+1, opts.TrialTimeout, err)
		}
		if errors.Is(err, ErrInvalidSpec) || attempt >= opts.Retries {
			return endTrial(TrialResult{}, err)
		}
		attempt++
		reg.Counter("harness/retries").Inc()
		spec.Seed = RetrySeed(spec.Seed, attempt)
		if serr := sleepCtx(ctx, backoffDelay(opts.Backoff, attempt)); serr != nil {
			reg.Counter("harness/canceled").Inc()
			return endTrial(TrialResult{}, serr)
		}
	}
}

func runTrial(ctx context.Context, spec TrialSpec, ropts RunOptions) (TrialResult, error) {
	p := Proto(spec.K)
	target, err := p.TargetCounts(spec.N)
	if err != nil {
		return TrialResult{}, fmt.Errorf("%w: n=%d k=%d: %v", ErrInvalidSpec, spec.N, spec.K, err)
	}
	// The scenario axes are validated on the execution path too, not just
	// at admission: a caller that skips ValidateSpec still gets
	// ErrInvalidSpec (never a bogus run, never a retry) for an
	// inconsistent scenario spec.
	if err := validateScenario(spec); err != nil {
		return TrialResult{}, err
	}
	if spec.HasScenario() {
		// Restricted topology, adversarial fairness, or churn: the
		// scenario runner (scenario.go). validateScenario rejects the
		// count engines for scenarios, so this dispatch happens first.
		return runScenarioTrial(ctx, p, spec, ropts)
	}
	if spec.Engine == EngineCount || spec.Engine == EngineBatch {
		return runCountTrial(ctx, p, spec, ropts)
	}
	pop := population.New(p, spec.N)
	opts := sim.Options{MaxInteractions: spec.MaxInteractions, Ctx: ctx}
	var gc *sim.GroupingCounter
	if spec.Grouping {
		gc = &sim.GroupingCounter{Watch: p.G(spec.K)}
		opts.Hooks = []sim.Hook{gc}
	}
	// A traced run gets an engine span with per-#gk phase children. The
	// spans are observational only — they never feed back into the result,
	// so a traced and an untraced run of the same spec stay byte-identical.
	espan := span.FromContext(ctx).Child("engine/agent")
	if espan != nil {
		opts.Hooks = append(opts.Hooks, &obs.PhaseSpans{Watch: p.G(spec.K), Parent: espan})
	}
	if ropts.Progress > 0 {
		opts.Hooks = append(opts.Hooks, &obs.Progress{
			Every: ropts.Progress,
			Label: fmt.Sprintf("n=%d k=%d seed=%#x", spec.N, spec.K, spec.Seed),
		})
	}
	res, err := sim.Run(pop, sched.NewRandom(spec.Seed), sim.NewCountTarget(p.CanonMap(), target), opts)
	if espan != nil {
		espan.SetSeq(0, res.Interactions).
			SetAttr("interactions", fmt.Sprint(res.Interactions)).
			SetAttr("productive", fmt.Sprint(res.Productive))
		espan.End()
	}
	if err != nil {
		return TrialResult{}, err
	}
	out := TrialResult{
		Spec:         spec,
		Interactions: res.Interactions,
		Productive:   res.Productive,
		Converged:    res.Converged,
		Spread:       res.Spread(),
	}
	if gc != nil {
		out.Marks = append([]uint64(nil), gc.Marks...)
	}
	return out, nil
}

// countEngine is the run-loop surface shared by the sequential count
// engine (countsim.Sim) and the batched one (countsim.Batch); runCountTrial
// drives either through it.
type countEngine interface {
	RunUntilCtx(ctx context.Context, pred func(counts []int) bool, maxInteractions uint64) (bool, error)
	Interactions() uint64
	Productive() uint64
	CountsView() []int
}

// runCountTrial runs a trial on the count-based engine (sequential or
// batched). Grouping marks are reconstructed from the gk count observed
// inside the stop predicate; on the batched engine the predicate only
// runs at batch boundaries, so marks are boundary-granular there.
func runCountTrial(ctx context.Context, p *core.Protocol, spec TrialSpec, ropts RunOptions) (TrialResult, error) {
	var s countEngine
	engSpan := "engine/count"
	if spec.Engine == EngineBatch {
		// The batched engine re-checks the Lemma 1 invariant at every
		// batch boundary on top of its own null-weight audit: bulk
		// application must not be able to leave the reachable region
		// silently.
		b, err := countsim.NewBatch(p, spec.N, spec.Seed, countsim.BatchOptions{
			Size:  spec.BatchSize,
			Check: p.CheckInvariant,
		})
		if err != nil {
			return TrialResult{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
		s = b
		engSpan = "engine/batch"
	} else {
		seq, err := countsim.New(p, spec.N, spec.Seed)
		if err != nil {
			return TrialResult{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
		s = seq
	}
	maxI := spec.MaxInteractions
	if maxI == 0 {
		maxI = sim.DefaultMaxInteractions
	}
	gk := p.G(spec.K)
	var marks []uint64
	best := 0
	// Precompute the stable signature once; calling p.IsStable per
	// productive step would rebuild the target and canon slices each time
	// (it dominated the count-engine profile before this change).
	canon := p.CanonMap()
	target, err := p.TargetCounts(spec.N)
	if err != nil {
		return TrialResult{}, err
	}
	scratch := make([]int, len(target))
	var prog *obs.Progress
	if ropts.Progress > 0 {
		prog = &obs.Progress{
			Every: ropts.Progress,
			Label: fmt.Sprintf("n=%d k=%d seed=%#x", spec.N, spec.K, spec.Seed),
		}
	}
	// A traced run gets an engine span plus one "phase/grouping" child
	// per #gk milestone, timed on the engine's own interaction counter
	// (which includes the geometrically skipped null batches). Milestones
	// are detected for tracing even when the spec did not ask for marks,
	// but the spans never leak into the result: Marks stays nil unless
	// spec.Grouping, so traced and untraced results are byte-identical.
	espan := span.FromContext(ctx).Child(engSpan)
	trackPhases := spec.Grouping || espan != nil
	phases := 0
	var prevMark uint64
	pred := func(counts []int) bool {
		if prog != nil {
			prog.MaybeReport(s.Interactions(), s.Productive(), func() int {
				return spreadOf(p.GroupSizesFromCounts(counts))
			})
		}
		if trackPhases {
			if c := counts[gk]; c > best {
				for i := best; i < c; i++ {
					if spec.Grouping {
						marks = append(marks, s.Interactions())
					}
					phases++
					espan.Child("phase/grouping").
						SetAttr("index", fmt.Sprint(phases)).
						SetSeq(prevMark, s.Interactions()).
						End()
					prevMark = s.Interactions()
				}
				best = c
			}
		}
		for i := range scratch {
			scratch[i] = 0
		}
		for st, c := range counts {
			scratch[canon[st]] += c
		}
		for i := range scratch {
			if scratch[i] != target[i] {
				return false
			}
		}
		return true
	}
	ok, err := s.RunUntilCtx(ctx, pred, maxI)
	if espan != nil {
		espan.SetSeq(0, s.Interactions()).
			SetAttr("interactions", fmt.Sprint(s.Interactions())).
			SetAttr("productive", fmt.Sprint(s.Productive()))
		espan.End()
	}
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{
		Spec:         spec,
		Interactions: s.Interactions(),
		Productive:   s.Productive(),
		Converged:    ok,
		Marks:        marks,
	}
	res.Spread = spreadOf(p.GroupSizesFromCounts(s.CountsView()))
	return res, nil
}

// spreadOf returns max−min of a group-size vector.
func spreadOf(sizes []int) int {
	if len(sizes) == 0 {
		return 0
	}
	min, max := sizes[0], sizes[0]
	for _, v := range sizes[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// RunMany executes specs over a worker pool and returns results in input
// order. workers <= 0 selects GOMAXPROCS. Every spec is attempted; the
// first error is returned alongside the full result slice.
func RunMany(specs []TrialSpec, workers int) ([]TrialResult, error) {
	return RunManyCtx(context.Background(), specs, workers, RunOptions{})
}

// RunManyCtx executes specs over a worker pool under ctx and returns
// results in input order. workers <= 0 selects GOMAXPROCS. Results are a
// pure function of the specs — independent of worker count, scheduling
// order, journal hits, and retry history (the differential tests pin
// this down).
//
// With opts.Journal set, trials whose spec key is already journaled are
// returned without re-running (counted in harness/resumed), and each
// freshly completed trial is appended to the journal as soon as it
// finishes — so a crash or cancellation loses at most the in-flight
// trials.
//
// Cancellation is graceful: no new trials are dispatched, in-flight
// trials abort at their next poll, completed results (and the journal)
// are retained, and ctx.Err() is returned.
func RunManyCtx(ctx context.Context, specs []TrialSpec, workers int, opts RunOptions) ([]TrialResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]TrialResult, len(specs))
	errs := make([]error, len(specs))
	done := make([]bool, len(specs))
	if opts.Journal != nil {
		reg := Metrics()
		for i := range specs {
			if e, ok := opts.Journal.Lookup(specs[i]); ok {
				results[i], done[i] = e.Result, true
				reg.Counter("harness/resumed").Inc()
			}
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				results[i], errs[i] = RunTrialCtx(ctx, specs[i], opts)
				if errs[i] == nil && opts.Journal != nil {
					errs[i] = opts.Journal.Append(specs[i], results[i], time.Since(start))
				}
			}
		}()
	}
dispatch:
	for i := range specs {
		if done[i] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("harness: batch interrupted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Point is one aggregated parameter point of an experiment.
type Point struct {
	N, K   int
	Trials int
	// Mean and CI95 are over interactions-to-stability of the trials.
	Mean float64
	CI95 float64
	Min  uint64
	Max  uint64
	// Median and P90 expose the run-length distribution's shape: the
	// stabilization time is heavy-tailed (a late m-m collision restarts
	// k chains), so the mean alone overstates the typical run.
	Median float64
	P90    float64
	// MeanDeltas[i] is the mean of NI'_(i+1) (per-grouping interaction
	// cost) over trials; only filled for grouping experiments. The last
	// entry is the mean remainder tail when n mod k != 0.
	MeanDeltas []float64
	// Unconverged counts trials that hit the interaction cap.
	Unconverged int
}

// Aggregate folds a point's trials into a Point.
func Aggregate(n, k int, trials []TrialResult) Point {
	pt := Point{N: n, K: k, Trials: len(trials)}
	if len(trials) == 0 {
		return pt
	}
	xs := make([]float64, 0, len(trials))
	pt.Min, pt.Max = trials[0].Interactions, trials[0].Interactions
	for _, tr := range trials {
		if !tr.Converged {
			pt.Unconverged++
			continue
		}
		xs = append(xs, float64(tr.Interactions))
		if tr.Interactions < pt.Min {
			pt.Min = tr.Interactions
		}
		if tr.Interactions > pt.Max {
			pt.Max = tr.Interactions
		}
	}
	pt.Mean = meanOf(xs)
	pt.CI95 = ci95Of(xs)
	if len(xs) > 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		pt.Median = stats.Quantile(sorted, 0.5)
		pt.P90 = stats.Quantile(sorted, 0.9)
	}

	// Per-grouping decomposition: average NI'_i across trials. Trials of
	// the same (n, k) all have the same number of groupings ⌊n/k⌋ and the
	// same presence of a remainder tail, so rows align.
	groupings := 0
	for _, tr := range trials {
		if len(tr.Marks) > groupings {
			groupings = len(tr.Marks)
		}
	}
	if groupings > 0 {
		withTail := groupings
		hasTail := n%k != 0
		if hasTail {
			withTail++
		}
		sums := make([]float64, withTail)
		counts := make([]int, withTail)
		for _, tr := range trials {
			if !tr.Converged || len(tr.Marks) == 0 {
				continue
			}
			deltas := (&sim.GroupingCounter{Marks: tr.Marks}).Deltas(tr.Interactions)
			for i, d := range deltas {
				if i < len(sums) {
					sums[i] += float64(d)
					counts[i]++
				}
			}
		}
		pt.MeanDeltas = make([]float64, withTail)
		for i := range sums {
			if counts[i] > 0 {
				pt.MeanDeltas[i] = sums[i] / float64(counts[i])
			}
		}
	}
	return pt
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ci95Of(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := meanOf(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sd := ss / float64(len(xs)-1)
	return 1.96 * math.Sqrt(sd/float64(len(xs)))
}

// SweepSpec describes one aggregated parameter point of a sweep: `Trials`
// trials at (N, K), seeded from (Seed, PointID, trial).
type SweepSpec struct {
	N, K, Trials    int
	Seed, PointID   uint64
	Grouping        bool
	Workers         int
	MaxInteractions uint64
	Engine          Engine
	BatchSize       uint64
	Topology        TopologySpec
	Fairness        Fairness
	Churn           ChurnSpec
}

// Specs expands the sweep point into its per-trial specs, in trial order.
func (s SweepSpec) Specs() []TrialSpec {
	specs := make([]TrialSpec, s.Trials)
	for t := range specs {
		specs[t] = TrialSpec{
			N: s.N, K: s.K,
			Seed:            rng.StreamSeed(s.Seed, s.PointID, uint64(t)),
			Grouping:        s.Grouping,
			MaxInteractions: s.MaxInteractions,
			Engine:          s.Engine,
			BatchSize:       s.BatchSize,
			Topology:        s.Topology,
			Fairness:        s.Fairness,
			Churn:           s.Churn,
		}
	}
	return specs
}

// SweepPoint runs one sweep point and aggregates it; the
// context/journal-aware form is SweepPointCtx.
func SweepPoint(n, k, trials int, seed, pointID uint64, grouping bool, workers int, maxInteractions uint64, engine Engine) (Point, error) {
	return SweepPointCtx(context.Background(), SweepSpec{
		N: n, K: k, Trials: trials, Seed: seed, PointID: pointID,
		Grouping: grouping, Workers: workers,
		MaxInteractions: maxInteractions, Engine: engine,
	}, RunOptions{})
}

// SweepPointCtx runs a sweep point under ctx with the given resilience
// policy and aggregates the trials.
func SweepPointCtx(ctx context.Context, s SweepSpec, opts RunOptions) (Point, error) {
	results, err := RunManyCtx(ctx, s.Specs(), s.Workers, opts)
	if err != nil {
		return Point{}, err
	}
	return Aggregate(s.N, s.K, results), nil
}
