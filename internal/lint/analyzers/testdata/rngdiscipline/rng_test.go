package foo

import "math/rand"

// _test.go files may seed throwaway generators; no diagnostics here.
func helperRand() int { return rand.Intn(3) }
