package composed

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestNewRejectsNonPowers(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, 6, 7, 9, 12} {
		if _, err := New(k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

// The composed protocol uses 3k−2 states, the same count as the paper's
// protocol — the comparison is therefore purely about output quality and
// convergence time, a point DESIGN.md's ablation A1 relies on.
func TestStateCount(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		p := MustNew(k)
		if got, want := p.NumStates(), 3*k-2; got != want {
			t.Errorf("k=%d: NumStates=%d, want %d", k, got, want)
		}
		if err := protocol.Validate(p); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		if _, ok := protocol.CheckSymmetric(p); !ok {
			t.Errorf("k=%d: protocol not symmetric", k)
		}
	}
}

func TestDepth(t *testing.T) {
	for k, h := range map[int]int{2: 1, 4: 2, 8: 3, 16: 4} {
		p := MustNew(k)
		if p.Depth() != h || p.MaxSpreadBound() != h {
			t.Errorf("k=%d: depth %d, want %d", k, p.Depth(), h)
		}
		if p.K() != k {
			t.Errorf("K() = %d", p.K())
		}
	}
}

func TestGroupMapping(t *testing.T) {
	p := MustNew(4)
	// Root's leftmost leaf is group 1.
	if g := p.Group(p.Free(1, 0)); g != 1 {
		t.Errorf("f(free root) = %d", g)
	}
	// Node 3 (right child of root) covers leaves 6,7 = groups 3,4.
	if g := p.Group(p.Free(3, 1)); g != 3 {
		t.Errorf("f(free node3) = %d", g)
	}
	for g := 1; g <= 4; g++ {
		if got := p.Group(p.Leaf(g)); got != g {
			t.Errorf("f(leaf %d) = %d", g, got)
		}
	}
}

func TestSplitRule(t *testing.T) {
	p := MustNew(4)
	// Root split: children are internal nodes 2 and 3.
	out, fired := p.Delta(p.Free(1, 0), p.Free(1, 1))
	if !fired || out.P != p.Free(2, 0) || out.Q != p.Free(3, 0) {
		t.Fatalf("root split = (%s,%s)", p.StateName(out.P), p.StateName(out.Q))
	}
	// Node 2 split: children are leaves 4,5 = groups 1,2.
	out, _ = p.Delta(p.Free(2, 0), p.Free(2, 1))
	if out.P != p.Leaf(1) || out.Q != p.Leaf(2) {
		t.Fatalf("node2 split = (%s,%s)", p.StateName(out.P), p.StateName(out.Q))
	}
}

func TestParityFlips(t *testing.T) {
	p := MustNew(4)
	// Same node same parity: both flip.
	out, _ := p.Delta(p.Free(2, 0), p.Free(2, 0))
	if out.P != p.Free(2, 1) || out.Q != p.Free(2, 1) {
		t.Fatalf("same-parity flip failed: %v", out)
	}
	// Different nodes: both flip.
	out, _ = p.Delta(p.Free(2, 1), p.Free(3, 0))
	if out.P != p.Free(2, 0) || out.Q != p.Free(3, 1) {
		t.Fatalf("cross-node flip failed: %v", out)
	}
	// Free meets leaf: free flips, leaf unchanged.
	out, _ = p.Delta(p.Free(1, 0), p.Leaf(2))
	if out.P != p.Free(1, 1) || out.Q != p.Leaf(2) {
		t.Fatalf("free-leaf flip failed: %v", out)
	}
}

func TestLeavesAbsorbing(t *testing.T) {
	p := MustNew(8)
	for g := 1; g <= 8; g++ {
		for s := 0; s < p.NumStates(); s++ {
			out, _ := p.Delta(p.Leaf(g), protocol.State(s))
			if out.P != p.Leaf(g) {
				t.Fatalf("leaf %d changed by %s", g, p.StateName(protocol.State(s)))
			}
		}
	}
}

func TestStabilizesWithBoundedSpread(t *testing.T) {
	for _, cse := range []struct{ n, k int }{
		{8, 4}, {12, 4}, {16, 4}, {17, 4}, {23, 4},
		{16, 8}, {24, 8}, {40, 8},
	} {
		p := MustNew(cse.k)
		pop := population.New(p, cse.n)
		stop := sim.NewCountsPredicate(p.Stable)
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(3, uint64(cse.n), uint64(cse.k))),
			stop, sim.Options{MaxInteractions: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d did not stabilize", cse.n, cse.k)
		}
		total := 0
		for _, s := range res.GroupSizes {
			total += s
		}
		if total != cse.n {
			t.Fatalf("n=%d k=%d: groups sum to %d: %v", cse.n, cse.k, total, res.GroupSizes)
		}
		if sp := res.Spread(); sp > p.MaxSpreadBound() {
			t.Fatalf("n=%d k=%d: spread %d exceeds bound %d (%v)",
				cse.n, cse.k, sp, p.MaxSpreadBound(), res.GroupSizes)
		}
	}
}

// The headline deficiency: repeated bipartition does NOT achieve exact
// uniformity. n=7, k=4 stabilizes with spread 2 whenever the root split
// strands an agent AND the left child strands another — and some execution
// does this, so the exhaustive checker must find a stable non-uniform
// configuration. (This is the motivation for the paper's direct protocol.)
func TestNotExactlyUniform(t *testing.T) {
	p := MustNew(4)
	rep, err := explore.Check(p, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uniform {
		t.Fatal("composed bipartition reported exactly uniform at n=7, k=4; expected spread 2 configurations")
	}
	// With the spread relaxed to log2(k) the checker must pass.
	rep, err = explore.Check(p, 7, p.MaxSpreadBound())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LiveFromAll || !rep.Uniform {
		t.Fatalf("composed bipartition violates its own spread bound: %+v", rep)
	}
}

// For k = 2 the composed protocol IS the bipartition protocol and exact.
func TestK2Exact(t *testing.T) {
	p := MustNew(2)
	for n := 3; n <= 10; n++ {
		rep, err := explore.Check(p, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.LiveFromAll || !rep.Uniform {
			t.Fatalf("n=%d: live=%v uniform=%v", n, rep.LiveFromAll, rep.Uniform)
		}
	}
}

func TestCodecPanics(t *testing.T) {
	p := MustNew(4)
	for _, fn := range []func(){
		func() { p.Free(0, 0) }, func() { p.Free(4, 0) }, func() { p.Free(1, 2) },
		func() { p.Leaf(0) }, func() { p.Leaf(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range codec call did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestIsFree(t *testing.T) {
	p := MustNew(4)
	if !p.IsFree(p.Free(1, 0)) || !p.IsFree(p.Free(3, 1)) {
		t.Error("free states misclassified")
	}
	if p.IsFree(p.Leaf(1)) || p.IsFree(p.Leaf(4)) {
		t.Error("leaves classified free")
	}
}
