// Taskalloc: the paper's second motivating application — "we can assign
// different tasks to different groups and make agents execute multiple
// tasks at the same time" (Section 1.1) — extended with the R-generalized
// partition of Section 1.2's follow-up work (Umino et al.): tasks with
// different load weights get proportionally sized groups.
//
// A swarm of molecular robots inside a patient must split attention
// between three diagnostics whose workloads relate as 1 : 2 : 3. We run
// the ratio-partition protocol (a reduction to the paper's uniform
// K-partition with K = 6) and check each task force is within its
// guaranteed size window.
//
//	go run ./examples/taskalloc
package main

import (
	"fmt"
	"log"

	"repro/internal/population"
	"repro/internal/protocols/rpartition"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	tasks := []struct {
		Name   string
		Weight int
	}{
		{"ph-monitoring", 1},
		{"glucose-assay", 2},
		{"tissue-imaging", 3},
	}
	const swarm = 90
	const seed = 7

	ratio := make([]int, len(tasks))
	for i, t := range tasks {
		ratio[i] = t.Weight
	}
	proto, err := rpartition.New(ratio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol %s: %d states (= 3·ΣR − 2), %d output groups\n",
		proto.Name(), proto.NumStates(), proto.NumGroups())

	pop := population.New(proto, swarm)
	target, err := proto.Protocol.TargetCounts(swarm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(pop, sched.NewRandom(seed),
		sim.NewCountTarget(proto.Protocol.CanonMap(), target), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatal("swarm did not stabilize")
	}

	lo, hi := proto.IdealSizes(swarm)
	fmt.Printf("\nstabilized after %d pairwise encounters\n", res.Interactions)
	fmt.Println("task            weight  robots  guaranteed-window")
	for i, t := range tasks {
		size := res.GroupSizes[i]
		fmt.Printf("%-15s %6d  %6d  [%d, %d]\n", t.Name, t.Weight, size, lo[i], hi[i])
		if size < lo[i] || size > hi[i] {
			log.Fatalf("task %s outside its window", t.Name)
		}
	}

	// Cross-check proportionality: group sizes must order like weights.
	if !(res.GroupSizes[0] <= res.GroupSizes[1] && res.GroupSizes[1] <= res.GroupSizes[2]) {
		log.Fatal("task-force sizes do not respect the weight order")
	}
	fmt.Println("\nall task forces inside their guaranteed windows; allocation respects the 1:2:3 ratio")
}
