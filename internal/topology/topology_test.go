package topology

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestGraphConstructors(t *testing.T) {
	k5, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if k5.NumEdges() != 10 || !k5.Connected() || k5.Degree(0) != 4 {
		t.Fatalf("K5: edges=%d", k5.NumEdges())
	}
	ring, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumEdges() != 6 || ring.Degree(3) != 2 || !ring.Connected() {
		t.Fatal("ring structure wrong")
	}
	star, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	if star.NumEdges() != 6 || star.Degree(0) != 6 || star.Degree(1) != 1 {
		t.Fatal("star structure wrong")
	}
	grid, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grid.N() != 12 || grid.NumEdges() != 3*3+2*4 || !grid.Connected() {
		t.Fatalf("grid: n=%d edges=%d", grid.N(), grid.NumEdges())
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := Complete(1); err == nil {
		t.Fatal("K1 accepted")
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("2-ring accepted")
	}
	if _, err := newGraph("bad", 3, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := newGraph("bad", 3, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Duplicate edges are deduplicated, not an error.
	g, err := newGraph("dup", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("dedup failed: %d edges", g.NumEdges())
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(20, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.NumEdges() != 40 || !g.Connected() {
		t.Fatalf("regular graph wrong: edges=%d", g.NumEdges())
	}
	for i := 0; i < 20; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("vertex %d degree %d", i, g.Degree(i))
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil { // odd n·d
		t.Fatal("odd stub count accepted")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil { // d >= n
		t.Fatal("d >= n accepted")
	}
}

func TestEdgeSchedulerRespectsGraph(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(3)
	pop := population.New(p, 8)
	s := NewEdgeScheduler(g, 5)
	for i := 0; i < 10000; i++ {
		a, b := s.Next(pop)
		diff := (a - b + 8) % 8
		if diff != 1 && diff != 7 {
			t.Fatalf("non-ring pair (%d,%d)", a, b)
		}
	}
}

// On the COMPLETE graph the edge scheduler is the standard model; the
// protocol must stabilize to the uniform partition.
func TestCompleteGraphStabilizes(t *testing.T) {
	const n, k = 12, 3
	g, err := Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(k)
	pop := population.New(p, n)
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(pop, NewEdgeScheduler(g, 2), sim.NewCountTarget(p.CanonMap(), target),
		sim.Options{MaxInteractions: 10_000_000})
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
}

// The frozenness criterion, exercised on the three configuration shapes
// that defeated weaker versions of it during development:
//
//  1. a genuinely stable configuration with a leftover free agent IS
//     frozen (parity flips stay within orbit);
//  2. two same-parity free neighbours are NOT frozen (orbit expansion
//     reveals the latent rule 5);
//  3. an adjacent (d1, g1) pair is NOT frozen even though rule 10 keeps
//     both agents in group 1 — the liberated agents change groups later,
//     which only the orbit-CLOSURE requirement catches.
func TestGroupFrozenCriterion(t *testing.T) {
	p := core.MustNew(3)
	g, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	// 1. Stable: g1 g2 g3 + one free agent.
	pop := population.FromStates(p, []protocol.State{p.G(1), p.G(2), p.G(3), p.Initial()})
	if !GroupFrozen(pop, g, p, p.ParityOrbit) {
		t.Fatal("stable configuration with leftover free agent not frozen")
	}
	// 2. Two same-parity frees.
	pop = population.FromStates(p, []protocol.State{p.Initial(), p.Initial(), p.G(1), p.G(2)})
	if GroupFrozen(pop, g, p, p.ParityOrbit) {
		t.Fatal("latent rule 5 missed")
	}
	// 3. Rule 10 liberation: d1 + g1 adjacent. (Lemma 1 needs
	// #g1 = #d1 + #gk = 2 here, hence the five-agent configuration.)
	g5, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	pop = population.FromStates(p, []protocol.State{p.D(1), p.G(1), p.G(1), p.G(2), p.G(3)})
	if err := p.CheckInvariant(pop.Counts()); err != nil {
		t.Fatalf("test configuration invalid: %v", err)
	}
	if GroupFrozen(pop, g5, p, p.ParityOrbit) {
		t.Fatal("rule-10 liberation missed: group-preserving but not orbit-closed")
	}
}

// THE negative result: on a star, the k-partition protocol can freeze in a
// NON-uniform partition (an m-head stranded on a leaf facing a committed
// hub can never meet another m or a free agent). Verified across seeds:
// at least one run freezes non-uniformly, demonstrating that the paper's
// complete-interaction-graph assumption is necessary.
func TestStarCanFreezeNonUniform(t *testing.T) {
	const n, k = 9, 3
	g, err := Star(n)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(k)
	sawNonUniform := false
	sawFrozen := 0
	for seed := uint64(0); seed < 20; seed++ {
		pop := population.New(p, n)
		cond := &FrozenCondition{G: g, Proto: p, Orbits: p.ParityOrbit}
		res, err := sim.Run(pop, NewEdgeScheduler(g, rng.StreamSeed(4, seed)), cond,
			sim.Options{MaxInteractions: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue // still wandering; fine, we only need frozen samples
		}
		sawFrozen++
		if res.Spread() > 1 {
			sawNonUniform = true
			// Hammer the frozen configuration to confirm it is truly
			// stuck (group sizes never change again).
			sizes := append([]int(nil), pop.GroupSizes()...)
			if _, err := sim.Run(pop, NewEdgeScheduler(g, 999), sim.After{N: pop.Interactions() + 100_000},
				sim.Options{}); err != nil {
				t.Fatal(err)
			}
			after := pop.GroupSizes()
			for i := range sizes {
				if sizes[i] != after[i] {
					t.Fatalf("frozen verdict was wrong: groups moved %v -> %v", sizes, after)
				}
			}
		}
	}
	if sawFrozen == 0 {
		t.Fatal("no star run froze within the cap")
	}
	if !sawNonUniform {
		t.Fatal("star runs all froze uniformly across 20 seeds; the expected deadlock did not appear")
	}
}

// The ring also admits deadlocks (stranded m-heads between committed
// neighbours); verify frozen detection terminates every run and record
// the split between uniform and non-uniform outcomes.
func TestRingRunsAlwaysFreeze(t *testing.T) {
	const n, k = 9, 3
	g, err := Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(k)
	for seed := uint64(0); seed < 10; seed++ {
		pop := population.New(p, n)
		cond := &FrozenCondition{G: g, Proto: p, Orbits: p.ParityOrbit}
		res, err := sim.Run(pop, NewEdgeScheduler(g, rng.StreamSeed(6, seed)), cond,
			sim.Options{MaxInteractions: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: ring run did not freeze in 20M interactions", seed)
		}
	}
}

// Scheduler interface compliance.
var _ sched.Scheduler = (*EdgeScheduler)(nil)
var _ sim.StopCondition = (*FrozenCondition)(nil)
