package twin

import (
	"math"
	"testing"

	"repro/internal/harness"
)

// The mean-field rung's in-repo accuracy reference is the exact rung on
// points small enough for it; the sim leg of the contract runs in
// cmd/kpart-twin-check against TWIN_baseline.json. The asserted bound
// here (2%) is far inside the RelErrFluid contract (10%) so regressions
// surface long before the CI gate trips — the measured worst case on
// this grid is under 1%.
func TestMeanFieldTracksExact(t *testing.T) {
	if testing.Short() {
		t.Skip("exact references are slow in -short mode")
	}
	for _, fx := range []struct{ n, k int }{
		{20, 2}, {40, 2}, {30, 3}, {60, 3}, {24, 4}, {32, 4}, {25, 5}, {30, 5},
	} {
		ex, err := NewLumped(DefaultStateBudget).Predict(Spec{N: fx.n, K: fx.k})
		if err != nil {
			t.Fatalf("lumped(%d, %d): %v", fx.n, fx.k, err)
		}
		mf, err := NewMeanField().Predict(Spec{N: fx.n, K: fx.k})
		if err != nil {
			t.Fatalf("meanfield(%d, %d): %v", fx.n, fx.k, err)
		}
		if e := relErr(mf.ExpectedInteractions, ex.ExpectedInteractions); e > 0.02 {
			t.Errorf("n=%d k=%d: mean %.1f vs exact %.1f (rel err %.3f)",
				fx.n, fx.k, mf.ExpectedInteractions, ex.ExpectedInteractions, e)
		}
		// Dispersion contract is looser: same order of magnitude.
		if ex.StdInteractions > 0 {
			ratio := mf.StdInteractions / ex.StdInteractions
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("n=%d k=%d: std %.1f vs exact %.1f (ratio %.2f)",
					fx.n, fx.k, mf.StdInteractions, ex.StdInteractions, ratio)
			}
		}
	}
}

// The fluid must conserve the Lemma 1 population weight along the whole
// trajectory; a drift indexing bug once leaked ~12% of the population
// into an unused coordinate and stalled million-agent integrations below
// the handoff level, so the invariant is pinned here at RK4 step
// granularity.
func TestFluidConservesPopulation(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8} {
		n := 10_000
		f := &fluid{k: k, t: float64(n) * float64(n-1)}
		dim := fluidLen(k)
		y := make([]float64, dim)
		y[0] = float64(n)
		out := make([]float64, dim)
		k1 := make([]float64, dim)
		k2 := make([]float64, dim)
		k3 := make([]float64, dim)
		k4 := make([]float64, dim)
		tmp := make([]float64, dim)
		weight := func(y []float64) float64 {
			w := y[0] + float64(k)*y[f.cIdx()]
			for i := 2; i <= k-1; i++ {
				w += float64(i) * y[f.mIdx(i)]
			}
			for i := 1; i <= k-2; i++ {
				w += float64(i+1) * y[f.dIdx(i)]
			}
			return w
		}
		h := float64(n) / 4
		for step := 0; step < 400; step++ {
			f.rk4(y, h, out, k1, k2, k3, k4, tmp)
			copy(y, out)
			if w := weight(y); math.Abs(w-float64(n)) > 1e-6*float64(n) {
				t.Fatalf("k=%d step %d: population weight %.6f, want %d", k, step, w, n)
			}
		}
	}
}

// Index layout sanity: F, the m-counts, the d-counts and #gk must tile
// 0..fluidLen−1 without collisions (m3 and d1 once shared a slot).
func TestFluidIndexLayout(t *testing.T) {
	for k := 2; k <= 9; k++ {
		f := &fluid{k: k}
		used := make(map[int]string)
		claim := func(idx int, name string) {
			if prev, ok := used[idx]; ok {
				t.Fatalf("k=%d: index %d claimed by both %s and %s", k, idx, prev, name)
			}
			if idx < 0 || idx >= fluidLen(k) {
				t.Fatalf("k=%d: %s index %d outside [0, %d)", k, name, idx, fluidLen(k))
			}
			used[idx] = name
		}
		claim(0, "F")
		for i := 2; i <= k-1; i++ {
			claim(f.mIdx(i), "m")
		}
		for i := 1; i <= k-2; i++ {
			claim(f.dIdx(i), "d")
		}
		claim(f.cIdx(), "c")
		if len(used) != fluidLen(k) {
			t.Fatalf("k=%d: %d coordinates claimed, want %d", k, len(used), fluidLen(k))
		}
	}
}

// Large populations must answer fast and finite — these are the regimes
// the exact rungs cannot reach, and the regimes where the solver
// pitfalls (catastrophic cancellation in 1−self, Gauss–Seidel
// non-convergence on near-degenerate levels, fluid handoff starvation)
// all lived.
func TestMeanFieldLargePopulations(t *testing.T) {
	for _, fx := range []struct{ n, k int }{
		{100_000, 3}, {1_000_000, 4},
	} {
		pr, err := NewMeanField().Predict(Spec{N: fx.n, K: fx.k})
		if err != nil {
			t.Fatalf("Predict(%d, %d): %v", fx.n, fx.k, err)
		}
		if !(pr.ExpectedInteractions > float64(fx.n)) || math.IsInf(pr.ExpectedInteractions, 0) || math.IsNaN(pr.ExpectedInteractions) {
			t.Errorf("n=%d k=%d: implausible expectation %g", fx.n, fx.k, pr.ExpectedInteractions)
		}
		if pr.StdInteractions < 0 || math.IsNaN(pr.StdInteractions) {
			t.Errorf("n=%d k=%d: bad std %g", fx.n, fx.k, pr.StdInteractions)
		}
	}
}

// An extreme k whose single-level state space exceeds the endgame budget
// must take the documented fluid-only fallback, not fail.
func TestMeanFieldFluidOnlyFallback(t *testing.T) {
	m := NewMeanField()
	pr, err := m.Predict(Spec{N: 500, K: 8})
	if err != nil {
		t.Fatalf("Predict(500, 8): %v", err)
	}
	if pr.States != 0 {
		t.Errorf("fluid-only prediction reports %d endgame states, want 0", pr.States)
	}
	if !(pr.ExpectedInteractions > 0) {
		t.Errorf("implausible expectation %g", pr.ExpectedInteractions)
	}
}

// Warm predictions reuse the cached endgame chain and its solved moments;
// byte-identical spec → identical prediction.
func TestMeanFieldDeterministicAndCached(t *testing.T) {
	m := NewMeanField()
	a, err := m.Predict(Spec{N: 5000, K: 3, Milestones: false})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Predict(Spec{N: 5000, K: 3, Milestones: false})
	if err != nil {
		t.Fatal(err)
	}
	if a.ExpectedInteractions != b.ExpectedInteractions || a.StdInteractions != b.StdInteractions {
		t.Errorf("warm prediction diverged: %+v vs %+v", a, b)
	}
}

func TestMeanFieldMilestonesShape(t *testing.T) {
	pr, err := NewMeanField().Predict(Spec{N: 2000, K: 3, Milestones: true})
	if err != nil {
		t.Fatal(err)
	}
	q := 2000 / 3
	if len(pr.Milestones) != q {
		t.Fatalf("got %d milestones, want %d", len(pr.Milestones), q)
	}
	prev := 0.0
	for j, ms := range pr.Milestones {
		if ms < prev {
			t.Fatalf("milestone %d = %g decreases past %g", j+1, ms, prev)
		}
		prev = ms
	}
	if last := pr.Milestones[q-1]; last > pr.ExpectedInteractions+1e-6*pr.ExpectedInteractions {
		t.Errorf("last milestone %g exceeds stabilization %g", last, pr.ExpectedInteractions)
	}
}

// entryDist must yield a normalized distribution over the floor level
// whose mean residual composition tracks the fluid state it smooths.
func TestEntryDistNormalized(t *testing.T) {
	n, k := 2000, 3
	m := NewMeanField()
	q := n / k
	cStop, ok := m.chooseEndgame(n, k, q)
	if !ok || cStop == 0 {
		t.Fatalf("chooseEndgame(%d, %d) = %d, %v", n, k, cStop, ok)
	}
	f := &fluid{k: k, t: float64(n) * float64(n-1)}
	fr, err := f.integrate(n, cStop)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.endgameChain(harness.Proto(k), n, cStop)
	if err != nil {
		t.Fatal(err)
	}
	ids, ws := entryDist(ch, f, fr.y)
	if len(ids) == 0 {
		t.Fatal("entryDist degenerate")
	}
	sum := 0.0
	for i, w := range ws {
		if w < 0 {
			t.Fatalf("negative weight %g", w)
		}
		if lv := level(ch.nodes[ids[i]]); lv != cStop {
			t.Fatalf("entry state at level %d, want floor %d", lv, cStop)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
}

func TestCrossValidateSimWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation trials are slow in -short mode")
	}
	rep, err := CrossValidateSim(NewMeanField(), Spec{N: 90, K: 3, Milestones: true}, 30, 0xC0FFEE)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RelErr > RelErrFluid {
		t.Errorf("rel err %.3f exceeds the %.2f fluid budget (mf %.1f vs sim %.1f)",
			rep.RelErr, RelErrFluid, rep.Mean, rep.SimMean)
	}
	if rep.Trials != 30 || len(rep.SimMilestones) != 30/1 {
		// 90/3 = 30 milestones; the count doubles as a wiring check.
		t.Errorf("report shape off: trials=%d milestones=%d", rep.Trials, len(rep.SimMilestones))
	}
}

func TestAutoPrefersExactThenFluid(t *testing.T) {
	pr, err := Auto(Spec{N: 12, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Model != "lumped" || pr.Fidelity != FidelityExact {
		t.Errorf("Auto(12, 3) used %s/%s, want lumped/exact", pr.Model, pr.Fidelity)
	}
	pr, err = Auto(Spec{N: 50_000, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Model != "meanfield" || pr.Fidelity != FidelityFluid {
		t.Errorf("Auto(50000, 3) used %s/%s, want meanfield/fluid", pr.Model, pr.Fidelity)
	}
}
