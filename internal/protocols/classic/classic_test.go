package classic

import (
	"testing"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestLeaderElectionStructure(t *testing.T) {
	p := NewLeaderElection()
	if p.NumStates() != 2 {
		t.Fatalf("NumStates = %d", p.NumStates())
	}
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
	// The demotion rule must be asymmetric — the point of including it.
	if _, ok := protocol.CheckSymmetric(p); ok {
		t.Fatal("leader election reported symmetric")
	}
}

func TestLeaderElectionConverges(t *testing.T) {
	p := NewLeaderElection()
	for _, n := range []int{2, 3, 10, 100} {
		pop := population.New(p, n)
		stop := sim.NewCountsPredicate(func(c []int) bool { return c[Leader] == 1 })
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(6, uint64(n))), stop,
			sim.Options{MaxInteractions: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: never reached a single leader", n)
		}
		if pop.Count(Leader) != 1 || pop.Count(Follower) != n-1 {
			t.Fatalf("n=%d: leaders=%d followers=%d", n, pop.Count(Leader), pop.Count(Follower))
		}
	}
}

// The leader count is monotone non-increasing and never reaches zero.
func TestLeaderCountMonotone(t *testing.T) {
	p := NewLeaderElection()
	pop := population.New(p, 50)
	last := 50
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		c := pop.Count(Leader)
		if c > last || c == 0 {
			t.Fatalf("leader count went %d -> %d", last, c)
		}
		last = c
	})
	if _, err := sim.Run(pop, sched.NewRandom(2), sim.After{N: 50000},
		sim.Options{Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxMajorityStructure(t *testing.T) {
	p := NewApproxMajority()
	if p.NumStates() != 3 {
		t.Fatalf("NumStates = %d", p.NumStates())
	}
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestApproxMajorityConvergesToMajority(t *testing.T) {
	p := NewApproxMajority()
	// 70 x vs 30 y: x must win with overwhelming probability; the seed is
	// fixed so the test is deterministic.
	states := make([]protocol.State, 100)
	for i := range states {
		if i < 70 {
			states[i] = MajX
		} else {
			states[i] = MajY
		}
	}
	pop := population.FromStates(p, states)
	consensus := sim.NewCountsPredicate(func(c []int) bool {
		return (c[MajX] == 0 && c[MajBlank] == 0) || (c[MajY] == 0 && c[MajBlank] == 0)
	})
	res, err := sim.Run(pop, sched.NewRandom(123), consensus, sim.Options{MaxInteractions: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no consensus reached")
	}
	if pop.Count(MajX) != 100 {
		t.Fatalf("majority lost: x=%d y=%d blank=%d", pop.Count(MajX), pop.Count(MajY), pop.Count(MajBlank))
	}
}

func TestApproxMajorityTieBreaks(t *testing.T) {
	p := NewApproxMajority()
	states := make([]protocol.State, 20)
	for i := range states {
		if i%2 == 0 {
			states[i] = MajX
		} else {
			states[i] = MajY
		}
	}
	pop := population.FromStates(p, states)
	consensus := sim.NewCountsPredicate(func(c []int) bool {
		return (c[MajX] == 0 && c[MajBlank] == 0) || (c[MajY] == 0 && c[MajBlank] == 0)
	})
	res, err := sim.Run(pop, sched.NewRandom(5), consensus, sim.Options{MaxInteractions: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("tie never broken")
	}
	if got := pop.Count(MajX) + pop.Count(MajY); got != 20 {
		t.Fatalf("agents lost: %d", got)
	}
}

func TestRumorSpreadsToAll(t *testing.T) {
	p := NewRumor()
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
	states := make([]protocol.State, 64)
	for i := range states {
		states[i] = 1 // susceptible
	}
	states[0] = 0 // one informed agent
	pop := population.FromStates(p, states)
	stop := sim.NewCountsPredicate(func(c []int) bool { return c[1] == 0 })
	res, err := sim.Run(pop, sched.NewRandom(8), stop, sim.Options{MaxInteractions: 1_000_000})
	if err != nil || !res.Converged {
		t.Fatalf("rumor did not spread: %v %+v", err, res)
	}
	// Coupon-collector-ish lower bound sanity: spreading to 64 agents
	// needs at least 63 productive interactions.
	if res.Productive < 63 {
		t.Fatalf("impossible productive count %d", res.Productive)
	}
}

func TestRumorNeverForgets(t *testing.T) {
	p := NewRumor()
	states := make([]protocol.State, 10)
	for i := range states {
		states[i] = 1
	}
	states[3] = 0
	pop := population.FromStates(p, states)
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		if pop.State(3) != 0 {
			t.Fatal("informed agent forgot the rumor")
		}
	})
	if _, err := sim.Run(pop, sched.NewRandom(1), sim.After{N: 10000},
		sim.Options{Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}
