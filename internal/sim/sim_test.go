package sim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sched"
)

func mustTarget(t testing.TB, p *core.Protocol, n int) *CountTarget {
	t.Helper()
	tgt, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	return NewCountTarget(p.CanonMap(), tgt)
}

func TestRunStabilizes(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 20)
	res, err := Run(pop, sched.NewRandom(1), mustTarget(t, p, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Interactions == 0 || res.Productive == 0 || res.Productive > res.Interactions {
		t.Fatalf("counter inconsistency: %+v", res)
	}
	if res.Spread() > 1 {
		t.Fatalf("non-uniform final partition: %v", res.GroupSizes)
	}
	if got := pop.Interactions(); got != res.Interactions {
		t.Fatalf("population says %d interactions, result says %d", got, res.Interactions)
	}
}

func TestRunHonorsMaxInteractions(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 20)
	res, err := Run(pop, sched.NewRandom(1), Never{}, Options{MaxInteractions: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("Never condition converged")
	}
	if res.Interactions != 1234 {
		t.Fatalf("ran %d interactions, want 1234", res.Interactions)
	}
}

func TestRunPreSatisfiedTarget(t *testing.T) {
	p := core.MustNew(3)
	// Start in a stable configuration: g1 g1 g2 g2 g3 g3.
	pop := population.FromStates(p, []protocol.State{
		p.G(1), p.G(1), p.G(2), p.G(2), p.G(3), p.G(3),
	})
	res, err := Run(pop, sched.NewRandom(1), mustTarget(t, p, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != 0 {
		t.Fatalf("pre-satisfied target not detected: %+v", res)
	}
}

func TestRunInvariantFailureSurfaces(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 12)
	boom := errors.New("boom")
	_, err := Run(pop, sched.NewRandom(1), Never{}, Options{
		MaxInteractions: 10_000,
		InvariantEvery:  10,
		Invariant: func(pop *population.Population) error {
			if pop.Interactions() >= 100 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("got %v, want ErrInvariant", err)
	}
}

func TestHooksSeeEveryStep(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 9)
	var steps uint64
	hook := StepFunc(func(pop *population.Population, s StepInfo) { steps++ })
	res, err := Run(pop, sched.NewRandom(2), After{N: 500}, Options{Hooks: []Hook{hook}})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Interactions {
		t.Fatalf("hook saw %d steps, result has %d", steps, res.Interactions)
	}
}

func TestStepInfoAccuracy(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	hook := StepFunc(func(pop *population.Population, s StepInfo) {
		if s.I == s.J {
			t.Fatal("self pair in StepInfo")
		}
		if pop.State(s.I) != s.After.P || pop.State(s.J) != s.After.Q {
			t.Fatal("After does not match population")
		}
		want, _ := p.Delta(s.Before.P, s.Before.Q)
		if want != s.After {
			t.Fatalf("After=%v, delta says %v", s.After, want)
		}
		if s.Changed != (s.Before != s.After) {
			t.Fatal("Changed flag wrong")
		}
	})
	if _, err := Run(pop, sched.NewRandom(3), After{N: 2000}, Options{Hooks: []Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}

// --- conditions ---

func TestCountTargetIncrementalMatchesRecompute(t *testing.T) {
	p := core.MustNew(4)
	n := 17
	pop := population.New(p, n)
	tgt, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCountTarget(p.CanonMap(), tgt)
	ct.Init(pop)
	s := sched.NewRandom(7)
	canon := p.CanonMap()
	recompute := func() bool {
		got := make([]int, len(tgt))
		for st, c := range pop.CountsView() {
			got[canon[st]] += c
		}
		for i := range got {
			if got[i] != tgt[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < 100000; i++ {
		a, b := s.Next(pop)
		pp, q := pop.State(a), pop.State(b)
		changed := pop.Interact(a, b)
		fired := ct.Step(pop, StepInfo{
			I: a, J: b,
			Before:  protocol.Pair{P: pp, Q: q},
			After:   protocol.Pair{P: pop.State(a), Q: pop.State(b)},
			Changed: changed,
		})
		if fired != recompute() {
			t.Fatalf("incremental detector diverged at step %d", i)
		}
		if fired {
			return // reached stability and detector agreed throughout
		}
	}
	t.Fatal("n=17 k=4 did not stabilize within 100000 interactions")
}

func TestCountsPredicate(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 9)
	gk := p.G(3)
	cond := NewCountsPredicate(func(counts []int) bool { return counts[gk] >= 2 })
	res, err := Run(pop, sched.NewRandom(5), cond, Options{MaxInteractions: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("predicate never fired")
	}
	if pop.Count(gk) < 2 {
		t.Fatalf("stopped with #g3 = %d", pop.Count(gk))
	}
}

func TestQuiescenceOnDeadConfig(t *testing.T) {
	p := core.MustNew(3)
	// g1 g2 g3 g1 g2 g3 with no free agents: no rule applies at all.
	pop := population.FromStates(p, []protocol.State{
		p.G(1), p.G(2), p.G(3), p.G(1), p.G(2), p.G(3),
	})
	q := NewQuiescence(p)
	q.Init(pop)
	if !q.Satisfied() {
		t.Fatal("dead configuration not recognized")
	}
	res, err := Run(pop, sched.NewRandom(1), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != 0 {
		t.Fatalf("quiescent start not detected: %+v", res)
	}
}

func TestQuiescenceSeesLiveConfig(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	q := NewQuiescence(p)
	q.Init(pop)
	if q.Satisfied() {
		t.Fatal("all-initial configuration reported quiescent")
	}
}

// n mod k == 1 leaves one free agent flipping I-states forever; the stable
// configuration is NOT quiescent, which is exactly why CountTarget
// canonicalizes initial/initial'. Verify both behaviours.
func TestStableButNotQuiescent(t *testing.T) {
	p := core.MustNew(3)
	pop := population.FromStates(p, []protocol.State{
		p.G(1), p.G(2), p.G(3), p.Initial(),
	})
	if !p.IsStable(pop.Counts()) {
		t.Fatal("signature should be stable for n=4, k=3")
	}
	q := NewQuiescence(p)
	q.Init(pop)
	if q.Satisfied() {
		t.Fatal("bar-flipping configuration reported quiescent")
	}
}

func TestAfterCondition(t *testing.T) {
	p := core.MustNew(2)
	pop := population.New(p, 5)
	res, err := Run(pop, sched.NewRandom(1), After{N: 42}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != 42 {
		t.Fatalf("After{42}: %+v", res)
	}
}

func TestAnyCombinator(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 16)
	cond := Any{After{N: 10}, mustTarget(t, p, 16)}
	res, err := Run(pop, sched.NewRandom(1), cond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != 10 {
		t.Fatalf("Any did not fire at the earlier member: %+v", res)
	}
	if cond.String() == "" {
		t.Error("empty Any.String")
	}
}

func TestResultSpreadEmpty(t *testing.T) {
	if (Result{}).Spread() != 0 {
		t.Error("empty result spread nonzero")
	}
}

// --- hooks ---

func TestGroupingCounterMarks(t *testing.T) {
	p := core.MustNew(3)
	n := 9
	pop := population.New(p, n)
	gc := &GroupingCounter{Watch: p.G(3)}
	res, err := Run(pop, sched.NewRandom(9), mustTarget(t, p, n), Options{Hooks: []Hook{gc}})
	if err != nil || !res.Converged {
		t.Fatalf("setup: %v %+v", err, res)
	}
	if len(gc.Marks) != n/3 {
		t.Fatalf("recorded %d groupings, want %d", len(gc.Marks), n/3)
	}
	var prev uint64
	for i, m := range gc.Marks {
		if m < prev || m > res.Interactions {
			t.Fatalf("mark %d = %d out of order (prev %d, total %d)", i, m, prev, res.Interactions)
		}
		prev = m
	}
	deltas := gc.Deltas(res.Interactions)
	var sum uint64
	for _, d := range deltas {
		sum += d
	}
	if sum != res.Interactions {
		t.Fatalf("deltas sum to %d, want %d", sum, res.Interactions)
	}
}

func TestGroupingCounterDeltasWithTail(t *testing.T) {
	gc := &GroupingCounter{Marks: []uint64{10, 25, 70}}
	deltas := gc.Deltas(100)
	want := []uint64{10, 15, 45, 30}
	if len(deltas) != len(want) {
		t.Fatalf("deltas %v, want %v", deltas, want)
	}
	for i := range want {
		if deltas[i] != want[i] {
			t.Fatalf("deltas %v, want %v", deltas, want)
		}
	}
	// No tail when the last mark IS the total.
	if d := gc.Deltas(70); len(d) != 3 {
		t.Fatalf("unexpected tail: %v", d)
	}
}

func TestMaxGroupCountHook(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 12)
	h := &MaxGroupCount{Watch: p.G(3)}
	res, err := Run(pop, sched.NewRandom(4), mustTarget(t, p, 12), Options{Hooks: []Hook{h}})
	if err != nil || !res.Converged {
		t.Fatal(err)
	}
	if h.Max != 4 {
		t.Fatalf("Max = %d, want 4", h.Max)
	}
}

func TestSpreadRecorder(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 16)
	rec := &SpreadRecorder{Interval: 10}
	if _, err := Run(pop, sched.NewRandom(6), After{N: 200}, Options{Hooks: []Hook{rec}}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples) != 21 { // initial sample + one per 10 interactions
		t.Fatalf("recorded %d samples, want 21", len(rec.Samples))
	}
}
