// Package benchdiff is the benchmark regression gate: it compares two
// machine-readable benchmark documents (BENCH_kpart.json,
// BENCH_serve.json — any JSON object of nested numeric metrics) and
// judges each metric against a per-metric threshold policy.
//
// The policy is deliberately small and direction-aware:
//
//   - throughput metrics (requests_per_sec, interactions_per_sec) and
//     cache_hit_rate are higher-better and gate at the default
//     threshold (20% — the acceptance bar for this repository);
//   - latency and wall-time metrics are lower-better but noisier on
//     shared CI hardware, so they gate at a wider threshold;
//   - everything else (counts, metadata echoes) is informational:
//     reported, never gating.
//
// Documents are flattened to metric paths before comparison, so the
// same engine handles the flat serve document and the per-point kpart
// document (array elements keyed by their "name" field render as
// "points[classic/agent].interactions_per_sec").
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"sort"
	"strings"
)

// Direction states which way a metric is allowed to move.
type Direction int

const (
	// Info metrics are reported but never gate.
	Info Direction = iota
	// HigherBetter gates when the metric drops by more than the
	// threshold fraction.
	HigherBetter
	// LowerBetter gates when the metric rises by more than the
	// threshold fraction.
	LowerBetter
)

// String names the direction for rendered findings.
func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	default:
		return "info"
	}
}

// Rule binds a metric-path pattern to a direction and threshold.
// Patterns use path.Match syntax against the final path element
// (e.g. "latency_ns_*") or, when they contain a '/', against the whole
// flattened path. The first matching rule wins.
type Rule struct {
	Pattern   string
	Direction Direction
	// Threshold is the regression bound as a fraction of the baseline
	// (0.20 = worsening by more than 20% fails). Zero means the
	// package default.
	Threshold float64
}

// DefaultThreshold is the gate for throughput-class metrics.
const DefaultThreshold = 0.20

// LatencyThreshold is the wider gate for latency-class metrics, which
// on shared hardware are far noisier than throughput aggregates.
const LatencyThreshold = 0.75

// DefaultRules is the committed threshold policy (see DESIGN.md).
func DefaultRules() []Rule {
	return []Rule{
		{Pattern: "requests_per_sec", Direction: HigherBetter, Threshold: DefaultThreshold},
		{Pattern: "interactions_per_sec", Direction: HigherBetter, Threshold: DefaultThreshold},
		{Pattern: "cache_hit_rate", Direction: HigherBetter, Threshold: DefaultThreshold},
		{Pattern: "latency_ns_*", Direction: LowerBetter, Threshold: LatencyThreshold},
		{Pattern: "wall_ns_*", Direction: LowerBetter, Threshold: LatencyThreshold},
		{Pattern: "duration_ns", Direction: LowerBetter, Threshold: LatencyThreshold},
	}
}

// matches reports whether rule's pattern applies to the flattened
// metric path.
func (r Rule) matches(metricPath string) bool {
	target := metricPath
	if !strings.Contains(r.Pattern, "/") {
		if i := strings.LastIndexByte(metricPath, '.'); i >= 0 {
			target = metricPath[i+1:]
		}
	}
	ok, err := path.Match(r.Pattern, target)
	return err == nil && ok
}

// Flatten reduces a decoded JSON document to metric paths mapped to
// numeric values. Nested objects join with '.'; array elements use the
// element's "name" field when it has one ("points[classic/agent]"),
// else their index. Non-numeric leaves are dropped — they are metadata,
// not metrics.
func Flatten(doc any) map[string]float64 {
	out := make(map[string]float64)
	flattenInto(out, "", doc)
	return out
}

func flattenInto(out map[string]float64, prefix string, v any) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(out, p, child)
		}
	case []any:
		for i, child := range t {
			key := fmt.Sprintf("%s[%d]", prefix, i)
			if m, ok := child.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					key = fmt.Sprintf("%s[%s]", prefix, name)
				}
			}
			flattenInto(out, key, child)
		}
	case float64:
		out[prefix] = t
	}
}

// Finding is the judgment on one metric present in both documents.
type Finding struct {
	Path      string
	Direction Direction
	Threshold float64
	Base, Cur float64
	// Delta is the signed relative change from baseline ((cur-base)/base).
	Delta float64
	// Regressed is true when a gated metric worsened past its threshold.
	Regressed bool
}

// Compare judges every metric present in both flattened documents
// under rules, sorted by path. Metrics present in only one document
// are skipped — the gate exists to catch movement, not schema drift.
func Compare(base, cur map[string]float64, rules []Rule) []Finding {
	paths := make([]string, 0, len(base))
	for p := range base {
		if _, ok := cur[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	findings := make([]Finding, 0, len(paths))
	for _, p := range paths {
		f := Finding{Path: p, Base: base[p], Cur: cur[p]}
		for _, r := range rules {
			if r.matches(p) {
				f.Direction = r.Direction
				f.Threshold = r.Threshold
				if f.Threshold == 0 {
					f.Threshold = DefaultThreshold
				}
				break
			}
		}
		if f.Base != 0 {
			f.Delta = (f.Cur - f.Base) / math.Abs(f.Base)
		}
		// A zero baseline has no meaningful ratio; such metrics are
		// reported but cannot gate.
		if f.Base != 0 {
			switch f.Direction {
			case HigherBetter:
				f.Regressed = f.Delta < -f.Threshold
			case LowerBetter:
				f.Regressed = f.Delta > f.Threshold
			}
		}
		findings = append(findings, f)
	}
	return findings
}

// Regressions filters findings down to the gating failures.
func Regressions(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}

// LoadFile decodes a benchmark document and flattens it.
func LoadFile(pathname string) (map[string]float64, error) {
	f, err := os.Open(pathname)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load decodes a benchmark document from r and flattens it.
func Load(r io.Reader) (map[string]float64, error) {
	var doc any
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("benchdiff: decoding document: %w", err)
	}
	if _, ok := doc.(map[string]any); !ok {
		return nil, fmt.Errorf("benchdiff: document is not a JSON object")
	}
	return Flatten(doc), nil
}

// Render writes the findings as an aligned report: one line per gated
// metric (and any regressed one), a verdict per line, and a summary.
// Info metrics that moved less than DefaultThreshold are elided to
// keep the report readable; pass verbose to show every metric.
func Render(w io.Writer, findings []Finding, verbose bool) {
	shown := 0
	for _, f := range findings {
		interesting := f.Direction != Info || math.Abs(f.Delta) > DefaultThreshold
		if !verbose && !interesting {
			continue
		}
		shown++
		verdict := "ok"
		switch {
		case f.Regressed:
			verdict = fmt.Sprintf("REGRESSED (>%g%% %s)", f.Threshold*100, f.Direction)
		case f.Direction == Info:
			verdict = "info"
		}
		fmt.Fprintf(w, "%-50s %14.4g -> %14.4g  %+7.1f%%  %s\n",
			f.Path, f.Base, f.Cur, f.Delta*100, verdict)
	}
	reg := len(Regressions(findings))
	fmt.Fprintf(w, "%d metrics compared, %d shown, %d regressed\n", len(findings), shown, reg)
}
