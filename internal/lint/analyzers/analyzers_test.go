package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
	"repro/internal/lint/linttest"
)

// The golden tests: each analyzer over its annotated testdata package,
// loaded under an import path that makes its Applies scope fire.

func TestDeterminismGolden(t *testing.T) {
	linttest.Run(t, "testdata/determinism", "repro/internal/sim", analyzers.Determinism)
}

func TestRNGDisciplineGolden(t *testing.T) {
	linttest.Run(t, "testdata/rngdiscipline", "repro/internal/foo", analyzers.RNGDiscipline)
}

func TestMapOrderGolden(t *testing.T) {
	linttest.Run(t, "testdata/maporder", "repro/internal/foo", analyzers.MapOrder)
}

func TestAtomicFieldGolden(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield", "repro/internal/foo", analyzers.AtomicField)
}

func TestErrCloseGolden(t *testing.T) {
	linttest.Run(t, "testdata/errclose", "repro/internal/harness", analyzers.ErrClose)
}

func TestSuppressGolden(t *testing.T) {
	linttest.Run(t, "testdata/suppress", "repro/internal/harness", analyzers.All()...)
}

// loadAs type-checks a testdata dir under an arbitrary import path and
// runs the given analyzers raw (no want-comparison), for scope tests.
func loadAs(t *testing.T, dir, importPath string, as ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(abs, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return lint.Run([]*lint.Package{pkg}, as)
}

// The same wall-clock calls outside the engine packages are legal:
// timing belongs to the harness layer.
func TestDeterminismScopedToEnginePackages(t *testing.T) {
	diags := loadAs(t, "testdata/determinism", "repro/internal/harness", analyzers.Determinism)
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside its package scope: %v", diags)
	}
}

// internal/rng is the one sanctioned home for stdlib randomness.
func TestRNGDisciplineAllowsRngPackage(t *testing.T) {
	diags := loadAs(t, "testdata/rngdiscipline", "repro/internal/rng", analyzers.RNGDiscipline)
	if len(diags) != 0 {
		t.Fatalf("rngdiscipline fired inside repro/internal/rng: %v", diags)
	}
}

// Outside the persistence paths a dropped Close error is tolerated (the
// race/test layers own those packages' correctness stories).
func TestErrCloseScopedToPersistencePaths(t *testing.T) {
	diags := loadAs(t, "testdata/errclose", "repro/internal/sim", analyzers.ErrClose)
	if len(diags) != 0 {
		t.Fatalf("errclose fired outside the persistence paths: %v", diags)
	}
}

func TestTableClosureGolden(t *testing.T) {
	linttest.Run(t, "testdata/tableclosure", "repro/internal/protocols/testproto", analyzers.TableClosure)
}

// Outside the table-construction packages (core, protocols/...) the
// same builder misuse is not this analyzer's business. (The testdata's
// //lint:allow line correctly surfaces as an unused suppression there,
// so only tableclosure's own findings are asserted on.)
func TestTableClosureScopedToProtocolPackages(t *testing.T) {
	for _, d := range loadAs(t, "testdata/tableclosure", "repro/internal/harness", analyzers.TableClosure) {
		if d.Analyzer == analyzers.TableClosure.Name {
			t.Fatalf("tableclosure fired outside its package scope: %v", d)
		}
	}
}

// internal/serve splits by file: the HTTP/executor edge (pool.go,
// server.go) may read the clock, the deterministic half may not.
func TestDeterminismServeEdgeSplit(t *testing.T) {
	linttest.Run(t, "testdata/determinismserve", "repro/internal/serve", analyzers.Determinism)
}

// The edge allowlist is keyed to the serve package: the same files
// under an engine path get no exemption, and under a harness-layer
// path no findings at all.
func TestDeterminismServeEdgeScopes(t *testing.T) {
	diags := loadAs(t, "testdata/determinismserve", "repro/internal/sim", analyzers.Determinism)
	if len(diags) != 5 {
		t.Fatalf("engine path must check every file (5 findings), got %v", diags)
	}
	diags = loadAs(t, "testdata/determinismserve", "repro/internal/harness", analyzers.Determinism)
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside its package scope: %v", diags)
	}
}
