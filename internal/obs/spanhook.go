package obs

import (
	"strconv"

	"repro/internal/obs/span"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// PhaseSpans is a sim.Hook that emits one child span per #gk milestone
// of a run: span "phase/grouping" number i covers the interaction
// interval (NI_(i−1), NI_i] in which the i-th complete group was
// assembled — the same decomposition Figure 4 plots and PhaseTimer
// histograms, but attributed to one specific trial's trace. Intervals
// are logical (interaction counts via SetSeq), never wall clock, so the
// emitted spans are a pure function of (spec, seed).
type PhaseSpans struct {
	// Watch is the state whose count increments mark milestones (gk).
	Watch protocol.State
	// Parent is the span the phase spans nest under (the engine span).
	// A nil parent makes the hook a no-op.
	Parent *span.ActiveSpan

	gc       sim.GroupingCounter
	emitted  int
	prevMark uint64
}

// Init implements sim.Hook.
func (h *PhaseSpans) Init(pop *population.Population) {
	h.gc = sim.GroupingCounter{Watch: h.Watch}
	h.gc.Init(pop)
	h.emitted = 0
	h.prevMark = 0
	h.flush()
}

// OnStep implements sim.Hook.
func (h *PhaseSpans) OnStep(pop *population.Population, s sim.StepInfo) {
	h.gc.OnStep(pop, s)
	h.flush()
}

// flush emits a span for every milestone recorded since the last step.
func (h *PhaseSpans) flush() {
	for ; h.emitted < len(h.gc.Marks); h.emitted++ {
		mark := h.gc.Marks[h.emitted]
		h.Parent.Child("phase/grouping").
			SetAttr("index", strconv.Itoa(h.emitted+1)).
			SetSeq(h.prevMark, mark).
			End()
		h.prevMark = mark
	}
}

var _ sim.Hook = (*PhaseSpans)(nil)
