package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ClassifyPair must agree with the transition table on every ordered pair:
// a pair classified Null must be a table identity, and a pair classified
// rule r must produce exactly the output family r prescribes.
func TestClassifyPairAgreesWithTable(t *testing.T) {
	for _, k := range []int{2, 3, 4, 7} {
		p := core.MustNew(k)
		n := p.NumStates()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				sa, sb := protocol.State(a), protocol.State(b)
				kind := p.ClassifyPair(sa, sb)
				out, _ := p.Delta(sa, sb)
				isNull := out.P == sa && out.Q == sb
				if (kind == core.RuleNull) != isNull {
					t.Fatalf("k=%d: classify(%s,%s)=%v but table null=%v",
						k, p.StateName(sa), p.StateName(sb), kind, isNull)
				}
				// k=2 has no rules 3, 6..10 and rule 5 produces (g1,g2);
				// just verify the family-specific effect for a few kinds.
				switch kind {
				case core.Rule5:
					if k >= 3 {
						okOut := (out.P == p.G(1) && out.Q == p.M(2)) || (out.Q == p.G(1) && out.P == p.M(2))
						if !okOut {
							t.Fatalf("k=%d: rule5 produced (%s,%s)", k, p.StateName(out.P), p.StateName(out.Q))
						}
					}
				case core.Rule8:
					ka, _ := p.Decode(out.P)
					kb, _ := p.Decode(out.Q)
					if ka != core.KindD || kb != core.KindD {
						t.Fatalf("k=%d: rule8 produced (%s,%s)", k, p.StateName(out.P), p.StateName(out.Q))
					}
				case core.Rule7:
					if out.P != p.G(k) && out.Q != p.G(k) {
						t.Fatalf("k=%d: rule7 did not produce gk", k)
					}
				}
			}
		}
	}
}

func TestRuleKindString(t *testing.T) {
	if core.RuleNull.String() != "null" || core.Rule8.String() != "rule8" {
		t.Fatalf("%v %v", core.RuleNull, core.Rule8)
	}
}

// Tally over a full execution: totals must match the engine's interaction
// count, the null count must match (interactions − productive), and for a
// clean run to stability every grouping implies exactly one rule-5 and one
// rule-7 firing per completed set minus demolition losses.
func TestTallyAccounting(t *testing.T) {
	p := core.MustNew(4)
	n := 24
	pop := population.New(p, n)
	tally := core.NewTally(p)
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		tally.Observe(s.Before.P, s.Before.Q)
	})
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(pop, sched.NewRandom(17), sim.NewCountTarget(p.CanonMap(), target),
		sim.Options{Hooks: []sim.Hook{hook}})
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
	if tally.Total() != res.Interactions {
		t.Fatalf("tally total %d, engine %d", tally.Total(), res.Interactions)
	}
	if tally.Counts[core.RuleNull] != res.Interactions-res.Productive {
		t.Fatalf("null tally %d, engine nulls %d", tally.Counts[core.RuleNull], res.Interactions-res.Productive)
	}
	// Conservation: each completed grouping fires rule 7 once and is never
	// undone; each demolition consumes one past rule-5+chain. Completed
	// groupings = n/k = 6 = rule7 − (undone chains)... exactly:
	// rule7 firings = 6 + (number of chains destroyed after reaching...);
	// chains destroyed fire rule 8 in pairs: every rule-8 kills 2 chains
	// that DIDN'T reach rule 7. So rule5 = rule7 + 2·rule8 + (pending m
	// at the end: n mod k == 0 -> 0).
	r5, r7, r8 := tally.Counts[core.Rule5], tally.Counts[core.Rule7], tally.Counts[core.Rule8]
	if r5 != r7+2*r8 {
		t.Fatalf("rule bookkeeping: rule5=%d, rule7=%d, rule8=%d (want r5 = r7 + 2·r8)", r5, r7, r8)
	}
	if r7 != uint64(n/4) {
		t.Fatalf("rule7 fired %d times, want %d", r7, n/4)
	}
}

// Demolition overhead grows with k at fixed n — the measured version of
// the paper's Section 5.2 argument for the exponential time.
func TestDemolitionFractionGrowsWithK(t *testing.T) {
	const n = 120
	frac := func(k int) float64 {
		p := core.MustNew(k)
		// Average over a few seeds to smooth the small-sample noise.
		var sum float64
		const trials = 5
		for s := 0; s < trials; s++ {
			pop := population.New(p, n)
			tally := core.NewTally(p)
			hook := sim.StepFunc(func(pop *population.Population, st sim.StepInfo) {
				tally.Observe(st.Before.P, st.Before.Q)
			})
			target, err := p.TargetCounts(n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(3, uint64(k), uint64(s))),
				sim.NewCountTarget(p.CanonMap(), target), sim.Options{Hooks: []sim.Hook{hook}})
			if err != nil || !res.Converged {
				t.Fatalf("%v %+v", err, res)
			}
			sum += tally.DemolitionFraction()
		}
		return sum / trials
	}
	f3, f6, f10 := frac(3), frac(6), frac(10)
	// The trend is noisy between adjacent k at this n (5 trials), so
	// assert the robust version: k=3 is clearly below both larger k.
	if !(2*f3 < f6 && 2*f3 < f10) {
		t.Fatalf("demolition fraction not growing: k=3:%.4f k=6:%.4f k=10:%.4f", f3, f6, f10)
	}
}

func TestDemolitionFractionEmpty(t *testing.T) {
	tally := core.NewTally(core.MustNew(3))
	if tally.DemolitionFraction() != 0 {
		t.Fatal("empty tally nonzero")
	}
}
