// Package countsim is an accelerated simulation engine that tracks only
// state counts.
//
// Under the uniform-random scheduler, agents are exchangeable: the
// state-count vector is a sufficient statistic of the configuration, and
// the count process is the same Markov chain the agent-level simulation
// walks (internal/markov makes that chain explicit). This engine exploits
// two consequences:
//
//  1. No agent array. Memory is O(|Q|²) regardless of n, so populations
//     of hundreds of millions of agents cost a few kilobytes.
//  2. Null-run skipping. An interaction between states with no applicable
//     rule changes nothing; given the configuration, the number of
//     consecutive null interactions is geometrically distributed, so the
//     engine samples the run length in O(1) instead of walking it, then
//     samples one productive pair from the exact conditional
//     distribution. Late in an execution — the regime that dominates the
//     paper's Figures 3 and 6, where almost every encounter is a null
//     g-g meeting — this skips the bulk of scheduled steps while
//     preserving the exact joint distribution of (productive-transition
//     sequence, total interaction count).
//
// Equivalence is validated three ways in the tests: against the exact
// Markov expectations, against the agent-level engine, and by an O(S²)
// weight audit re-run after every step.
package countsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// Sim is a count-based population simulation. Not safe for concurrent use.
type Sim struct {
	proto protocol.Protocol
	S     int
	n     int
	rand  *rng.Rand

	counts []int
	// nullPair[a*S+b] records that δ(a,b) is the identity.
	nullPair []bool
	// result[a*S+b] caches δ(a,b).
	result []protocol.Pair

	// Incremental bookkeeping for the ordered null weight
	//
	//	nullW = Σ_{null(a,b)} c_a·(c_b − [a = b])
	//
	// maintained via the row/column sums of the null mask:
	//	rowSum[a] = Σ_{b: null(a,b)} c_b
	//	colSum[b] = Σ_{a: null(a,b)} c_a
	rowSum []int64
	colSum []int64
	nullW  int64

	interactions uint64
	productive   uint64
}

// New builds a Sim with n agents in the protocol's initial state, drawing
// randomness from seed.
func New(p protocol.Protocol, n int, seed uint64) (*Sim, error) {
	counts := make([]int, p.NumStates())
	counts[p.InitialState()] = n
	return FromCounts(p, counts, seed)
}

// FromCounts builds a Sim from an explicit count vector.
func FromCounts(p protocol.Protocol, counts []int, seed uint64) (*Sim, error) {
	S := p.NumStates()
	if len(counts) != S {
		return nil, fmt.Errorf("countsim: counts has %d entries, protocol has %d states", len(counts), S)
	}
	n := 0
	for _, c := range counts {
		if c < 0 {
			return nil, errors.New("countsim: negative count")
		}
		n += c
	}
	if n < 2 {
		return nil, fmt.Errorf("countsim: need n >= 2, got %d", n)
	}
	s := &Sim{
		proto:    p,
		S:        S,
		n:        n,
		rand:     rng.New(seed),
		counts:   append([]int(nil), counts...),
		nullPair: make([]bool, S*S),
		result:   make([]protocol.Pair, S*S),
		rowSum:   make([]int64, S),
		colSum:   make([]int64, S),
	}
	for a := 0; a < S; a++ {
		for b := 0; b < S; b++ {
			out, _ := p.Delta(protocol.State(a), protocol.State(b))
			s.result[a*S+b] = out
			s.nullPair[a*S+b] = int(out.P) == a && int(out.Q) == b
		}
	}
	s.nullW = s.auditNullWeight()
	for a := 0; a < S; a++ {
		for b := 0; b < S; b++ {
			if s.nullPair[a*S+b] {
				s.rowSum[a] += int64(s.counts[b])
				s.colSum[b] += int64(s.counts[a])
			}
		}
	}
	return s, nil
}

// auditNullWeight recomputes the null weight from scratch in O(S²); used
// at construction and by tests.
func (s *Sim) auditNullWeight() int64 {
	var w int64
	for a := 0; a < s.S; a++ {
		ca := int64(s.counts[a])
		if ca == 0 {
			continue
		}
		for b := 0; b < s.S; b++ {
			if !s.nullPair[a*s.S+b] {
				continue
			}
			cb := int64(s.counts[b])
			if b == a {
				cb--
			}
			if cb > 0 {
				w += ca * cb
			}
		}
	}
	return w
}

// adjust changes state x's count by delta (any magnitude — the batched
// engine applies whole cells at once), maintaining nullW, rowSum and
// colSum in O(S).
//
// Derivation: with B = Σ_{null(a,b)} c_a·c_b and D = Σ_{null(a,a)} c_a,
// nullW = B − D. Changing c_x by δ changes
//
//	B by δ·(colSum[x] + rowSum[x]) + δ²·[null(x,x)]
//	D by δ·[null(x,x)]
//
// where the sums are taken BEFORE the update.
func (s *Sim) adjust(x int, delta int64) {
	diag := int64(0)
	if s.nullPair[x*s.S+x] {
		diag = 1
	}
	s.nullW += delta*(s.colSum[x]+s.rowSum[x]) + delta*delta*diag - delta*diag
	s.counts[x] += int(delta)
	for a := 0; a < s.S; a++ {
		if s.nullPair[a*s.S+x] {
			s.rowSum[a] += delta
		}
		if s.nullPair[x*s.S+a] {
			s.colSum[a] += delta
		}
	}
}

// N returns the population size.
func (s *Sim) N() int { return s.n }

// Counts returns a copy of the count vector.
func (s *Sim) Counts() []int { return append([]int(nil), s.counts...) }

// CountsView returns the live count vector; callers must not modify it.
func (s *Sim) CountsView() []int { return s.counts }

// Interactions returns total scheduled interactions, nulls included.
func (s *Sim) Interactions() uint64 { return s.interactions }

// Productive returns the number of state-changing interactions.
func (s *Sim) Productive() uint64 { return s.productive }

// NullWeight exposes the current ordered null weight (for tests/metrics).
func (s *Sim) NullWeight() int64 { return s.nullW }

// prodRow returns the productive ordered weight with initiator a:
// c_a·(n−1) − c_a·(rowSum[a] − [null(a,a)]).
func (s *Sim) prodRow(a int) int64 {
	ca := int64(s.counts[a])
	if ca == 0 {
		return 0
	}
	null := s.rowSum[a]
	if s.nullPair[a*s.S+a] {
		null--
	}
	return ca * (int64(s.n-1) - null)
}

// ErrDead is returned by Step when no productive interaction exists (the
// configuration is quiescent).
var ErrDead = errors.New("countsim: configuration is quiescent")

// Step advances to the NEXT PRODUCTIVE interaction: it samples the length
// of the preceding null run geometrically, adds it to the interaction
// counter, then samples and applies one productive ordered pair from the
// exact conditional distribution. It returns the applied transition.
func (s *Sim) Step() (from, to protocol.Pair, err error) {
	W := int64(s.n) * int64(s.n-1)
	prodW := W - s.nullW
	if prodW <= 0 {
		return from, to, ErrDead
	}
	if s.nullW > 0 {
		// K ~ Geometric: P(K = j) = q^j·(1−q) with q = nullW/W;
		// inverse-CDF sampling via K = ⌊ln U / ln q⌋.
		q := float64(s.nullW) / float64(W)
		u := s.rand.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		s.interactions += uint64(math.Log(u) / math.Log(q))
	}
	s.interactions++
	s.productive++

	// Initiator a with weight prodRow(a), then responder b | a with weight
	// c_b − [b = a] over productive (a, b).
	target := int64(s.rand.Uint64n(uint64(prodW)))
	for a := 0; a < s.S; a++ {
		row := s.prodRow(a)
		if row == 0 {
			continue
		}
		if target >= row {
			target -= row
			continue
		}
		ca := int64(s.counts[a])
		inner := target / ca // responder offset: weights are ca·cb, so divide out ca
		base := a * s.S
		for b := 0; b < s.S; b++ {
			if s.nullPair[base+b] {
				continue
			}
			cb := int64(s.counts[b])
			if b == a {
				cb--
			}
			if cb <= 0 {
				continue
			}
			if inner < cb {
				return s.apply(a, b)
			}
			inner -= cb
		}
		return from, to, errors.New("countsim: responder sampling fell through")
	}
	return from, to, errors.New("countsim: initiator sampling fell through")
}

func (s *Sim) apply(a, b int) (protocol.Pair, protocol.Pair, error) {
	out := s.result[a*s.S+b]
	from := protocol.Pair{P: protocol.State(a), Q: protocol.State(b)}
	s.adjust(a, -1)
	s.adjust(b, -1)
	s.adjust(int(out.P), +1)
	s.adjust(int(out.Q), +1)
	return from, out, nil
}

// RunUntil advances productive steps until pred(counts) reports true or
// the interaction cap is exceeded; it reports whether pred fired. A
// quiescent configuration returns pred's final verdict.
func (s *Sim) RunUntil(pred func(counts []int) bool, maxInteractions uint64) (bool, error) {
	return s.RunUntilCtx(nil, pred, maxInteractions)
}

// ctxPollMask sets the cancellation-poll cadence of RunUntilCtx: the
// context is consulted every 256 productive steps. Productive steps cost
// O(S) each, so the poll itself is noise; null runs between them are
// skipped in O(1) and never delay a poll by more than one step.
const ctxPollMask = 1<<8 - 1

// RunUntilCtx is RunUntil with cancellation: a nil ctx behaves exactly
// like RunUntil; otherwise ctx is polled every few hundred productive
// steps and a fired context aborts the run with ctx.Err(). The counters
// retain the progress made, so a caller may capture or resume.
func (s *Sim) RunUntilCtx(ctx context.Context, pred func(counts []int) bool, maxInteractions uint64) (bool, error) {
	if pred(s.counts) {
		return true, nil
	}
	var polls uint
	for s.interactions < maxInteractions {
		if ctx != nil {
			if polls&ctxPollMask == 0 {
				if err := ctx.Err(); err != nil {
					return false, err
				}
			}
			polls++
		}
		if _, _, err := s.Step(); err != nil {
			if errors.Is(err, ErrDead) {
				return pred(s.counts), nil
			}
			return false, err
		}
		if pred(s.counts) {
			return true, nil
		}
	}
	return false, nil
}
