package harness

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The sweep journal is the checkpoint/resume mechanism for long trial
// campaigns: an append-only JSON-Lines file, written next to the CSVs,
// holding one record per COMPLETED trial keyed by a content hash of its
// TrialSpec. Appends are single write(2) calls of one newline-terminated
// line, so a crash or SIGINT can tear at most the final record; the
// loader detects a torn tail, truncates it away, and the torn trial is
// simply re-run. Because trial results are a pure function of their spec,
// a resumed sweep merges journaled and fresh results into exactly the
// output an uninterrupted run would have produced.
//
// Layout:
//
//	{"journal":"kpart-trials","version":1,"meta":"fig3 seed=7 ..."}
//	{"key":"<hex>","result":{...TrialResult...},"wall_us":12345}
//	...
//
// The header's meta string identifies the campaign (figure, seed, trial
// count, engine); resuming under a different meta is refused, which
// catches the classic foot-gun of resuming yesterday's journal into
// today's differently-seeded sweep.

// journalMagic and journalVersion identify the file format.
const (
	journalMagic   = "kpart-trials"
	journalVersion = 1
)

type journalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	Meta    string `json:"meta,omitempty"`
}

type journalRecord struct {
	Key    string      `json:"key"`
	Result TrialResult `json:"result"`
	WallUS uint64      `json:"wall_us,omitempty"`
}

// Entry is one journaled trial: its result plus the wall time the
// original execution took (microseconds), so resumed runs can still
// report wall-time summaries.
type Entry struct {
	Result TrialResult
	WallUS uint64
}

// SpecKey returns the stable content hash identifying a trial in the
// journal. It covers every field that determines the trial's outcome and
// nothing else (execution policy like timeouts or worker counts must not
// change a trial's identity).
func SpecKey(s TrialSpec) string {
	// v3 added the scenario axes (topo=, fair=, churn=): topology,
	// fairness regime, and churn schedule all change a trial's
	// trajectory, so they are part of its identity. Every sub-field is
	// hashed — including the regular graph's sampling seed and the crash
	// flag — because any of them selects a different run. Bumping the
	// version string retires every v2 key at once — an old journal
	// resumes as a fresh campaign rather than aliasing records across
	// the format change. (v2 had added batch=.)
	t, c := s.Topology, s.Churn
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"kpart-trial/v3 n=%d k=%d seed=%d max=%d grouping=%t engine=%d batch=%d"+
			" topo=%d:%dx%d:d%d:g%d fair=%d churn=%d:%d:%d:%d:%d:%t",
		s.N, s.K, s.Seed, s.MaxInteractions, s.Grouping, s.Engine, s.BatchSize,
		t.Kind, t.Rows, t.Cols, t.Degree, t.GraphSeed, s.Fairness,
		c.At, c.Interval, c.Events, c.Joins, c.Leaves, c.Crash)))
	return hex.EncodeToString(h[:16])
}

// Journal is an open sweep journal. All methods are safe for concurrent
// use; RunManyCtx appends from every worker.
type Journal struct {
	mu   sync.Mutex
	f    *os.File // guarded by mu
	path string
	done map[string]Entry // guarded by mu
}

// CreateJournal starts a fresh journal at path (truncating any previous
// one) with the given campaign meta string.
func CreateJournal(path, meta string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, done: make(map[string]Entry)}
	hdr, err := json.Marshal(journalHeader{Journal: journalMagic, Version: journalVersion, Meta: meta})
	if err != nil {
		_ = f.Close() // surfacing the marshal error; close is cleanup
		return nil, err
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		_ = f.Close() // surfacing the write error; close is cleanup
		return nil, fmt.Errorf("harness: writing journal header: %w", err)
	}
	return j, nil
}

// OpenJournal opens path for resuming: existing complete records are
// loaded (a torn trailing record — the crash signature — is truncated
// away), and subsequent appends continue the same file. A missing file
// degenerates to CreateJournal, so "-resume" on a first run just starts
// a fresh campaign. A non-empty meta must match the journal's header.
func OpenJournal(path, meta string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		return CreateJournal(path, meta)
	}
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, done: make(map[string]Entry)}
	if err := j.load(meta); err != nil {
		_ = f.Close() // surfacing the load error; close is cleanup
		return nil, err
	}
	return j, nil
}

// load replays the journal into memory and positions the file for
// appending just after the last complete record.
func (j *Journal) load(meta string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := bufio.NewReaderSize(j.f, 1<<16)
	var offset int64 // end of the last fully parsed line
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A trailing fragment without '\n' is a torn append; any
			// bytes in it are discarded by the truncate below.
			break
		}
		if err != nil {
			return fmt.Errorf("harness: reading journal %s: %w", j.path, err)
		}
		lineNo++
		if lineNo == 1 {
			var hdr journalHeader
			if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Journal != journalMagic {
				return fmt.Errorf("harness: %s is not a trial journal", j.path)
			}
			if hdr.Version != journalVersion {
				return fmt.Errorf("harness: journal %s has version %d, want %d", j.path, hdr.Version, journalVersion)
			}
			if meta != "" && hdr.Meta != "" && hdr.Meta != meta {
				return fmt.Errorf("harness: journal %s belongs to a different campaign (%q, resuming %q)", j.path, hdr.Meta, meta)
			}
			offset += int64(len(line))
			continue
		}
		var rec journalRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Key == "" {
			// A torn append never carries its trailing newline (the write
			// is a single call, so what's lost is a suffix), so a
			// malformed COMPLETE line is real corruption, not a crash
			// signature — refuse rather than silently drop trials.
			return fmt.Errorf("harness: journal %s: corrupt record on line %d", j.path, lineNo)
		}
		j.done[rec.Key] = Entry{Result: rec.Result, WallUS: rec.WallUS}
		offset += int64(len(line))
	}
	if lineNo == 0 {
		return fmt.Errorf("harness: journal %s is empty (missing header)", j.path)
	}
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("harness: truncating torn journal tail: %w", err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Lookup returns the journaled entry for spec, if any.
func (j *Journal) Lookup(spec TrialSpec) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[SpecKey(spec)]
	return e, ok
}

// LookupKey returns the journaled entry under a raw spec key. The HTTP
// result endpoint resolves GET /v1/results/{speckey} through it — the
// client holds only the content hash, not the spec that produced it.
func (j *Journal) LookupKey(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[key]
	return e, ok
}

// Len reports how many completed trials the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append records one completed trial under the ORIGINAL spec's key (res
// may carry a retry seed in its Spec; the journal identity is the trial
// as planned, so resume lookups match). The record is written as a
// single newline-terminated write, the atomic unit of the format.
func (j *Journal) Append(spec TrialSpec, res TrialResult, wall time.Duration) error {
	rec := journalRecord{Key: SpecKey(spec), Result: res, WallUS: uint64(wall.Microseconds())}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("harness: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("harness: appending to journal %s: %w", j.path, err)
	}
	j.done[rec.Key] = Entry{Result: res, WallUS: rec.WallUS}
	return nil
}

// Close flushes and closes the journal file. Lookup keeps working on the
// in-memory index; Append starts failing.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
