package obs

import (
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// RuleTally is a sim.Hook that maintains per-rule-family firing counters
// in a Registry, keyed by a protocol-supplied classifier (for the
// paper's protocol, core.ClassifyPair maps a state pair onto Algorithm
// 1's ten rule families).
//
// Counting discipline: a productive step increments exactly one family
// counter, so the family counters always sum to Result.Productive; a
// null encounter increments only sim/null_interactions. Both also feed
// sim/interactions, the paper's time metric.
type RuleTally struct {
	// Classify maps the pre-interaction state pair to a family index in
	// [0, len(families)); out-of-range results land in sim/unclassified.
	Classify func(a, b protocol.State) int

	families     []Counter
	total        Counter
	productive   Counter
	null         Counter
	unclassified Counter
}

// NewRuleTally wires family counters named "rule/<family>" plus the
// sim/interactions, sim/productive_interactions, sim/null_interactions
// and sim/unclassified counters into r.
func NewRuleTally(r *Registry, families []string, classify func(a, b protocol.State) int) *RuleTally {
	t := &RuleTally{
		Classify:     classify,
		total:        r.Counter("sim/interactions"),
		productive:   r.Counter("sim/productive_interactions"),
		null:         r.Counter("sim/null_interactions"),
		unclassified: r.Counter("sim/unclassified"),
	}
	for _, f := range families {
		t.families = append(t.families, r.Counter("rule/"+f))
	}
	return t
}

// Init implements sim.Hook.
func (t *RuleTally) Init(*population.Population) {}

// OnStep implements sim.Hook.
func (t *RuleTally) OnStep(pop *population.Population, s sim.StepInfo) {
	t.total.Inc()
	if !s.Changed {
		t.null.Inc()
		return
	}
	t.productive.Inc()
	if i := t.Classify(s.Before.P, s.Before.Q); i >= 0 && i < len(t.families) {
		t.families[i].Inc()
	} else {
		t.unclassified.Inc()
	}
}

// PhaseTimer is a sim.Hook that records interactions-to-milestone: each
// increment of the watched state count (#gk for the k-partition
// protocol) marks the completion of one grouping, exactly the NI_i
// instrumentation of Figure 4, reusing sim.GroupingCounter's
// past-maximum logic. The timer feeds two histograms:
//
//	phase/interactions_to_grouping — absolute NI_i per milestone
//	phase/grouping_cost            — per-grouping deltas NI'_i
//
// and a gauge phase/groupings_complete with the milestone count.
type PhaseTimer struct {
	// Watch is the state whose count increments mark milestones.
	Watch protocol.State

	gc       sim.GroupingCounter
	absolute Histogram
	delta    Histogram
	complete Gauge
	recorded int
	prevMark uint64
}

// NewPhaseTimer wires the phase histograms and gauge into r.
func NewPhaseTimer(r *Registry, watch protocol.State) *PhaseTimer {
	return &PhaseTimer{
		Watch:    watch,
		absolute: r.Histogram("phase/interactions_to_grouping"),
		delta:    r.Histogram("phase/grouping_cost"),
		complete: r.Gauge("phase/groupings_complete"),
	}
}

// Init implements sim.Hook.
func (t *PhaseTimer) Init(pop *population.Population) {
	t.gc = sim.GroupingCounter{Watch: t.Watch}
	t.gc.Init(pop)
	t.recorded = 0
	t.prevMark = 0
	t.record()
}

// OnStep implements sim.Hook.
func (t *PhaseTimer) OnStep(pop *population.Population, s sim.StepInfo) {
	t.gc.OnStep(pop, s)
	t.record()
}

// record flushes any new grouping marks into the histograms.
func (t *PhaseTimer) record() {
	for ; t.recorded < len(t.gc.Marks); t.recorded++ {
		mark := t.gc.Marks[t.recorded]
		t.absolute.Observe(mark)
		t.delta.Observe(mark - t.prevMark)
		t.prevMark = mark
	}
	t.complete.Set(int64(t.recorded))
}

// Marks returns the absolute interaction counts at each milestone (NI_i),
// mirroring sim.GroupingCounter.Marks.
func (t *PhaseTimer) Marks() []uint64 { return t.gc.Marks }

var (
	_ sim.Hook = (*RuleTally)(nil)
	_ sim.Hook = (*PhaseTimer)(nil)
)
