package serve

// This file is the deterministic half of the service: request documents,
// their validation, and the canonical result encoding. Nothing here may
// read the wall clock — the cache is content-addressed (a record's bytes
// are a pure function of the trial spec that produced it), and the
// determinism analyzer enforces that for this file. Timing lives at the
// HTTP/executor edge (server.go, pool.go).

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
)

// TrialRequest is the JSON body of POST /v1/trials: the wire form of a
// harness.TrialSpec, with the engine spelled the way the binaries' flags
// spell it ("agent", "count" or "batch") and the scenario dimensions in
// their flag syntax too ("ring", "weak", "at=100,events=1,leave=2",
// ...). Scenario fields require the agent engine; ValidateSpec rejects
// impossible combinations before the request is admitted.
type TrialRequest struct {
	N               int    `json:"n"`
	K               int    `json:"k"`
	Seed            uint64 `json:"seed"`
	MaxInteractions uint64 `json:"max_interactions,omitempty"`
	Grouping        bool   `json:"grouping,omitempty"`
	Engine          string `json:"engine,omitempty"`
	BatchSize       uint64 `json:"batch_size,omitempty"`
	// Topology is the interaction graph in harness.ParseTopology syntax:
	// "complete" (default), "ring", "star", "grid:RxC", "regular:D" or
	// "regular:D@SEED".
	Topology string `json:"topology,omitempty"`
	// Fairness selects the scheduler family: "uniform" (default) or
	// "weak" (the weak-fairness adversary).
	Fairness string `json:"fairness,omitempty"`
	// Churn is a join/leave schedule in harness.ParseChurn syntax, e.g.
	// "at=500,events=2,every=300,join=1,leave=2,crash"; "" or "none"
	// disables churn.
	Churn string `json:"churn,omitempty"`
}

// scenario parses the wire scenario dimensions shared by trial and
// sweep requests. All errors wrap harness.ErrInvalidSpec.
func scenario(topo, fair, churn string) (harness.TopologySpec, harness.Fairness, harness.ChurnSpec, error) {
	t, err := harness.ParseTopology(topo)
	if err != nil {
		return harness.TopologySpec{}, 0, harness.ChurnSpec{}, err
	}
	f, err := harness.ParseFairness(fair)
	if err != nil {
		return harness.TopologySpec{}, 0, harness.ChurnSpec{}, err
	}
	c, err := harness.ParseChurn(churn)
	if err != nil {
		return harness.TopologySpec{}, 0, harness.ChurnSpec{}, err
	}
	return t, f, c, nil
}

// Spec validates the request and returns the trial spec it names.
// Errors wrap harness.ErrInvalidSpec; the server maps them to 400 and
// never enqueues the request.
func (r TrialRequest) Spec() (harness.TrialSpec, error) {
	eng, err := harness.ParseEngine(r.Engine)
	if err != nil {
		return harness.TrialSpec{}, err
	}
	topo, fair, churn, err := scenario(r.Topology, r.Fairness, r.Churn)
	if err != nil {
		return harness.TrialSpec{}, err
	}
	spec := harness.TrialSpec{
		N: r.N, K: r.K,
		Seed:            r.Seed,
		MaxInteractions: r.MaxInteractions,
		Grouping:        r.Grouping,
		Engine:          eng,
		BatchSize:       r.BatchSize,
		Topology:        topo,
		Fairness:        fair,
		Churn:           churn,
	}
	if err := harness.ValidateSpec(spec); err != nil {
		return harness.TrialSpec{}, err
	}
	return spec, nil
}

// DefaultMaxSweepTrials bounds how many trials one POST /v1/sweeps may
// expand into; a sweep is admitted trial by trial, so the bound caps the
// work one request can hold a connection open for, not the queue.
const DefaultMaxSweepTrials = 10_000

// SweepRequest is the JSON body of POST /v1/sweeps: one aggregated
// parameter point, seeded exactly like the batch binaries
// (StreamSeed(seed, point_id, trial)), so a served sweep reproduces a
// kpart-experiments sweep point for point.
type SweepRequest struct {
	N               int    `json:"n"`
	K               int    `json:"k"`
	Trials          int    `json:"trials"`
	Seed            uint64 `json:"seed"`
	PointID         uint64 `json:"point_id,omitempty"`
	MaxInteractions uint64 `json:"max_interactions,omitempty"`
	Grouping        bool   `json:"grouping,omitempty"`
	Engine          string `json:"engine,omitempty"`
	BatchSize       uint64 `json:"batch_size,omitempty"`
	// Topology, Fairness and Churn carry the scenario dimensions in the
	// same syntax as TrialRequest; they apply to every trial of the point.
	Topology string `json:"topology,omitempty"`
	Fairness string `json:"fairness,omitempty"`
	Churn    string `json:"churn,omitempty"`
}

// Sweep validates the request against maxTrials (<= 0 selects
// DefaultMaxSweepTrials) and returns the expanded sweep spec.
func (r SweepRequest) Sweep(maxTrials int) (harness.SweepSpec, error) {
	if maxTrials <= 0 {
		maxTrials = DefaultMaxSweepTrials
	}
	if r.Trials < 1 {
		return harness.SweepSpec{}, fmt.Errorf("%w: trials=%d (want >= 1)", harness.ErrInvalidSpec, r.Trials)
	}
	if r.Trials > maxTrials {
		return harness.SweepSpec{}, fmt.Errorf("%w: trials=%d exceeds the per-sweep bound %d", harness.ErrInvalidSpec, r.Trials, maxTrials)
	}
	eng, err := harness.ParseEngine(r.Engine)
	if err != nil {
		return harness.SweepSpec{}, err
	}
	topo, fair, churn, err := scenario(r.Topology, r.Fairness, r.Churn)
	if err != nil {
		return harness.SweepSpec{}, err
	}
	s := harness.SweepSpec{
		N: r.N, K: r.K, Trials: r.Trials,
		Seed: r.Seed, PointID: r.PointID,
		Grouping:        r.Grouping,
		MaxInteractions: r.MaxInteractions,
		Engine:          eng,
		BatchSize:       r.BatchSize,
		Topology:        topo,
		Fairness:        fair,
		Churn:           churn,
	}
	// Every trial of the point shares (n, k, engine), so validating the
	// first spec validates them all.
	if err := harness.ValidateSpec(s.Specs()[0]); err != nil {
		return harness.SweepSpec{}, err
	}
	return s, nil
}

// Record is the canonical document for one completed trial: what POST
// /v1/trials returns, what each NDJSON sweep line carries, and what GET
// /v1/results/{speckey} replays. Its encoded bytes are content-addressed
// by SpecKey, so a cache hit — from the LRU or from a journal loaded by a
// restarted server — is byte-identical to the response that first
// computed it.
type Record struct {
	SpecKey string              `json:"spec_key"`
	Result  harness.TrialResult `json:"result"`
	WallUS  uint64              `json:"wall_us"`
}

// Encode marshals the record into its canonical byte form (no trailing
// newline; NDJSON writers add their own).
func (rec Record) Encode() ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding record %s: %w", rec.SpecKey, err)
	}
	return b, nil
}
