// Megaswarm: uniform k-partition at a scale far beyond the paper's own
// simulations (Section 5 tops out at n = 960), using the count-based
// engine with geometric null-run skipping (internal/countsim).
//
// A molecular-robot swarm of two hundred thousand agents — the paper's intro
// scenario of robots "deployed to a human body" — must split into 8 equal
// task cohorts. The agent-level simulator would walk billions of mostly
// null encounters; the count engine samples those null runs in closed
// form and finishes in seconds, with the exact same distribution over
// outcomes.
//
//	go run ./examples/megaswarm
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/countsim"
)

func main() {
	const (
		n    = 200_000
		k    = 8
		seed = 31337
	)

	proto, err := core.New(k)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := countsim.New(proto, n, seed)
	if err != nil {
		log.Fatal(err)
	}

	stable, err := proto.StableChecker(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swarm of %d agents, %d cohorts, %d states per agent\n", n, k, proto.NumStates())
	start := time.Now()
	ok, err := sim.RunUntil(stable, 1<<62)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("swarm did not stabilize")
	}
	wall := time.Since(start)

	sizes := proto.GroupSizesFromCounts(sim.CountsView())
	fmt.Printf("stabilized: %d scheduled interactions (%d productive, skip factor %.0f)\n",
		sim.Interactions(), sim.Productive(),
		float64(sim.Interactions())/float64(sim.Productive()))
	fmt.Printf("cohort sizes: %v\n", sizes)
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	fmt.Printf("spread: %d agent(s); wall clock: %v\n", max-min, wall.Round(time.Millisecond))
	if max-min > 1 {
		log.Fatal("partition not uniform")
	}
	if err := proto.CheckInvariant(sim.CountsView()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 1 invariant verified at the final configuration")
}
