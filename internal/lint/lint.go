// Package lint is a zero-dependency static-analysis framework for this
// repository, built on stdlib go/parser, go/ast, and go/types only.
//
// The repo's reproduction claims (Lemma 1 conservation, Theorem 1
// stabilization counts, the Section 5 curves) rest on bit-for-bit
// reproducible runs. The runtime guards (race pass, fuzz targets,
// differential tests) catch nondeterminism after the fact; this package
// is the compile-time layer that stops it from being written at all.
// cmd/kpart-lint drives the analyzers in analyzers/ over the module and
// is wired into `make check` as `make lint`.
//
// The moving parts:
//
//   - Loader (load.go) discovers, parses, and type-checks module
//     packages using only go/parser and go/types, with the stdlib
//     resolved through go/importer's "source" compiler.
//   - Analyzer (this file) is one named check with a per-package Run
//     pass and an optional whole-program Done pass.
//   - Suppressions (suppress.go): a finding is silenced by a
//     `//lint:allow <analyzer> -- reason` comment on the offending line
//     or the line above it. The reason is mandatory, unknown analyzer
//     names are themselves diagnostics, and unused suppressions are
//     reported, so the suppression inventory can never rot.
//   - Run (run.go) orchestrates passes over loaded packages and returns
//     position-sorted diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	// Analyzer is the name of the check that produced the finding (or
	// the reserved name "suppress" for suppression-hygiene findings).
	Analyzer string
	Pos      token.Position
	Message  string

	// scopeLine, when nonzero, is the line of the enclosing function
	// declaration in Pos.Filename. Interprocedural findings (an
	// unbounded loop three calls away from the handler, a field access
	// on some path) can be suppressed by a //lint:allow directive on
	// that line as well as on the finding's own line — the framework
	// fills it in for analyzers marked Interprocedural.
	scopeLine int
}

// String renders the finding in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is a single named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// comments. It must be a single lowercase word and must not be the
	// reserved name "suppress".
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given import path. nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf. It may stash cross-package facts in pass.State.
	Run func(pass *Pass)
	// Done, if non-nil, runs once after every package's Run pass, with
	// the analyzer's accumulated State. It exists for whole-program
	// invariants (e.g. a field used atomically in one package and
	// plainly in another).
	Done func(st *State, report func(pos token.Position, format string, args ...any))
	// RunProgram, if non-nil, runs once after every Run pass with the
	// whole-program view: the CHA call graph and the analyzer's fact
	// store (facts exported by Run passes). Setting it makes the runner
	// build Program (callgraph.go).
	RunProgram func(pp *ProgramPass)
	// Interprocedural marks analyzers whose findings implicate whole
	// call paths rather than single lines. Their diagnostics accept
	// //lint:allow on the enclosing function's declaration line in
	// addition to the usual same-line / line-above placements, because
	// the offending line alone often cannot explain the finding.
	Interprocedural bool
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path ("repro/internal/sim").
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// State is shared across all of this analyzer's passes and its Done
	// hook; it is never shared between analyzers.
	State *State
	// Facts is the analyzer's cross-pass fact store: Run passes export
	// facts about objects here; the RunProgram pass imports them. Never
	// shared between analyzers.
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers relax their invariant there (tests may time things and seed
// throwaway generators without touching reproducibility of runs).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// State is an analyzer-scoped scratch space that survives across
// packages, for Done-phase whole-program checks.
type State struct {
	v map[string]any
}

// NewState returns an empty State.
func NewState() *State { return &State{v: make(map[string]any)} }

// Get returns the value under key, initializing it with init on first
// use.
func (s *State) Get(key string, init func() any) any {
	if x, ok := s.v[key]; ok {
		return x
	}
	x := init()
	s.v[key] = x
	return x
}

// Program is the whole-program view handed to RunProgram passes: every
// loaded analysis package plus the CHA call graph over them. It is
// built once per Run invocation (only when some analyzer asks for it)
// and shared read-only by all RunProgram passes.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Graph    *CallGraph
}

// PackageFor returns the analysis unit whose import path satisfies
// match, or nil. Analyzers use it to locate peers (e.g. speclosure
// finding the serve package for a harness package) without hard-coding
// full paths, so golden fixtures under testdata import paths resolve
// the same way the real tree does.
func (p *Program) PackageFor(match func(path string) bool) *Package {
	for _, pkg := range p.Packages {
		if match(pkg.Path) {
			return pkg
		}
	}
	return nil
}

// ProgramPass carries one analyzer's whole-program pass.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program
	// State and Facts are the same objects the analyzer's Run passes
	// populated.
	State *State
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Program.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the program's file set.
func (p *ProgramPass) Position(pos token.Pos) token.Position {
	return p.Program.Fset.Position(pos)
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Program.Fset.Position(pos).Filename, "_test.go")
}

// ErrorType is the universe error type, for signature checks.
var ErrorType = types.Universe.Lookup("error").Type()

// CalleeFunc resolves the *types.Func a call expression invokes, looking
// through parentheses and package-qualified or method selectors. It
// returns nil for calls to builtins, function-typed variables, and
// conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
