package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
)

// Run drives every applicable analyzer over the loaded packages,
// applies //lint:allow suppression, and returns diagnostics sorted by
// position. The reserved "suppress" pseudo-analyzer contributes
// malformed-directive, unknown-name, and unused-suppression findings.
//
// Phases, in order: per-package Run passes (which may export facts),
// Done passes (legacy whole-program hook over State), RunProgram passes
// (whole-program hook over the call graph and fact store — the program
// is built once, only when some applicable analyzer asks for it).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	states := make(map[string]*State, len(analyzers))
	facts := make(map[string]*FactStore, len(analyzers))
	var sups []*Suppression

	for _, pkg := range pkgs {
		ps, pdiags := CollectSuppressions(pkg, known)
		sups = append(sups, ps...)
		diags = append(diags, pdiags...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			st, ok := states[a.Name]
			if !ok {
				st = NewState()
				states[a.Name] = st
				facts[a.Name] = NewFactStore(pkg.Fset)
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				State:    st,
				Facts:    facts[a.Name],
				report:   report,
			})
		}
	}
	for _, a := range analyzers {
		if a.Done == nil {
			continue
		}
		st, ok := states[a.Name]
		if !ok {
			continue // never applied to any package
		}
		name := a.Name
		a.Done(st, func(pos token.Position, format string, args ...any) {
			diags = append(diags, Diagnostic{Analyzer: name, Pos: pos, Message: fmt.Sprintf(format, args...)})
		})
	}

	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		st, ok := states[a.Name]
		if !ok {
			continue // applied to no package; nothing to check
		}
		if prog == nil {
			prog = &Program{Fset: fset, Packages: pkgs, Graph: BuildCallGraph(fset, pkgs)}
		}
		a.RunProgram(&ProgramPass{
			Analyzer: a,
			Program:  prog,
			State:    st,
			Facts:    facts[a.Name],
			report:   report,
		})
	}

	// Interprocedural findings gain a suppression scope at the enclosing
	// function's declaration line.
	interp := make(map[string]bool, len(analyzers))
	needScopes := false
	for _, a := range analyzers {
		if a.Interprocedural {
			interp[a.Name] = true
			needScopes = true
		}
	}
	if needScopes {
		scopes := buildFuncScopes(fset, pkgs)
		for i := range diags {
			if interp[diags[i].Analyzer] {
				diags[i].scopeLine = scopes.declLineFor(diags[i].Pos)
			}
		}
	}

	out := ApplySuppressions(diags, sups)
	SortDiagnostics(out)
	return out
}

// funcScopes maps filenames to function-declaration extents, for
// resolving a finding's enclosing declaration line.
type funcScopes map[string][]funcScope

type funcScope struct {
	startLine, endLine, declLine int
}

func buildFuncScopes(fset *token.FileSet, pkgs []*Package) funcScopes {
	scopes := make(funcScopes)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				scopes[start.Filename] = append(scopes[start.Filename], funcScope{
					startLine: start.Line,
					endLine:   end.Line,
					declLine:  start.Line,
				})
			}
		}
	}
	for name, ss := range scopes {
		sort.Slice(ss, func(i, j int) bool { return ss[i].startLine < ss[j].startLine })
		scopes[name] = ss
	}
	return scopes
}

// declLineFor returns the declaration line of the innermost function
// declaration containing pos, or 0 when pos is outside any.
func (s funcScopes) declLineFor(pos token.Position) int {
	best := 0
	for _, sc := range s[pos.Filename] {
		if sc.startLine > pos.Line {
			break
		}
		if pos.Line <= sc.endLine {
			best = sc.declLine // later (inner or equal) decls win
		}
	}
	return best
}

// SortDiagnostics orders by file, line, column, analyzer, message, so
// output is stable run to run (the linter holds itself to the same
// determinism bar it enforces).
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// sortedCopy returns the diagnostics in canonical order without
// mutating the caller's slice. The writers sort defensively so CI
// output stays diff-stable even if a caller assembles diagnostics from
// multiple Run invocations (or a Done/RunProgram phase appended out of
// position order) without re-sorting.
func sortedCopy(ds []Diagnostic) []Diagnostic {
	out := append([]Diagnostic(nil), ds...)
	SortDiagnostics(out)
	return out
}

// WriteText prints diagnostics one per line as file:line:col: analyzer:
// message, in canonical (file, line, column, analyzer) order.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range sortedCopy(ds) {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the machine-readable form emitted by -json.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits diagnostics as a JSON array (always an array, "[]"
// when clean, so downstream tooling needs no special empty case), in
// canonical (file, line, column, analyzer) order.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(ds))
	for _, d := range sortedCopy(ds) {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
