package explore

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestShortestPathToStable(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	stable := g.StableNodes()
	path, ok := g.ShortestPath(0, stable)
	if !ok {
		t.Fatal("no path from initial to stable")
	}
	if path[0] != 0 || !stable[path[len(path)-1]] {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	// Every hop must be an actual edge.
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, w := range g.Succ[path[i]] {
			if w == path[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path uses non-edge %d -> %d", path[i], path[i+1])
		}
	}
	// n=6, k=3: the fastest run is flip + rule5 + two feeds + second
	// grouping = at least 2·(n/k) productive transitions... just bound it
	// loosely: strictly more than 1 hop, at most eccentricity.
	if len(path) < 3 || len(path)-1 > g.Eccentricity() {
		t.Fatalf("suspicious path length %d (ecc %d)", len(path), g.Eccentricity())
	}
}

func TestShortestPathAlreadyInTarget(t *testing.T) {
	p := core.MustNew(2)
	g, err := Build(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]bool, len(g.Nodes))
	target[0] = true
	path, ok := g.ShortestPath(0, target)
	if !ok || len(path) != 1 || path[0] != 0 {
		t.Fatalf("path %v ok %v", path, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.ShortestPath(0, make([]bool, len(g.Nodes))); ok {
		t.Fatal("empty target reached")
	}
	if _, ok := g.ShortestPath(-1, make([]bool, len(g.Nodes))); ok {
		t.Fatal("invalid start accepted")
	}
}

func TestWitnessToStableReadable(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	steps, ok := g.WitnessToStable()
	if !ok {
		t.Fatal("no witness")
	}
	if !strings.Contains(steps[0], "initial:6") {
		t.Fatalf("witness starts at %q", steps[0])
	}
	last := steps[len(steps)-1]
	if !strings.Contains(last, "g3:2") {
		t.Fatalf("witness ends at %q", last)
	}
}

func TestEccentricityPositive(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ecc := g.Eccentricity(); ecc <= 0 {
		t.Fatalf("eccentricity %d", ecc)
	}
}

func TestWriteDotConfigurations(t *testing.T) {
	p := core.MustNew(2)
	g, err := Build(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDot(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Fatalf("dot output %q", out)
	}
	if !strings.Contains(out, "peripheries=2") {
		t.Fatal("no stable node rendered")
	}
	// Limit honored.
	if err := g.WriteDot(&sb, 2); err == nil {
		t.Fatal("node limit not enforced")
	}
}
