package obs

// Prometheus text-format exposition (version 0.0.4) for the metrics
// registry: counters become <name>_total, gauges stay flat, and the
// power-of-two histograms render as proper cumulative <name>_bucket
// series with _sum and _count. Every sample carries a registry label,
// so several registries (a service's and the harness's, say) can share
// one /metrics endpoint without name collisions.
//
// The rendering is deterministic: metrics sort by name, buckets ascend,
// and values are integers — the golden test in prom_test.go pins the
// exact byte output for a seeded registry.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// promName sanitizes a registry metric name ("serve/http/trials/latency_us")
// into a Prometheus metric name ("serve_http_trials_latency_us"): every
// byte outside [a-zA-Z0-9_:] maps to '_', and a leading digit gains a
// '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case '0' <= c && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the text format (backslash,
// double quote, newline).
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders the registry's current metrics in the
// Prometheus text exposition format. A disabled registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeProm(bw, r.Snapshot()); err != nil {
		return err
	}
	return bw.Flush()
}

func writeProm(w io.Writer, snap Snapshot) error {
	label := fmt.Sprintf(`{registry="%s"}`, promLabel(snap.Registry))
	for _, m := range snap.Metrics {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total%s %d\n",
				name, name, label, m.Value); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n",
				name, name, label, m.Gauge); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := uint64(0)
			reg := promLabel(snap.Registry)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{registry=\"%s\",le=\"%d\"} %d\n",
					name, reg, b.Le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{registry=\"%s\",le=\"+Inf\"} %d\n%s_sum%s %d\n%s_count%s %d\n",
				name, reg, m.Count, name, label, m.Sum, name, label, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler returns an http.Handler serving the registry's
// metrics in the text exposition format; mount it at GET /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return promHandler(func(w io.Writer) error { return r.WritePrometheus(w) })
}

// promContentType is the text exposition format's content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func promHandler(write func(io.Writer) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		// Rendering reads atomics only; an error here is a client
		// disconnect, of no interest to the process.
		_ = write(w)
	})
}

// --- process-wide publication (the -debug-addr server) ----------------------

var (
	promMu   sync.Mutex
	promRegs []*Registry
	promHook sync.Once
)

// PublishPrometheus adds the registry to the process's /metrics
// endpoint on http.DefaultServeMux — the mux ServeDebug serves — so any
// binary with -debug-addr exposes Prometheus metrics next to pprof and
// expvar. Registries render in publication order; publishing the same
// registry twice, or a disabled registry, is a no-op.
func (r *Registry) PublishPrometheus() {
	if !r.Enabled() {
		return
	}
	promMu.Lock()
	for _, prev := range promRegs {
		if prev == r {
			promMu.Unlock()
			return
		}
	}
	promRegs = append(promRegs, r)
	promMu.Unlock()
	promHook.Do(func() {
		http.Handle("GET /metrics", promHandler(writePublished))
	})
}

// writePublished renders every published registry in publication order.
func writePublished(w io.Writer) error {
	promMu.Lock()
	regs := append([]*Registry(nil), promRegs...)
	promMu.Unlock()
	for _, r := range regs {
		if err := r.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}
