package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
)

// Bucket is one non-empty histogram bucket in a snapshot: Le is the
// inclusive upper bound of the power-of-two range, Count the
// observations that fell in it.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Metric is the serialized state of one metric. Exactly one of the
// kind-specific field groups is populated.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter" | "gauge" | "histogram"
	// Value holds a counter's total.
	Value uint64 `json:"value,omitempty"`
	// Gauge holds a gauge's current value (may be negative).
	Gauge int64 `json:"gauge,omitempty"`
	// Count/Sum/Buckets hold a histogram's state.
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry's metrics, ordered by
// metric name. It is the exchange format for JSONL export and expvar.
type Snapshot struct {
	Registry string   `json:"registry"`
	Metrics  []Metric `json:"metrics"`
}

// Snapshot copies the current value of every registered metric. Metrics
// are read atomically one by one; the snapshot is consistent per metric,
// not across metrics, which is the usual (and sufficient) guarantee for
// progress reporting and post-run export.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Registry: r.Name()}
	if !r.Enabled() {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names() {
		switch r.kinds[name] {
		case "counter":
			snap.Metrics = append(snap.Metrics, Metric{
				Name: name, Kind: "counter", Value: r.counter[name].Value(),
			})
		case "gauge":
			snap.Metrics = append(snap.Metrics, Metric{
				Name: name, Kind: "gauge", Gauge: r.gauge[name].Value(),
			})
		case "histogram":
			h := r.hist[name]
			m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
			for i, c := range h.Buckets() {
				if c > 0 {
					m.Buckets = append(m.Buckets, Bucket{Le: BucketBound(i), Count: c})
				}
			}
			snap.Metrics = append(snap.Metrics, m)
		}
	}
	return snap
}

// Find returns the metric with the given name, if present.
func (s Snapshot) Find(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSONL writes the snapshot as JSON Lines: one Metric object per
// line, prefixed by a header line carrying the registry name. The format
// is append-friendly, so successive snapshots of a long run can share a
// file.
func (s Snapshot) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := struct {
		Registry string `json:"registry"`
		Metrics  int    `json:"metrics"`
	}{s.Registry, len(s.Metrics)}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the snapshot as JSONL to path, creating or
// truncating it.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL parses a snapshot written by WriteJSONL.
func ReadJSONL(r io.Reader) (Snapshot, error) {
	dec := json.NewDecoder(r)
	var header struct {
		Registry string `json:"registry"`
		Metrics  int    `json:"metrics"`
	}
	if err := dec.Decode(&header); err != nil {
		return Snapshot{}, fmt.Errorf("obs: reading snapshot header: %w", err)
	}
	snap := Snapshot{Registry: header.Registry}
	for {
		var m Metric
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return snap, fmt.Errorf("obs: reading snapshot metric: %w", err)
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap, nil
}

// PublishExpvar publishes the registry under its name in the process's
// expvar namespace, so -debug-addr's /debug/vars shows a live snapshot.
// Publishing the same registry name twice is a no-op (expvar itself
// panics on duplicates).
func (r *Registry) PublishExpvar() {
	if !r.Enabled() {
		return
	}
	if expvar.Get(r.name) != nil {
		return
	}
	expvar.Publish(r.name, expvar.Func(func() any { return r.Snapshot() }))
}
