// Package twin is the analytical surrogate ladder for the uniform
// k-partition protocol: models that answer "how long until stability, and
// how long until each group completes?" without running a simulation.
//
// The ladder has two rungs plus a calibration layer:
//
//   - Rung 1 (Lumped, FidelityExact): an exactly lumped Markov chain over
//     the reduced vector (#initial, #initial', #m2..#m(k−1), #d1..#d(k−2),
//     #gk). By the Lemma 1 invariant every reachable configuration's
//     g-counts are a pure function of that vector, so the reduction loses
//     nothing — the reduced chain is isomorphic to the full configuration
//     chain, just without the redundant coordinates. The win over
//     internal/markov is the solver, not the state count: #gk is monotone
//     under the protocol, so hitting times solve level-by-level (block
//     back-substitution instead of whole-graph iteration), ALL ⌊n/k⌋
//     milestones come from one forward occupancy pass instead of one
//     solve each, and exact variances come from the same layered second-
//     moment pass. That makes exact milestone curves practical at
//     populations where internal/markov's per-milestone solves are not.
//
//   - Rung 2 (MeanField, FidelityFluid): the finite-n mean-field drift of
//     the same reduced vector, integrated as an ODE with adaptive RK4,
//     plus an exact "endgame" sub-chain for the last few #gk levels where
//     integer effects dominate and the fluid limit is blind. Answers in
//     microseconds for arbitrary n; accuracy is a calibrated contract
//     (see RelErrBudget), enforced in CI by `make twin-check` against
//     recorded simulation means.
//
//   - Calibration (rung 3): every Prediction carries a dispersion estimate
//     — exact second moments on rung 1, a calibrated coefficient of
//     variation on rung 2 — so error bars come with the point estimate.
//
// Auto picks the highest-fidelity rung whose cost fits a state budget;
// CrossValidate* are the hooks the accuracy gate and the tests use to
// compare rungs against internal/markov and against trial data.
package twin
