// Package serve turns the reproduction's batch harness into a
// traffic-serving system: a stdlib-only net/http JSON API that accepts
// trial and sweep requests, executes them on a bounded worker pool
// behind an explicit admission queue, and memoizes results in a
// content-addressed cache keyed by harness.SpecKey.
//
// Endpoints (cmd/kpart-serve is the binary):
//
//	POST /v1/trials            run (or replay) one trial; JSON in, Record out
//	POST /v1/sweeps            run one sweep point; streams NDJSON Records
//	GET  /v1/results/{speckey} replay a completed trial by content hash
//	GET  /healthz              liveness + queue/cache/journal stats
//
// The load-bearing properties, each pinned by an integration test:
//
//   - Validation happens before admission: a spec that wraps
//     harness.ErrInvalidSpec is answered 400 and never enqueued.
//   - Backpressure is explicit: when the admission queue is full,
//     POST /v1/trials answers 429 with Retry-After instead of growing an
//     unbounded goroutine pile; sweeps block on admission trial by
//     trial, so one long point throttles its own connection.
//   - Results are content-addressed: identical specs are computed once
//     and replayed byte-for-byte, from the LRU or — after a restart —
//     from the sweep journal on disk.
//   - Shutdown is graceful: cancelling the pool aborts in-flight trials
//     through the harness's context plumbing, completed trials are
//     already journaled, and a restarted server serves them from disk.
//
// Wall-clock discipline: spec.go and cache.go are deterministic (the
// content-addressed identity of a result must not depend on when it was
// computed); server.go and pool.go are the HTTP/executor edge, where
// latency metrics and trial wall times live. The determinism analyzer
// (internal/lint) mechanizes this split.
package serve
