// Package explore exhaustively verifies population protocols on small
// populations by building the full configuration graph.
//
// Because agents are anonymous and encounters are unordered, a
// configuration is fully described by its state-count multiset; the graph
// over those multisets has C(n+|Q|−1, |Q|−1) nodes at most, which is small
// enough to enumerate for the (n, k) grid the tests use.
//
// The checker mechanizes the paper's correctness statement (Theorem 1) in
// the standard finite form:
//
//  1. A configuration is "frozen" when every enabled transition preserves
//     both participants' groups f. A configuration is "stable" (Section
//     2.2) when its entire forward closure is frozen: the partition fixed
//     now is never disturbed again. (A stable configuration of the
//     k-partition protocol may still flip the leftover agent between
//     initial and initial' — frozen ≠ dead.)
//  2. Under global fairness an execution over a finite graph must visit
//     some configuration infinitely often, and then every configuration
//     reachable from it. Hence the protocol stabilizes under global
//     fairness if and only if from EVERY reachable configuration a stable
//     configuration is reachable. That reachability condition is what
//     Check verifies, together with uniformity of the partition at every
//     stable configuration.
package explore

import (
	"fmt"
	"sort"

	"repro/internal/protocol"
)

// Config is a configuration in multiset form: Counts[s] agents in state s.
type Config struct {
	Counts []int
}

func (c Config) key() string {
	b := make([]byte, 0, len(c.Counts)*2)
	for _, v := range c.Counts {
		b = append(b, byte(v), byte(v>>8))
	}
	return string(b)
}

// N returns the population size of the configuration.
func (c Config) N() int {
	n := 0
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// GroupSizes returns the group-size vector of the configuration under p's
// output mapping.
func (c Config) GroupSizes(p protocol.Protocol) []int {
	sizes := make([]int, p.NumGroups())
	for s, v := range c.Counts {
		if v != 0 {
			sizes[p.Group(protocol.State(s))-1] += v
		}
	}
	return sizes
}

// Graph is the reachable configuration graph of a protocol for a fixed n.
type Graph struct {
	Proto protocol.Protocol
	// Nodes, indexed by dense id in BFS order from the initial
	// configuration (node 0).
	Nodes []Config
	// Succ[i] lists the ids of configurations reachable from node i by
	// one productive transition (deduplicated, sorted).
	Succ [][]int
	// Frozen[i] reports that every transition enabled at node i keeps
	// both participants in their current group.
	Frozen []bool

	index map[string]int
}

// MaxNodes caps graph construction; Build returns an error beyond it so a
// mistaken huge (n, k) fails fast instead of consuming all memory.
const MaxNodes = 5_000_000

// Build explores the configuration graph of p with n agents, starting from
// the all-initial configuration.
func Build(p protocol.Protocol, n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("explore: need n >= 2, got %d", n)
	}
	S := p.NumStates()
	start := Config{Counts: make([]int, S)}
	start.Counts[p.InitialState()] = n

	g := &Graph{Proto: p, index: make(map[string]int)}
	g.add(start)
	for i := 0; i < len(g.Nodes); i++ {
		if len(g.Nodes) > MaxNodes {
			return nil, fmt.Errorf("explore: exceeded %d configurations", MaxNodes)
		}
		cur := g.Nodes[i]
		frozen := true
		var succ []int
		seen := map[int]bool{}
		for a := 0; a < S; a++ {
			if cur.Counts[a] == 0 {
				continue
			}
			for b := 0; b < S; b++ {
				if cur.Counts[b] == 0 || (a == b && cur.Counts[a] < 2) {
					continue
				}
				out, _ := p.Delta(protocol.State(a), protocol.State(b))
				if int(out.P) == a && int(out.Q) == b {
					continue
				}
				if p.Group(protocol.State(a)) != p.Group(out.P) ||
					p.Group(protocol.State(b)) != p.Group(out.Q) {
					frozen = false
				}
				next := Config{Counts: append([]int(nil), cur.Counts...)}
				next.Counts[a]--
				next.Counts[b]--
				next.Counts[out.P]++
				next.Counts[out.Q]++
				id := g.add(next)
				if !seen[id] {
					seen[id] = true
					succ = append(succ, id)
				}
			}
		}
		sort.Ints(succ)
		g.Succ = append(g.Succ, succ)
		g.Frozen = append(g.Frozen, frozen)
	}
	return g, nil
}

func (g *Graph) add(c Config) int {
	k := c.key()
	if id, ok := g.index[k]; ok {
		return id
	}
	id := len(g.Nodes)
	g.index[k] = id
	g.Nodes = append(g.Nodes, c)
	return id
}

// Lookup returns the node id of a configuration, if reachable.
func (g *Graph) Lookup(c Config) (int, bool) {
	id, ok := g.index[c.key()]
	return id, ok
}

// StableNodes computes the set of stable configurations: nodes whose whole
// forward closure is frozen. Returned as a boolean mask over node ids.
// (A node is unstable iff it can reach a non-frozen node; the shared
// backward taint propagation lives in graph.go.)
func (g *Graph) StableNodes() []bool {
	return stableMask(g.Succ, g.Frozen)
}

// CanReach computes, for every node, whether it can reach some node in the
// target mask (backward reachability over reversed edges).
func (g *Graph) CanReach(target []bool) []bool {
	return reachMask(g.Succ, target)
}

// Report summarizes a Check run.
type Report struct {
	N           int
	Reachable   int // number of reachable configurations
	Stable      int // number of stable configurations
	Uniform     bool
	LiveFromAll bool
	// FirstNonLive is a sample configuration that cannot reach a stable
	// one (nil when LiveFromAll).
	FirstNonLive *Config
	// FirstNonUniform is a sample stable configuration with spread > 1
	// (nil when Uniform).
	FirstNonUniform *Config
}

// Check verifies the Theorem 1 conditions for p with n agents:
//
//  1. liveness-under-global-fairness: from every reachable configuration a
//     stable configuration is reachable, and at least one stable
//     configuration exists;
//  2. safety: every stable configuration's partition is uniform
//     (max group size − min group size <= 1).
//
// maxSpread generalizes condition 2 for approximate protocols (pass 1 for
// exact uniform partition).
func Check(p protocol.Protocol, n int, maxSpread int) (Report, error) {
	g, err := Build(p, n)
	if err != nil {
		return Report{}, err
	}
	stable := g.StableNodes()
	rep := Report{N: n, Reachable: len(g.Nodes), Uniform: true, LiveFromAll: true}
	for i, s := range stable {
		if !s {
			continue
		}
		rep.Stable++
		sizes := g.Nodes[i].GroupSizes(p)
		min, max := sizes[0], sizes[0]
		for _, v := range sizes[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max-min > maxSpread && rep.Uniform {
			rep.Uniform = false
			c := g.Nodes[i]
			rep.FirstNonUniform = &c
		}
	}
	live := g.CanReach(stable)
	for i, ok := range live {
		if !ok {
			rep.LiveFromAll = false
			c := g.Nodes[i]
			rep.FirstNonLive = &c
			break
		}
	}
	if rep.Stable == 0 {
		rep.LiveFromAll = false
	}
	return rep, nil
}

// String renders the configuration with the protocol's state names.
func (c Config) String() string {
	return fmt.Sprintf("%v", c.Counts)
}

// Format renders the configuration with readable state names.
func (c Config) Format(p protocol.Protocol) string {
	out := "{"
	first := true
	for s, v := range c.Counts {
		if v == 0 {
			continue
		}
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%s:%d", p.StateName(protocol.State(s)), v)
	}
	return out + "}"
}
