package lint

// SARIF 2.1.0 exposition for editor and code-scanning integration
// (`make lint-sarif`). The encoder is stdlib-only and byte-stable: the
// rules table is the analyzer suite sorted by name, results are in
// canonical diagnostic order, and everything marshals through structs
// whose field order fixes the output. A golden test pins the bytes.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the diagnostics as a SARIF 2.1.0 log. The rules
// table lists every analyzer in the suite (findings or not — a clean
// run still documents what was checked), plus the reserved "suppress"
// rule and a synthetic entry for any diagnostic whose analyzer is not
// in the suite. File URIs are made relative to root (when given and
// possible) and use forward slashes, per the SARIF artifactLocation
// contract.
func WriteSARIF(w io.Writer, diags []Diagnostic, suite []*Analyzer, root string) error {
	docs := map[string]string{
		SuppressName: "suppression hygiene: //lint:allow directives must name a real analyzer, carry a reason, and be used",
	}
	for _, a := range suite {
		docs[a.Name] = a.Doc
	}
	for _, d := range diags {
		if _, ok := docs[d.Analyzer]; !ok {
			docs[d.Analyzer] = "(no description)"
		}
	}
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	ruleIndex := make(map[string]int, len(names))
	rules := make([]sarifRule, len(names))
	for i, name := range names {
		ruleIndex[name] = i
		rules[i] = sarifRule{ID: name, ShortDescription: sarifMessage{Text: docs[name]}}
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range sortedCopy(diags) {
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			// Every finding fails the build (kpart-lint exits non-zero),
			// so the SARIF level is error, not warning.
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: sarifURI(d.Pos.Filename, root)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "kpart-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a diagnostic filename as a SARIF artifact URI:
// relative to root when that yields a path inside it, always with
// forward slashes.
func sarifURI(filename, root string) string {
	if root != "" && filepath.IsAbs(filename) {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
