package lint

// The whole-program layer: a conservative call graph over every loaded
// analysis package, built by class-hierarchy analysis (CHA) on the
// type-checked ASTs. Interprocedural analyzers (ctxflow, lockguard,
// goroutinelife, speclosure) consume it through Program/ProgramPass.
//
// Resolution policy, most to least precise:
//
//   - Static calls (direct function or method calls) resolve to the one
//     callee, found by its declaration position.
//   - Interface method calls resolve to every method of every named
//     type in the program that implements the interface (CHA). The
//     implements check compares method names and signature strings, not
//     types.Identical — the loader type-checks a package once as an
//     analysis unit and once as a dependency, and the two universes'
//     named types are distinct objects for the same source.
//   - Calls through function values resolve to every address-taken
//     function with an identical signature string.
//   - go and defer call sites produce edges like any other call, tagged
//     with their kind so analyzers can treat goroutine launches
//     specially.
//
// Nodes are keyed by declaration position (file:line:col), which is
// stable across the loader's analysis and dependency type-checks of the
// same source file.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallKind classifies a call-graph edge.
type CallKind uint8

// The edge kinds.
const (
	// CallStatic is a direct call to a known function or method.
	CallStatic CallKind = iota
	// CallGo is a `go` statement's launch of its function.
	CallGo
	// CallDefer is a deferred call.
	CallDefer
	// CallInterface is a CHA-resolved interface method call: one edge
	// per implementing method in the program.
	CallInterface
	// CallDynamic is a call through a function value: one edge per
	// address-taken function with a matching signature.
	CallDynamic
)

// String names the kind for diagnostics.
func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallGo:
		return "go"
	case CallDefer:
		return "defer"
	case CallInterface:
		return "interface"
	case CallDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Func is one call-graph node: a declared function or method (Decl set)
// or a function literal (Lit set), with the analysis package its body
// lives in. Function literals are nodes of their own so a goroutine
// body or a callback can be analyzed separately from its enclosing
// function.
type Func struct {
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the analysis unit holding the body.
	Pkg *Package
	// Parent is the enclosing function of a literal (nil for declared
	// functions and for literals in package-level initializers).
	Parent *Func

	key  string
	name string
}

// Name returns a printable identity: "pkg.Func", "pkg.(T).Method", or
// "pkg.Func$lit@line" for literals.
func (f *Func) Name() string { return f.name }

// Key is the node's stable identity: the declaration position.
func (f *Func) Key() string { return f.key }

// Pos returns the declaration or literal position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Body returns the function body (nil for a bodyless declaration, e.g.
// assembly stubs).
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Type returns the node's *ast.FuncType.
func (f *Func) FuncType() *ast.FuncType {
	if f.Decl != nil {
		return f.Decl.Type
	}
	return f.Lit.Type
}

// Sig returns the type-checked signature, or nil when unavailable.
func (f *Func) Sig() *types.Signature {
	if f.Obj != nil {
		sig, _ := f.Obj.Type().(*types.Signature)
		return sig
	}
	if tv, ok := f.Pkg.Info.Types[f.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

// Edge is one resolved call: Caller invokes Callee at Pos.
type Edge struct {
	Caller *Func
	Callee *Func
	Kind   CallKind
	// Pos is the call (or go/defer) position in the caller.
	Pos token.Pos
}

// GoSite is one `go` statement with its resolved launch targets (empty
// when the target is a function value the graph cannot resolve).
type GoSite struct {
	Stmt    *ast.GoStmt
	Caller  *Func
	Pkg     *Package
	Targets []*Func
}

// CallGraph is the program-wide CHA call graph.
type CallGraph struct {
	// Funcs lists every function node in deterministic (position) order.
	Funcs []*Func
	// GoSites lists every `go` statement in deterministic order.
	GoSites []*GoSite

	byKey   map[string]*Func
	callees map[*Func][]Edge
	callers map[*Func][]Edge
}

// FuncAt resolves a *types.Func (from any of the loader's type-check
// universes) to its node, or nil when the function has no body in the
// program (stdlib, interface methods, bodyless decls).
func (g *CallGraph) FuncAt(fset *token.FileSet, obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	if orig := obj.Origin(); orig != nil {
		obj = orig
	}
	return g.byKey[fset.Position(obj.Pos()).String()]
}

// Callees returns f's outgoing edges in source order.
func (g *CallGraph) Callees(f *Func) []Edge { return g.callees[f] }

// Callers returns f's incoming edges in deterministic order.
func (g *CallGraph) Callers(f *Func) []Edge { return g.callers[f] }

// Reachable returns the set of nodes reachable from roots, following
// every edge kind (go/defer launches included — the invariants the
// interprocedural analyzers enforce follow work, not just the stack).
func (g *CallGraph) Reachable(roots []*Func) map[*Func]bool {
	seen := make(map[*Func]bool)
	queue := append([]*Func(nil), roots...)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range g.callees[f] {
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// BuildCallGraph constructs the CHA call graph over the packages.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byKey:   make(map[string]*Func),
		callees: make(map[*Func][]Edge),
		callers: make(map[*Func][]Edge),
	}
	b := &graphBuilder{fset: fset, g: g}
	// Two passes: nodes (and CHA/dynamic candidate indexes) first, so
	// edge resolution in the second pass sees every candidate regardless
	// of package order.
	for _, pkg := range pkgs {
		b.collectNodes(pkg)
	}
	b.indexCandidates(pkgs)
	for _, pkg := range pkgs {
		b.collectEdges(pkg)
	}
	b.finish()
	return g
}

type graphBuilder struct {
	fset *token.FileSet
	g    *CallGraph

	// addrTaken maps signature strings to the functions whose address
	// escapes (referenced outside call position), the CallDynamic
	// candidate set.
	addrTaken map[string][]*Func
	// methods maps "TypeName.Method" candidate implementations for CHA,
	// per signature-independent name; resolution filters by signature.
	concrete []concreteType
}

type concreteType struct {
	named *types.Named
	pkg   *Package
}

func (b *graphBuilder) keyOf(pos token.Pos) string { return b.fset.Position(pos).String() }

// collectNodes registers every declared function and function literal
// in pkg as a node.
func (b *graphBuilder) collectNodes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			n := &Func{
				Obj:  obj,
				Decl: fd,
				Pkg:  pkg,
				key:  b.keyOf(fd.Name.Pos()),
				name: declName(pkg, fd),
			}
			b.g.byKey[n.key] = n
			b.g.Funcs = append(b.g.Funcs, n)
			if fd.Body != nil {
				b.collectLits(pkg, n, fd.Body)
			}
		}
		// Function literals in package-level initializers get nodes too
		// (no parent).
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			b.collectLits(pkg, nil, gd)
		}
	}
}

// collectLits registers the function literals directly inside root
// (transitively; each literal's Parent is the nearest enclosing node).
func (b *graphBuilder) collectLits(pkg *Package, parent *Func, root ast.Node) {
	var walk func(n ast.Node, parent *Func) bool
	walk = func(n ast.Node, parent *Func) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pname := pkg.Pkg.Name()
		if parent != nil {
			pname = parent.name
		}
		node := &Func{
			Lit:    lit,
			Pkg:    pkg,
			Parent: parent,
			key:    b.keyOf(lit.Pos()),
			name:   fmt.Sprintf("%s$lit@%d", pname, b.fset.Position(lit.Pos()).Line),
		}
		b.g.byKey[node.key] = node
		b.g.Funcs = append(b.g.Funcs, node)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if m == lit.Body {
				return true
			}
			return walk(m, node)
		})
		return false // children handled by the nested Inspect above
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		return walk(n, parent)
	})
}

func declName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg.Pkg.Name(), id.Name, fd.Name.Name)
		}
	}
	return pkg.Pkg.Name() + "." + fd.Name.Name
}

// indexCandidates builds the CHA candidate indexes: address-taken
// functions by signature string, and named types with method sets.
func (b *graphBuilder) indexCandidates(pkgs []*Package) {
	b.addrTaken = make(map[string][]*Func)
	for _, pkg := range pkgs {
		// Named types for interface resolution.
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.concrete = append(b.concrete, concreteType{named: named, pkg: pkg})
			}
		}
		// Address-taken functions: any use of a function identifier
		// outside the Fun position of a call.
		for _, file := range pkg.Files {
			callFuns := make(map[*ast.Ident]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callFuns[fun] = true
				case *ast.SelectorExpr:
					callFuns[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callFuns[id] {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				node := b.g.byKey[b.keyOf(fn.Pos())]
				if node == nil {
					return true
				}
				sig := sigString(fn.Type())
				b.addrTaken[sig] = append(b.addrTaken[sig], node)
				return true
			})
		}
	}
	// Function literals that are not immediately invoked are dynamic
	// candidates as well: any literal whose parent expression is not a
	// call is address-taken by construction. Conservatively include
	// every literal node.
	for _, f := range b.g.Funcs {
		if f.Lit == nil {
			continue
		}
		if sig := f.Sig(); sig != nil {
			b.addrTaken[sigString(sig)] = append(b.addrTaken[sigString(sig)], f)
		}
	}
}

// sigString renders a signature with package-path qualification, the
// universe-stable comparison form. Parameter and result names are
// stripped first: a declaration's signature carries them but a function
// value's type usually does not, and the two must compare equal.
func sigString(t types.Type) string {
	return types.TypeString(stripSigNames(t), func(p *types.Package) string { return p.Path() })
}

func stripSigNames(t types.Type) types.Type {
	sig, ok := t.(*types.Signature)
	if !ok {
		return t
	}
	strip := func(tup *types.Tuple) *types.Tuple {
		if tup == nil {
			return nil
		}
		vars := make([]*types.Var, tup.Len())
		for i := range vars {
			vars[i] = types.NewVar(token.NoPos, nil, "", stripSigNames(tup.At(i).Type()))
		}
		return types.NewTuple(vars...)
	}
	return types.NewSignatureType(nil, nil, nil, strip(sig.Params()), strip(sig.Results()), sig.Variadic())
}

// collectEdges resolves every call, go, and defer site in pkg.
func (b *graphBuilder) collectEdges(pkg *Package) {
	for _, file := range pkg.Files {
		// handled marks call expressions already resolved by an
		// enclosing go/defer statement, and literals already reached by
		// resolving a call, so the generic cases do not add a second
		// (wrongly-kinded) edge for the same site.
		handledCall := make(map[*ast.CallExpr]bool)
		handledLit := make(map[*ast.FuncLit]bool)
		// enclosing tracks the current function node during the walk.
		var walk func(n ast.Node, enclosing *Func)
		handleCall := func(call *ast.CallExpr, enclosing *Func, launch CallKind) []*Func {
			var targets []*Func
			for _, rc := range b.resolve(pkg, call) {
				kind := rc.kind
				// A go/defer site keeps its launch kind; how the callee
				// was found (interface set, address-taken set) matters
				// less than that the call is a launch/deferral.
				if launch == CallGo || launch == CallDefer {
					kind = launch
				}
				if rc.fn.Lit != nil {
					handledLit[rc.fn.Lit] = true
				}
				b.addEdge(Edge{Caller: enclosing, Callee: rc.fn, Kind: kind, Pos: call.Pos()})
				targets = append(targets, rc.fn)
			}
			return targets
		}
		walk = func(n ast.Node, enclosing *Func) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncDecl:
					if m.Body == nil {
						return false
					}
					walk(m.Body, b.g.byKey[b.keyOf(m.Name.Pos())])
					return false
				case *ast.FuncLit:
					if m.Pos() == n.Pos() {
						return true // the node we were asked to walk
					}
					lnode := b.g.byKey[b.keyOf(m.Pos())]
					// A literal is "called" by its enclosing function for
					// reachability purposes (it runs — immediately, later,
					// or on another goroutine) — unless a call site already
					// claimed it with a more precise kind.
					if lnode != nil && !handledLit[m] {
						b.addEdge(Edge{Caller: enclosing, Callee: lnode, Kind: CallStatic, Pos: m.Pos()})
					}
					walk(m.Body, lnode)
					return false
				case *ast.GoStmt:
					handledCall[m.Call] = true
					targets := handleCall(m.Call, enclosing, CallGo)
					b.g.GoSites = append(b.g.GoSites, &GoSite{Stmt: m, Caller: enclosing, Pkg: pkg, Targets: targets})
					// Continue into args and the call fun (literals inside
					// are handled by the FuncLit case).
					return true
				case *ast.DeferStmt:
					handledCall[m.Call] = true
					handleCall(m.Call, enclosing, CallDefer)
					return true
				case *ast.CallExpr:
					if !handledCall[m] {
						handleCall(m, enclosing, CallStatic)
					}
					return true
				}
				return true
			})
		}
		walk(file, nil)
	}
}

// resolvedCallee is one callee with the kind its resolution implies.
type resolvedCallee struct {
	fn   *Func
	kind CallKind
}

// resolve returns the callee nodes a call may reach, each tagged
// static/interface/dynamic by how it was found.
func (b *graphBuilder) resolve(pkg *Package, call *ast.CallExpr) []resolvedCallee {
	fun := ast.Unparen(call.Fun)
	// Immediately invoked literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := b.g.byKey[b.keyOf(lit.Pos())]; n != nil {
			return []resolvedCallee{{fn: n, kind: CallStatic}}
		}
		return nil
	}
	// Conversions T(x) resolve to nothing.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	// Static resolution (direct function/method).
	if fn := CalleeFunc(pkg.Info, call); fn != nil {
		// Interface method: CHA over implementing types.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if types.IsInterface(s.Recv()) {
					return b.resolveInterface(s.Recv(), fn)
				}
			}
		}
		if n := b.g.byKey[b.keyOf(fn.Pos())]; n != nil {
			return []resolvedCallee{{fn: n, kind: CallStatic}}
		}
		return nil
	}
	// Builtins resolve to nothing.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return nil
		}
	}
	// Dynamic call through a function value: every address-taken
	// function with the same signature string. Info.Types may omit bare
	// identifiers (go/types records those in Uses/Defs), so fall back to
	// the object's type.
	var funType types.Type
	if tv, ok := pkg.Info.Types[call.Fun]; ok {
		funType = tv.Type
	} else if id, ok := fun.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			funType = obj.Type()
		} else if obj := pkg.Info.Defs[id]; obj != nil {
			funType = obj.Type()
		}
	}
	if funType == nil {
		return nil
	}
	if _, isSig := funType.Underlying().(*types.Signature); !isSig {
		return nil
	}
	var out []resolvedCallee
	for _, fn := range b.addrTaken[sigString(funType)] {
		out = append(out, resolvedCallee{fn: fn, kind: CallDynamic})
	}
	return out
}

// resolveInterface returns every program method implementing the called
// interface method (CHA). The implements test is structural by name and
// signature string, robust to the loader's two type-check universes.
func (b *graphBuilder) resolveInterface(recv types.Type, m *types.Func) []resolvedCallee {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []resolvedCallee
	for _, ct := range b.concrete {
		if !implementsByString(ct.named, iface) {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(ct.named))
		for i := 0; i < ms.Len(); i++ {
			cand, ok := ms.At(i).Obj().(*types.Func)
			if !ok || cand.Name() != m.Name() {
				continue
			}
			if n := b.g.byKey[b.keyOf(cand.Pos())]; n != nil {
				out = append(out, resolvedCallee{fn: n, kind: CallInterface})
			}
		}
	}
	return out
}

// implementsByString reports whether *T satisfies iface, comparing
// method names and signature strings (parameter/result types rendered
// with package-path qualification) instead of object identity.
func implementsByString(named *types.Named, iface *types.Interface) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < iface.NumMethods(); i++ {
		want := iface.Method(i)
		sel := ms.Lookup(want.Pkg(), want.Name())
		if sel == nil {
			return false
		}
		got, ok := sel.Obj().(*types.Func)
		if !ok {
			return false
		}
		if sigString(got.Type()) != sigString(want.Type()) {
			return false
		}
	}
	return iface.NumMethods() > 0
}

func (b *graphBuilder) addEdge(e Edge) {
	if e.Caller == nil || e.Callee == nil {
		return
	}
	b.g.callees[e.Caller] = append(b.g.callees[e.Caller], e)
	b.g.callers[e.Callee] = append(b.g.callers[e.Callee], e)
}

// finish orders Funcs, GoSites, and caller edge lists deterministically.
func (b *graphBuilder) finish() {
	sort.Slice(b.g.Funcs, func(i, j int) bool { return b.g.Funcs[i].key < b.g.Funcs[j].key })
	sort.Slice(b.g.GoSites, func(i, j int) bool {
		return b.keyOf(b.g.GoSites[i].Stmt.Pos()) < b.keyOf(b.g.GoSites[j].Stmt.Pos())
	})
	for f, edges := range b.g.callers {
		es := edges
		sort.Slice(es, func(i, j int) bool { return b.keyOf(es[i].Pos) < b.keyOf(es[j].Pos) })
		b.g.callers[f] = es
	}
}
