package markov

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/protocols/bipartition"
	"repro/internal/protocols/classic"
	"repro/internal/rng"
)

func TestChainProbabilitiesSumToOne(t *testing.T) {
	for _, cse := range []struct{ n, k int }{{4, 2}, {5, 3}, {6, 3}, {7, 4}} {
		ch, err := New(core.MustNew(cse.k), cse.n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ch.Graph.Nodes {
			sum := ch.SelfLoop[i]
			for _, e := range ch.Out[i] {
				sum += e.P
				if e.P <= 0 || e.P > 1 {
					t.Fatalf("n=%d k=%d node %d: edge prob %v", cse.n, cse.k, i, e.P)
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("n=%d k=%d node %d: probs sum to %v", cse.n, cse.k, i, sum)
			}
		}
	}
}

func TestHittingTimesZeroOnStable(t *testing.T) {
	ch, err := New(core.MustNew(3), 6)
	if err != nil {
		t.Fatal(err)
	}
	E, err := ch.HittingTimes(1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ch.Stable {
		if s && E[i] != 0 {
			t.Fatalf("stable node %d has E=%v", i, E[i])
		}
		if !s && E[i] <= 0 {
			t.Fatalf("transient node %d has E=%v", i, E[i])
		}
	}
}

// The two solvers must agree to high precision.
func TestDenseMatchesGaussSeidel(t *testing.T) {
	for _, cse := range []struct{ n, k int }{{4, 2}, {5, 2}, {5, 3}, {6, 3}, {6, 4}} {
		ch, err := New(core.MustNew(cse.k), cse.n)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := ch.HittingTimes(1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := ch.SolveDense()
		if err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			if math.Abs(gs[i]-dense[i]) > 1e-6*(1+dense[i]) {
				t.Fatalf("n=%d k=%d node %d: GS %v vs dense %v", cse.n, cse.k, i, gs[i], dense[i])
			}
		}
	}
}

// THE cross-validation: exact expectation vs simulation mean. Any bias in
// the generator, pair sampling, engine, or stability detector shows up
// here. 40000 trials give a standard error well under 1% of the mean for
// these sizes; the tolerance is 4 standard errors.
func TestExactMatchesSimulation(t *testing.T) {
	cases := []struct{ n, k int }{{5, 2}, {6, 3}, {8, 4}}
	for _, cse := range cases {
		exact, err := ExpectedStabilization(core.MustNew(cse.k), cse.n)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 40000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			res, err := harness.RunTrial(harness.TrialSpec{
				N: cse.n, K: cse.k,
				Seed: rng.StreamSeed(0xfeed, uint64(cse.n), uint64(cse.k), uint64(i)),
			})
			if err != nil {
				t.Fatal(err)
			}
			x := float64(res.Interactions)
			sum += x
			sumsq += x * x
		}
		mean := sum / trials
		variance := (sumsq - sum*sum/trials) / (trials - 1)
		se := math.Sqrt(variance / trials)
		if diff := math.Abs(mean - exact); diff > 4*se+1e-9 {
			t.Errorf("n=%d k=%d: simulated mean %.3f vs exact %.3f (|diff| %.3f > 4·SE %.3f)",
				cse.n, cse.k, mean, exact, diff, 4*se)
		}
	}
}

// Monotonicity sanity mirroring Figure 3's trend at fixed k: expected time
// grows with n when n is a multiple of k.
func TestExpectedGrowsWithN(t *testing.T) {
	p := core.MustNew(3)
	prev := 0.0
	for _, n := range []int{3, 6, 9} {
		e, err := ExpectedStabilization(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Fatalf("E[n=%d] = %v not greater than previous %v", n, e, prev)
		}
		prev = e
	}
}

// The n mod k effect (the paper's Figure 3 jaggedness) in exact form:
// completing a remainder run can cost more than finishing a clean multiple.
// At least, expectation must differ measurably across the remainder
// classes of one period.
func TestRemainderClassesDiffer(t *testing.T) {
	p := core.MustNew(3)
	var es []float64
	for _, n := range []int{6, 7, 8} {
		e, err := ExpectedStabilization(p, n)
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, e)
	}
	if es[0] == es[1] || es[1] == es[2] {
		t.Fatalf("expectations across remainder classes identical: %v", es)
	}
}

func TestBipartitionExactSmall(t *testing.T) {
	// n=3 bipartition: from (3·initial), exact expectation is finite and
	// the chain is tiny; check solver plumbing end to end.
	e, err := ExpectedStabilization(bipartition.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 1 || math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("E = %v", e)
	}
}

// Bipartition protocol at n=2 never stabilizes... in fact the 2-cycle IS
// group-stable (both agents in group 1). Hitting time is 0 at start? No:
// the start node (2·initial) is itself in the frozen 2-cycle, so it is
// stable and E[start] = 0. Document that edge through an assertion.
func TestN2FrozenCycleIsAbsorbing(t *testing.T) {
	ch, err := New(bipartition.New(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Stable[0] {
		t.Fatal("n=2 start node not in the frozen cycle")
	}
	E, err := ch.HittingTimes(1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if E[0] != 0 {
		t.Fatalf("E[start] = %v", E[0])
	}
}

func TestHittingTimesDetectsNoStable(t *testing.T) {
	ch, err := New(core.MustNew(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Blank out the stable set to simulate a dead protocol.
	for i := range ch.Stable {
		ch.Stable[i] = false
	}
	if _, err := ch.HittingTimes(1e-10, 100); err == nil {
		t.Fatal("missing stable set not detected")
	}
	if _, err := ch.SolveDense(); err == nil {
		t.Fatal("dense solver: missing stable set not detected")
	}
}

// Independent analytical cross-check: for the classic leader-election
// protocol under the uniform-random ordered-pair scheduler, the expected
// number of interactions to reach a single leader has the closed form
//
//	E = Σ_{j=2..n} n(n−1)/(j(j−1)) = n(n−1)·(1 − 1/n) = (n−1)².
//
// The Markov solver must reproduce it exactly (up to solver tolerance) —
// a validation on a protocol with completely different structure from the
// k-partition chain.
func TestLeaderElectionClosedForm(t *testing.T) {
	p := classic.NewLeaderElection()
	for n := 3; n <= 10; n++ {
		e, err := ExpectedStabilization(p, n)
		if err != nil {
			t.Fatal(err)
		}
		want := float64((n - 1) * (n - 1))
		if math.Abs(e-want) > 1e-6*want {
			t.Errorf("n=%d: exact E = %v, closed form %v", n, e, want)
		}
	}
}

// Variance cross-checks: (1) against the simulated sample variance at a
// small point; (2) the dispersion is large (std comparable to the mean),
// the exact version of the heavy tails the Figure 6 CIs suggest.
func TestVarianceMatchesSimulation(t *testing.T) {
	const n, k, trials = 6, 3, 40000
	p := core.MustNew(k)
	mean, variance, err := Variance(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if variance <= 0 {
		t.Fatalf("variance %v", variance)
	}
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		res, err := harness.RunTrial(harness.TrialSpec{
			N: n, K: k, Seed: rng.StreamSeed(0xabc, uint64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		x := float64(res.Interactions)
		sum += x
		sumsq += x * x
	}
	sampleMean := sum / trials
	sampleVar := (sumsq - sum*sum/trials) / (trials - 1)
	// Sample variance of a heavy-ish distribution converges slowly; allow
	// 10% relative error at 40k trials.
	if math.Abs(sampleVar-variance) > 0.10*variance {
		t.Errorf("exact var %.2f vs sample var %.2f (mean exact %.2f sample %.2f)",
			variance, sampleVar, mean, sampleMean)
	}
	if std := math.Sqrt(variance); std < 0.3*mean {
		t.Errorf("expected heavy dispersion; std %.2f vs mean %.2f", std, mean)
	}
}

// For leader election the variance also has a closed form: T = Σ T_j with
// independent geometric stage times, Var = Σ (1−p_j)/p_j² for
// p_j = j(j−1)/(n(n−1)). Check the solver against it.
func TestLeaderElectionVarianceClosedForm(t *testing.T) {
	p := classic.NewLeaderElection()
	for n := 3; n <= 8; n++ {
		_, variance, err := Variance(p, n)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		N := float64(n)
		for j := 2; j <= n; j++ {
			pj := float64(j) * float64(j-1) / (N * (N - 1))
			want += (1 - pj) / (pj * pj)
		}
		if math.Abs(variance-want) > 1e-6*want {
			t.Errorf("n=%d: exact var %v, closed form %v", n, variance, want)
		}
	}
}

// The exact survival curve must (1) be monotone non-increasing from 1,
// (2) integrate to the expected hitting time (E[T] = Σ_{t>=0} P(T > t)),
// and (3) match empirical survival frequencies at a few horizons.
func TestSurvivalCurve(t *testing.T) {
	const n, k = 6, 3
	p := core.MustNew(k)
	ch, err := New(p, n)
	if err != nil {
		t.Fatal(err)
	}
	E, err := ch.HittingTimes(1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	const maxT = 2000
	surv := ch.Survival(maxT)
	if surv[0] != 1 {
		t.Fatalf("P(T>0) = %v, want 1", surv[0])
	}
	integral := 0.0
	for i, s := range surv {
		if s < -1e-12 || s > 1+1e-9 {
			t.Fatalf("survival out of [0,1] at %d: %v", i, s)
		}
		if i > 0 && s > surv[i-1]+1e-12 {
			t.Fatalf("survival increased at %d", i)
		}
		integral += s
	}
	// The truncated sum underestimates E by the tail beyond maxT, which
	// is tiny at this horizon (E ≈ 30).
	if math.Abs(integral-E[0]) > 0.01*E[0] {
		t.Fatalf("∫survival = %v, E = %v", integral, E[0])
	}

	// Empirical check at t = 30 and t = 100.
	const trials = 20000
	var beyond30, beyond100 int
	for i := 0; i < trials; i++ {
		res, err := harness.RunTrial(harness.TrialSpec{
			N: n, K: k, Seed: rng.StreamSeed(0x5f5f, uint64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Interactions > 30 {
			beyond30++
		}
		if res.Interactions > 100 {
			beyond100++
		}
	}
	for _, c := range []struct {
		horizon int
		count   int
	}{{30, beyond30}, {100, beyond100}} {
		got := float64(c.count) / trials
		want := surv[c.horizon]
		se := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 5*se+1e-9 {
			t.Errorf("P(T>%d): empirical %.4f vs exact %.4f (5·SE %.4f)", c.horizon, got, want, 5*se)
		}
	}
}

// Edge lists must not inherit map iteration order: the solvers sum them
// in sequence and float addition is order-sensitive, so chain
// construction must be bit-deterministic. Building the same chain twice
// in one process exercises Go's per-range map-order randomization;
// before New sorted Out[i], this comparison could legitimately fail.
func TestChainEdgeOrderDeterministic(t *testing.T) {
	build := func() *Chain {
		ch, err := New(core.MustNew(3), 6)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	a, b := build(), build()
	for i := range a.Out {
		if len(a.Out[i]) != len(b.Out[i]) {
			t.Fatalf("node %d: edge counts differ across identical builds", i)
		}
		for j := range a.Out[i] {
			if a.Out[i][j] != b.Out[i][j] {
				t.Fatalf("node %d edge %d: %v vs %v across identical builds", i, j, a.Out[i][j], b.Out[i][j])
			}
			if j > 0 && a.Out[i][j-1].To >= a.Out[i][j].To {
				t.Fatalf("node %d: edges not sorted by target: %v", i, a.Out[i])
			}
		}
	}
}
