package protocol

import "fmt"

// Table is a dense, immutable transition-table implementation of Protocol.
// Its Delta is two multiplications and one slice read, so it is the
// preferred representation for simulation; protocols whose rules are
// generated programmatically (like the paper's Algorithm 1) are compiled
// into a Table once and then queried millions of times.
type Table struct {
	name      string
	numStates int
	numGroups int
	initial   State
	// delta[p*numStates+q] holds the ordered result of an interaction
	// between initiator p and responder q.
	delta []Pair
	// fired[p*numStates+q] records whether a non-null rule covers (p,q).
	fired  []bool
	groups []int
	names  []string
}

var _ Protocol = (*Table)(nil)

// Builder accumulates states and rules and produces a validated Table.
// The zero value is not usable; create one with NewBuilder.
type Builder struct {
	name      string
	numGroups int
	initial   State
	states    []string
	groups    []int
	rules     []Rule
	ordered   []bool // parallel to rules: true suppresses the mirror
	symmetric bool   // require symmetric rules at Build time
}

// NewBuilder starts a protocol definition. If symmetric is true, Build
// rejects any asymmetric rule, enforcing the restriction the paper places
// on its protocol class.
func NewBuilder(name string, symmetric bool) *Builder {
	return &Builder{name: name, symmetric: symmetric}
}

// AddState declares a state with a display name and its group under f,
// returning the state's dense index.
func (b *Builder) AddState(name string, group int) State {
	b.states = append(b.states, name)
	b.groups = append(b.groups, group)
	if group > b.numGroups {
		b.numGroups = group
	}
	return State(len(b.states) - 1)
}

// SetInitial designates the initial state s0.
func (b *Builder) SetInitial(s State) { b.initial = s }

// AddRule records the transition (p, q) → (p', q').
//
// Rules are interpreted on unordered encounters: when agents in states p
// and q meet (p != q), the rule fires regardless of which agent the
// scheduler picked first, with the p-agent taking p' and the q-agent q'.
// The Table therefore also installs the mirrored entry (q, p) → (q', p'),
// unless a rule for (q, p) was added explicitly.
func (b *Builder) AddRule(p, q, pp, qq State) {
	b.rules = append(b.rules, Rule{From: Pair{p, q}, To: Pair{pp, qq}})
	b.ordered = append(b.ordered, false)
}

// AddOrderedRule records a transition that applies only with p as the
// initiator and q as the responder; no mirrored entry is installed. This
// is the one-way interaction model of protocols like approximate majority,
// where the initiator converts the responder. Ordered rules break the
// unordered-encounter symmetry, so they are rejected when the builder was
// created with symmetric = true.
func (b *Builder) AddOrderedRule(p, q, pp, qq State) {
	b.rules = append(b.rules, Rule{From: Pair{p, q}, To: Pair{pp, qq}})
	b.ordered = append(b.ordered, true)
}

// Build compiles the accumulated definition into a Table, validating
// determinism (no pair bound twice with different results), symmetry when
// requested, and state bounds.
func (b *Builder) Build() (*Table, error) {
	n := len(b.states)
	if n == 0 {
		return nil, ErrNoStates
	}
	if n > MaxStates {
		return nil, fmt.Errorf("%w: %d", ErrTooManyStates, n)
	}
	if int(b.initial) >= n {
		return nil, fmt.Errorf("%w: s0=%d", ErrInitialOutside, b.initial)
	}
	t := &Table{
		name:      b.name,
		numStates: n,
		numGroups: b.numGroups,
		initial:   b.initial,
		delta:     make([]Pair, n*n),
		fired:     make([]bool, n*n),
		groups:    append([]int(nil), b.groups...),
		names:     append([]string(nil), b.states...),
	}
	// Identity default.
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			t.delta[p*n+q] = Pair{State(p), State(q)}
		}
	}
	// Explicit rules first; mirrors second so conflicts surface.
	for ri, r := range b.rules {
		if int(r.From.P) >= n || int(r.From.Q) >= n || int(r.To.P) >= n || int(r.To.Q) >= n {
			return nil, fmt.Errorf("%w: rule %v", ErrDeltaOutside, r)
		}
		if b.symmetric && (!r.IsSymmetric() || b.ordered[ri]) {
			return nil, fmt.Errorf("%w: rule %v", ErrAsymmetric, r)
		}
		idx := int(r.From.P)*n + int(r.From.Q)
		if t.fired[idx] && t.delta[idx] != r.To {
			return nil, fmt.Errorf("%w: pair (%s,%s) bound to both (%d,%d) and (%d,%d)",
				ErrNotDeterministic, t.names[r.From.P], t.names[r.From.Q],
				t.delta[idx].P, t.delta[idx].Q, r.To.P, r.To.Q)
		}
		t.delta[idx] = r.To
		t.fired[idx] = true
	}
	for ri, r := range b.rules {
		if r.From.P == r.From.Q || b.ordered[ri] {
			continue
		}
		idx := int(r.From.Q)*n + int(r.From.P)
		mirror := Pair{r.To.Q, r.To.P}
		if t.fired[idx] {
			if t.delta[idx] != mirror {
				return nil, fmt.Errorf("%w: pair (%s,%s) has conflicting mirror",
					ErrNotDeterministic, t.names[r.From.Q], t.names[r.From.P])
			}
			continue
		}
		t.delta[idx] = mirror
		t.fired[idx] = true
	}
	return t, nil
}

// MustBuild is Build that panics on error; for protocol constructors whose
// inputs are validated before building (e.g. the k-partition generator).
func (b *Builder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Protocol.
func (t *Table) Name() string { return t.name }

// NumStates implements Protocol.
func (t *Table) NumStates() int { return t.numStates }

// NumGroups implements Protocol.
func (t *Table) NumGroups() int { return t.numGroups }

// InitialState implements Protocol.
func (t *Table) InitialState() State { return t.initial }

// Delta implements Protocol.
func (t *Table) Delta(p, q State) (Pair, bool) {
	idx := int(p)*t.numStates + int(q)
	return t.delta[idx], t.fired[idx]
}

// Group implements Protocol.
func (t *Table) Group(s State) int { return t.groups[s] }

// StateName implements Protocol.
func (t *Table) StateName(s State) string {
	if int(s) < len(t.names) {
		return t.names[s]
	}
	return fmt.Sprintf("state#%d", s)
}

// NonNullRuleCount returns the number of ordered pairs covered by a
// non-null rule; a cheap structural fingerprint used in tests.
func (t *Table) NonNullRuleCount() int {
	c := 0
	for i, f := range t.fired {
		if f && t.delta[i] != (Pair{State(i / t.numStates), State(i % t.numStates)}) {
			c++
		}
	}
	return c
}
