package stats

import "testing"

func TestQuantileOf(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7} // unsorted on purpose
	if got := QuantileOf(xs, 0.5); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := QuantileOf(xs, 0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := QuantileOf(xs, 1); got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
	// The input must not be reordered.
	if xs[0] != 9 || xs[4] != 7 {
		t.Fatalf("QuantileOf mutated its input: %v", xs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	QuantileOf(nil, 0.5)
}
