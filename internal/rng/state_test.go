package rng

import (
	"testing"
	"testing/quick"
)

// Round trip: marshal mid-stream, restore into a fresh generator, and the
// two streams must coincide forever after (checked for a prefix).
func TestStateRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		make func() Stateful
	}{
		{"splitmix64", func() Stateful { return NewSplitMix64(123) }},
		{"xoshiro256", func() Stateful { return NewXoshiro256(123) }},
		{"pcg32", func() Stateful { return NewPCG32(123, 45) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.make()
			for i := 0; i < 777; i++ {
				g.Uint64()
			}
			state := g.MarshalState()
			h := c.make()
			if err := h.UnmarshalState(state); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				if a, b := g.Uint64(), h.Uint64(); a != b {
					t.Fatalf("streams diverged at %d: %d vs %d", i, a, b)
				}
			}
		})
	}
}

// Cross-type state must be rejected, as must truncated and degenerate
// states.
func TestUnmarshalRejectsMismatches(t *testing.T) {
	x := NewXoshiro256(1)
	p := NewPCG32(1, 2)
	s := NewSplitMix64(1)
	if err := x.UnmarshalState(p.MarshalState()); err == nil {
		t.Fatal("xoshiro accepted pcg state")
	}
	if err := p.UnmarshalState(s.MarshalState()); err == nil {
		t.Fatal("pcg accepted splitmix state")
	}
	if err := s.UnmarshalState(nil); err == nil {
		t.Fatal("splitmix accepted nil")
	}
	if err := x.UnmarshalState(x.MarshalState()[:5]); err == nil {
		t.Fatal("xoshiro accepted truncated state")
	}
	// All-zero xoshiro state is a degenerate fixed point.
	zero := make([]byte, 33)
	zero[0] = 2 // tagXoshiro256
	if err := x.UnmarshalState(zero); err == nil {
		t.Fatal("xoshiro accepted all-zero state")
	}
	// Even PCG increment breaks the LCG's full period.
	even := make([]byte, 17)
	even[0] = 3 // tagPCG32
	if err := p.UnmarshalState(even); err == nil {
		t.Fatal("pcg accepted even increment")
	}
}

func TestRandStatePlumbing(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	state := r.MarshalState()
	if state == nil {
		t.Fatal("Rand over xoshiro returned nil state")
	}
	r2 := New(0)
	if err := r2.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if r.Uint64() != r2.Uint64() {
		t.Fatal("restored Rand diverges")
	}
}

type opaqueSource struct{}

func (opaqueSource) Uint64() uint64 { return 4 }

func TestRandStateWithOpaqueSource(t *testing.T) {
	r := FromSource(opaqueSource{})
	if r.MarshalState() != nil {
		t.Fatal("opaque source produced state")
	}
	if err := r.UnmarshalState([]byte{1}); err == nil {
		t.Fatal("opaque source accepted state")
	}
}

// Property: marshal → unmarshal → marshal is the identity on state bytes,
// for arbitrary stream positions.
func TestMarshalIdempotent(t *testing.T) {
	f := func(seed uint64, skip uint8) bool {
		g := NewXoshiro256(seed)
		for i := 0; i < int(skip); i++ {
			g.Uint64()
		}
		s1 := g.MarshalState()
		h := NewXoshiro256(0)
		if err := h.UnmarshalState(s1); err != nil {
			return false
		}
		s2 := h.MarshalState()
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
