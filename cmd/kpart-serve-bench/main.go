// Command kpart-serve-bench load-tests the serving layer against a
// loopback listener and writes BENCH_serve.json, the service companion
// to BENCH_kpart.json: req/s, client-observed latency quantiles, and
// the cache hit rate under a fixed request mix.
//
// The mix is deliberately cache-friendly and fixed across runs so the
// numbers are comparable PR to PR: every client round-robins the same
// -unique trial specs (two spec families, small and medium), so the
// first pass through the set pays for simulation and every later
// request exercises the content-addressed replay path — which is the
// hot path a result service actually serves.
//
// Usage:
//
//	kpart-serve-bench [-out BENCH_serve.json] [-clients 8]
//	                  [-requests 2000] [-unique 64] [-workers 0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// specMix returns the fixed request bodies the clients cycle through:
// alternating small (n=16, k=3) and medium (n=48, k=4) trials, seeds
// 0..unique-1. Fixed mix, fixed seeds — the benchmark measures the
// server, not the workload generator.
func specMix(unique int) []string {
	bodies := make([]string, unique)
	for i := range bodies {
		if i%2 == 0 {
			bodies[i] = fmt.Sprintf(`{"n":16,"k":3,"seed":%d}`, i)
		} else {
			bodies[i] = fmt.Sprintf(`{"n":48,"k":4,"seed":%d}`, i)
		}
	}
	return bodies
}

// benchDoc is the BENCH_serve.json document.
type benchDoc struct {
	CreatedAt string `json:"created_at"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Clients     int `json:"clients"`
	Requests    int `json:"requests"`
	UniqueSpecs int `json:"unique_specs"`
	Workers     int `json:"workers"`
	QueueDepth  int `json:"queue_depth"`

	DurationNS     int64   `json:"duration_ns"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	LatencyNSP50  float64 `json:"latency_ns_p50"`
	LatencyNSP90  float64 `json:"latency_ns_p90"`
	LatencyNSP99  float64 `json:"latency_ns_p99"`
	LatencyNSMean float64 `json:"latency_ns_mean"`

	CacheMiss    int     `json:"cache_miss"`
	CacheLRU     int     `json:"cache_lru"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Rejected429  int     `json:"rejected_429"`

	// TrialsRun is the server-side count of simulations actually paid
	// for; with a warm mix it should equal unique_specs.
	TrialsRun uint64 `json:"trials_run"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_serve.json", "output JSON path")
		clients  = flag.Int("clients", 8, "concurrent clients")
		requests = flag.Int("requests", 2000, "total requests across all clients")
		unique   = flag.Int("unique", 64, "distinct trial specs in the mix")
		workers  = flag.Int("workers", 0, "server trial workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", serve.DefaultQueueDepth, "server admission queue depth")
	)
	flag.Parse()

	reg := obs.New("kpart_serve_bench")
	srv := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue, Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	url := "http://" + ln.Addr().String() + "/v1/trials"

	bodies := specMix(*unique)
	perClient := *requests / *clients
	total := perClient * *clients

	type clientStats struct {
		latencies []float64 // ns
		miss, lru int
		rejected  int
	}
	allStats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &allStats[c]
			client := &http.Client{}
			for i := 0; i < perClient; i++ {
				// Interleave clients across the mix so the cold pass is
				// shared, not repeated per client.
				body := bodies[(c+i**clients)%len(bodies)]
				for {
					t0 := time.Now()
					resp, err := client.Post(url, "application/json", strings.NewReader(body))
					if err != nil {
						fatal(err)
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						// Honor the server's backpressure like a real
						// client: count it, back off, retry.
						st.rejected++
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						fatal(fmt.Errorf("POST /v1/trials: status %d", resp.StatusCode))
					}
					st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds()))
					switch resp.Header.Get("X-Kpart-Cache") {
					case "miss":
						st.miss++
					default:
						st.lru++
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []float64
	miss, lru, rejected := 0, 0, 0
	for i := range allStats {
		latencies = append(latencies, allStats[i].latencies...)
		miss += allStats[i].miss
		lru += allStats[i].lru
		rejected += allStats[i].rejected
	}
	sort.Float64s(latencies)

	var trialsRun uint64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "serve/trials_run" {
			trialsRun = m.Value
		}
	}

	doc := benchDoc{
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),

		Clients:     *clients,
		Requests:    total,
		UniqueSpecs: *unique,
		Workers:     srv.Pool().Workers(),
		QueueDepth:  srv.Pool().QueueCap(),

		DurationNS:     elapsed.Nanoseconds(),
		RequestsPerSec: float64(total) / elapsed.Seconds(),

		LatencyNSP50:  stats.Quantile(latencies, 0.50),
		LatencyNSP90:  stats.Quantile(latencies, 0.90),
		LatencyNSP99:  stats.Quantile(latencies, 0.99),
		LatencyNSMean: stats.Mean(latencies),

		CacheMiss:    miss,
		CacheLRU:     lru,
		CacheHitRate: float64(lru) / float64(total),
		Rejected429:  rejected,

		TrialsRun: trialsRun,
	}

	srv.Shutdown()
	_ = httpSrv.Close()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("kpart-serve-bench: %d requests in %v (%.0f req/s, %.1f%% cache hits, %d trials computed) -> %s\n",
		total, elapsed.Round(time.Millisecond), doc.RequestsPerSec, 100*doc.CacheHitRate, trialsRun, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-serve-bench:", err)
	os.Exit(1)
}
