package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/report"
	"repro/internal/stats"
)

// This file turns aggregated experiment points into report artifacts:
// series for ASCII charts, tables, CSV files, and the growth-fit readouts
// that mechanize the paper's Section 5 conclusions.

// ToSeries converts a KSeries sweep (x = n) into a chart series.
func ToSeries(s KSeries) report.Series {
	out := report.Series{Name: fmt.Sprintf("k=%d", s.K)}
	for _, p := range s.Points {
		out.X = append(out.X, float64(p.N))
		out.Y = append(out.Y, p.Mean)
	}
	return out
}

// Fig6Series converts Figure 6 points (x = k) into a chart series.
func Fig6Series(pts []Point) report.Series {
	out := report.Series{Name: "n=960"}
	for _, p := range pts {
		out.X = append(out.X, float64(p.K))
		out.Y = append(out.Y, p.Mean)
	}
	if len(pts) > 0 {
		out.Name = fmt.Sprintf("n=%d", pts[0].N)
	}
	return out
}

// SweepTable renders KSeries sweeps as a table with one row per (k, n).
func SweepTable(series []KSeries) *report.Table {
	t := report.NewTable("k", "n", "trials", "mean_interactions", "ci95", "median", "p90", "min", "max", "unconverged")
	for _, s := range series {
		for _, p := range s.Points {
			t.AddRow(s.K, p.N, p.Trials, p.Mean, p.CI95, p.Median, p.P90, p.Min, p.Max, p.Unconverged)
		}
	}
	return t
}

// Fig6Table renders Figure 6 points.
func Fig6Table(pts []Point) *report.Table {
	t := report.NewTable("n", "k", "trials", "mean_interactions", "ci95", "median", "p90", "min", "max", "unconverged")
	for _, p := range pts {
		t.AddRow(p.N, p.K, p.Trials, p.Mean, p.CI95, p.Median, p.P90, p.Min, p.Max, p.Unconverged)
	}
	return t
}

// GroupingTable renders the Figure 4 decomposition: one row per n, one
// column per grouping (plus remainder tail).
func GroupingTable(s KSeries) *report.Table {
	maxCols := 0
	for _, p := range s.Points {
		if len(p.MeanDeltas) > maxCols {
			maxCols = len(p.MeanDeltas)
		}
	}
	header := []string{"n"}
	for i := 1; i <= maxCols; i++ {
		header = append(header, fmt.Sprintf("grouping_%d", i))
	}
	t := report.NewTable(header...)
	for _, p := range s.Points {
		row := make([]any, 0, maxCols+1)
		row = append(row, p.N)
		for i := 0; i < maxCols; i++ {
			if i < len(p.MeanDeltas) {
				row = append(row, p.MeanDeltas[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// GroupingBars renders a KSeries with MeanDeltas as a stacked bar chart
// (the shape of Figure 4).
func GroupingBars(s KSeries) *report.StackedBars {
	bars := &report.StackedBars{
		Title:  fmt.Sprintf("Per-grouping interactions, k=%d (Figure 4 shape)", s.K),
		XLabel: "population size n",
	}
	maxCols := 0
	for _, p := range s.Points {
		bars.X = append(bars.X, float64(p.N))
		bars.Values = append(bars.Values, p.MeanDeltas)
		if len(p.MeanDeltas) > maxCols {
			maxCols = len(p.MeanDeltas)
		}
	}
	for i := 1; i <= maxCols; i++ {
		bars.Segments = append(bars.Segments, fmt.Sprintf("%d-grouping", i))
	}
	return bars
}

// GrowthReadout fits the three growth models to a series and renders the
// paper's qualitative conclusion for it.
func GrowthReadout(name string, x, y []float64) (string, error) {
	g, err := stats.FitGrowth(x, y)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"%s: best model = %s | linear r²=%.4f | power r²=%.4f (exponent %.2f) | exponential r²=%.4f (rate %.3f)",
		name, g.BestModel(), g.Linear.R2, g.Power.R2, g.Power.Slope, g.Exponential.R2, g.Exponential.Slope), nil
}

// CompareTable renders comparison rows.
func CompareTable(rows []CompareResult) *report.Table {
	t := report.NewTable("protocol", "n", "k", "states", "trials", "mean_interactions", "ci95", "mean_spread", "worst_spread", "unconverged")
	for _, r := range rows {
		t.AddRow(r.Name, r.N, r.K, r.States, r.Trials, r.Mean, r.CI95, r.MeanSpread, r.WorstSpread, r.Unconverged)
	}
	return t
}

// SchedulerTable renders scheduler-ablation rows.
func SchedulerTable(rows []SchedulerAblationRow) *report.Table {
	t := report.NewTable("scheduler", "n", "k", "trials", "mean_interactions", "ci95", "unconverged")
	for _, r := range rows {
		t.AddRow(r.Scheduler, r.N, r.K, r.Trials, r.Mean, r.CI95, r.Unconverged)
	}
	return t
}

// WriteCSVFile writes a table's CSV form to dir/name, creating dir.
func WriteCSVFile(dir, name string, t *report.Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := io.WriteString(f, t.CSV()); err != nil {
		_ = f.Close() // surfacing the write error; close is cleanup
		return "", err
	}
	return path, f.Close()
}
