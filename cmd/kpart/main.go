// Command kpart runs one simulation of the uniform k-partition protocol
// and reports the outcome: interactions to stability, the final group
// sizes, and (optionally) a full interaction trace in JSON Lines.
//
// Usage:
//
//	kpart -n 24 -k 4 [-seed 1] [-max 0] [-rules] [-trace out.jsonl] [-v]
//	      [-metrics metrics.jsonl] [-debug-addr :6060] [-progress N]
//
// Observability: -metrics writes an internal/obs snapshot (per-rule
// firing counts, phase timings, engine totals) as JSONL after the run;
// -debug-addr serves live pprof and /debug/vars while the run is hot;
// -v routes through the obs Progress reporter (interactions/sec,
// productive %, spread) in addition to the per-grouping marks.
//
// Exit status is non-zero if the run hits the interaction cap before
// stabilizing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 24, "population size (>= 3)")
		k         = flag.Int("k", 4, "number of groups (>= 2)")
		seed      = flag.Uint64("seed", 1, "random scheduler seed")
		maxI      = flag.Uint64("max", 0, "interaction cap (0 = engine default)")
		rules     = flag.Bool("rules", false, "print the protocol's transition rules and exit")
		dot       = flag.Bool("dot", false, "print the protocol's state machine as Graphviz DOT and exit")
		tracePath = flag.String("trace", "", "write a JSONL interaction trace to this file")
		verbose   = flag.Bool("v", false, "print live progress and per-grouping marks")
		metrics   = flag.String("metrics", "", "write an obs metrics snapshot (JSONL) to this file")
		debugAddr = flag.String("debug-addr", "", "serve pprof and /debug/vars on this address (e.g. :6060)")
		progressN = flag.Uint64("progress", 0, "interactions between progress reports (0 = auto with -v)")
	)
	flag.Parse()

	p, err := core.New(*k)
	if err != nil {
		fatal(err)
	}
	if *rules {
		fmt.Printf("%s: %d states (3k-2 = %d), designated initial state %q\n",
			p.Name(), p.NumStates(), 3**k-2, p.StateName(p.InitialState()))
		fmt.Print(protocol.FormatRules(p, protocol.Rules(p)))
		return
	}
	if *dot {
		if err := protocol.WriteDot(os.Stdout, p); err != nil {
			fatal(err)
		}
		return
	}
	if *n < 3 {
		fatal(fmt.Errorf("n must be >= 3 (symmetric protocols cannot partition n=2)"))
	}

	// The registry is enabled whenever someone will read it: a snapshot
	// file, or live /debug/vars. With neither, it is the no-op registry
	// and the instrumentation hooks are not attached at all.
	reg := obs.Nop()
	if *metrics != "" || *debugAddr != "" {
		reg = obs.New("kpart")
		reg.PublishExpvar()
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kpart: debug server on http://%s/debug/pprof (vars at /debug/vars)\n", ln.Addr())
	}

	target, err := p.TargetCounts(*n)
	if err != nil {
		fatal(err)
	}
	pop := population.New(p, *n)
	opts := sim.Options{MaxInteractions: *maxI}

	gc := &sim.GroupingCounter{Watch: p.G(*k)}
	opts.Hooks = append(opts.Hooks, gc)

	tally := core.NewTally(p)
	opts.Hooks = append(opts.Hooks, sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		tally.Observe(s.Before.P, s.Before.Q)
	}))

	if reg.Enabled() {
		opts.Hooks = append(opts.Hooks, newRuleTally(reg, p), obs.NewPhaseTimer(reg, p.G(*k)))
	}
	if *verbose || *progressN > 0 {
		capI := *maxI
		if capI == 0 {
			capI = sim.DefaultMaxInteractions
		}
		opts.Hooks = append(opts.Hooks, &obs.Progress{
			Every: *progressN, // 0 = obs.DefaultProgressEvery
			Cap:   capI,
			Label: fmt.Sprintf("n=%d k=%d", *n, *k),
		})
	}

	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer traceFile.Close()
		opts.Hooks = append(opts.Hooks, &trace.Writer{W: traceFile})
	}

	start := time.Now()
	res, err := sim.Run(pop, sched.NewRandom(*seed), sim.NewCountTarget(p.CanonMap(), target), opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("protocol   %s (%d states)\n", p.Name(), p.NumStates())
	fmt.Printf("population n=%d, seed=%d\n", *n, *seed)
	if res.Converged {
		fmt.Printf("stabilized after %d interactions (%d productive)\n", res.Interactions, res.Productive)
	} else {
		fmt.Printf("NOT stable after %d interactions (cap reached)\n", res.Interactions)
	}
	fmt.Printf("group sizes %v (spread %d)\n", res.GroupSizes, res.Spread())
	fmt.Printf("final config %s\n", pop)
	if *verbose {
		rate := float64(res.Interactions) / wall.Seconds()
		fmt.Printf("wall time %v (%.3g interactions/sec), productive %.1f%%\n",
			wall.Round(time.Microsecond), rate, 100*float64(res.Productive)/float64(res.Interactions))
		for i, m := range gc.Marks {
			fmt.Printf("  grouping %d complete at interaction %d\n", i+1, m)
		}
		fmt.Println("rule-family tally:")
		for r := core.RuleKind(0); int(r) < core.NumRuleKinds; r++ {
			if c := tally.Counts[r]; c > 0 {
				fmt.Printf("  %-6s %d\n", r, c)
			}
		}
		fmt.Printf("demolition fraction of productive interactions: %.4f\n", tally.DemolitionFraction())
	}
	if *metrics != "" {
		if err := reg.Snapshot().WriteFile(*metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics snapshot %s\n", *metrics)
	}
	if !res.Converged {
		os.Exit(1)
	}
}

// newRuleTally wires the obs per-rule counters to Algorithm 1's rule
// families via core's pair classifier.
func newRuleTally(reg *obs.Registry, p *core.Protocol) *obs.RuleTally {
	names := make([]string, 0, core.NumRuleKinds-1)
	for kind := core.RuleNull + 1; int(kind) < core.NumRuleKinds; kind++ {
		names = append(names, kind.String())
	}
	return obs.NewRuleTally(reg, names, func(a, b protocol.State) int {
		return int(p.ClassifyPair(a, b)) - 1
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart:", err)
	os.Exit(2)
}
