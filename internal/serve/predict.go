package serve

// POST /v1/predict: the analytical-twin endpoint. Unlike trials and
// sweeps it never enqueues work — a prediction is a deterministic
// computation (internal/twin), answered synchronously on the request
// goroutine and cached by content-addressed key so repeated questions
// replay byte-identically. This file is in the determinism analyzer's
// scope: the key, the record, and the handler must not read the wall
// clock (request latency is measured by the instrument wrapper at the
// HTTP edge).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/harness"
	"repro/internal/twin"
)

// PredictRequest is the JSON body of POST /v1/predict: the wire form of
// a twin.Spec.
type PredictRequest struct {
	N          int  `json:"n"`
	K          int  `json:"k"`
	Milestones bool `json:"milestones,omitempty"`
}

// Spec validates the request and returns the prediction spec it names.
// Errors wrap harness.ErrInvalidSpec; the server maps them to 400 before
// any model runs (validation-before-admission, same as trials).
func (r PredictRequest) Spec() (twin.Spec, error) {
	s := twin.Spec{N: r.N, K: r.K, Milestones: r.Milestones}
	if err := s.Validate(); err != nil {
		return twin.Spec{}, err
	}
	return s, nil
}

// PredictKey is the stable content hash identifying a prediction: it
// covers every field that determines the answer (the question) and
// nothing else, in the same mold as harness.SpecKey for trials.
func PredictKey(s twin.Spec) string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"kpart-predict/v1 n=%d k=%d milestones=%t", s.N, s.K, s.Milestones)))
	return hex.EncodeToString(h[:16])
}

// PredictRecord is the canonical POST /v1/predict response document. Its
// encoded bytes are content-addressed by PredictKey: a cache hit is
// byte-identical to the response that first computed it, and because the
// twin itself is deterministic, so is a recomputation after eviction.
type PredictRecord struct {
	SpecKey    string          `json:"spec_key"`
	Prediction twin.Prediction `json:"prediction"`
}

// Encode marshals the record into its canonical byte form.
func (rec PredictRecord) Encode() ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding prediction %s: %w", rec.SpecKey, err)
	}
	return b, nil
}

// handlePredict: POST /v1/predict. Validate before anything else; serve
// from the prediction cache when possible; otherwise answer with the
// auto-selected twin rung, synchronously — the worker pool and its
// admission queue are never involved.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := PredictKey(spec)
	root, finish := s.startRequestSpan(w, r, "predict", key)
	defer finish()
	if body, ok := s.predictions.Get(key); ok {
		root.SetAttr("cache", "lru")
		writeRecord(w, "lru", body)
		return
	}
	pr, err := twin.Auto(spec)
	if err != nil {
		root.SetAttr("outcome", "error")
		// Validation already passed, so a failure here is a model limit
		// (e.g. no rung fits), not a client error — unless the twin's
		// own validation disagrees, which still maps to 400.
		if errors.Is(err, harness.ErrInvalidSpec) {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	root.SetAttr("model", pr.Model).SetAttr("fidelity", string(pr.Fidelity))
	body, err := PredictRecord{SpecKey: key, Prediction: pr}.Encode()
	if err != nil {
		root.SetAttr("outcome", "error")
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.predictions.Put(key, body)
	root.SetAttr("cache", "miss")
	writeRecord(w, "miss", body)
}
