package harness

// SpecKey is the content address of a trial result: the serving layer's
// cache, the journal's resume index, and GET /v1/results/{speckey} all
// key on it. If TrialSpec ever grows a field that SpecKey does not
// hash, two different trials collide under one key and the cache
// silently serves the wrong result. This test makes that drift a
// compile-visible failure: every TrialSpec field must be registered
// here with a mutation, and every mutation must change the key.

import (
	"reflect"
	"testing"
)

// specKeyMutations names every TrialSpec field SpecKey covers, with a
// perturbation that must produce a different key. Adding a field to
// TrialSpec without extending SpecKey AND this table fails the test.
var specKeyMutations = map[string]func(*TrialSpec){
	"N":               func(s *TrialSpec) { s.N++ },
	"K":               func(s *TrialSpec) { s.K++ },
	"Seed":            func(s *TrialSpec) { s.Seed++ },
	"MaxInteractions": func(s *TrialSpec) { s.MaxInteractions++ },
	"Grouping":        func(s *TrialSpec) { s.Grouping = !s.Grouping },
	"Engine":          func(s *TrialSpec) { s.Engine = EngineCount },
	"BatchSize":       func(s *TrialSpec) { s.BatchSize++ },
	"Topology":        func(s *TrialSpec) { s.Topology.Kind = TopologyRing },
	"Fairness":        func(s *TrialSpec) { s.Fairness = FairnessWeak },
	"Churn":           func(s *TrialSpec) { s.Churn.Joins++ },
}

// The scenario axes are structs; covering the outer field is not enough
// — every SUB-field must perturb the key too, or two specs differing
// only in (say) the regular graph's sampling seed alias one cache slot.
var specKeySubMutations = map[string]func(*TrialSpec){
	"Topology.Kind":      func(s *TrialSpec) { s.Topology.Kind = TopologyStar },
	"Topology.Rows":      func(s *TrialSpec) { s.Topology.Rows++ },
	"Topology.Cols":      func(s *TrialSpec) { s.Topology.Cols++ },
	"Topology.Degree":    func(s *TrialSpec) { s.Topology.Degree++ },
	"Topology.GraphSeed": func(s *TrialSpec) { s.Topology.GraphSeed++ },
	"Churn.At":           func(s *TrialSpec) { s.Churn.At++ },
	"Churn.Interval":     func(s *TrialSpec) { s.Churn.Interval++ },
	"Churn.Events":       func(s *TrialSpec) { s.Churn.Events++ },
	"Churn.Joins":        func(s *TrialSpec) { s.Churn.Joins++ },
	"Churn.Leaves":       func(s *TrialSpec) { s.Churn.Leaves++ },
	"Churn.Crash":        func(s *TrialSpec) { s.Churn.Crash = !s.Churn.Crash },
}

func TestSpecKeyCoversEveryTrialSpecField(t *testing.T) {
	typ := reflect.TypeOf(TrialSpec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := specKeyMutations[name]; !ok {
			t.Errorf("TrialSpec.%s is not covered by SpecKey: extend the hash in SpecKey and register a mutation here, or identical-looking specs with different %s will collide in the result cache",
				name, name)
		}
	}
	for name := range specKeyMutations {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("specKeyMutations lists %s, which TrialSpec no longer has", name)
		}
	}
	// Same contract one level down for the struct-valued axes.
	for outer, typ := range map[string]reflect.Type{
		"Topology": reflect.TypeOf(TopologySpec{}),
		"Churn":    reflect.TypeOf(ChurnSpec{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			name := outer + "." + typ.Field(i).Name
			if _, ok := specKeySubMutations[name]; !ok {
				t.Errorf("TrialSpec.%s is not covered by SpecKey: register a sub-field mutation", name)
			}
		}
	}
}

func TestSpecKeyPerturbedByEveryField(t *testing.T) {
	base := TrialSpec{N: 24, K: 4, Seed: 7, MaxInteractions: 1000, Grouping: false, Engine: EngineAgent}
	baseKey := SpecKey(base)
	if again := SpecKey(base); again != baseKey {
		t.Fatalf("SpecKey is not deterministic: %s vs %s", baseKey, again)
	}
	for _, muts := range []map[string]func(*TrialSpec){specKeyMutations, specKeySubMutations} {
		for name, mutate := range muts {
			spec := base
			mutate(&spec)
			if spec == base {
				t.Errorf("mutation for %s left the spec unchanged; the coverage check proves nothing for it", name)
				continue
			}
			if SpecKey(spec) == baseKey {
				t.Errorf("SpecKey ignores TrialSpec.%s: two specs differing only in %s share key %s",
					name, name, baseKey)
			}
		}
	}
}
