package obs

import (
	"net"
	"net/http"

	// Register the standard debug handlers on http.DefaultServeMux:
	// /debug/pprof/* (CPU, heap, goroutine, block, mutex profiles) and
	// /debug/vars (expvar JSON, including any registry published via
	// PublishExpvar).
	_ "net/http/pprof"
)

// ServeDebug starts an HTTP server on addr (e.g. ":6060") serving the
// process's debug endpoints — net/http/pprof under /debug/pprof and
// expvar under /debug/vars — and returns the live listener so callers
// can report the bound address (addr may use port 0). The server runs
// until the process exits; long-running experiment binaries attach it
// behind an opt-in -debug-addr flag so a hot run can be profiled without
// editing code.
func ServeDebug(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		// Serve exits only when the listener closes at process death;
		// the error is of no interest to the simulation.
		_ = http.Serve(ln, nil)
	}()
	return ln, nil
}
