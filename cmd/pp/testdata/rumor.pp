# One-way epidemic: pp -f rumor.pp -init "informed=1,susceptible=49"
protocol rumor
init susceptible
group informed 1
group susceptible 2
orule informed susceptible -> informed informed
