package harness

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTrialStabilizes(t *testing.T) {
	res, err := RunTrial(TrialSpec{N: 20, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions == 0 {
		t.Fatalf("%+v", res)
	}
	if res.Spread > 1 {
		t.Fatalf("spread %d", res.Spread)
	}
}

func TestRunTrialGroupingMarks(t *testing.T) {
	res, err := RunTrial(TrialSpec{N: 22, K: 4, Seed: 2, Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Marks) != 22/4 {
		t.Fatalf("got %d marks, want 5", len(res.Marks))
	}
}

func TestRunTrialRejectsTinyN(t *testing.T) {
	if _, err := RunTrial(TrialSpec{N: 2, K: 3, Seed: 1}); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	a, err := RunTrial(TrialSpec{N: 30, K: 5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(TrialSpec{N: 30, K: 5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interactions != b.Interactions || a.Productive != b.Productive {
		t.Fatalf("same seed, different outcomes: %d vs %d", a.Interactions, b.Interactions)
	}
}

func TestProtoCacheSharesInstances(t *testing.T) {
	if Proto(4) != Proto(4) {
		t.Fatal("cache returned distinct instances")
	}
	if Proto(4) == Proto(5) {
		t.Fatal("cache conflated different k")
	}
}

// RunMany must return results in input order regardless of worker count,
// and match serial execution exactly.
func TestRunManyOrderAndDeterminism(t *testing.T) {
	specs := make([]TrialSpec, 12)
	for i := range specs {
		specs[i] = TrialSpec{N: 15 + i, K: 3, Seed: uint64(100 + i)}
	}
	serial := make([]TrialResult, len(specs))
	for i, s := range specs {
		r, err := RunTrial(s)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := RunMany(specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Interactions != serial[i].Interactions || got[i].Spec.N != specs[i].N {
				t.Fatalf("workers=%d: result %d diverged", workers, i)
			}
		}
	}
}

func TestRunManySurfacesErrors(t *testing.T) {
	specs := []TrialSpec{{N: 20, K: 3, Seed: 1}, {N: 1, K: 3, Seed: 2}}
	if _, err := RunMany(specs, 2); err == nil {
		t.Fatal("invalid spec not surfaced")
	}
}

func TestAggregateBasics(t *testing.T) {
	trials := []TrialResult{
		{Interactions: 100, Converged: true},
		{Interactions: 200, Converged: true},
		{Interactions: 300, Converged: true},
		{Interactions: 5, Converged: false},
	}
	pt := Aggregate(12, 4, trials)
	if pt.Mean != 200 {
		t.Fatalf("mean %v", pt.Mean)
	}
	if pt.Unconverged != 1 {
		t.Fatalf("unconverged %d", pt.Unconverged)
	}
	if pt.Min != 100 || pt.Max != 300 {
		t.Fatalf("min/max %d %d", pt.Min, pt.Max)
	}
	if pt.CI95 <= 0 {
		t.Fatal("zero CI for dispersed sample")
	}
}

func TestAggregateEmpty(t *testing.T) {
	pt := Aggregate(10, 2, nil)
	if pt.Mean != 0 || pt.Trials != 0 {
		t.Fatalf("%+v", pt)
	}
}

func TestAggregateDeltasSumToMean(t *testing.T) {
	// Two converged trials of (n=9, k=3): 3 groupings, no remainder.
	trials := []TrialResult{
		{Interactions: 100, Converged: true, Marks: []uint64{10, 40, 100}},
		{Interactions: 200, Converged: true, Marks: []uint64{20, 80, 200}},
	}
	pt := Aggregate(9, 3, trials)
	if len(pt.MeanDeltas) != 3 {
		t.Fatalf("deltas %v", pt.MeanDeltas)
	}
	sum := 0.0
	for _, d := range pt.MeanDeltas {
		sum += d
	}
	if sum != pt.Mean {
		t.Fatalf("deltas sum %v != mean %v", sum, pt.Mean)
	}
	// With a remainder (n=11, k=3): tail column appears.
	trials = []TrialResult{
		{Interactions: 150, Converged: true, Marks: []uint64{10, 40, 100}},
	}
	pt = Aggregate(11, 3, trials)
	if len(pt.MeanDeltas) != 4 {
		t.Fatalf("tail column missing: %v", pt.MeanDeltas)
	}
	if pt.MeanDeltas[3] != 50 {
		t.Fatalf("tail %v", pt.MeanDeltas[3])
	}
}

func TestSweepPointAggregates(t *testing.T) {
	pt, err := SweepPoint(16, 4, 8, 7, 0, false, 4, 0, EngineAgent)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Trials != 8 || pt.Unconverged != 0 || pt.Mean <= 0 {
		t.Fatalf("%+v", pt)
	}
}

func TestRunFig3Small(t *testing.T) {
	series, err := RunFig3(Fig3Config{Ks: []int{3}, NMin: 5, NMax: 12, NStep: 1, Trials: 5, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 8 {
		t.Fatalf("series shape: %d / %d", len(series), len(series[0].Points))
	}
	for _, p := range series[0].Points {
		if p.Mean <= 0 || p.Unconverged > 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestRunFig3DefaultsClampNMin(t *testing.T) {
	series, err := RunFig3(Fig3Config{Ks: []int{6}, NMin: 2, NMax: 9, Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Points[0].N != 8 { // k+2
		t.Fatalf("first n = %d, want 8", series[0].Points[0].N)
	}
}

func TestRunFig5RejectsBadDivisibility(t *testing.T) {
	_, err := RunFig5(Fig5Config{Ks: []int{7}, Base: 120, NFactors: []int{1}, Trials: 1, Seed: 1})
	if err == nil {
		t.Fatal("120 %% 7 != 0 accepted")
	}
}

func TestRunFig5Small(t *testing.T) {
	series, err := RunFig5(Fig5Config{Ks: []int{3, 4}, Base: 12, NFactors: []int{1, 2}, Trials: 3, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 2 {
		t.Fatal("series shape")
	}
	if series[0].Points[0].N != 12 || series[0].Points[1].N != 24 {
		t.Fatalf("ns: %+v", series[0].Points)
	}
}

func TestRunFig6Small(t *testing.T) {
	pts, err := RunFig6(Fig6Config{N: 24, Ks: []int{2, 3, 4}, Trials: 3, Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatal("points")
	}
	for _, p := range pts {
		if p.N != 24 || p.Mean <= 0 {
			t.Fatalf("%+v", p)
		}
	}
}

func TestRunFig6RejectsBadDivisor(t *testing.T) {
	if _, err := RunFig6(Fig6Config{N: 24, Ks: []int{5}, Trials: 1, Seed: 1}); err == nil {
		t.Fatal("bad divisor accepted")
	}
}

func TestCompareRunsAllContenders(t *testing.T) {
	rows, err := Compare(16, 4, 3, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // k=4 is a power of two: all three run
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Unconverged > 0 || r.Mean <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	// The paper's protocol must win on worst spread.
	if rows[0].WorstSpread > 1 {
		t.Fatalf("paper protocol spread %d", rows[0].WorstSpread)
	}
	// State budget claims.
	if rows[0].States != 10 || rows[1].States != 10 || rows[2].States != 10 {
		t.Fatalf("state counts %d %d %d", rows[0].States, rows[1].States, rows[2].States)
	}
}

func TestCompareSkipsUnsupported(t *testing.T) {
	rows, err := Compare(15, 5, 2, 22, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "repeated bipartition" {
			t.Fatal("k=5 should not run the power-of-two contender")
		}
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestSchedulerAblation(t *testing.T) {
	rows, err := RunSchedulerAblation(12, 3, 4, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Unconverged > 0 {
			t.Fatalf("%s did not converge", r.Scheduler)
		}
		if r.Mean <= 0 {
			t.Fatalf("%s mean %v", r.Scheduler, r.Mean)
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	series := []KSeries{{K: 3, Points: []Point{
		{N: 6, K: 3, Trials: 2, Mean: 50, Min: 40, Max: 60, MeanDeltas: []float64{20, 30}},
		{N: 9, K: 3, Trials: 2, Mean: 80, Min: 70, Max: 90, MeanDeltas: []float64{20, 25, 35}},
	}}}
	if s := ToSeries(series[0]); len(s.X) != 2 || s.Name != "k=3" {
		t.Fatalf("%+v", s)
	}
	if tb := SweepTable(series); len(tb.Rows) != 2 {
		t.Fatal("sweep table rows")
	}
	if tb := GroupingTable(series[0]); len(tb.Header) != 4 { // n + 3 groupings
		t.Fatalf("grouping header %v", tb.Header)
	}
	bars := GroupingBars(series[0])
	if len(bars.X) != 2 || len(bars.Segments) != 3 {
		t.Fatalf("bars %+v", bars)
	}
	pts := []Point{{N: 24, K: 2, Mean: 10}, {N: 24, K: 4, Mean: 100}}
	if s := Fig6Series(pts); len(s.X) != 2 || !strings.Contains(s.Name, "24") {
		t.Fatalf("%+v", s)
	}
	if tb := Fig6Table(pts); len(tb.Rows) != 2 {
		t.Fatal("fig6 table")
	}
	readout, err := GrowthReadout("fig6", []float64{2, 4, 6, 8}, []float64{10, 100, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(readout, "exponential") {
		t.Fatalf("readout %q", readout)
	}
}

func TestCompareAndSchedulerTables(t *testing.T) {
	ct := CompareTable([]CompareResult{{Name: "x", N: 10, K: 2, States: 4, Trials: 1, Mean: 5}})
	if len(ct.Rows) != 1 {
		t.Fatal("compare table")
	}
	st := SchedulerTable([]SchedulerAblationRow{{Scheduler: "random", N: 10, K: 2, Trials: 1, Mean: 5}})
	if len(st.Rows) != 1 {
		t.Fatal("scheduler table")
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	tb := SweepTable([]KSeries{{K: 2, Points: []Point{{N: 5, K: 2, Trials: 1, Mean: 9}}}})
	path, err := WriteCSVFile(filepath.Join(dir, "sub"), "fig.csv", tb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "mean_interactions") {
		t.Fatalf("csv content %q", data)
	}
}

func TestSeedForCellMatchesSweep(t *testing.T) {
	// The seed SweepPoint uses for (pointID=5, trial=3) must equal
	// SeedForCell's derivation — the re-run-a-cell contract.
	want := SeedForCell(42, 5, 3)
	got := SeedForCell(42, 5, 3)
	if want != got {
		t.Fatal("SeedForCell not deterministic")
	}
	if SeedForCell(42, 5, 4) == want || SeedForCell(42, 6, 3) == want {
		t.Fatal("seed collisions across cells")
	}
}

func TestSaveLoadJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	doc := ResultDoc{
		Experiment: "fig6",
		Seed:       42,
		Trials:     10,
		Points:     []Point{{N: 960, K: 4, Trials: 10, Mean: 123.4, CI95: 5.6, Min: 100, Max: 150}},
	}
	path, err := SaveJSON(dir, "fig6.json", doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig6" || got.Seed != 42 || len(got.Points) != 1 {
		t.Fatalf("%+v", got)
	}
	if g, w := got.Points[0], doc.Points[0]; g.N != w.N || g.K != w.K || g.Mean != w.Mean ||
		g.CI95 != w.CI95 || g.Min != w.Min || g.Max != w.Max {
		t.Fatalf("point mismatch: %+v vs %+v", g, w)
	}
	if got.CreatedAt == "" {
		t.Fatal("CreatedAt not stamped")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON("/nonexistent/x.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(bad); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveJSONSeriesForm(t *testing.T) {
	dir := t.TempDir()
	doc := ResultDoc{
		Experiment: "fig3",
		Seed:       7,
		Trials:     2,
		Series: []KSeries{{K: 4, Points: []Point{
			{N: 8, K: 4, Trials: 2, Mean: 50, MeanDeltas: []float64{20, 30}},
		}}},
	}
	path, err := SaveJSON(dir, "fig3.json", doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || len(got.Series[0].Points[0].MeanDeltas) != 2 {
		t.Fatalf("%+v", got)
	}
}

func TestTopologySurvey(t *testing.T) {
	rows, err := RunTopologySurvey(9, 3, 6, 13, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d graphs surveyed", len(rows))
	}
	byName := map[string]TopologyRow{}
	for _, r := range rows {
		byName[r.Graph] = r
		if r.Uniform+r.NonUniform+r.Unfrozen != r.Trials {
			t.Fatalf("%s: outcome counts don't add up: %+v", r.Graph, r)
		}
	}
	complete, ok := byName["complete-9"]
	if !ok {
		t.Fatal("complete graph missing from survey")
	}
	if complete.NonUniform != 0 || complete.Uniform == 0 {
		t.Fatalf("complete graph misbehaved: %+v", complete)
	}
	if tb := TopologyTable(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestRunTrialCountEngine(t *testing.T) {
	res, err := RunTrial(TrialSpec{N: 30, K: 4, Seed: 5, Engine: EngineCount})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Spread > 1 {
		t.Fatalf("%+v", res)
	}
	// Null skipping means strictly more interactions than productive steps.
	if res.Productive >= res.Interactions {
		t.Fatalf("no null interactions recorded: %d/%d", res.Productive, res.Interactions)
	}
}

func TestRunTrialCountEngineGrouping(t *testing.T) {
	res, err := RunTrial(TrialSpec{N: 22, K: 4, Seed: 2, Grouping: true, Engine: EngineCount})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Marks) != 22/4 {
		t.Fatalf("count engine recorded %d marks, want 5", len(res.Marks))
	}
	var prev uint64
	for i, m := range res.Marks {
		if m < prev || m > res.Interactions {
			t.Fatalf("mark %d = %d out of order", i, m)
		}
		prev = m
	}
}

// The two engines must agree on mean interactions (same distribution):
// z-test over a moderate sample at one point.
func TestEnginesAgreeOnMeans(t *testing.T) {
	const n, k, trials = 18, 3, 2000
	var sums [2]float64
	var sumsqs [2]float64
	for e, engine := range []Engine{EngineAgent, EngineCount} {
		for i := 0; i < trials; i++ {
			res, err := RunTrial(TrialSpec{N: n, K: k, Engine: engine,
				Seed: SeedForCell(uint64(0xe0+e), 0, i)})
			if err != nil || !res.Converged {
				t.Fatalf("%v", err)
			}
			x := float64(res.Interactions)
			sums[e] += x
			sumsqs[e] += x * x
		}
	}
	mean0, mean1 := sums[0]/trials, sums[1]/trials
	var0 := (sumsqs[0] - sums[0]*sums[0]/trials) / (trials - 1)
	var1 := (sumsqs[1] - sums[1]*sums[1]/trials) / (trials - 1)
	se := math.Sqrt(var0/trials + var1/trials)
	if diff := math.Abs(mean0 - mean1); diff > 4*se {
		t.Fatalf("engine means diverge: %.2f vs %.2f (diff %.2f > 4·SE %.2f)", mean0, mean1, diff, 4*se)
	}
}

func TestRunTrajectory(t *testing.T) {
	series, err := RunTrajectory(TrajectoryConfig{N: 24, Ks: []int{3, 4}, Trials: 6, Seed: 9, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.X) < 5 {
			t.Fatalf("k=%d: only %d samples", s.K, len(s.X))
		}
		// Spread starts at 0 (all agents in group 1... spread over k
		// groups of the all-initial config is n vs 0 = n? No: all agents
		// are in group 1, so spread = n − 0 = n. First sample is the
		// initial config.
		if s.MeanSpread[0] != 24 {
			t.Fatalf("k=%d: initial spread %v, want 24", s.K, s.MeanSpread[0])
		}
		// The final sample must be well below the initial spread and most
		// trials stable by the horizon (HorizonFactor 1.2 of a pilot mean).
		last := len(s.X) - 1
		if s.MeanSpread[last] > 2 {
			t.Fatalf("k=%d: final mean spread %v", s.K, s.MeanSpread[last])
		}
		if s.StableFrac[0] != 0 {
			t.Fatalf("k=%d: stable at time 0", s.K)
		}
		// Stable fraction is monotone non-decreasing.
		for i := 1; i < len(s.StableFrac); i++ {
			if s.StableFrac[i] < s.StableFrac[i-1] {
				t.Fatalf("k=%d: stable fraction decreased at %d", s.K, i)
			}
		}
	}
	if tb := TrajectoryTable(series); len(tb.Rows) == 0 {
		t.Fatal("empty trajectory table")
	}
	if ch := TrajectoryChart(series); len(ch.Series) != 2 {
		t.Fatal("chart series")
	}
}
