package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

// THE contract: a run paused at T and resumed must produce the identical
// future as the uninterrupted run — same states, same counters, at every
// subsequent step.
func TestResumeEquivalence(t *testing.T) {
	p := core.MustNew(4)
	const n = 20
	const pauseAt = 1500
	const extra = 3000

	// Uninterrupted reference run.
	refPop := population.New(p, n)
	refSched := sched.NewRandom(99)
	if _, err := sim.Run(refPop, refSched, sim.After{N: pauseAt + extra}, sim.Options{}); err != nil {
		t.Fatal(err)
	}

	// Run to the pause point, capture, serialize, restore, continue.
	pop := population.New(p, n)
	s := sched.NewRandom(99)
	if _, err := sim.Run(pop, s, sim.After{N: pauseAt}, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	snap, err := Capture(pop, s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	snap2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s2 := sched.NewRandom(0) // wrong seed on purpose; restore overwrites it
	pop2, err := Restore(p, s2, snap2)
	if err != nil {
		t.Fatal(err)
	}
	if pop2.Interactions() != pauseAt {
		t.Fatalf("restored counter %d", pop2.Interactions())
	}
	if _, err := sim.Run(pop2, s2, sim.After{N: pauseAt + extra}, sim.Options{}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if pop2.State(i) != refPop.State(i) {
			t.Fatalf("agent %d diverged after resume: %d vs %d", i, pop2.State(i), refPop.State(i))
		}
	}
	if pop2.Productive() != refPop.Productive() {
		t.Fatalf("productive counters diverged: %d vs %d", pop2.Productive(), refPop.Productive())
	}
}

func TestRestoreRejectsWrongProtocol(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	s := sched.NewRandom(1)
	snap, err := Capture(pop, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(core.MustNew(4), sched.NewRandom(1), snap); !errors.Is(err, ErrProtocolMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestRestoreRejectsWrongScheduler(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	snap, err := Capture(pop, sched.NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(p, sched.NewSweep(), snap); !errors.Is(err, ErrSchedulerMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestCaptureSchedulerWithoutRNG(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	snap, err := Capture(pop, sched.NewSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.RNGState) != 0 {
		t.Fatal("sweep scheduler produced generator state")
	}
	// Restores cleanly (no generator to rehydrate).
	if _, err := Restore(p, sched.NewSweep(), snap); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreRejectsCorruptRNGState(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 6)
	s := sched.NewRandom(1)
	snap, err := Capture(pop, s)
	if err != nil {
		t.Fatal(err)
	}
	snap.RNGState = []byte{0xFF, 1, 2}
	if _, err := Restore(p, sched.NewRandom(2), snap); err == nil {
		t.Fatal("corrupt generator state accepted")
	}
}
