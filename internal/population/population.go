// Package population represents a population of anonymous agents and its
// configuration (the vector of all agent states, Section 2.1 of the paper).
//
// A Population keeps two synchronized views of the configuration:
//
//   - the agent vector states[i], needed because the scheduler picks *agents*
//     (the identity matters for pair selection even though agents are
//     anonymous to the protocol), and
//   - the state-count vector counts[s], needed for O(1) stability checks,
//     invariant checks, and group-size queries.
//
// Applying one interaction updates both in O(1).
package population

import (
	"fmt"

	"repro/internal/protocol"
)

// Population is a mutable configuration of n agents running protocol p.
// It is not safe for concurrent use; parallel trials each own a Population.
type Population struct {
	proto  protocol.Protocol
	states []protocol.State
	counts []int
	// interactions counts every scheduled encounter, including null ones,
	// matching the paper's evaluation metric.
	interactions uint64
	// productive counts encounters where at least one agent changed state.
	productive uint64
}

// New creates a population of n agents, each in the protocol's designated
// initial state. It panics if n < 2 (no pair can interact).
func New(p protocol.Protocol, n int) *Population {
	if n < 2 {
		panic(fmt.Sprintf("population: need n >= 2 agents, got %d", n))
	}
	pop := &Population{
		proto:  p,
		states: make([]protocol.State, n),
		counts: make([]int, p.NumStates()),
	}
	s0 := p.InitialState()
	for i := range pop.states {
		pop.states[i] = s0
	}
	pop.counts[s0] = n
	return pop
}

// FromStates creates a population with an explicit configuration; used by
// the model checker and by tests that start mid-execution.
func FromStates(p protocol.Protocol, states []protocol.State) *Population {
	if len(states) < 2 {
		panic("population: need at least 2 agents")
	}
	pop := &Population{
		proto:  p,
		states: append([]protocol.State(nil), states...),
		counts: make([]int, p.NumStates()),
	}
	for _, s := range states {
		if int(s) >= p.NumStates() {
			panic(fmt.Sprintf("population: state %d outside protocol's %d states", s, p.NumStates()))
		}
		pop.counts[s]++
	}
	return pop
}

// N returns the number of agents.
func (pop *Population) N() int { return len(pop.states) }

// Protocol returns the protocol this population runs.
func (pop *Population) Protocol() protocol.Protocol { return pop.proto }

// State returns agent i's current state.
func (pop *Population) State(i int) protocol.State { return pop.states[i] }

// Count returns the number of agents currently in state s.
func (pop *Population) Count(s protocol.State) int { return pop.counts[s] }

// Counts returns a copy of the state-count vector.
func (pop *Population) Counts() []int {
	return append([]int(nil), pop.counts...)
}

// CountsView returns the live state-count vector. Callers must not modify
// it; it is exposed without copying for per-step hooks on hot paths.
func (pop *Population) CountsView() []int { return pop.counts }

// Interactions returns the number of encounters applied so far (null
// encounters included), the paper's time metric.
func (pop *Population) Interactions() uint64 { return pop.interactions }

// Productive returns the number of encounters that changed some state.
func (pop *Population) Productive() uint64 { return pop.productive }

// Interact applies one encounter between initiator i and responder j,
// returning whether any state changed. It panics if i == j.
func (pop *Population) Interact(i, j int) bool {
	if i == j {
		panic("population: agent cannot interact with itself")
	}
	pop.interactions++
	p, q := pop.states[i], pop.states[j]
	out, _ := pop.proto.Delta(p, q)
	if out.P == p && out.Q == q {
		return false
	}
	pop.productive++
	if out.P != p {
		pop.counts[p]--
		pop.counts[out.P]++
		pop.states[i] = out.P
	}
	if out.Q != q {
		pop.counts[q]--
		pop.counts[out.Q]++
		pop.states[j] = out.Q
	}
	return true
}

// GroupSizes returns the size of each group 1..k at the current
// configuration, indexed 0..k-1.
func (pop *Population) GroupSizes() []int {
	sizes := make([]int, pop.proto.NumGroups())
	for s, c := range pop.counts {
		if c == 0 {
			continue
		}
		sizes[pop.proto.Group(protocol.State(s))-1] += c
	}
	return sizes
}

// Spread returns max group size minus min group size at the current
// configuration; a uniform partition has Spread <= 1.
func (pop *Population) Spread() int {
	sizes := pop.GroupSizes()
	min, max := sizes[0], sizes[0]
	for _, v := range sizes[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// Snapshot returns a copy of the agent state vector.
func (pop *Population) Snapshot() []protocol.State {
	return append([]protocol.State(nil), pop.states...)
}

// Clone returns a deep copy, preserving interaction counters.
func (pop *Population) Clone() *Population {
	return &Population{
		proto:        pop.proto,
		states:       append([]protocol.State(nil), pop.states...),
		counts:       append([]int(nil), pop.counts...),
		interactions: pop.interactions,
		productive:   pop.productive,
	}
}

// SetCounters overwrites the interaction counters; used by
// checkpoint.Restore to resume a run with its history intact.
func (pop *Population) SetCounters(interactions, productive uint64) {
	pop.interactions = interactions
	pop.productive = productive
}

// Reset returns every agent to the designated initial state and zeroes the
// counters, allowing a Population to be reused across benchmark iterations
// without reallocating.
func (pop *Population) Reset() {
	s0 := pop.proto.InitialState()
	for i := range pop.states {
		pop.states[i] = s0
	}
	for i := range pop.counts {
		pop.counts[i] = 0
	}
	pop.counts[s0] = len(pop.states)
	pop.interactions = 0
	pop.productive = 0
}

// String renders the configuration as a count multiset, e.g.
// "{initial:3 g1:2 m2:1}".
func (pop *Population) String() string {
	out := "{"
	first := true
	for s, c := range pop.counts {
		if c == 0 {
			continue
		}
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%s:%d", pop.proto.StateName(protocol.State(s)), c)
	}
	return out + "}"
}
