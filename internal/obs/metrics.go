// Package obs is the observability layer of the simulation stack: a
// zero-dependency metrics core (counters, gauges, power-of-two-bucket
// histograms behind a named Registry), sim.Hook instrumentation for
// rule-level and convergence-phase accounting, a deterministic live
// progress reporter for long runs, and debug endpoints (pprof + expvar)
// any binary can opt into with one flag.
//
// The paper's whole evaluation metric is an interaction count, and the
// costliest workloads legitimately apply 10^8–10^9 encounters, so the
// design constraint is that instrumentation must cost nothing when it is
// off and almost nothing when it is on:
//
//   - every metric has an atomic implementation (safe for the parallel
//     trial runner in internal/harness) and a no-op implementation;
//   - a disabled Registry hands out the no-ops, so hot loops can call
//     Inc/Observe unconditionally;
//   - hooks hold resolved Counter/Histogram values, never name-lookup on
//     the step path.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter interface {
	Inc()
	Add(delta uint64)
	Value() uint64
}

// Gauge is a metric that can go up and down.
type Gauge interface {
	Set(v int64)
	Add(delta int64)
	Value() int64
}

// Histogram accumulates a distribution of uint64 observations in
// power-of-two buckets: bucket i counts observations v with
// bits.Len64(v) == i, i.e. bucket 0 holds v = 0 and bucket i ≥ 1 holds
// v in [2^(i-1), 2^i). Exponential buckets fit the heavy-tailed,
// many-orders-of-magnitude quantities of this repository (interaction
// counts, per-grouping costs, trial wall times) at fixed memory.
type Histogram interface {
	Observe(v uint64)
	// Count is the number of observations; Sum their total.
	Count() uint64
	Sum() uint64
	// Buckets returns the per-bucket counts, index = bits.Len64(v).
	Buckets() []uint64
	// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1),
	// interpolated linearly inside the bucket the quantile lands in.
	// NaN when the histogram is empty.
	Quantile(q float64) float64
}

// numBuckets covers bits.Len64 of every uint64 (0..64).
const numBuckets = 65

// BucketBound returns the inclusive upper bound of bucket i: the largest
// value v with bits.Len64(v) == i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// bucketLow returns the smallest value belonging to bucket i.
func bucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// --- atomic implementations -------------------------------------------------

type atomicCounter struct{ v atomic.Uint64 }

func (c *atomicCounter) Inc()             { c.v.Add(1) }
func (c *atomicCounter) Add(delta uint64) { c.v.Add(delta) }
func (c *atomicCounter) Value() uint64    { return c.v.Load() }

type atomicGauge struct{ v atomic.Int64 }

func (g *atomicGauge) Set(v int64)     { g.v.Store(v) }
func (g *atomicGauge) Add(delta int64) { g.v.Add(delta) }
func (g *atomicGauge) Value() int64    { return g.v.Load() }

type atomicHistogram struct {
	count, sum atomic.Uint64
	buckets    [numBuckets]atomic.Uint64
}

func (h *atomicHistogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

func (h *atomicHistogram) Count() uint64 { return h.count.Load() }
func (h *atomicHistogram) Sum() uint64   { return h.sum.Load() }

func (h *atomicHistogram) Buckets() []uint64 {
	out := make([]uint64, numBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

func (h *atomicHistogram) Quantile(q float64) float64 {
	return quantileOfBuckets(h.Buckets(), h.Count(), q)
}

// quantileOfBuckets walks cumulative bucket counts to the bucket the
// q-quantile falls into and interpolates linearly inside it.
func quantileOfBuckets(buckets []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	cum := 0.0
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(buckets)-1 {
			lo, hi := float64(bucketLow(i)), float64(BucketBound(i))
			if next == cum {
				return hi
			}
			frac := (rank - cum) / (next - cum)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return math.NaN()
}

// --- no-op implementations --------------------------------------------------

type nopCounter struct{}

func (nopCounter) Inc()          {}
func (nopCounter) Add(uint64)    {}
func (nopCounter) Value() uint64 { return 0 }

type nopGauge struct{}

func (nopGauge) Set(int64)    {}
func (nopGauge) Add(int64)    {}
func (nopGauge) Value() int64 { return 0 }

type nopHistogram struct{}

func (nopHistogram) Observe(uint64)           {}
func (nopHistogram) Count() uint64            { return 0 }
func (nopHistogram) Sum() uint64              { return 0 }
func (nopHistogram) Buckets() []uint64        { return nil }
func (nopHistogram) Quantile(float64) float64 { return math.NaN() }
