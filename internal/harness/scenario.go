package harness

// This file is the scenario engine: the spec vocabulary (topology,
// fairness, churn) that generalizes a trial away from the paper's
// baseline assumptions — complete interaction graph, uniform-random
// (globally fair) scheduling, fixed population — and the runner that
// executes such trials on the agent engine.
//
// A scenario trial composes three orthogonal axes:
//
//   - Topology restricts interactions to a graph's edges
//     (topology.NewEdgeScheduler) and arms frozen-configuration
//     detection (topology.FrozenCondition), because restricted graphs
//     can trap the protocol short of uniformity (the star-graph freeze).
//   - Fairness swaps the uniform-random scheduler for the weak-fairness
//     adversary (sched.NewWeakAdversary), which satisfies weak fairness
//     yet can stall the protocol forever — the gap between weak and
//     global fairness, mechanized.
//   - Churn mutates the population mid-run (joins, graceful leaves,
//     crashes) on a fixed interaction-count schedule, using
//     checkpoint.Capture/Restore as the transfer mechanism so the
//     surviving agents' states and the run's counters carry over
//     exactly.
//
// Scenario trials run ONLY on the agent engine: the count and batch
// engines identify agents by state alone, so they cannot express a
// graph (which pairs may meet depends on identity) or churn (which
// agent leaves matters). ValidateSpec enforces this, along with an
// explicit MaxInteractions cap — a scenario run may legitimately never
// converge, so an unbounded one is a spec error rather than a surprise
// four-billion-interaction stall.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TopologyKind enumerates the interaction-graph families a trial can
// request. The zero value is the complete graph — the paper's model —
// so a zero TopologySpec means "no restriction".
type TopologyKind uint8

// The supported interaction-graph families.
const (
	// TopologyComplete is the paper's model: any two agents can meet.
	TopologyComplete TopologyKind = iota
	// TopologyRing is the n-cycle.
	TopologyRing
	// TopologyStar is the star with agent 0 as hub — the documented
	// freeze case: the protocol can trap a non-uniform configuration.
	TopologyStar
	// TopologyGrid is the Rows×Cols grid (Rows·Cols must equal n).
	TopologyGrid
	// TopologyRegular is a random Degree-regular graph sampled from
	// GraphSeed (n·Degree even, Degree < n).
	TopologyRegular
)

// TopologySpec selects a trial's interaction graph. It is comparable
// (the SpecKey drift guard depends on TrialSpec comparability), and its
// zero value is the complete graph.
type TopologySpec struct {
	Kind TopologyKind
	// Rows, Cols shape a grid (TopologyGrid only).
	Rows, Cols int
	// Degree is the regular graph's degree (TopologyRegular only).
	Degree int
	// GraphSeed seeds the regular graph's sampling (TopologyRegular
	// only); it is part of the trial's identity because a different
	// sample is a different graph.
	GraphSeed uint64
}

// IsComplete reports whether the spec means the unrestricted model.
func (t TopologySpec) IsComplete() bool { return t.Kind == TopologyComplete }

// String renders the spec the way the -topology flags spell it.
func (t TopologySpec) String() string {
	switch t.Kind {
	case TopologyComplete:
		return "complete"
	case TopologyRing:
		return "ring"
	case TopologyStar:
		return "star"
	case TopologyGrid:
		return fmt.Sprintf("grid:%dx%d", t.Rows, t.Cols)
	case TopologyRegular:
		if t.GraphSeed != 0 {
			return fmt.Sprintf("regular:%d@%d", t.Degree, t.GraphSeed)
		}
		return fmt.Sprintf("regular:%d", t.Degree)
	}
	return fmt.Sprintf("topology(%d)", uint8(t.Kind))
}

// Build constructs the graph for a population of n agents, or nil for
// the complete topology (the unrestricted scheduler needs no graph).
func (t TopologySpec) Build(n int) (*topology.Graph, error) {
	switch t.Kind {
	case TopologyComplete:
		return nil, nil
	case TopologyRing:
		return topology.Ring(n)
	case TopologyStar:
		return topology.Star(n)
	case TopologyGrid:
		if t.Rows*t.Cols != n {
			return nil, fmt.Errorf("grid %dx%d has %d cells, population has %d agents",
				t.Rows, t.Cols, t.Rows*t.Cols, n)
		}
		return topology.Grid(t.Rows, t.Cols)
	case TopologyRegular:
		return topology.RandomRegular(n, t.Degree, t.GraphSeed)
	}
	return nil, fmt.Errorf("unknown topology kind %d", t.Kind)
}

// ParseTopology maps a -topology flag value to a TopologySpec. Accepted
// forms: "complete" (or ""), "ring", "star", "grid:RxC",
// "regular:D" and "regular:D@SEED". Errors wrap ErrInvalidSpec.
func ParseTopology(s string) (TopologySpec, error) {
	switch s {
	case "", "complete":
		return TopologySpec{}, nil
	case "ring":
		return TopologySpec{Kind: TopologyRing}, nil
	case "star":
		return TopologySpec{Kind: TopologyStar}, nil
	}
	if rest, ok := strings.CutPrefix(s, "grid:"); ok {
		r, c, ok := strings.Cut(rest, "x")
		if ok {
			rows, err1 := strconv.Atoi(r)
			cols, err2 := strconv.Atoi(c)
			if err1 == nil && err2 == nil && rows > 0 && cols > 0 {
				return TopologySpec{Kind: TopologyGrid, Rows: rows, Cols: cols}, nil
			}
		}
		return TopologySpec{}, fmt.Errorf("%w: bad grid topology %q (want grid:RxC)", ErrInvalidSpec, s)
	}
	if rest, ok := strings.CutPrefix(s, "regular:"); ok {
		dpart, spart, hasSeed := strings.Cut(rest, "@")
		d, err := strconv.Atoi(dpart)
		if err != nil || d <= 0 {
			return TopologySpec{}, fmt.Errorf("%w: bad regular topology %q (want regular:D or regular:D@SEED)", ErrInvalidSpec, s)
		}
		t := TopologySpec{Kind: TopologyRegular, Degree: d}
		if hasSeed {
			seed, err := strconv.ParseUint(spart, 10, 64)
			if err != nil {
				return TopologySpec{}, fmt.Errorf("%w: bad regular topology seed in %q", ErrInvalidSpec, s)
			}
			t.GraphSeed = seed
		}
		return t, nil
	}
	return TopologySpec{}, fmt.Errorf("%w: unknown topology %q (want complete, ring, star, grid:RxC or regular:D)", ErrInvalidSpec, s)
}

// Fairness selects the trial's scheduling regime. The zero value is the
// paper's uniform-random scheduler (globally fair with probability 1).
type Fairness uint8

// The supported fairness regimes.
const (
	// FairnessUniform is the uniform-random scheduler, the probabilistic
	// stand-in for global fairness the paper's Section 5 uses.
	FairnessUniform Fairness = iota
	// FairnessWeak is the weak-fairness adversary (sched.WeakAdversary):
	// every pair still interacts infinitely often, but the schedule is
	// chosen adversarially — the protocol is not guaranteed to converge,
	// and at some population sizes provably stalls forever.
	FairnessWeak
)

// String names the regime the way the -fairness flags spell it.
func (f Fairness) String() string {
	switch f {
	case FairnessUniform:
		return "uniform"
	case FairnessWeak:
		return "weak"
	}
	return fmt.Sprintf("fairness(%d)", uint8(f))
}

// ParseFairness maps a -fairness flag value to a Fairness. Errors wrap
// ErrInvalidSpec.
func ParseFairness(s string) (Fairness, error) {
	switch s {
	case "", "uniform":
		return FairnessUniform, nil
	case "weak":
		return FairnessWeak, nil
	}
	return FairnessUniform, fmt.Errorf("%w: unknown fairness %q (want uniform or weak)", ErrInvalidSpec, s)
}

// ChurnSpec schedules population changes at fixed interaction counts:
// Events batches, the first at interaction At and subsequent ones every
// Interval interactions, each adding Joins fresh agents (in the initial
// state) and removing Leaves agents. The zero value means no churn.
type ChurnSpec struct {
	// At is the interaction count of the first batch (must be > 0 when
	// churn is enabled — the initial configuration is not a batch).
	At uint64
	// Interval separates consecutive batches (required when Events > 1).
	Interval uint64
	// Events is the number of batches (>= 1 when churn is enabled).
	Events int
	// Joins is the number of agents added per batch, in state initial.
	Joins int
	// Leaves is the number of agents removed per batch.
	Leaves int
	// Crash selects the departure model: false removes free agents first
	// (graceful departure — an agent that has not committed to a group
	// leaves no hole), true removes uniformly random agents, committed
	// or not (crash — the adversarial case the survival curves measure).
	Crash bool
}

// Enabled reports whether the spec schedules any population change.
func (c ChurnSpec) Enabled() bool { return c.Joins > 0 || c.Leaves > 0 }

// String renders the spec the way the -churn flags spell it.
func (c ChurnSpec) String() string {
	if !c.Enabled() {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "at=%d", c.At)
	if c.Events > 1 {
		fmt.Fprintf(&b, ",every=%d", c.Interval)
	}
	fmt.Fprintf(&b, ",events=%d,join=%d,leave=%d", c.Events, c.Joins, c.Leaves)
	if c.Crash {
		b.WriteString(",crash")
	}
	return b.String()
}

// ParseChurn maps a -churn flag value to a ChurnSpec. The format is a
// comma-separated key=value list: "at=N" (first batch), "every=N"
// (batch interval), "events=N" (batch count, default 1), "join=N",
// "leave=N", and the bare flag "crash". "" and "none" mean no churn.
// Errors wrap ErrInvalidSpec.
func ParseChurn(s string) (ChurnSpec, error) {
	if s == "" || s == "none" {
		return ChurnSpec{}, nil
	}
	c := ChurnSpec{Events: 1}
	for _, part := range strings.Split(s, ",") {
		if part == "crash" {
			c.Crash = true
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return ChurnSpec{}, fmt.Errorf("%w: bad churn field %q (want key=value)", ErrInvalidSpec, part)
		}
		u, err := strconv.ParseUint(val, 10, 63)
		if err != nil {
			return ChurnSpec{}, fmt.Errorf("%w: bad churn value %q: %v", ErrInvalidSpec, part, err)
		}
		switch key {
		case "at":
			c.At = u
		case "every":
			c.Interval = u
		case "events":
			c.Events = int(u)
		case "join":
			c.Joins = int(u)
		case "leave":
			c.Leaves = int(u)
		default:
			return ChurnSpec{}, fmt.Errorf("%w: unknown churn field %q", ErrInvalidSpec, key)
		}
	}
	return c, nil
}

// HasScenario reports whether the spec leaves the paper's baseline model
// (complete graph, uniform-random scheduling, fixed population) on any
// axis — exactly the trials runTrial routes through the scenario runner.
func (s TrialSpec) HasScenario() bool {
	return !s.Topology.IsComplete() || s.Fairness != FairnessUniform || s.Churn.Enabled()
}

// validateScenario checks the scenario axes of a spec; ValidateSpec
// calls it after the baseline fields pass. All failures wrap
// ErrInvalidSpec.
func validateScenario(spec TrialSpec) error {
	switch spec.Fairness {
	case FairnessUniform, FairnessWeak:
	default:
		return fmt.Errorf("%w: unknown fairness %d", ErrInvalidSpec, spec.Fairness)
	}
	switch spec.Topology.Kind {
	case TopologyComplete, TopologyRing, TopologyStar, TopologyGrid, TopologyRegular:
	default:
		return fmt.Errorf("%w: unknown topology kind %d", ErrInvalidSpec, spec.Topology.Kind)
	}
	c := spec.Churn
	if !c.Enabled() && (c.At != 0 || c.Interval != 0 || c.Events != 0 || c.Crash) {
		return fmt.Errorf("%w: churn schedule set without join or leave counts", ErrInvalidSpec)
	}
	if !spec.HasScenario() {
		return nil
	}
	if spec.Engine != EngineAgent {
		return fmt.Errorf("%w: scenario specs (topology %s, fairness %s, churn %s) need the agent engine, got %s — the count engines track states without identities, so graphs and churn are inexpressible there",
			ErrInvalidSpec, spec.Topology, spec.Fairness, spec.Churn, spec.Engine)
	}
	if spec.MaxInteractions == 0 {
		return fmt.Errorf("%w: scenario specs need an explicit MaxInteractions cap (scenario runs may legitimately never converge)", ErrInvalidSpec)
	}
	if c.Enabled() {
		if c.At == 0 {
			return fmt.Errorf("%w: churn needs at > 0 (the initial configuration is not a churn event)", ErrInvalidSpec)
		}
		if c.Events < 1 {
			return fmt.Errorf("%w: churn needs events >= 1, got %d", ErrInvalidSpec, c.Events)
		}
		if c.Events > 1 && c.Interval == 0 {
			return fmt.Errorf("%w: churn with %d events needs every > 0", ErrInvalidSpec, c.Events)
		}
		if c.Joins < 0 || c.Leaves < 0 {
			return fmt.Errorf("%w: negative churn counts", ErrInvalidSpec)
		}
		switch spec.Topology.Kind {
		case TopologyComplete, TopologyRing, TopologyStar:
		default:
			return fmt.Errorf("%w: churn composes only with complete, ring and star topologies (%s cannot be rebuilt at arbitrary sizes)",
				ErrInvalidSpec, spec.Topology)
		}
		if spec.Grouping {
			return fmt.Errorf("%w: grouping marks are undefined under churn (the target group count changes mid-run)", ErrInvalidSpec)
		}
	}
	// Walk the population-size schedule: the target signature and the
	// graph must exist at every size the run will pass through.
	p := Proto(spec.K)
	n := spec.N
	events := 0
	if c.Enabled() {
		events = c.Events
	}
	for ev := 0; ev <= events; ev++ {
		if ev > 0 {
			if c.Leaves >= n {
				return fmt.Errorf("%w: churn event %d removes %d agents from a population of %d",
					ErrInvalidSpec, ev, c.Leaves, n)
			}
			n += c.Joins - c.Leaves
		}
		if _, err := p.TargetCounts(n); err != nil {
			return fmt.Errorf("%w: after churn event %d the population of %d has no stable signature: %v",
				ErrInvalidSpec, ev, n, err)
		}
		if _, err := spec.Topology.Build(n); err != nil {
			return fmt.Errorf("%w: topology %s at population %d: %v", ErrInvalidSpec, spec.Topology, n, err)
		}
	}
	return nil
}

// Seed-stream tags of the scenario runner (see rng.StreamSeed): each
// consumer of randomness gets its own deterministic stream derived from
// the trial seed, so adding one never perturbs the others.
const (
	schedStreamTag = 0x5c4ed1 // per-segment scheduler seeds
	churnStreamTag = 0xc4a51  // crash-victim selection
)

// orientations lists both directions of every edge — the pair domain a
// graph induces for schedulers that work on ordered pairs.
func orientations(g *topology.Graph) [][2]int {
	pairs := make([][2]int, 0, 2*g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		u, v := g.Edge(i)
		pairs = append(pairs, [2]int{u, v}, [2]int{v, u})
	}
	return pairs
}

// scenarioScheduler builds the scheduler of one run segment. Each
// segment (the spans between churn events) gets a fresh scheduler —
// the graph is rebuilt at the segment's population size — under a
// deterministically derived seed, so the whole run remains a pure
// function of the spec.
func scenarioScheduler(spec TrialSpec, p *core.Protocol, n int, segment uint64) (sched.Scheduler, *topology.Graph, error) {
	g, err := spec.Topology.Build(n)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	seed := rng.StreamSeed(spec.Seed, schedStreamTag, segment)
	switch spec.Fairness {
	case FairnessWeak:
		opts := sched.WeakOptions{IsFree: p.IsFree}
		if g != nil {
			opts.Pairs = orientations(g)
		}
		return sched.NewWeakAdversary(seed, opts), g, nil
	default:
		if g != nil {
			return topology.NewEdgeScheduler(g, seed), g, nil
		}
		return sched.NewRandom(seed), g, nil
	}
}

// applyChurn mutates an agent state vector for one churn batch: leaves
// first (graceful mode removes free agents in index order before
// touching committed ones; crash mode removes uniformly random agents),
// then joins append fresh agents in the initial state.
func applyChurn(states []protocol.State, c ChurnSpec, p *core.Protocol, r *rng.Rand) []protocol.State {
	for del := 0; del < c.Leaves && len(states) > 0; del++ {
		victim := -1
		if c.Crash {
			victim = r.Intn(len(states))
		} else {
			for i, st := range states {
				if p.IsFree(st) {
					victim = i
					break
				}
			}
			if victim < 0 {
				victim = 0 // no free agent left; a committed one departs
			}
		}
		states = append(states[:victim], states[victim+1:]...)
	}
	for add := 0; add < c.Joins; add++ {
		states = append(states, p.Initial())
	}
	return states
}

// targetSatisfied reports whether the canonicalized state counts of pop
// match the stable signature for its current size.
func targetSatisfied(p *core.Protocol, pop *population.Population) bool {
	target, err := p.TargetCounts(pop.N())
	if err != nil {
		return false
	}
	canon := p.CanonMap()
	cur := make([]int, len(target))
	for st, c := range pop.CountsView() {
		cur[canon[st]] += c
	}
	for i := range cur {
		if cur[i] != target[i] {
			return false
		}
	}
	return true
}

// runScenarioTrial executes a scenario trial on the agent engine. The
// run is segmented at the churn schedule's interaction counts: each
// segment runs under a freshly built scheduler for the segment's
// population (graph rebuilt, seed derived per segment), and churn
// batches transfer the surviving agents' states and the cumulative
// counters through checkpoint.Capture/Restore. The final segment stops
// on the stable signature of the FINAL population size — or, on a
// restricted graph, when the configuration group-freezes
// (topology.FrozenCondition with the protocol's parity orbits), which
// is how the star-graph freeze surfaces as Frozen=true rather than a
// burned interaction cap.
func runScenarioTrial(ctx context.Context, p *core.Protocol, spec TrialSpec, ropts RunOptions) (TrialResult, error) {
	maxI := spec.MaxInteractions
	// The churn event times inside the run's budget, ascending.
	var events []uint64
	if spec.Churn.Enabled() {
		t := spec.Churn.At
		for ev := 0; ev < spec.Churn.Events && t < maxI; ev++ {
			events = append(events, t)
			t += spec.Churn.Interval
		}
	}
	espan := span.FromContext(ctx).Child("engine/scenario")
	if espan != nil {
		espan.SetAttr("topology", spec.Topology.String()).
			SetAttr("fairness", spec.Fairness.String()).
			SetAttr("churn", spec.Churn.String())
	}
	endSpan := func(pop *population.Population) {
		if espan != nil {
			espan.SetSeq(0, pop.Interactions()).
				SetAttr("interactions", fmt.Sprint(pop.Interactions())).
				SetAttr("productive", fmt.Sprint(pop.Productive()))
			espan.End()
		}
	}

	pop := population.New(p, spec.N)
	churnRNG := rng.New(rng.StreamSeed(spec.Seed, churnStreamTag, 0))
	var gc *sim.GroupingCounter

	for segment := 0; ; segment++ {
		s, g, err := scenarioScheduler(spec, p, pop.N(), uint64(segment))
		if err != nil {
			endSpan(pop)
			return TrialResult{}, err
		}
		final := segment >= len(events)
		var stop sim.StopCondition = sim.Never{}
		opts := sim.Options{MaxInteractions: maxI, Ctx: ctx}
		if ropts.Progress > 0 {
			opts.Hooks = append(opts.Hooks, &obs.Progress{
				Every: ropts.Progress,
				Label: fmt.Sprintf("n=%d k=%d seed=%#x seg=%d", pop.N(), spec.K, spec.Seed, segment),
			})
		}
		if !final {
			// Pre-churn segments run to the event time regardless of the
			// configuration: churn strikes on the clock, converged or not.
			opts.MaxInteractions = events[segment]
		} else {
			target, terr := p.TargetCounts(pop.N())
			if terr != nil {
				endSpan(pop)
				return TrialResult{}, fmt.Errorf("%w: %v", ErrInvalidSpec, terr)
			}
			ct := sim.NewCountTarget(p.CanonMap(), target)
			// Freeze detection terminates runs that can never reach the
			// target: always on restricted graphs (the star/ring freeze),
			// and on the complete graph too once churn has struck — a crash
			// that removes committed agents can leave a dead, permanently
			// non-uniform configuration (the protocol is not
			// self-stabilizing), which would otherwise burn the whole cap.
			fg := g
			if fg == nil && spec.Churn.Enabled() {
				cg, cerr := topology.Complete(pop.N())
				if cerr != nil {
					endSpan(pop)
					return TrialResult{}, cerr
				}
				fg = cg
			}
			if fg != nil {
				stop = sim.Any{ct, &topology.FrozenCondition{G: fg, Proto: p, Orbits: p.ParityOrbit}}
			} else {
				stop = ct
			}
			if spec.Grouping {
				gc = &sim.GroupingCounter{Watch: p.G(spec.K)}
				opts.Hooks = append(opts.Hooks, gc)
			}
		}
		segStart := pop.Interactions()
		res, err := sim.Run(pop, s, stop, opts)
		if espan != nil {
			espan.Child("segment").
				SetAttr("index", fmt.Sprint(segment)).
				SetAttr("n", fmt.Sprint(pop.N())).
				SetSeq(segStart, pop.Interactions()).
				End()
		}
		if err != nil {
			endSpan(pop)
			return TrialResult{}, err
		}
		if final {
			converged := targetSatisfied(p, pop)
			out := TrialResult{
				Spec:         spec,
				Interactions: res.Interactions,
				Productive:   res.Productive,
				Converged:    converged,
				Spread:       res.Spread(),
				Frozen:       res.Converged && !converged,
				FinalN:       pop.N(),
			}
			if gc != nil {
				out.Marks = append([]uint64(nil), gc.Marks...)
			}
			endSpan(pop)
			return out, nil
		}
		// Churn batch: capture the run, rewrite the agent roster, restore
		// under the next segment's scheduler. Counters (and therefore the
		// interaction clock) carry over; the next scheduler is built by
		// the next loop iteration, so Restore is fed a scheduler matching
		// the snapshot we edit here.
		snap, err := checkpoint.Capture(pop, s)
		if err != nil {
			endSpan(pop)
			return TrialResult{}, err
		}
		snap.States = applyChurn(snap.States, spec.Churn, p, churnRNG)
		snap.RNGState = nil // the next segment's scheduler gets a fresh derived seed
		next, err := checkpoint.Restore(p, s, snap)
		if err != nil {
			endSpan(pop)
			return TrialResult{}, fmt.Errorf("harness: churn event %d: %w", segment+1, err)
		}
		pop = next
	}
}
