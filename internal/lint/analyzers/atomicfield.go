package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field that is passed to any sync/atomic function anywhere in the
// program must be accessed through sync/atomic everywhere. A single
// plain read of an atomically written counter is a data race the race
// detector only catches if a test happens to interleave it — this check
// catches it at lint time, program-wide (the Done phase joins facts
// across packages). Fields typed atomic.Uint64 etc. are safe by
// construction and never trigger it.
var AtomicField = &lint.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
	Done: doneAtomicField,
}

// afFacts accumulates across packages. Fields are keyed by the
// declaration position of the field identifier — stable across the
// loader's dependency and analysis type-checks of the same source.
type afFacts struct {
	// atomicAt maps field key -> position of one atomic use (for the
	// message).
	atomicAt map[string]token.Position
	// plain maps field key -> non-atomic access positions.
	plain map[string][]plainAccess
	name  map[string]string
}

type plainAccess struct {
	pos token.Position
	// posKey dedups the same source position seen from both the
	// dependency-facing and test-augmented type-check of one package.
	posKey string
}

func afState(st *lint.State) *afFacts {
	return st.Get("facts", func() any {
		return &afFacts{
			atomicAt: make(map[string]token.Position),
			plain:    make(map[string][]plainAccess),
			name:     make(map[string]string),
		}
	}).(*afFacts)
}

func fieldKey(pass *lint.Pass, f *types.Var) string {
	return pass.Position(f.Pos()).String()
}

func runAtomicField(pass *lint.Pass) {
	facts := afState(pass.State)

	// First pass per file: mark the selector operands of sync/atomic
	// calls (the `x.f` in atomic.AddUint64(&x.f, 1)) as atomic uses.
	atomicSel := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, sel); fv != nil {
					atomicSel[sel] = true
					k := fieldKey(pass, fv)
					if _, seen := facts.atomicAt[k]; !seen {
						facts.atomicAt[k] = pass.Position(sel.Pos())
					}
					facts.name[k] = fv.Pkg().Name() + "." + structName(fv) + "." + fv.Name()
				}
			}
			return true
		})
	}

	// Second pass: every other selection of those fields is a plain
	// access. All accesses are recorded here; Done filters to fields
	// with at least one atomic use anywhere in the program.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSel[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil {
				return true
			}
			k := fieldKey(pass, fv)
			pos := pass.Position(sel.Sel.Pos())
			facts.plain[k] = append(facts.plain[k], plainAccess{pos: pos, posKey: pos.String()})
			return true
		})
	}
}

func doneAtomicField(st *lint.State, report func(pos token.Position, format string, args ...any)) {
	facts := afState(st)
	keys := make([]string, 0, len(facts.atomicAt))
	for k := range facts.atomicAt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		accesses := facts.plain[k]
		sort.Slice(accesses, func(i, j int) bool { return accesses[i].posKey < accesses[j].posKey })
		seen := make(map[string]bool)
		for _, a := range accesses {
			if seen[a.posKey] {
				continue
			}
			seen[a.posKey] = true
			report(a.pos, "field %s is accessed with sync/atomic at %s but plainly here; every access must go through sync/atomic (or retype the field as an atomic.* value)",
				facts.name[k], facts.atomicAt[k])
		}
	}
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *lint.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// structName names the struct type declaring field f, best-effort, for
// diagnostics.
func structName(f *types.Var) string {
	if f.Pkg() == nil {
		return "?"
	}
	scope := f.Pkg().Scope()
	for _, n := range scope.Names() {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return fmt.Sprintf("(struct at %v)", f.Pos())
}
