package serve

// The result cache is content-addressed: keys are harness.SpecKey hashes
// and values are encoded Records, so identical specs submitted by any
// number of clients are computed once and replayed byte-for-byte.
// Eviction is strict LRU by use order — never by wall-clock age, which
// would make cache behavior (and the hit counters the tests assert on)
// depend on when a run happened. This file is in the deterministic scope
// of the determinism analyzer.

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU mapping spec keys to encoded result records.
// Safe for concurrent use. Stored byte slices are shared, not copied;
// they are written once at insert and must be treated as immutable.
type Cache struct {
	mu  sync.Mutex
	cap int
	// front = most recently used
	// guarded by mu
	ll *list.List
	m  map[string]*list.Element // guarded by mu
}

type cacheEntry struct {
	key  string
	body []byte
}

// DefaultCacheEntries is the cache capacity when a Config leaves it 0.
const DefaultCacheEntries = 4096

// NewCache returns an LRU cache bounded to capacity entries (<= 0
// selects DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

// Get returns the record stored under key, marking it most recently
// used. The returned slice must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key (replacing any previous value) and reports
// how many entries were evicted to stay within capacity.
func (c *Cache) Put(key string, body []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return 0
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup is the single-flight companion to the cache: it dedupes
// identical SpecKeys between the moment a cache miss admits a job and
// the moment that job completes. Concurrent requests for one key share
// the first admitted job (the serve/coalesced counter tracks how often)
// instead of each paying for the simulation. Content addressing makes
// this safe: any job for a key produces byte-identical results.
type flightGroup struct {
	mu      sync.Mutex
	pending map[string]*Job // guarded by mu
}

func newFlightGroup() *flightGroup {
	return &flightGroup{pending: make(map[string]*Job)}
}

// join returns the in-flight job for key if one exists (joined=true);
// otherwise it registers candidate as the key's in-flight job. The
// check-and-register is atomic, so exactly one of N concurrent
// submitters for a key becomes the owner.
func (f *flightGroup) join(key string, candidate *Job) (j *Job, joined bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if prior, ok := f.pending[key]; ok {
		return prior, true
	}
	f.pending[key] = candidate
	return candidate, false
}

// leave removes j as key's in-flight job — on completion, or when
// admission failed after join. Only the registered owner is removed, so
// a stale leave can never evict a newer job.
func (f *flightGroup) leave(key string, j *Job) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pending[key] == j {
		delete(f.pending, key)
	}
}
