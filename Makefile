# Tier-1 verification plus the slower guards. `make check` is what CI
# (and ROADMAP.md's tier-1 line) runs; the individual targets exist so a
# hot loop can run just the piece it touched.

GO ?= go

.PHONY: check build vet test race bench bench-json

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race pass over the concurrency-bearing packages: the obs metrics core
# (atomic counters shared across workers), the parallel trial harness,
# and the engine the trials drive.
race:
	$(GO) test -race ./internal/obs ./internal/harness ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Machine-readable perf trajectory; compare BENCH_kpart.json across PRs.
bench-json:
	$(GO) run ./cmd/kpart-bench -out BENCH_kpart.json
