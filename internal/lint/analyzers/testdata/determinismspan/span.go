// The deterministic core of internal/obs/span: span identity — trace
// and span IDs, structure, sequence intervals — is replay identity, so
// any file other than the wall.go edge is held to the engine-package
// standard.
package span

import "time"

func StampStart() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func WaitForExport() {
	time.Sleep(time.Millisecond) // want `time\.Sleep`
}
