// Command kpart-verify exhaustively verifies Theorem 1 for small
// populations by model checking the full configuration graph (see
// internal/explore): from every reachable configuration a stable
// configuration is reachable, and every stable configuration is a uniform
// partition. It also re-checks the Lemma 1 invariant on every reachable
// configuration.
//
// Usage:
//
//	kpart-verify [-kmax 5] [-nmax 10] [-v]
//
// Exit status is non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
)

func main() {
	var (
		kmax    = flag.Int("kmax", 5, "verify k = 2..kmax")
		nmax    = flag.Int("nmax", 10, "verify n = 3..nmax")
		verb    = flag.Bool("v", false, "print per-(n,k) graph sizes")
		witness = flag.Bool("witness", false, "print a shortest execution to stability for each (n,k)")
	)
	flag.Parse()

	failed := false
	start := time.Now()
	checked := 0
	for k := 2; k <= *kmax; k++ {
		p := core.MustNew(k)
		for n := 3; n <= *nmax; n++ {
			g, err := explore.Build(p, n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kpart-verify: n=%d k=%d: %v\n", n, k, err)
				os.Exit(2)
			}
			for i, node := range g.Nodes {
				if err := p.CheckInvariant(node.Counts); err != nil {
					fmt.Printf("FAIL n=%d k=%d: Lemma 1 violated at node %d (%s): %v\n",
						n, k, i, node.Format(p), err)
					failed = true
				}
			}
			rep, err := explore.Check(p, n, 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kpart-verify: %v\n", err)
				os.Exit(2)
			}
			checked++
			status := "ok"
			if !rep.LiveFromAll {
				status = fmt.Sprintf("FAIL: %s cannot reach a stable configuration", rep.FirstNonLive.Format(p))
				failed = true
			} else if !rep.Uniform {
				status = fmt.Sprintf("FAIL: non-uniform stable configuration %s", rep.FirstNonUniform.Format(p))
				failed = true
			} else if rep.Stable == 0 {
				status = "FAIL: no stable configuration"
				failed = true
			}
			if *verb || status != "ok" {
				fmt.Printf("n=%-3d k=%-2d reachable=%-8d stable=%-6d %s\n",
					n, k, rep.Reachable, rep.Stable, status)
			}
			if *witness {
				if steps, ok := g.WitnessToStable(); ok {
					fmt.Printf("  witness (n=%d, k=%d, %d productive steps):\n", n, k, len(steps)-1)
					for _, s := range steps {
						fmt.Printf("    %s\n", s)
					}
				}
			}
		}
	}
	if failed {
		fmt.Printf("THEOREM 1 VERIFICATION FAILED (%d cases, %v)\n", checked, time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("Theorem 1 verified exhaustively for k=2..%d, n=3..%d (%d cases, %v)\n",
		*kmax, *nmax, checked, time.Since(start).Round(time.Millisecond))
}
