package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Run drives every applicable analyzer over the loaded packages,
// applies //lint:allow suppression, and returns diagnostics sorted by
// position. The reserved "suppress" pseudo-analyzer contributes
// malformed-directive, unknown-name, and unused-suppression findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	states := make(map[string]*State, len(analyzers))
	var sups []*Suppression

	for _, pkg := range pkgs {
		ps, pdiags := CollectSuppressions(pkg, known)
		sups = append(sups, ps...)
		diags = append(diags, pdiags...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			st, ok := states[a.Name]
			if !ok {
				st = NewState()
				states[a.Name] = st
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				State:    st,
				report:   report,
			})
		}
	}
	for _, a := range analyzers {
		if a.Done == nil {
			continue
		}
		st, ok := states[a.Name]
		if !ok {
			continue // never applied to any package
		}
		name := a.Name
		a.Done(st, func(pos token.Position, format string, args ...any) {
			diags = append(diags, Diagnostic{Analyzer: name, Pos: pos, Message: fmt.Sprintf(format, args...)})
		})
	}

	out := ApplySuppressions(diags, sups)
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders by file, line, column, analyzer, message, so
// output is stable run to run (the linter holds itself to the same
// determinism bar it enforces).
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText prints diagnostics one per line as file:line:col: analyzer:
// message.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the machine-readable form emitted by -json.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits diagnostics as a JSON array (always an array, "[]"
// when clean, so downstream tooling needs no special empty case).
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
