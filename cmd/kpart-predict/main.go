// Command kpart-predict answers "how long until a population of n
// agents stabilizes into k groups?" analytically, without simulating:
// it asks the twin ladder (internal/twin) for the highest-fidelity rung
// that can afford the question — the exact lumped chain for small
// populations, the mean-field fluid model with an exact endgame
// correction for large ones — and prints the prediction with its error
// bars and provenance. The same computation backs POST /v1/predict in
// kpart-serve.
//
// Usage:
//
//	kpart-predict -n 960 -k 4 [-milestones] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/twin"
)

func main() {
	var (
		n          = flag.Int("n", 960, "population size")
		k          = flag.Int("k", 3, "number of groups")
		milestones = flag.Bool("milestones", false, "include per-#gk milestone expectations")
		asJSON     = flag.Bool("json", false, "emit the prediction as JSON instead of a table")
	)
	flag.Parse()

	pr, err := twin.Auto(twin.Spec{N: *n, K: *k, Milestones: *milestones})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pr); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("Prediction for n=%d, k=%d (model %s, fidelity %s, rel-err budget %.1f%%)\n",
		pr.N, pr.K, pr.Model, pr.Fidelity, 100*pr.RelErrBudget)
	tbl := report.NewTable("metric", "interactions")
	tbl.AddRow("expected", pr.ExpectedInteractions)
	tbl.AddRow("std", pr.StdInteractions)
	tbl.AddRow("interval_low (95%)", pr.IntervalLow)
	tbl.AddRow("interval_high (95%)", pr.IntervalHigh)
	tbl.WriteTo(os.Stdout)
	if pr.States > 0 {
		fmt.Printf("(solved over %d lumped states)\n", pr.States)
	} else {
		fmt.Println("(fluid-only answer: no endgame chain fit the state budget)")
	}
	if *milestones {
		ms := report.NewTable("groups_complete", "expected_interactions")
		for j, m := range pr.Milestones {
			ms.AddRow(j+1, m)
		}
		fmt.Println("\nMilestones (expected interactions until #gk first reaches j):")
		ms.WriteTo(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-predict:", err)
	os.Exit(1)
}
