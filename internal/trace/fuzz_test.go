package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

// FuzzDecode hardens the JSONL trace decoder against corrupt input: it
// must never panic, and anything it does accept must either replay cleanly
// or be rejected by Replay — no silent corruption. Seeded with a valid
// trace plus characteristic mutations; `go test` runs the corpus, and
// `go test -fuzz=FuzzDecode ./internal/trace` explores further.
func FuzzDecode(f *testing.F) {
	// Seed: a genuine trace.
	p := core.MustNew(3)
	pop := population.New(p, 6)
	rec := &Recorder{}
	if _, err := sim.Run(pop, sched.NewRandom(3), sim.After{N: 50},
		sim.Options{Hooks: []sim.Hook{rec}}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"protocol":"x","n":3,"states":7}` + "\n")
	f.Add(strings.Replace(valid, `"t":1`, `"t":-1`, 1))
	f.Add(strings.Replace(valid, `"i":`, `"i":999`, 1))
	f.Add(valid + "{garbage\n")

	f.Fuzz(func(t *testing.T, data string) {
		hdr, events, err := Decode(strings.NewReader(data))
		if err != nil {
			return // rejected; fine
		}
		if hdr.N < 2 || hdr.N > 1000 || hdr.States != p.NumStates() {
			return // not replayable against our protocol; fine
		}
		// Accepted and shaped like our protocol: Replay must either
		// succeed or return ErrDiverged — never panic.
		_, _ = Replay(p, hdr, events)
	})
}
