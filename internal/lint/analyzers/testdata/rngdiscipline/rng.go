// Golden input for the rngdiscipline analyzer; loaded as a generic
// module package ("repro/internal/foo"), where stdlib randomness is
// forbidden.
package foo

import (
	crand "crypto/rand" // want `crypto/rand`
	mrand "math/rand"   // want `math/rand`
)

func Draw() int {
	b := make([]byte, 1)
	_, _ = crand.Read(b)
	return mrand.Intn(10) + int(b[0])
}
