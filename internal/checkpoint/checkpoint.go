// Package checkpoint serializes a running simulation — configuration,
// interaction counters, and the scheduler's generator state — so long runs
// can be suspended, shipped, and resumed bit-exactly. The resume
// equivalence (continuing from a checkpoint produces the identical future
// as the uninterrupted run) is what the tests pin down; it holds because
// every piece of dynamic state is either in the Population or in the
// scheduler's Stateful generator.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Snapshot is the serialized form of a paused run.
type Snapshot struct {
	// Protocol metadata for sanity checks at restore time.
	Protocol  string `json:"protocol"`
	NumStates int    `json:"states"`
	// States is the full agent state vector.
	States []protocol.State `json:"agent_states"`
	// Counters.
	Interactions uint64 `json:"interactions"`
	Productive   uint64 `json:"productive"`
	// Scheduler identity and generator state.
	Scheduler string `json:"scheduler"`
	RNGState  []byte `json:"rng_state,omitempty"`
}

// RNGCarrier is implemented by schedulers whose only dynamic state is a
// Stateful generator (sched.Random qualifies via its exported Rand).
type RNGCarrier interface {
	// RNG returns the scheduler's generator.
	RNG() *rng.Rand
}

// Capture snapshots a population and its scheduler.
func Capture(pop *population.Population, s sched.Scheduler) (Snapshot, error) {
	snap := Snapshot{
		Protocol:     pop.Protocol().Name(),
		NumStates:    pop.Protocol().NumStates(),
		States:       pop.Snapshot(),
		Interactions: pop.Interactions(),
		Productive:   pop.Productive(),
		Scheduler:    s.Name(),
	}
	if c, ok := s.(RNGCarrier); ok {
		snap.RNGState = c.RNG().MarshalState()
	}
	return snap, nil
}

// Errors returned by Restore.
var (
	ErrProtocolMismatch  = errors.New("checkpoint: protocol does not match snapshot")
	ErrSchedulerMismatch = errors.New("checkpoint: scheduler does not match snapshot")
	ErrCorruptSnapshot   = errors.New("checkpoint: corrupt snapshot")
)

// Restore rebuilds the population from a snapshot and rehydrates the
// scheduler's generator. The caller supplies a protocol equal to the one
// captured (verified by name and state count) and a scheduler of the same
// kind. Snapshots come from files, so every field is treated as hostile:
// mismatched metadata, out-of-range states, inconsistent counters, and
// undersized populations all return errors rather than panicking (the
// FuzzRestore test pins this down).
func Restore(p protocol.Protocol, s sched.Scheduler, snap Snapshot) (*population.Population, error) {
	if p.Name() != snap.Protocol || p.NumStates() != snap.NumStates {
		return nil, fmt.Errorf("%w: snapshot has %q/%d, got %q/%d",
			ErrProtocolMismatch, snap.Protocol, snap.NumStates, p.Name(), p.NumStates())
	}
	if s.Name() != snap.Scheduler {
		return nil, fmt.Errorf("%w: snapshot has %q, got %q", ErrSchedulerMismatch, snap.Scheduler, s.Name())
	}
	if len(snap.States) < 2 {
		return nil, fmt.Errorf("%w: %d agent states (need >= 2)", ErrCorruptSnapshot, len(snap.States))
	}
	for i, st := range snap.States {
		if int(st) >= p.NumStates() {
			return nil, fmt.Errorf("%w: agent %d in state %d, protocol has %d states",
				ErrCorruptSnapshot, i, st, p.NumStates())
		}
	}
	if snap.Productive > snap.Interactions {
		return nil, fmt.Errorf("%w: productive %d exceeds interactions %d",
			ErrCorruptSnapshot, snap.Productive, snap.Interactions)
	}
	if len(snap.RNGState) > 0 {
		c, ok := s.(RNGCarrier)
		if !ok {
			return nil, fmt.Errorf("%w: scheduler cannot restore generator state", ErrSchedulerMismatch)
		}
		if err := c.RNG().UnmarshalState(snap.RNGState); err != nil {
			return nil, err
		}
	}
	pop := population.FromStates(p, snap.States)
	pop.SetCounters(snap.Interactions, snap.Productive)
	return pop, nil
}

// Write serializes a snapshot as JSON.
func Write(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Read deserializes a snapshot.
func Read(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return snap, fmt.Errorf("checkpoint: %w", err)
	}
	return snap, nil
}
