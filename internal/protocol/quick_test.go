package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Property-based tests over RANDOM protocols: generate arbitrary rule sets
// through the Builder and verify the structural guarantees the rest of the
// repository depends on — any table that Build accepts must validate,
// be mirror-closed on its unordered rules, and classify symmetric exactly
// when no same-state rule splits.

// randomBuilder constructs a random protocol from a seed: nStates states,
// nRules random unordered rules (skipping combinations that would
// conflict).
func randomBuilder(seed uint64, symmetric bool) *Table {
	r := rng.New(seed)
	nStates := 2 + r.Intn(10)
	b := NewBuilder("fuzz", symmetric)
	for i := 0; i < nStates; i++ {
		b.AddState("", 1+r.Intn(3))
	}
	b.SetInitial(State(r.Intn(nStates)))
	bound := make(map[Pair]Pair)
	nRules := r.Intn(15)
	for i := 0; i < nRules; i++ {
		from := Pair{State(r.Intn(nStates)), State(r.Intn(nStates))}
		to := Pair{State(r.Intn(nStates)), State(r.Intn(nStates))}
		if symmetric && from.P == from.Q && to.P != to.Q {
			to.Q = to.P // repair into a symmetric rule
		}
		// Skip rules that would conflict with an earlier one (in either
		// orientation) — Build would rightly reject them.
		if _, dup := bound[from]; dup {
			continue
		}
		if prev, dup := bound[Pair{from.Q, from.P}]; dup && from.P != from.Q {
			want := Pair{prev.Q, prev.P}
			if want != to {
				continue
			}
		}
		bound[from] = to
		b.AddRule(from.P, from.Q, to.P, to.Q)
	}
	tab, err := b.Build()
	if err != nil {
		return nil
	}
	return tab
}

func TestQuickRandomTablesValidate(t *testing.T) {
	f := func(seed uint64) bool {
		tab := randomBuilder(seed, false)
		if tab == nil {
			return true // Build rejected; acceptable for random input
		}
		return Validate(tab) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomTablesMirrorClosed(t *testing.T) {
	f := func(seed uint64) bool {
		tab := randomBuilder(seed, false)
		if tab == nil {
			return true
		}
		n := tab.NumStates()
		for a := 0; a < n; a++ {
			// Diagonal rules (a, a) -> (x, y) with x != y are resolved by
			// initiator role and cannot be mirror-closed by definition;
			// the property applies to distinct-state encounters.
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				ab, _ := tab.Delta(State(a), State(b))
				ba, _ := tab.Delta(State(b), State(a))
				if ab.P != ba.Q || ab.Q != ba.P {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetricBuildsAreSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		tab := randomBuilder(seed, true)
		if tab == nil {
			return true
		}
		_, ok := CheckSymmetric(tab)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Product pack/unpack is a bijection for arbitrary component sizes.
func TestQuickProductPackUnpack(t *testing.T) {
	mk := func(states int) *Table {
		b := NewBuilder("c", true)
		for i := 0; i < states; i++ {
			b.AddState("", 1)
		}
		b.SetInitial(0)
		return b.MustBuild()
	}
	f := func(aStates, bStates uint8, sa, sb uint16) bool {
		na := 1 + int(aStates)%20
		nb := 1 + int(bStates)%20
		p, err := NewProduct(mk(na), mk(nb))
		if err != nil {
			return false
		}
		xa := State(int(sa) % na)
		xb := State(int(sb) % nb)
		ga, gb := p.Unpack(p.Pack(xa, xb))
		return ga == xa && gb == xb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
