// Command kpart-scale runs the uniform k-partition protocol at scales the
// agent-level engine (and the paper's own evaluation) does not reach,
// using the count-based engine with geometric null-run skipping
// (internal/countsim): populations are limited by time-to-stability, not
// by memory, and the null-dominated tail is sampled in closed form.
//
// Usage:
//
//	kpart-scale -n 100000 -k 8 -trials 5 [-seed 1]
//	kpart-scale -n 960 -k 16,20,24 -trials 10     # extend Figure 6
//	kpart-scale -n 1000000 -k 8 -progress 100000000 -debug-addr :6060
//
// Wall time is reported per trial as min/median/p90/max (the
// stabilization-time distribution is heavy-tailed, so a mean alone
// misleads); -json writes the full per-trial data machine-readably.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/countsim"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

// trialRecord is one trial's outcome in the JSON output.
type trialRecord struct {
	Trial        int     `json:"trial"`
	Seed         uint64  `json:"seed"`
	Interactions uint64  `json:"interactions"`
	Productive   uint64  `json:"productive"`
	WallMS       float64 `json:"wall_ms"`
}

// pointDoc aggregates one (n, k) point in the JSON output.
type pointDoc struct {
	N                int           `json:"n"`
	K                int           `json:"k"`
	Trials           int           `json:"trials"`
	MeanInteractions float64       `json:"mean_interactions"`
	CI95             float64       `json:"ci95"`
	MeanProductive   float64       `json:"mean_productive"`
	SkipFactor       float64       `json:"skip_factor"`
	WallMS           wallSummary   `json:"wall_ms"`
	PerTrial         []trialRecord `json:"per_trial"`
}

// wallSummary is the per-trial wall-time distribution in milliseconds.
type wallSummary struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// resultDoc is the top-level JSON document.
type resultDoc struct {
	Command   string     `json:"command"`
	Seed      uint64     `json:"seed"`
	CreatedAt string     `json:"created_at"`
	Points    []pointDoc `json:"points"`
}

func main() {
	var (
		n         = flag.Int("n", 100000, "population size")
		ksFlag    = flag.String("k", "8", "comma-separated group counts")
		trials    = flag.Int("trials", 5, "trials per k")
		seed      = flag.Uint64("seed", 1, "root seed")
		jsonPath  = flag.String("json", "", "write per-trial results as JSON to this file")
		debugAddr = flag.String("debug-addr", "", "serve pprof and /debug/vars on this address (e.g. :6060)")
		progressN = flag.Uint64("progress", 0, "interactions between live progress reports (0 = off)")
	)
	flag.Parse()

	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kpart-scale: debug server on http://%s/debug/pprof\n", ln.Addr())
	}

	var ks []int
	for _, part := range strings.Split(*ksFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 2 {
			fatal(fmt.Errorf("bad k %q", part))
		}
		ks = append(ks, k)
	}

	doc := resultDoc{
		Command:   strings.Join(os.Args, " "),
		Seed:      *seed,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	tbl := report.NewTable("n", "k", "trials", "mean_interactions", "ci95",
		"mean_productive", "skip_factor", "wall_min", "wall_median", "wall_p90", "wall_max")
	for ki, k := range ks {
		p, err := core.New(k)
		if err != nil {
			fatal(err)
		}
		stable, err := p.StableChecker(*n)
		if err != nil {
			fatal(err)
		}
		var xs, wallMS []float64
		var productive, interactions uint64
		pt := pointDoc{N: *n, K: k, Trials: *trials}
		for t := 0; t < *trials; t++ {
			trialSeed := rng.StreamSeed(*seed, uint64(ki), uint64(t))
			s, err := countsim.New(p, *n, trialSeed)
			if err != nil {
				fatal(err)
			}
			pred := stable
			if *progressN > 0 {
				prog := &obs.Progress{
					Every: *progressN,
					Label: fmt.Sprintf("n=%d k=%d trial %d", *n, k, t),
				}
				pred = func(counts []int) bool {
					prog.MaybeReport(s.Interactions(), s.Productive(), func() int {
						return spreadOf(p.GroupSizesFromCounts(counts))
					})
					return stable(counts)
				}
			}
			start := time.Now()
			ok, err := s.RunUntil(pred, 1<<62)
			wall := time.Since(start)
			if err != nil {
				fatal(err)
			}
			if !ok {
				fatal(fmt.Errorf("n=%d k=%d trial %d did not stabilize", *n, k, t))
			}
			xs = append(xs, float64(s.Interactions()))
			wallMS = append(wallMS, float64(wall)/float64(time.Millisecond))
			interactions += s.Interactions()
			productive += s.Productive()
			pt.PerTrial = append(pt.PerTrial, trialRecord{
				Trial: t, Seed: trialSeed,
				Interactions: s.Interactions(), Productive: s.Productive(),
				WallMS: float64(wall) / float64(time.Millisecond),
			})
		}
		pt.MeanInteractions = stats.Mean(xs)
		pt.CI95 = stats.CI95(xs)
		pt.MeanProductive = float64(productive) / float64(*trials)
		pt.SkipFactor = float64(interactions) / float64(productive)
		pt.WallMS = wallSummary{
			Min:    stats.QuantileOf(wallMS, 0),
			Median: stats.QuantileOf(wallMS, 0.5),
			P90:    stats.QuantileOf(wallMS, 0.9),
			Max:    stats.QuantileOf(wallMS, 1),
			Mean:   stats.Mean(wallMS),
		}
		doc.Points = append(doc.Points, pt)
		tbl.AddRow(*n, k, *trials, pt.MeanInteractions, pt.CI95,
			pt.MeanProductive, pt.SkipFactor,
			ms(pt.WallMS.Min), ms(pt.WallMS.Median), ms(pt.WallMS.P90), ms(pt.WallMS.Max))
	}
	fmt.Println("count-based engine (exact distribution, null runs skipped geometrically)")
	tbl.WriteTo(os.Stdout)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *jsonPath)
	}
}

// ms renders a millisecond quantity as a duration string.
func ms(v float64) string {
	return time.Duration(v * float64(time.Millisecond)).Round(time.Millisecond).String()
}

// spreadOf returns max−min of a group-size vector.
func spreadOf(sizes []int) int {
	min, max := sizes[0], sizes[0]
	for _, v := range sizes[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-scale:", err)
	os.Exit(1)
}
