package classic

import (
	"fmt"

	"repro/internal/protocol"
)

// This file adds the remaining building-block problems the paper's related
// work section surveys: counting (Beauquier et al. style, with a base
// station) and threshold/flock-size predicates (Angluin et al.). Both
// depart from the paper's designated-initial-state symmetric setting —
// counting needs one distinguished agent, thresholds use one-way rules —
// which is precisely why they are useful in tests: they exercise framework
// paths the k-partition protocol does not.

// Counting returns a base-station counting protocol for populations of at
// most maxN counted agents.
//
// State layout: 0..maxN are base-station states B_c ("c agents counted so
// far"); maxN+1 is "marked" (an uncounted agent); maxN+2 is "counted".
// The single base station must be placed explicitly (the designated
// initial state is "marked", so build configurations with
// population.FromStates putting exactly one agent in Base(0)).
//
// Rule: (B_c, marked) → (B_(c+1), counted). Each agent is counted exactly
// once, so the base station's value converges to the number of marked
// agents, and never overshoots.
type Counting struct {
	*protocol.Table
	maxN int
}

// NewCounting builds the protocol. maxN must be >= 1.
func NewCounting(maxN int) (*Counting, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("classic: counting needs maxN >= 1, got %d", maxN)
	}
	if maxN+3 > protocol.MaxStates {
		return nil, fmt.Errorf("classic: counting maxN %d exceeds state budget", maxN)
	}
	c := &Counting{maxN: maxN}
	b := protocol.NewBuilder(fmt.Sprintf("counting-%d", maxN), false)
	for i := 0; i <= maxN; i++ {
		b.AddState(fmt.Sprintf("B%d", i), 1)
	}
	marked := b.AddState("marked", 2)
	b.AddState("counted", 2)
	b.SetInitial(marked)
	for i := 0; i < maxN; i++ {
		b.AddOrderedRule(c.Base(i), marked, c.Base(i+1), c.Counted())
		// Mirror installed explicitly: counting is order-independent.
		b.AddOrderedRule(marked, c.Base(i), c.Counted(), c.Base(i+1))
	}
	tab, err := b.Build()
	if err != nil {
		return nil, err
	}
	c.Table = tab
	return c, nil
}

// Base returns the state index of base-station value c.
func (c *Counting) Base(v int) protocol.State {
	if v < 0 || v > c.maxN {
		panic(fmt.Sprintf("classic: base value %d out of [0,%d]", v, c.maxN))
	}
	return protocol.State(v)
}

// Marked returns the uncounted-agent state.
func (c *Counting) Marked() protocol.State { return protocol.State(c.maxN + 1) }

// Counted returns the counted-agent state.
func (c *Counting) Counted() protocol.State { return protocol.State(c.maxN + 2) }

// Value extracts the base station's current count from a count vector,
// and whether exactly one base station exists.
func (c *Counting) Value(counts []int) (int, bool) {
	value, bases := 0, 0
	for v := 0; v <= c.maxN; v++ {
		if n := counts[c.Base(v)]; n > 0 {
			bases += n
			value = v
		}
	}
	return value, bases == 1
}

// Threshold returns the flock-size detection protocol: decide whether the
// population contains at least `c` agents (the predicate n >= c, one of
// the semilinear predicates of Angluin et al.). Every agent starts with
// weight 1; when two agents meet, the initiator absorbs the responder's
// weight, saturating at c. Output: an agent outputs "yes" (group 2) iff
// its weight is c, "no" (group 1) otherwise; once any agent saturates, the
// yes-value spreads by the same absorption rule... saturated agents keep
// their weight, so the maximum weight is monotone and stabilizes at
// min(n, c).
//
// States: weight 0..c (0 = absorbed/empty). f(c) = 2, everything else 1.
type Threshold struct {
	*protocol.Table
	c int
}

// NewThreshold builds the protocol for threshold c >= 2.
func NewThreshold(c int) (*Threshold, error) {
	if c < 2 {
		return nil, fmt.Errorf("classic: threshold needs c >= 2, got %d", c)
	}
	if c+2 > protocol.MaxStates {
		return nil, fmt.Errorf("classic: threshold %d exceeds state budget", c)
	}
	t := &Threshold{c: c}
	b := protocol.NewBuilder(fmt.Sprintf("threshold-%d", c), false)
	for w := 0; w <= c; w++ {
		group := 1
		if w == c {
			group = 2
		}
		b.AddState(fmt.Sprintf("w%d", w), group)
	}
	b.SetInitial(protocol.State(1))
	for a := 1; a <= c; a++ {
		for bw := 1; bw <= c; bw++ {
			sum := a + bw
			if sum > c {
				sum = c
			}
			if a == c {
				// Saturated initiators stay saturated; responder keeps
				// its weight (no rule needed beyond identity).
				continue
			}
			b.AddOrderedRule(protocol.State(a), protocol.State(bw),
				protocol.State(sum), protocol.State(0))
		}
	}
	tab, err := b.Build()
	if err != nil {
		return nil, err
	}
	t.Table = tab
	return t, nil
}

// C returns the threshold.
func (t *Threshold) C() int { return t.c }

// Decided reports whether the configuration has converged to an answer:
// either some agent saturated at c (answer true) or no further merge is
// possible below c (answer false: all weight on one agent < c). It also
// returns the answer when decided.
func (t *Threshold) Decided(counts []int) (decided, answer bool) {
	if counts[t.c] > 0 {
		return true, true
	}
	carriers := 0
	for w := 1; w < t.c; w++ {
		carriers += counts[w]
	}
	return carriers <= 1, false
}

// ModCounter computes n mod m — the remainder predicate family of the
// semilinear characterization (Angluin et al. 2006). Every agent starts
// carrying value 1; when two carriers meet, the initiator absorbs the
// responder's value modulo m and the responder becomes a sink. Exactly
// one carrier survives, holding n mod m (with m representing 0, so the
// carrier state is never confused with a sink).
//
// States: sink (index 0) and carrier values 1..m (index v). Output groups:
// carriers of value v map to group v (1..m), sinks to group 1.
type ModCounter struct {
	*protocol.Table
	m int
}

// NewModCounter builds the protocol for modulus m >= 2.
func NewModCounter(m int) (*ModCounter, error) {
	if m < 2 {
		return nil, fmt.Errorf("classic: mod counter needs m >= 2, got %d", m)
	}
	if m+2 > protocol.MaxStates {
		return nil, fmt.Errorf("classic: modulus %d exceeds state budget", m)
	}
	mc := &ModCounter{m: m}
	b := protocol.NewBuilder(fmt.Sprintf("mod-%d-counter", m), false)
	b.AddState("sink", 1)
	for v := 1; v <= m; v++ {
		b.AddState(fmt.Sprintf("c%d", v), v)
	}
	b.SetInitial(mc.Carrier(1))
	for a := 1; a <= m; a++ {
		for c := 1; c <= m; c++ {
			sum := (a + c) % m
			if sum == 0 {
				sum = m
			}
			b.AddOrderedRule(mc.Carrier(a), mc.Carrier(c), mc.Carrier(sum), mc.Sink())
		}
	}
	tab, err := b.Build()
	if err != nil {
		return nil, err
	}
	mc.Table = tab
	return mc, nil
}

// M returns the modulus.
func (mc *ModCounter) M() int { return mc.m }

// Sink returns the absorbed-agent state.
func (mc *ModCounter) Sink() protocol.State { return 0 }

// Carrier returns the state of a carrier holding value v (1..m, with m
// standing for 0 mod m).
func (mc *ModCounter) Carrier(v int) protocol.State {
	if v < 1 || v > mc.m {
		panic(fmt.Sprintf("classic: carrier value %d out of [1,%d]", v, mc.m))
	}
	return protocol.State(v)
}

// Result inspects a configuration: done reports that exactly one carrier
// remains; value is n mod m (0..m−1) when done.
func (mc *ModCounter) Result(counts []int) (value int, done bool) {
	carriers, val := 0, 0
	for v := 1; v <= mc.m; v++ {
		if c := counts[mc.Carrier(v)]; c > 0 {
			carriers += c
			val = v
		}
	}
	if carriers != 1 {
		return 0, false
	}
	return val % mc.m, true
}
