// Golden input for the determinism analyzer; the package is loaded
// under the import path "repro/internal/sim" so the path scope applies.
package sim

import "time"

func Bad() time.Time {
	t := time.Now()                // want `time\.Now in deterministic package`
	time.Sleep(time.Millisecond)   // want `time\.Sleep`
	_ = time.Since(t)              // want `time\.Since`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer`
	return t
}

func BadValueUse() {
	// Taking the function's value is as nondeterministic as calling it.
	clock := time.Now // want `time\.Now`
	_ = clock
}

// Pure duration arithmetic never reads the clock and must pass.
func OKDurations(d time.Duration) time.Duration { return d * 2 }

// Formatting a caller-supplied instant is deterministic in (spec, seed).
func OKFormat(t time.Time) string { return t.Format(time.RFC3339) }
