package sim

import "time"

// Test files are exempt: benchmarks and soaks may time themselves
// without affecting what a run computes. No diagnostics expected here.
func helperTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}
