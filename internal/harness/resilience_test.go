package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// Differential determinism: RunManyCtx results are a pure function of the
// specs — worker count must not leak into any field. Byte-identical JSON
// is the strongest cheap form of that claim (it covers every exported
// field at once, including Marks, Spread, and Attempts).
func TestRunManyDifferentialDeterminism(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, TrialSpec{
			N: 14 + i, K: 3, Seed: uint64(500 + i),
			Grouping: i%2 == 0,
			Engine:   Engine(i % 2), // alternate agent/count
		})
	}
	// The batched engine in both modes: adaptive (BatchSize 0) and exact
	// matching. Its results must be just as independent of worker count.
	for i := 0; i < 6; i++ {
		specs = append(specs, TrialSpec{
			N: 20 + i, K: 3, Seed: uint64(900 + i),
			Engine:    EngineBatch,
			BatchSize: uint64(i % 3 * 4), // 0 (adaptive), 4, 8
		})
	}
	// Scenario specs: the per-segment derived scheduler seeds, the churn
	// RNG, and the regular graph's sampling must all be keyed off the
	// spec alone — worker count and scheduling order must not show up in
	// frozen/converged outcomes, final sizes, or interaction counts.
	specs = append(specs,
		TrialSpec{N: 12, K: 3, Seed: 31, MaxInteractions: 3_000_000,
			Topology: TopologySpec{Kind: TopologyRing}},
		TrialSpec{N: 9, K: 3, Seed: 32, MaxInteractions: 3_000_000,
			Topology: TopologySpec{Kind: TopologyStar}},
		TrialSpec{N: 10, K: 2, Seed: 33, MaxInteractions: 3_000_000,
			Topology: TopologySpec{Kind: TopologyRegular, Degree: 3, GraphSeed: 5}},
		TrialSpec{N: 12, K: 3, Seed: 34, MaxInteractions: 100_000,
			Fairness: FairnessWeak},
		TrialSpec{N: 12, K: 3, Seed: 35, MaxInteractions: 100_000,
			Topology: TopologySpec{Kind: TopologyRing}, Fairness: FairnessWeak},
		TrialSpec{N: 15, K: 3, Seed: 36, MaxInteractions: 3_000_000,
			Churn: ChurnSpec{At: 200, Interval: 300, Events: 2, Joins: 1, Leaves: 2, Crash: true}},
		TrialSpec{N: 12, K: 3, Seed: 37, MaxInteractions: 3_000_000,
			Topology: TopologySpec{Kind: TopologyStar},
			Churn:    ChurnSpec{At: 100, Events: 1, Joins: 2}},
	)
	run := func(workers int) []byte {
		res, err := RunManyCtx(context.Background(), specs, workers, RunOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d produced different results\nserial: %s\ngot:    %s", workers, serial, got)
		}
	}
	// The execution policy (a generous deadline, retry budget) is not part
	// of trial identity either: same bytes with a non-zero policy.
	res, err := RunManyCtx(context.Background(), specs, 4, RunOptions{
		TrialTimeout: time.Minute, Retries: 2, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(res)
	if !bytes.Equal(data, serial) {
		t.Fatal("RunOptions changed trial results")
	}
}

func TestRetrySeedDerivation(t *testing.T) {
	if RetrySeed(42, 1) != RetrySeed(42, 1) {
		t.Fatal("RetrySeed not deterministic")
	}
	seen := map[uint64]bool{42: true}
	for attempt := 1; attempt <= 4; attempt++ {
		s := RetrySeed(42, attempt)
		if seen[s] {
			t.Fatalf("attempt %d collides with an earlier seed", attempt)
		}
		seen[s] = true
	}
}

// A per-trial wall deadline aborts the attempt with DeadlineExceeded;
// with a retry budget, every attempt runs (under a re-derived seed) and
// the timeout/retry counters record the history.
func TestRunTrialCtxTimeoutAndRetryCounters(t *testing.T) {
	reg := obs.New("test")
	SetMetrics(reg)
	defer SetMetrics(nil)

	// n=1000, k=8 on the agent engine needs far more than 2ms of wall
	// clock (the fig6 point at n=960 runs for seconds), so every attempt
	// deterministically exceeds the deadline.
	spec := TrialSpec{N: 1000, K: 8, Seed: 7}
	_, err := RunTrialCtx(context.Background(), spec, RunOptions{
		TrialTimeout: 2 * time.Millisecond,
		Retries:      2,
		Backoff:      time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if got := reg.Counter("harness/timeouts").Value(); got != 3 {
		t.Fatalf("timeouts counter = %d, want 3 (initial attempt + 2 retries)", got)
	}
	if got := reg.Counter("harness/retries").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// Invalid specs can never be fixed by retrying — they fail immediately,
// leaving the retry budget untouched.
func TestRunTrialCtxInvalidSpecNotRetried(t *testing.T) {
	reg := obs.New("test")
	SetMetrics(reg)
	defer SetMetrics(nil)

	_, err := RunTrialCtx(context.Background(), TrialSpec{N: 2, K: 3, Seed: 1}, RunOptions{Retries: 5})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("got %v, want ErrInvalidSpec", err)
	}
	if got := reg.Counter("harness/retries").Value(); got != 0 {
		t.Fatalf("invalid spec was retried %d times", got)
	}
}

// Batch cancellation is not a trial failure: no retry, the canceled
// counter increments, and the context error surfaces unchanged.
func TestRunTrialCtxCanceled(t *testing.T) {
	reg := obs.New("test")
	SetMetrics(reg)
	defer SetMetrics(nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunTrialCtx(ctx, TrialSpec{N: 20, K: 4, Seed: 1}, RunOptions{Retries: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
	if got := reg.Counter("harness/canceled").Value(); got == 0 {
		t.Fatal("canceled counter not incremented")
	}
	if got := reg.Counter("harness/retries").Value(); got != 0 {
		t.Fatalf("canceled trial was retried %d times", got)
	}
}

func TestRunTrialCtxAttemptsRecorded(t *testing.T) {
	res, err := RunTrialCtx(context.Background(), TrialSpec{N: 20, K: 4, Seed: 1}, RunOptions{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("clean first-try run recorded Attempts=%d", res.Attempts)
	}
}

// RunManyCtx under a canceled context drains without dispatching and
// reports the interruption distinctly from trial errors.
func TestRunManyCtxInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []TrialSpec{{N: 20, K: 4, Seed: 1}, {N: 21, K: 4, Seed: 2}}
	res, err := RunManyCtx(ctx, specs, 2, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want wrapped Canceled", err)
	}
	if len(res) != len(specs) {
		t.Fatalf("result slice len %d, want %d", len(res), len(specs))
	}
}

// A generous timeout changes nothing: same result bytes as no policy at
// all (the deadline is pure policy, invisible in the output).
func TestTrialTimeoutInvisibleWhenUnhit(t *testing.T) {
	spec := TrialSpec{N: 24, K: 4, Seed: 11, Grouping: true}
	plain, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	timed, err := RunTrialCtx(context.Background(), spec, RunOptions{TrialTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(timed)
	if !bytes.Equal(a, b) {
		t.Fatalf("deadline leaked into result:\n%s\n%s", a, b)
	}
}
