package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// SpecClosure promotes the SpecKey drift-guard from a reflect-based
// test to a lint-time, cross-package guarantee: every field of
// harness.TrialSpec (and every field of its scenario sub-structs) must
// be (1) hashed by SpecKey — the cache/journal identity; a field that
// influences a run but not its key silently aliases distinct results —
// (2) read by ValidateSpec or a helper it calls (fields exempt from
// validation are listed, with reasons, in specloseValidateExempt), and
// (3) mapped by the serving layer: set in its TrialSpec construction
// and present by name on its TrialRequest wire struct.
//
// The harness-side pass exports the field inventory as a fact on the
// TrialSpec type object; the serve-side checks import it across the
// package boundary. Packages are identified structurally (path suffix
// "/harness" or "/serve", type names TrialSpec/TrialRequest), so golden
// fixtures behave exactly like the real tree.
var SpecClosure = &lint.Analyzer{
	Name:            "speclosure",
	Doc:             "every TrialSpec field must appear in SpecKey hashing, ValidateSpec, and the serve JSON mapping",
	Applies:         specClosureScope,
	Run:             runSpecClosure,
	RunProgram:      runSpecClosureProgram,
	Interprocedural: true,
}

// specloseValidateExempt lists TrialSpec fields ValidateSpec need not
// read, with the reason each is exempt. Additions belong here, in code,
// where review sees them.
var specloseValidateExempt = map[string]string{
	// Every uint64 is a valid seed; the seed is hashed into SpecKey and
	// threaded to the RNG, never range-checked.
	"Seed": "any seed value is valid",
}

func specClosureScope(path string) bool {
	return strings.HasSuffix(path, "/harness") || strings.HasSuffix(path, "/serve")
}

// specFieldsFact is the field inventory of one TrialSpec type, exported
// on its *types.TypeName.
type specFieldsFact struct {
	// Fields is the top-level field list in declaration order.
	Fields []string
	// Sub maps a field name to the field list of its named-struct type
	// (same package only), for sub-field hash closure.
	Sub map[string][]string
	// SubType maps a field name to its named-struct type's name.
	SubType map[string]string
}

func (*specFieldsFact) AFact() {}

// runSpecClosure exports the TrialSpec field inventory from
// harness-shaped packages.
func runSpecClosure(pass *lint.Pass) {
	if !strings.HasSuffix(pass.Path, "/harness") {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "TrialSpec" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				pass.Facts.ExportObjectFact(obj, buildSpecFields(pass, st))
			}
		}
	}
}

func buildSpecFields(pass *lint.Pass, st *ast.StructType) *specFieldsFact {
	fact := &specFieldsFact{Sub: map[string][]string{}, SubType: map[string]string{}}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			fact.Fields = append(fact.Fields, name.Name)
			// Same-package named struct fields get sub-field closure.
			t := pass.Info.TypeOf(field.Type)
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pass.Path {
				continue
			}
			sub, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			var subNames []string
			for i := 0; i < sub.NumFields(); i++ {
				subNames = append(subNames, sub.Field(i).Name())
			}
			fact.Sub[name.Name] = subNames
			fact.SubType[name.Name] = named.Obj().Name()
		}
	}
	return fact
}

func runSpecClosureProgram(pp *lint.ProgramPass) {
	for _, pkg := range pp.Program.Packages {
		switch {
		case strings.HasSuffix(pkg.Path, "/harness"):
			checkHarnessClosure(pp, pkg)
		case strings.HasSuffix(pkg.Path, "/serve"):
			checkServeClosure(pp, pkg)
		}
	}
}

// checkHarnessClosure verifies SpecKey and ValidateSpec coverage inside
// one harness-shaped package.
func checkHarnessClosure(pp *lint.ProgramPass, pkg *lint.Package) {
	obj, _ := pkg.Pkg.Scope().Lookup("TrialSpec").(*types.TypeName)
	if obj == nil {
		return
	}
	var fact specFieldsFact
	if !pp.Facts.ImportObjectFact(obj, &fact) {
		return
	}
	specKey := packageFunc(pkg, "SpecKey")
	validate := packageFunc(pkg, "ValidateSpec")
	if specKey == nil {
		pp.Reportf(obj.Pos(), "package %s declares TrialSpec but no SpecKey function; specs without a content hash cannot be cached or journaled", pkg.Pkg.Name())
	}
	if validate == nil {
		pp.Reportf(obj.Pos(), "package %s declares TrialSpec but no ValidateSpec function; unvalidated specs reach the engines", pkg.Pkg.Name())
	}

	if specKey != nil {
		covered, subCovered := fieldSelections(pkg, &fact, []*ast.FuncDecl{specKey})
		for _, f := range fact.Fields {
			if !covered[f] {
				pp.Reportf(specKey.Name.Pos(), "SpecKey does not hash TrialSpec.%s; include it (and bump the key version) or distinct specs will share cache/journal entries", f)
			}
		}
		for _, f := range fact.Fields {
			for _, sub := range fact.Sub[f] {
				if !subCovered[fact.SubType[f]+"."+sub] {
					pp.Reportf(specKey.Name.Pos(), "SpecKey does not hash TrialSpec.%s.%s; include it (and bump the key version) or distinct specs will share cache/journal entries", f, sub)
				}
			}
		}
	}
	if validate != nil {
		// ValidateSpec may delegate: any same-package function reachable
		// from it over static edges contributes coverage.
		decls := reachableDecls(pp, pkg, validate)
		covered, _ := fieldSelections(pkg, &fact, decls)
		for _, f := range fact.Fields {
			if covered[f] {
				continue
			}
			if _, exempt := specloseValidateExempt[f]; exempt {
				continue
			}
			pp.Reportf(validate.Name.Pos(), "ValidateSpec never reads TrialSpec.%s (directly or via helpers it calls); validate it or list it in specloseValidateExempt with a reason", f)
		}
	}
}

// packageFunc finds the package-level function decl named name in
// non-test files.
func packageFunc(pkg *lint.Package, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// reachableDecls returns the function decls of pkg statically reachable
// from root (root included), in deterministic order.
func reachableDecls(pp *lint.ProgramPass, pkg *lint.Package, root *ast.FuncDecl) []*ast.FuncDecl {
	g := pp.Program.Graph
	var rootFn *lint.Func
	for _, fn := range g.Funcs {
		if fn.Decl == root {
			rootFn = fn
			break
		}
	}
	if rootFn == nil {
		return []*ast.FuncDecl{root}
	}
	var decls []*ast.FuncDecl
	seen := g.Reachable([]*lint.Func{rootFn})
	fns := make([]*lint.Func, 0, len(seen))
	for fn := range seen {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Key() < fns[j].Key() })
	for _, fn := range fns {
		if fn.Pkg == pkg && fn.Decl != nil {
			decls = append(decls, fn.Decl)
		}
	}
	return decls
}

// fieldSelections collects which TrialSpec fields (and sub-struct
// fields, keyed "SubType.Field") the given decls select.
func fieldSelections(pkg *lint.Package, fact *specFieldsFact, decls []*ast.FuncDecl) (map[string]bool, map[string]bool) {
	subTypes := make(map[string]bool, len(fact.SubType))
	for _, tn := range fact.SubType {
		subTypes[tn] = true
	}
	covered := make(map[string]bool)
	subCovered := make(map[string]bool)
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pkg.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			recv := namedName(s.Recv())
			switch {
			case recv == "TrialSpec":
				covered[sel.Sel.Name] = true
			case subTypes[recv]:
				subCovered[recv+"."+sel.Sel.Name] = true
			}
			return true
		})
	}
	return covered, subCovered
}

func namedName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkServeClosure verifies the wire mapping inside one serve-shaped
// package: the union of keyed TrialSpec composite literals (non-test,
// non-empty) must set every field, and the TrialRequest struct must
// carry a same-named field for each.
func checkServeClosure(pp *lint.ProgramPass, pkg *lint.Package) {
	type litSet struct {
		keys  map[string]bool
		first token.Pos
		full  bool // a positional literal sets everything
	}
	byType := make(map[string]*litSet) // harness TrialSpec type obj key
	factOf := make(map[string]*specFieldsFact)

	for _, file := range pkg.Files {
		if strings.HasSuffix(pp.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			tv, ok := pkg.Info.Types[lit]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			var fact specFieldsFact
			if !pp.Facts.ImportObjectFact(named.Obj(), &fact) {
				return true
			}
			key := pp.Facts.ObjectKey(named.Obj())
			set := byType[key]
			if set == nil {
				set = &litSet{keys: make(map[string]bool), first: lit.Pos()}
				byType[key] = set
				f := fact
				factOf[key] = &f
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					set.full = true // positional literal: every field set
					break
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					set.keys[id.Name] = true
				}
			}
			return true
		})
	}

	keys := make([]string, 0, len(byType))
	for k := range byType {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		set, fact := byType[k], factOf[k]
		if set.full {
			continue
		}
		for _, f := range fact.Fields {
			if !set.keys[f] {
				pp.Reportf(set.first, "serve mapping never sets TrialSpec.%s when building specs from wire requests; requests cannot express it", f)
			}
		}
	}

	// TrialRequest wire-field closure, against any TrialSpec fact the
	// package's literals referenced (or, with no literal, skip — there is
	// no mapping to drift).
	if len(keys) == 0 {
		return
	}
	fact := factOf[keys[0]]
	for _, file := range pkg.Files {
		if strings.HasSuffix(pp.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "TrialRequest" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				have := make(map[string]bool)
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						have[name.Name] = true
					}
				}
				for _, f := range fact.Fields {
					if !have[f] {
						pp.Reportf(ts.Name.Pos(), "TrialRequest has no %s field; TrialSpec.%s cannot be set over the wire (add it to the JSON mapping)", f, f)
					}
				}
			}
		}
	}
}
