package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

// The complete life of a partition: build the protocol, run a population
// to stability under the uniform-random scheduler, read off the groups.
func ExampleNew() {
	proto, err := core.New(3)
	if err != nil {
		panic(err)
	}
	fmt.Println("states:", proto.NumStates()) // 3k-2

	pop := population.New(proto, 12)
	target, err := proto.TargetCounts(12)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(pop, sched.NewRandom(42),
		sim.NewCountTarget(proto.CanonMap(), target), sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("group sizes:", res.GroupSizes)
	// Output:
	// states: 7
	// converged: true
	// group sizes: [4 4 4]
}

// The Lemma 1 invariant holds at every reachable configuration; violating
// it by hand is detected immediately.
func ExampleProtocol_CheckInvariant() {
	proto := core.MustNew(4)
	counts := make([]int, proto.NumStates())
	counts[proto.Initial()] = 8
	fmt.Println("all-initial ok:", proto.CheckInvariant(counts) == nil)

	counts[proto.M(3)] = 1 // an m3 without the g1, g2 it must have created
	fmt.Println("corrupted ok:", proto.CheckInvariant(counts) == nil)
	// Output:
	// all-initial ok: true
	// corrupted ok: false
}

// The Director realizes the constructive executions of the paper's proofs:
// linear-time stabilization under a favorable schedule.
func ExampleDirector() {
	proto := core.MustNew(8)
	pop := population.New(proto, 240)
	target, err := proto.TargetCounts(240)
	if err != nil {
		panic(err)
	}
	d := core.NewDirector(proto)
	res, err := sim.Run(pop,
		sched.Func{SchedName: d.Name(), F: func(v sched.View) (int, int) { return d.Next(v) }},
		sim.NewCountTarget(proto.CanonMap(), target), sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("stable within 3n+10k:", res.Interactions <= 3*240+10*8)
	fmt.Println("spread:", res.Spread())
	// Output:
	// stable within 3n+10k: true
	// spread: 0
}
