package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func mustGraph(g *topology.Graph, err error) *topology.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func edgesOf(g *topology.Graph) [][2]int {
	es := make([][2]int, 0, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		u, v := g.Edge(i)
		es = append(es, [2]int{u, v})
	}
	return es
}

// On the complete graph the vector checker must agree with Theorem 1
// (and with the multiset checker, which is sound there): no reachable
// configuration is trapped, and stable configurations exist.
func TestCheckVectorCompleteMatchesTheorem(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 4}, {2, 5}, {3, 5}, {3, 6}} {
		p := core.MustNew(tc.k)
		rep, err := CheckVector(p, tc.n, edgesOf(mustGraph(topology.Complete(tc.n))), 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Trapped != 0 {
			t.Errorf("k=%d n=%d complete: %d trapped configurations, want 0 (Theorem 1)", tc.k, tc.n, rep.Trapped)
		}
		if rep.StableUniform == 0 {
			t.Errorf("k=%d n=%d complete: no stable uniform configuration reachable", tc.k, tc.n)
		}
		if rep.StableUniform != rep.Stable {
			t.Errorf("k=%d n=%d complete: %d stable configs but only %d uniform — a non-uniform freeze on the complete graph would contradict the paper",
				tc.k, tc.n, rep.Stable, rep.StableUniform)
		}
		// Cross-validate liveness against the multiset checker, which is
		// sound (and exact) on the complete graph.
		mrep, err := Check(p, tc.n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !mrep.LiveFromAll || !mrep.Uniform {
			t.Errorf("k=%d n=%d: multiset checker disagrees: %+v", tc.k, tc.n, mrep)
		}
	}
}

// The star-graph freeze, in its strongest exhaustive form: EVERY
// reachable configuration is trapped — the first productive interaction
// necessarily commits the hub, after which the remaining free leaves
// can never execute the initial/initial' rendezvous (it needs an edge
// between two free agents, and all edges go through the hub). Not a
// single reachable stable configuration is uniform. This is the
// documented failing-convergence scenario: the model checker proves the
// freeze is unavoidable, not bad luck.
func TestCheckVectorStarTotallyTrapped(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 4}, {2, 5}, {3, 5}} {
		p := core.MustNew(tc.k)
		rep, err := CheckVector(p, tc.n, edgesOf(mustGraph(topology.Star(tc.n))), 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.StableUniform != 0 {
			t.Errorf("k=%d n=%d star: %d stable uniform configurations reachable, want 0", tc.k, tc.n, rep.StableUniform)
		}
		if rep.Trapped != rep.Reachable {
			t.Errorf("k=%d n=%d star: %d of %d configurations trapped, want ALL (even the initial one)",
				tc.k, tc.n, rep.Trapped, rep.Reachable)
		}
		if rep.FirstTrapped == nil || rep.FirstStableNonUniform == nil {
			t.Errorf("k=%d n=%d star: missing witnesses: %+v", tc.k, tc.n, rep)
		}
	}
}

// Rings sit between the complete graph and the star: the 5-cycle for
// k=2 is fully live (the leftover free agent keeps the rendezvous
// possible), while the 6-cycle already has trapped configurations —
// two stranded free agents on opposite arcs, separated by committed
// segments, can never meet. The freeze finding is a graph-structure
// phenomenon, not a star quirk.
func TestCheckVectorRingBorderline(t *testing.T) {
	p := core.MustNew(2)
	live, err := CheckVector(p, 5, edgesOf(mustGraph(topology.Ring(5))), 1)
	if err != nil {
		t.Fatal(err)
	}
	if live.Trapped != 0 {
		t.Errorf("5-ring k=2: %d trapped, want 0", live.Trapped)
	}
	if live.StableUniform == 0 {
		t.Error("5-ring k=2: no stable uniform configuration")
	}
	stuck, err := CheckVector(p, 6, edgesOf(mustGraph(topology.Ring(6))), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stuck.Trapped == 0 {
		t.Error("6-ring k=2: expected trapped configurations (stranded free pairs), found none")
	}
	if stuck.Trapped == stuck.Reachable {
		t.Error("6-ring k=2: everything trapped — unlike the star, some ring executions do stabilize")
	}
}

// A simulated star run that freeze-stops must land, in the model, on a
// reachable node that is stable (its forward closure is frozen) and
// non-uniform — the runtime FrozenCondition and the exhaustive checker
// agree on what a frozen configuration is.
func TestCheckVectorAgreesWithSimulatedFreeze(t *testing.T) {
	const n = 5
	p := core.MustNew(2)
	g, err := topology.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildVector(p, n, edgesOf(mustGraph(topology.Star(n))))
	if err != nil {
		t.Fatal(err)
	}
	stable := vg.StableNodes()
	for seed := uint64(1); seed <= 5; seed++ {
		pop := population.New(p, n)
		cond := &topology.FrozenCondition{G: g, Proto: p, Orbits: p.ParityOrbit}
		res, err := sim.Run(pop, topology.NewEdgeScheduler(g, seed), cond, sim.Options{MaxInteractions: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: star run did not freeze within the cap", seed)
		}
		id, ok := vg.Lookup(pop.Snapshot())
		if !ok {
			t.Fatalf("seed %d: frozen configuration %v is not a reachable node of the model", seed, pop.Snapshot())
		}
		if !stable[id] {
			t.Errorf("seed %d: simulation froze on node %d, but the model says its forward closure is not frozen", seed, id)
		}
		if groupSpread(p, vg.Nodes[id]) <= 1 {
			t.Errorf("seed %d: star freeze landed on a uniform partition %v — the model says that is unreachable", seed, vg.Nodes[id])
		}
	}
}

// The weak-fairness stall is a SCHEDULING phenomenon, not a
// reachability one: every configuration the stalled execution visits
// can still reach a stable configuration (the multiset checker proves
// it), so a globally fair scheduler would rescue the run from any point
// — the weak adversary just never takes it there. This is the sharpest
// available separation of the two fairness notions on the paper's own
// protocol.
func TestWeakStallStaysLive(t *testing.T) {
	const n = 9
	p := core.MustNew(3)
	g, err := Build(p, n)
	if err != nil {
		t.Fatal(err)
	}
	live := g.CanReach(g.StableNodes())
	visited := map[int]bool{}
	hook := visitRecorder{g: g, visited: visited, t: t}
	pop := population.New(p, n)
	res, err := sim.Run(pop,
		sched.NewWeakAdversary(100, sched.WeakOptions{IsFree: p.IsFree}),
		sim.NewCountTarget(p.CanonMap(), mustTarget(t, p, n)),
		sim.Options{MaxInteractions: 20_000, Hooks: []sim.Hook{&hook}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("expected the weak adversary to stall n=9 (it does in the sched tests)")
	}
	if len(visited) < 3 {
		t.Fatalf("stalled run visited only %d distinct configurations", len(visited))
	}
	for id := range visited {
		if !live[id] {
			t.Fatalf("visited configuration %v cannot reach a stable configuration — the stall would be a reachability freeze, not a fairness artifact",
				g.Nodes[id])
		}
	}
}

func mustTarget(t *testing.T, p *core.Protocol, n int) []int {
	t.Helper()
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

// visitRecorder maps every visited configuration to its multiset node.
type visitRecorder struct {
	g       *Graph
	visited map[int]bool
	t       *testing.T
}

func (v *visitRecorder) Init(pop *population.Population) {
	v.record(pop)
}

func (v *visitRecorder) OnStep(pop *population.Population, _ sim.StepInfo) {
	v.record(pop)
}

func (v *visitRecorder) record(pop *population.Population) {
	id, ok := v.g.Lookup(Config{Counts: pop.Counts()})
	if !ok {
		v.t.Fatalf("simulation visited unreachable configuration %v", pop.Counts())
	}
	v.visited[id] = true
}
