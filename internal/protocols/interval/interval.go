// Package interval reconstructs the approximate uniform k-partition
// baseline attributed to Delporte-Gallet, Fauconnier, Guerraoui and
// Ruppert ("When birds die", DCOSS 2006) as cited by the paper: a protocol
// that guarantees every group receives at least n/(2k) agents, using at
// most k(k+3)/2 states.
//
// The paper cites only the guarantee and the state budget, not the
// construction, so this package implements an interval-splitting protocol
// with the same contract (the substitution is documented in DESIGN.md §4):
//
//   - a state is a label interval [lo, hi] ⊆ [1, k]; the designated
//     initial state is [1, k];
//   - when two agents with the SAME splittable interval meet, they split
//     it at the midpoint: one takes [lo, mid], the other [mid+1, hi];
//   - singleton intervals are final; f([lo, hi]) = lo.
//
// Splitting same-state pairs into different states is an asymmetric rule,
// so unlike the paper's protocol this baseline is NOT symmetric — a second
// comparison axis beside approximation quality. The state space is the
// set of intervals, k(k+1)/2 ≤ k(k+3)/2, within the cited budget.
//
// Quality: each split divides an interval class exactly in half (odd
// counts strand one agent), so group g receives at least
// ⌊...⌊n/2⌋.../2⌋ ≥ n/2^⌈log2 k⌉ − ⌈log2 k⌉ ≥ n/(2k) − log2(k) agents;
// for n ≥ 4k·log2(k) this meets the n/(2k) bound, and the tests verify
// the exact bound empirically across a grid.
package interval

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
)

// ErrBadK is returned for k < 2.
var ErrBadK = errors.New("interval: k must be >= 2")

// Protocol is the interval-splitting approximate k-partition baseline.
type Protocol struct {
	*protocol.Table
	k int
	// id[lo][hi] is the dense state index of interval [lo, hi], 1-based.
	id [][]protocol.State
	// lo/hi invert id.
	lo, hi []int
}

// New constructs the baseline for k groups.
func New(k int) (*Protocol, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	p := &Protocol{k: k}
	b := protocol.NewBuilder(fmt.Sprintf("interval-%d-partition", k), false)

	p.id = make([][]protocol.State, k+1)
	for lo := 1; lo <= k; lo++ {
		p.id[lo] = make([]protocol.State, k+1)
	}
	// Declare singletons and wider intervals; order is irrelevant, the id
	// table records it. f([lo,hi]) = lo.
	for lo := 1; lo <= k; lo++ {
		for hi := lo; hi <= k; hi++ {
			s := b.AddState(fmt.Sprintf("[%d,%d]", lo, hi), lo)
			p.id[lo][hi] = s
			p.lo = append(p.lo, lo)
			p.hi = append(p.hi, hi)
		}
	}
	// Ensure the group count is k even though f never exceeds... f([k,k])
	// = k, so NumGroups is already k via the builder's max-group scan.
	b.SetInitial(p.Interval(1, k))
	for lo := 1; lo <= k; lo++ {
		for hi := lo + 1; hi <= k; hi++ {
			mid := (lo + hi) / 2
			b.AddRule(p.Interval(lo, hi), p.Interval(lo, hi),
				p.Interval(lo, mid), p.Interval(mid+1, hi))
		}
	}
	tab, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("interval: k=%d: %w", k, err)
	}
	p.Table = tab
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(k int) *Protocol {
	p, err := New(k)
	if err != nil {
		panic(err)
	}
	return p
}

// K returns the number of groups.
func (p *Protocol) K() int { return p.k }

// Interval returns the state index for [lo, hi].
func (p *Protocol) Interval(lo, hi int) protocol.State {
	if lo < 1 || hi > p.k || lo > hi {
		panic(fmt.Sprintf("interval: [%d,%d] invalid for k=%d", lo, hi, p.k))
	}
	return p.id[lo][hi]
}

// Bounds returns the interval a state encodes.
func (p *Protocol) Bounds(s protocol.State) (lo, hi int) {
	return p.lo[s], p.hi[s]
}

// IsFinal reports whether s is a singleton (assigned) interval.
func (p *Protocol) IsFinal(s protocol.State) bool { return p.lo[s] == p.hi[s] }

// Stable reports whether no further split can occur: every splittable
// interval state holds at most one agent. Unlike the paper's protocol the
// stable configurations here are fully quiescent.
func (p *Protocol) Stable(counts []int) bool {
	for s, c := range counts {
		if c > 1 && p.lo[s] != p.hi[s] {
			return false
		}
	}
	return true
}

// MinGuarantee returns the baseline's contract: the minimum number of
// agents each group must have at stabilization, n/(2k), rounded down.
func (p *Protocol) MinGuarantee(n int) int { return n / (2 * p.k) }
