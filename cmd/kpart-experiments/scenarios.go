package main

// Scenario experiments: auxiliary sweeps (requested with -fig scenarios
// and -fig churn, like -fig traj) that chart the protocol's behavior
// OUTSIDE the paper's model — restricted interaction graphs, the
// weak-fairness adversary, and population churn. The paper proves
// convergence for the complete graph under global fairness; these
// sweeps measure how fast each relaxation of that model breaks the
// protocol, with internal/explore model-checking the small cases.

import (
	"context"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/rng"
)

// scenarioCombo is one cell of the topology × fairness grid.
type scenarioCombo struct {
	label string
	topo  harness.TopologySpec
	fair  harness.Fairness
}

// scenariosExp sweeps topology × fairness at a fixed (n, k) and tallies
// outcomes: converged, frozen (the detector proved no productive
// interaction can change a group again), or capped (the run burned the
// interaction budget — the weak adversary's stall shows up here).
func scenariosExp(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers int) error {
	const (
		n    = 12
		k    = 3
		capI = 1_000_000
	)
	combos := []scenarioCombo{
		{"complete/uniform", harness.TopologySpec{}, harness.FairnessUniform},
		{"complete/weak", harness.TopologySpec{}, harness.FairnessWeak},
		{"ring/uniform", harness.TopologySpec{Kind: harness.TopologyRing}, harness.FairnessUniform},
		{"ring/weak", harness.TopologySpec{Kind: harness.TopologyRing}, harness.FairnessWeak},
		{"star/uniform", harness.TopologySpec{Kind: harness.TopologyStar}, harness.FairnessUniform},
		{"grid/uniform", harness.TopologySpec{Kind: harness.TopologyGrid, Rows: 3, Cols: 4}, harness.FairnessUniform},
		{"regular3/uniform", harness.TopologySpec{Kind: harness.TopologyRegular, Degree: 3, GraphSeed: 1}, harness.FairnessUniform},
	}
	var specs []harness.TrialSpec
	for ci, c := range combos {
		for t := 0; t < trials; t++ {
			specs = append(specs, harness.TrialSpec{
				N: n, K: k,
				Seed:            rng.StreamSeed(seed, uint64(ci), uint64(t)),
				MaxInteractions: capI,
				Engine:          harness.EngineAgent,
				Topology:        c.topo,
				Fairness:        c.fair,
			})
		}
	}
	results, err := harness.RunManyCtx(ctx, specs, workers, opts)
	if err != nil {
		return err
	}

	tbl := report.NewTable("scenario", "trials", "converged", "frozen", "capped", "mean_interactions")
	csv := report.NewTable("scenario", "topology", "fairness", "trials", "converged", "frozen", "capped", "mean_interactions")
	for ci, c := range combos {
		var converged, frozen int
		var sumI uint64
		for t := 0; t < trials; t++ {
			r := results[ci*trials+t]
			if r.Converged {
				converged++
			}
			if r.Frozen {
				frozen++
			}
			sumI += r.Interactions
		}
		capped := trials - converged - frozen
		meanI := float64(sumI) / float64(trials)
		tbl.AddRow(c.label, trials, converged, frozen, capped, meanI)
		csv.AddRow(c.label, c.topo.String(), c.fair.String(), trials, converged, frozen, capped, meanI)
	}
	fmt.Printf("topology × fairness at n=%d k=%d (cap %d interactions/trial)\n", n, k, capI)
	tbl.WriteTo(os.Stdout)
	fmt.Println("capped = burned the budget without converging or freezing (the weak adversary's stall)")
	path, err := harness.WriteCSVFile(outDir, "scenarios.csv", csv)
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// churnExp charts a survival curve: fraction of trials that still reach
// the uniform partition as the number of crash events grows. Crashes
// remove agents without warning; once the surviving population's
// committed groups can no longer be rebalanced, the run freezes — the
// protocol is not self-stabilizing (a documented finding, not a bug).
func churnExp(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers int) error {
	const (
		n    = 30
		k    = 3
		capI = 5_000_000
	)
	events := []int{0, 1, 2, 3, 4}
	var specs []harness.TrialSpec
	for ei, e := range events {
		for t := 0; t < trials; t++ {
			spec := harness.TrialSpec{
				N: n, K: k,
				Seed:            rng.StreamSeed(seed, uint64(ei), uint64(t)),
				MaxInteractions: capI,
				Engine:          harness.EngineAgent,
			}
			if e > 0 {
				spec.Churn = harness.ChurnSpec{
					At: 2000, Interval: 2000, Events: e, Leaves: 1, Crash: true,
				}
			}
			specs = append(specs, spec)
		}
	}
	results, err := harness.RunManyCtx(ctx, specs, workers, opts)
	if err != nil {
		return err
	}

	tbl := report.NewTable("crash_events", "final_n", "trials", "converged", "frozen", "survival")
	chart := &report.LineChart{
		Title:  fmt.Sprintf("Churn survival: fraction converged vs crash events (n=%d, k=%d)", n, k),
		XLabel: "crash events", YLabel: "survival",
	}
	series := report.Series{Name: "survival"}
	for ei, e := range events {
		var converged, frozen int
		for t := 0; t < trials; t++ {
			r := results[ei*trials+t]
			if r.Converged {
				converged++
			}
			if r.Frozen {
				frozen++
			}
		}
		survival := float64(converged) / float64(trials)
		tbl.AddRow(e, n-e, trials, converged, frozen, survival)
		series.X = append(series.X, float64(e))
		series.Y = append(series.Y, survival)
	}
	chart.Series = []report.Series{series}
	fmt.Print(chart.String())
	tbl.WriteTo(os.Stdout)
	path, err := harness.WriteCSVFile(outDir, "churn.csv", tbl)
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
