// Package serve is the serve half of the speclosure golden fixture: it
// imports the harness fixture by its real testdata path, so the field
// inventory crosses the package boundary as a fact. The wire mapping
// deliberately drops one field on both sides.
package serve

import harness "repro/internal/lint/analyzers/testdata/speclosure/harness"

// TrialRequest mirrors TrialSpec on the wire — minus Omitted.
type TrialRequest struct { // want `TrialRequest has no Omitted field`
	N        int
	K        int
	Seed     uint64
	Topology harness.Topology
}

// Spec builds the engine spec from the wire request; it never sets
// Omitted.
func (r *TrialRequest) Spec() harness.TrialSpec {
	return harness.TrialSpec{ // want `serve mapping never sets TrialSpec\.Omitted`
		N:        r.N,
		K:        r.K,
		Seed:     r.Seed,
		Topology: harness.Topology{Kind: r.Topology.Kind, Rows: r.Topology.Rows},
	}
}
