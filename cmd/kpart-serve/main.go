// Command kpart-serve exposes the simulation harness as an HTTP service:
// trial and sweep requests come in as JSON, execute on a bounded worker
// pool behind an explicit admission queue (full queue = 429 with
// Retry-After, not an unbounded goroutine pile), and results are
// memoized in a content-addressed cache keyed by harness.SpecKey — an
// identical spec is computed once and replayed byte-for-byte.
//
// Usage:
//
//	kpart-serve [-addr :8080] [-workers 0] [-queue 64] [-cache 4096]
//	            [-journal kpart-serve.journal] [-trial-timeout 0] [-retries 0]
//	            [-debug-addr :6060] [-metrics-out path.jsonl] [-trace-out spans.jsonl]
//	kpart-serve -smoke
//
// GET /metrics on the API address serves the registry in Prometheus
// text exposition format (and, with -debug-addr, on the debug address
// too). With -trace-out, every request's span tree — request → queue →
// trial → attempt → engine → per-#gk grouping phases — is appended to
// the given JSONL file as it completes; clients may name their trace
// with an X-Kpart-Trace header, which the response echoes. Render the
// file with cmd/kpart-spans.
//
// With -journal, completed trials are appended to the same crash-atomic
// journal format the batch binaries use; a restarted server loads it and
// answers GET /v1/results/{speckey} for prior work from disk. SIGINT
// drains gracefully: in-flight trials abort through the harness's
// context plumbing, the journal is flushed, and the process exits 130
// like the other kpart binaries.
//
// -smoke runs a self-contained loopback round-trip (trial, cache hit,
// result replay, health, sweep stream) and exits; `make serve-smoke`
// uses it as the CI-level liveness check.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address for the API")
		workers      = flag.Int("workers", 0, "trial workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth (full queue answers 429)")
		cacheN       = flag.Int("cache", serve.DefaultCacheEntries, "result cache capacity (entries)")
		journalPath  = flag.String("journal", "", "journal path for persistent results (empty = in-memory only)")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall deadline (0 = none)")
		retries      = flag.Int("retries", 0, "extra attempts for transiently failed trials")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
		sweepMax     = flag.Int("max-sweep-trials", serve.DefaultMaxSweepTrials, "largest trial count one sweep request may expand into")
		debugAddr    = flag.String("debug-addr", "", "serve pprof, /debug/vars and /metrics on this address (e.g. :6060)")
		metricsOut   = flag.String("metrics-out", "", "write a metrics snapshot (JSONL) here on exit")
		traceOut     = flag.String("trace-out", "", "append completed request span trees (JSONL) here")
		smoke        = flag.Bool("smoke", false, "run a loopback self-test and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "kpart-serve: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("kpart-serve: smoke ok")
		return
	}

	// A service is always instrumented: the registry feeds /healthz's
	// richer sibling /debug/vars and the per-endpoint counters.
	reg := obs.New("kpart_serve")
	reg.PublishExpvar()
	reg.PublishPrometheus()
	harness.SetMetrics(reg)

	var spans *span.Collector
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		spans = span.NewCollector(f)
		fmt.Fprintf(os.Stderr, "kpart-serve: tracing request spans to %s\n", *traceOut)
	}

	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kpart-serve: debug server on http://%s/debug/pprof\n", ln.Addr())
	}

	var journal *harness.Journal
	if *journalPath != "" {
		// OpenJournal resumes an existing journal (that is the point of a
		// service restart) and degenerates to a fresh one on first boot.
		j, err := harness.OpenJournal(*journalPath, "kpart-serve")
		if err != nil {
			fatal(err)
		}
		journal = j
		if n := j.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "kpart-serve: loaded %d completed trials from %s\n", n, *journalPath)
		}
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		Journal:        journal,
		Registry:       reg,
		Spans:          spans,
		RunOptions:     harness.RunOptions{TrialTimeout: *trialTimeout, Retries: *retries},
		RetryAfter:     *retryAfter,
		MaxSweepTrials: *sweepMax,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "kpart-serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(err)
	}
	stop() // a second signal kills the process the default way
	fmt.Fprintln(os.Stderr, "kpart-serve: draining (in-flight trials abort; completed ones are journaled)")

	// Drain order matters: abort trial execution first so blocked
	// handlers return, then let the HTTP server finish those responses,
	// and only then flush the journal nobody can touch anymore.
	srv.Shutdown()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "kpart-serve: http shutdown: %v\n", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-serve: closing journal: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := reg.Snapshot().WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-serve: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "kpart-serve: wrote", *metricsOut)
	}
	if traceFile != nil {
		if err := spans.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-serve: span sink: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-serve: closing %s: %v\n", *traceOut, err)
		}
	}
	os.Exit(130)
}

// runSmoke boots a loopback server with a throwaway journal and walks
// the API end to end: trial round-trip, content-addressed cache hit
// (byte-identical body), result replay by key, health, and a streamed
// sweep. It is `make serve-smoke`.
func runSmoke() error {
	dir, err := os.MkdirTemp("", "kpart-serve-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	journal, err := harness.CreateJournal(dir+"/smoke.journal", "kpart-serve")
	if err != nil {
		return err
	}
	reg := obs.New("kpart_serve")
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8, Journal: journal, Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	post := func(path, body string) (*http.Response, []byte, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, b, err
	}

	// 1. Trial round-trip (miss) and cache hit with an identical body.
	resp1, body1, err := post("/v1/trials", `{"n":24,"k":4,"seed":7}`)
	if err != nil {
		return err
	}
	if resp1.StatusCode != http.StatusOK {
		return fmt.Errorf("trial: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Kpart-Cache"); got != "miss" {
		return fmt.Errorf("first trial: cache header %q, want miss", got)
	}
	resp2, body2, err := post("/v1/trials", `{"n":24,"k":4,"seed":7}`)
	if err != nil {
		return err
	}
	if got := resp2.Header.Get("X-Kpart-Cache"); got != "lru" {
		return fmt.Errorf("second trial: cache header %q, want lru", got)
	}
	if !bytes.Equal(body1, body2) {
		return fmt.Errorf("cache replay is not byte-identical:\n%s\n%s", body1, body2)
	}
	fmt.Println("smoke: trial round-trip + byte-identical cache hit")

	// 2. Replay by content hash.
	var rec struct {
		SpecKey string `json:"spec_key"`
	}
	if err := json.Unmarshal(body1, &rec); err != nil {
		return err
	}
	resp3, err := http.Get(base + "/v1/results/" + rec.SpecKey)
	if err != nil {
		return err
	}
	body3, err := io.ReadAll(resp3.Body)
	_ = resp3.Body.Close()
	if err != nil {
		return err
	}
	if resp3.StatusCode != http.StatusOK || !bytes.Equal(body1, body3) {
		return fmt.Errorf("result replay: status %d, identical=%t", resp3.StatusCode, bytes.Equal(body1, body3))
	}
	fmt.Println("smoke: GET /v1/results/" + rec.SpecKey)

	// 3. Health.
	resp4, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	_ = resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp4.StatusCode)
	}
	fmt.Println("smoke: healthz ok")

	// 3b. Prometheus exposition: the trial above must show in the RED
	// metrics.
	respM, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mBody, err := io.ReadAll(respM.Body)
	_ = respM.Body.Close()
	if err != nil {
		return err
	}
	if respM.StatusCode != http.StatusOK || !bytes.Contains(mBody, []byte("serve_http_trials_requests_total")) {
		return fmt.Errorf("/metrics: status %d, body %q", respM.StatusCode, mBody)
	}
	fmt.Println("smoke: /metrics exposition ok")

	// 4. Sweep stream: trials+1 NDJSON lines (records + point trailer).
	resp5, body5, err := post("/v1/sweeps", `{"n":12,"k":3,"trials":4,"seed":1}`)
	if err != nil {
		return err
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(body5))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if resp5.StatusCode != http.StatusOK || lines != 5 {
		return fmt.Errorf("sweep: status %d, %d NDJSON lines (want 5): %s", resp5.StatusCode, lines, body5)
	}
	fmt.Println("smoke: sweep streamed 4 records + aggregate trailer")

	// 5. Clean shutdown: drain the pool, stop HTTP, flush the journal.
	srv.Shutdown()
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := journal.Close(); err != nil {
		return fmt.Errorf("closing journal: %w", err)
	}
	if journal.Len() != 5 {
		return fmt.Errorf("journal holds %d trials, want 5", journal.Len())
	}
	fmt.Println("smoke: graceful shutdown, journal flushed with 5 trials")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-serve:", err)
	os.Exit(2)
}
