// Package composed implements the repeated-bipartition protocol for
// k = 2^h groups: the prior-work approach the paper's introduction
// discusses ("by repeating the uniform bipartition protocol h times...")
// and then rejects as hard to generalize.
//
// Each agent walks down a complete binary tree of depth h. It starts free
// at the root; two free agents at the same node with opposite I-parity
// split into the node's two children (rule 5 of the bipartition protocol),
// becoming free at the child or settled if the child is a leaf. Free
// agents flip parity on any other encounter (rules 1, 2, 4).
//
// The interesting property — and the reason this is a baseline rather than
// a solution — is that composition does NOT preserve exact uniformity:
// every internal node with an odd sub-population strands one free agent
// whose output defaults to the leftmost leaf of its subtree, so group 1
// can exceed group k by up to h = log2(k) agents (e.g. n = 7, k = 4 gives
// sizes 3,1,2,1). Tests pin this gap down; the ablation benches in the
// repository root quantify it against the paper's exact protocol. The
// state count is 3k−2, identical to the paper's protocol, making the
// comparison purely about output quality and convergence time.
package composed

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
)

// ErrNotPowerOfTwo is returned when k is not 2^h with h >= 1.
var ErrNotPowerOfTwo = errors.New("composed: k must be a power of two >= 2")

// Protocol is the repeated-bipartition protocol for k = 2^h groups.
//
// State encoding uses heap indices over the complete binary tree with k
// leaves: node 1 is the root, node v has children 2v and 2v+1, nodes
// k..2k−1 are leaves (leaf v = group v−k+1). States:
//
//	internal node v (1 <= v <= k−1), parity 0: index 2(v−1)
//	internal node v (1 <= v <= k−1), parity 1: index 2(v−1)+1
//	leaf v (k <= v <= 2k−1):                   index 2(k−1) + (v−k)
//
// giving 2(k−1) + k = 3k−2 states.
type Protocol struct {
	*protocol.Table
	k, h int
}

// New constructs the protocol for k = 2^h groups.
func New(k int) (*Protocol, error) {
	if k < 2 || k&(k-1) != 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNotPowerOfTwo, k)
	}
	h := 0
	for 1<<h < k {
		h++
	}
	p := &Protocol{k: k, h: h}
	b := protocol.NewBuilder(fmt.Sprintf("composed-bipartition-%d", k), true)

	// Declare states in the documented order. A free agent at internal
	// node v outputs the group of the leftmost leaf below v.
	for v := 1; v <= k-1; v++ {
		g := p.leftmostLeafGroup(v)
		b.AddState(fmt.Sprintf("free(%d)", v), g)
		b.AddState(fmt.Sprintf("free'(%d)", v), g)
	}
	for v := k; v <= 2*k-1; v++ {
		b.AddState(fmt.Sprintf("leaf(%d)", v-k+1), v-k+1)
	}
	b.SetInitial(p.Free(1, 0))

	// child returns the state an agent entering node c assumes: free at c
	// with parity 0 if internal, settled if c is a leaf.
	child := func(c int) protocol.State {
		if c >= k {
			return p.Leaf(c - k + 1)
		}
		return p.Free(c, 0)
	}

	for v := 1; v <= k-1; v++ {
		f0, f1 := p.Free(v, 0), p.Free(v, 1)
		// Same node, same parity: flip both (bipartition rules 1/2).
		b.AddRule(f0, f0, f1, f1)
		b.AddRule(f1, f1, f0, f0)
		// Same node, opposite parity: split into the children (rule 5).
		b.AddRule(f0, f1, child(2*v), child(2*v+1))
		// Free agent meets anything not free at v: flip parity (rule 4
		// analogue). Covers settled leaves, and free agents at other
		// nodes (both flip, via this rule firing once per encounter...
		// an encounter between free(v) and free(w), v != w, must flip
		// BOTH; a single table entry handles it below).
		for v2 := v + 1; v2 <= k-1; v2++ {
			for _, a := range []int{0, 1} {
				for _, c := range []int{0, 1} {
					b.AddRule(p.Free(v, a), p.Free(v2, c), p.Free(v, 1-a), p.Free(v2, 1-c))
				}
			}
		}
		for leaf := 1; leaf <= k; leaf++ {
			b.AddRule(f0, p.Leaf(leaf), f1, p.Leaf(leaf))
			b.AddRule(f1, p.Leaf(leaf), f0, p.Leaf(leaf))
		}
	}

	tab, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("composed: k=%d: %w", k, err)
	}
	p.Table = tab
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(k int) *Protocol {
	p, err := New(k)
	if err != nil {
		panic(err)
	}
	return p
}

// K returns the number of groups.
func (p *Protocol) K() int { return p.k }

// Depth returns h = log2(k).
func (p *Protocol) Depth() int { return p.h }

// Free returns the state index of a free agent at internal node v
// (heap index, 1 <= v <= k−1) with the given parity bit.
func (p *Protocol) Free(v, parity int) protocol.State {
	if v < 1 || v > p.k-1 || parity < 0 || parity > 1 {
		panic(fmt.Sprintf("composed: free(%d,%d) out of range for k=%d", v, parity, p.k))
	}
	return protocol.State(2*(v-1) + parity)
}

// Leaf returns the state index of the settled state for group g (1..k).
func (p *Protocol) Leaf(g int) protocol.State {
	if g < 1 || g > p.k {
		panic(fmt.Sprintf("composed: leaf(%d) out of range for k=%d", g, p.k))
	}
	return protocol.State(2*(p.k-1) + g - 1)
}

// IsFree reports whether s is a free (non-settled) state.
func (p *Protocol) IsFree(s protocol.State) bool { return int(s) < 2*(p.k-1) }

// leftmostLeafGroup returns the group of the leftmost leaf below heap
// node v.
func (p *Protocol) leftmostLeafGroup(v int) int {
	for v < p.k {
		v *= 2
	}
	return v - p.k + 1
}

// Stable reports whether the configuration given by counts can no longer
// change any agent's group: every internal node hosts at most one free
// agent. (That one agent flips parity forever but its group is fixed.)
func (p *Protocol) Stable(counts []int) bool {
	for v := 1; v <= p.k-1; v++ {
		if counts[p.Free(v, 0)]+counts[p.Free(v, 1)] > 1 {
			return false
		}
	}
	return true
}

// MaxSpreadBound returns the worst-case group-size spread this protocol
// can stabilize to: one stranded agent per internal node on a root-to-leaf
// path, i.e. log2(k). The paper's protocol guarantees 1.
func (p *Protocol) MaxSpreadBound() int { return p.h }
