package sim

import (
	"repro/internal/population"
	"repro/internal/protocol"
)

// GroupingCounter reproduces the instrumentation behind Figure 4 of the
// paper: NI_i, the total number of interactions applied when the i-th
// complete set of agents {g1..gk} is finished — which is exactly the moment
// #gk rises to i, since rule 7 is the only rule producing gk and gk-agents
// never leave (Section 5.1: "once an agent enters state gk, the set of
// agents never goes back to initial").
//
// Marks[i-1] holds NI_i. The per-grouping costs of the figure are the
// differences NI'_i = NI_i − NI_(i−1) (see Deltas).
type GroupingCounter struct {
	// Watch is the state whose count increments mark groupings (gk for
	// the k-partition protocol).
	Watch protocol.State
	// Marks receives pop.Interactions() at each increment of the watched
	// count past its previous maximum.
	Marks []uint64

	best int
}

// Init implements Hook.
func (g *GroupingCounter) Init(pop *population.Population) {
	g.Marks = g.Marks[:0]
	g.best = pop.Count(g.Watch)
	for i := 0; i < g.best; i++ {
		g.Marks = append(g.Marks, pop.Interactions())
	}
}

// OnStep implements Hook.
func (g *GroupingCounter) OnStep(pop *population.Population, s StepInfo) {
	if !s.Changed {
		return
	}
	if c := pop.Count(g.Watch); c > g.best {
		for i := g.best; i < c; i++ {
			g.Marks = append(g.Marks, pop.Interactions())
		}
		g.best = c
	}
}

// Deltas returns NI'_i = NI_i − NI_(i−1) for i = 1..len(Marks), plus the
// remainder tail (total − NI_last) as the final element when total exceeds
// the last mark. This matches the stacked decomposition of Figure 4, whose
// top segment is the cost of placing the remaining n mod k agents.
func (g *GroupingCounter) Deltas(total uint64) []uint64 {
	out := make([]uint64, 0, len(g.Marks)+1)
	prev := uint64(0)
	for _, m := range g.Marks {
		out = append(out, m-prev)
		prev = m
	}
	if total > prev {
		out = append(out, total-prev)
	}
	return out
}

// MaxGroupCount tracks the running maximum of a state count; cheaper than
// GroupingCounter when only the final count matters.
type MaxGroupCount struct {
	Watch protocol.State
	Max   int
}

// Init implements Hook.
func (m *MaxGroupCount) Init(pop *population.Population) { m.Max = pop.Count(m.Watch) }

// OnStep implements Hook.
func (m *MaxGroupCount) OnStep(pop *population.Population, s StepInfo) {
	if s.Changed {
		if c := pop.Count(m.Watch); c > m.Max {
			m.Max = c
		}
	}
}

// SpreadRecorder samples the group-size spread (max−min) every Interval
// interactions; used by convergence-trajectory plots and tests asserting
// monotone-ish convergence behaviour.
type SpreadRecorder struct {
	Interval uint64
	Samples  []int
}

// Init implements Hook.
func (r *SpreadRecorder) Init(pop *population.Population) {
	r.Samples = r.Samples[:0]
	r.Samples = append(r.Samples, pop.Spread())
}

// OnStep implements Hook.
func (r *SpreadRecorder) OnStep(pop *population.Population, s StepInfo) {
	if r.Interval == 0 {
		return
	}
	if pop.Interactions()%r.Interval == 0 {
		r.Samples = append(r.Samples, pop.Spread())
	}
}

// StepFunc adapts a function to the Hook interface.
type StepFunc func(pop *population.Population, s StepInfo)

// Init implements Hook.
func (StepFunc) Init(*population.Population) {}

// OnStep implements Hook.
func (f StepFunc) OnStep(pop *population.Population, s StepInfo) { f(pop, s) }
