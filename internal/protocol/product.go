package protocol

import "fmt"

// Product is the parallel composition of two population protocols — the
// standard construction used throughout the literature to run protocols
// "side by side" (each agent carries a state from each component, and one
// encounter advances both components at once). The composition preserves
// determinism; it preserves symmetry iff both components are symmetric.
//
// Group mapping: by default the FIRST component's output is exposed (the
// second runs silently); SetOutput selects the other component. More
// refined output combinations (pairing the two outputs) can be layered on
// top via a custom Protocol wrapper.
type Product struct {
	a, b   Protocol
	name   string
	useB   bool
	groups int
}

var _ Protocol = (*Product)(nil)

// NewProduct composes a and b. It returns an error if the product state
// space would exceed MaxStates.
func NewProduct(a, b Protocol) (*Product, error) {
	if a.NumStates() <= 0 || b.NumStates() <= 0 {
		return nil, ErrNoStates
	}
	if a.NumStates() > MaxStates/b.NumStates() {
		return nil, fmt.Errorf("%w: %d × %d", ErrTooManyStates, a.NumStates(), b.NumStates())
	}
	return &Product{
		a:      a,
		b:      b,
		name:   fmt.Sprintf("%s × %s", a.Name(), b.Name()),
		groups: a.NumGroups(),
	}, nil
}

// SetOutput chooses which component's group mapping the product exposes:
// 0 for the first, 1 for the second.
func (p *Product) SetOutput(component int) {
	p.useB = component == 1
	if p.useB {
		p.groups = p.b.NumGroups()
	} else {
		p.groups = p.a.NumGroups()
	}
}

// Pack builds the product state from component states.
func (p *Product) Pack(sa, sb State) State {
	return State(int(sa)*p.b.NumStates() + int(sb))
}

// Unpack splits a product state into its components.
func (p *Product) Unpack(s State) (State, State) {
	return State(int(s) / p.b.NumStates()), State(int(s) % p.b.NumStates())
}

// Name implements Protocol.
func (p *Product) Name() string { return p.name }

// NumStates implements Protocol.
func (p *Product) NumStates() int { return p.a.NumStates() * p.b.NumStates() }

// NumGroups implements Protocol.
func (p *Product) NumGroups() int { return p.groups }

// InitialState implements Protocol.
func (p *Product) InitialState() State {
	return p.Pack(p.a.InitialState(), p.b.InitialState())
}

// Delta implements Protocol: both components step simultaneously.
func (p *Product) Delta(x, y State) (Pair, bool) {
	xa, xb := p.Unpack(x)
	ya, yb := p.Unpack(y)
	outA, firedA := p.a.Delta(xa, ya)
	outB, firedB := p.b.Delta(xb, yb)
	return Pair{
		P: p.Pack(outA.P, outB.P),
		Q: p.Pack(outA.Q, outB.Q),
	}, firedA || firedB
}

// Group implements Protocol.
func (p *Product) Group(s State) int {
	sa, sb := p.Unpack(s)
	if p.useB {
		return p.b.Group(sb)
	}
	return p.a.Group(sa)
}

// StateName implements Protocol.
func (p *Product) StateName(s State) string {
	sa, sb := p.Unpack(s)
	return fmt.Sprintf("(%s|%s)", p.a.StateName(sa), p.b.StateName(sb))
}
