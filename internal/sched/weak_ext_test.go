package sched_test

// External test package: these tests drive full sim runs, and sim
// imports sched, so they cannot live in the in-package test file.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

func runKPartition(t *testing.T, n int, s sched.Scheduler, cap uint64) sim.Result {
	t.Helper()
	p := core.MustNew(3)
	pop := population.New(p, n)
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(pop, s, sim.NewCountTarget(p.CanonMap(), target),
		sim.Options{MaxInteractions: cap})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The separation result this scheduler exists for: at n=12, k=3 the
// weak adversary traps the execution in a lap that never pairs initial
// with initial' at an obligation turn, so the protocol runs forever
// even though every pair keeps interacting — while uniform random
// (a globally fair sampler in the probabilistic sense) stabilizes the
// very same populations in a few hundred interactions. Weak fairness
// is satisfied; global fairness is violated; the paper's correctness
// proof does not survive the downgrade. The 2M-interaction budget is
// ~4 orders of magnitude above the uniform-random stabilization cost,
// so a non-converged run is a stall, not a slow run.
func TestWeakAdversaryStallsWhereRandomConverges(t *testing.T) {
	p := core.MustNew(3)
	const n = 12
	for seed := uint64(100); seed < 105; seed++ {
		weak := runKPartition(t, n, sched.NewWeakAdversary(seed, sched.WeakOptions{IsFree: p.IsFree}), 2_000_000)
		if weak.Converged {
			t.Errorf("seed %d: weak adversary failed to stall (converged after %d interactions)",
				seed, weak.Interactions)
		}
		random := runKPartition(t, n, sched.NewRandom(seed), 2_000_000)
		if !random.Converged {
			t.Errorf("seed %d: uniform random did not converge", seed)
		}
	}
}

// The adversary is weakly fair, not a wall: at other population sizes
// the obligation rotation happens to line up the initial/initial'
// rendezvous and the protocol stabilizes anyway. The trajectory is
// seed-independent because the hostile branch (first same-state free
// pair in index order) and the rotation are both deterministic, so the
// tie-break generator is never consulted. This distinguishes
// WeakAdversary from Hostile, which starves pairs outright and blocks
// convergence at every size.
func TestWeakAdversaryConvergesAtSomeSizes(t *testing.T) {
	p := core.MustNew(3)
	const n = 15
	var first uint64
	for seed := uint64(100); seed < 103; seed++ {
		res := runKPartition(t, n, sched.NewWeakAdversary(seed, sched.WeakOptions{IsFree: p.IsFree}), 2_000_000)
		if !res.Converged {
			t.Fatalf("seed %d: n=%d did not converge under the weak adversary", seed, n)
		}
		if seed == 100 {
			first = res.Interactions
		} else if res.Interactions != first {
			t.Errorf("seed %d: interaction count %d differs from seed 100's %d; expected a seed-independent deterministic trajectory",
				seed, res.Interactions, first)
		}
	}
}
