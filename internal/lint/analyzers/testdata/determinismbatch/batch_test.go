package countsim

import "time"

// Test files are exempt: the batch throughput benchmarks and the bench
// regression gate time themselves without touching what a run computes.
func helperBatchWall() time.Duration {
	start := time.Now()
	return time.Since(start)
}
