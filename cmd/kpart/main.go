// Command kpart runs one simulation of the uniform k-partition protocol
// and reports the outcome: interactions to stability, the final group
// sizes, and (optionally) a full interaction trace in JSON Lines.
//
// Usage:
//
//	kpart -n 24 -k 4 [-seed 1] [-max 0] [-rules] [-trace out.jsonl] [-v]
//
// Exit status is non-zero if the run hits the interaction cap before
// stabilizing.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 24, "population size (>= 3)")
		k         = flag.Int("k", 4, "number of groups (>= 2)")
		seed      = flag.Uint64("seed", 1, "random scheduler seed")
		maxI      = flag.Uint64("max", 0, "interaction cap (0 = engine default)")
		rules     = flag.Bool("rules", false, "print the protocol's transition rules and exit")
		dot       = flag.Bool("dot", false, "print the protocol's state machine as Graphviz DOT and exit")
		tracePath = flag.String("trace", "", "write a JSONL interaction trace to this file")
		verbose   = flag.Bool("v", false, "print per-grouping progress marks")
	)
	flag.Parse()

	p, err := core.New(*k)
	if err != nil {
		fatal(err)
	}
	if *rules {
		fmt.Printf("%s: %d states (3k-2 = %d), designated initial state %q\n",
			p.Name(), p.NumStates(), 3**k-2, p.StateName(p.InitialState()))
		fmt.Print(protocol.FormatRules(p, protocol.Rules(p)))
		return
	}
	if *dot {
		if err := protocol.WriteDot(os.Stdout, p); err != nil {
			fatal(err)
		}
		return
	}
	if *n < 3 {
		fatal(fmt.Errorf("n must be >= 3 (symmetric protocols cannot partition n=2)"))
	}

	target, err := p.TargetCounts(*n)
	if err != nil {
		fatal(err)
	}
	pop := population.New(p, *n)
	opts := sim.Options{MaxInteractions: *maxI}

	gc := &sim.GroupingCounter{Watch: p.G(*k)}
	opts.Hooks = append(opts.Hooks, gc)

	tally := core.NewTally(p)
	opts.Hooks = append(opts.Hooks, sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		tally.Observe(s.Before.P, s.Before.Q)
	}))

	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer traceFile.Close()
		opts.Hooks = append(opts.Hooks, &trace.Writer{W: traceFile})
	}

	res, err := sim.Run(pop, sched.NewRandom(*seed), sim.NewCountTarget(p.CanonMap(), target), opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("protocol   %s (%d states)\n", p.Name(), p.NumStates())
	fmt.Printf("population n=%d, seed=%d\n", *n, *seed)
	if res.Converged {
		fmt.Printf("stabilized after %d interactions (%d productive)\n", res.Interactions, res.Productive)
	} else {
		fmt.Printf("NOT stable after %d interactions (cap reached)\n", res.Interactions)
	}
	fmt.Printf("group sizes %v (spread %d)\n", res.GroupSizes, res.Spread())
	fmt.Printf("final config %s\n", pop)
	if *verbose {
		for i, m := range gc.Marks {
			fmt.Printf("  grouping %d complete at interaction %d\n", i+1, m)
		}
		fmt.Println("rule-family tally:")
		for r := core.RuleKind(0); int(r) < core.NumRuleKinds; r++ {
			if c := tally.Counts[r]; c > 0 {
				fmt.Printf("  %-6s %d\n", r, c)
			}
		}
		fmt.Printf("demolition fraction of productive interactions: %.4f\n", tally.DemolitionFraction())
	}
	if !res.Converged {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart:", err)
	os.Exit(2)
}
