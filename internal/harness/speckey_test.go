package harness

// SpecKey is the content address of a trial result: the serving layer's
// cache, the journal's resume index, and GET /v1/results/{speckey} all
// key on it. If TrialSpec ever grows a field that SpecKey does not
// hash, two different trials collide under one key and the cache
// silently serves the wrong result. This test makes that drift a
// compile-visible failure: every TrialSpec field must be registered
// here with a mutation, and every mutation must change the key.

import (
	"reflect"
	"testing"
)

// specKeyMutations names every TrialSpec field SpecKey covers, with a
// perturbation that must produce a different key. Adding a field to
// TrialSpec without extending SpecKey AND this table fails the test.
var specKeyMutations = map[string]func(*TrialSpec){
	"N":               func(s *TrialSpec) { s.N++ },
	"K":               func(s *TrialSpec) { s.K++ },
	"Seed":            func(s *TrialSpec) { s.Seed++ },
	"MaxInteractions": func(s *TrialSpec) { s.MaxInteractions++ },
	"Grouping":        func(s *TrialSpec) { s.Grouping = !s.Grouping },
	"Engine":          func(s *TrialSpec) { s.Engine = EngineCount },
	"BatchSize":       func(s *TrialSpec) { s.BatchSize++ },
}

func TestSpecKeyCoversEveryTrialSpecField(t *testing.T) {
	typ := reflect.TypeOf(TrialSpec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := specKeyMutations[name]; !ok {
			t.Errorf("TrialSpec.%s is not covered by SpecKey: extend the hash in SpecKey and register a mutation here, or identical-looking specs with different %s will collide in the result cache",
				name, name)
		}
	}
	for name := range specKeyMutations {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("specKeyMutations lists %s, which TrialSpec no longer has", name)
		}
	}
}

func TestSpecKeyPerturbedByEveryField(t *testing.T) {
	base := TrialSpec{N: 24, K: 4, Seed: 7, MaxInteractions: 1000, Grouping: false, Engine: EngineAgent}
	baseKey := SpecKey(base)
	if again := SpecKey(base); again != baseKey {
		t.Fatalf("SpecKey is not deterministic: %s vs %s", baseKey, again)
	}
	for name, mutate := range specKeyMutations {
		spec := base
		mutate(&spec)
		if spec == base {
			t.Errorf("mutation for %s left the spec unchanged; the coverage check proves nothing for it", name)
			continue
		}
		if SpecKey(spec) == baseKey {
			t.Errorf("SpecKey ignores TrialSpec.%s: two specs differing only in %s share key %s",
				name, name, baseKey)
		}
	}
}
