package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestRandomPairsValid(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 7)
	s := NewRandom(1)
	if s.Name() != "random" {
		t.Errorf("Name = %q", s.Name())
	}
	for i := 0; i < 10000; i++ {
		a, b := s.Next(pop)
		if a == b || a < 0 || b < 0 || a >= 7 || b >= 7 {
			t.Fatalf("invalid pair (%d,%d)", a, b)
		}
	}
}

func TestRandomCoversAllPairs(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 5)
	s := NewRandomFrom(rng.New(2))
	seen := map[[2]int]bool{}
	for i := 0; i < 5000; i++ {
		a, b := s.Next(pop)
		seen[[2]int{a, b}] = true
	}
	if len(seen) != 20 { // 5*4 ordered pairs
		t.Fatalf("saw %d ordered pairs, want 20", len(seen))
	}
}

func TestSweepEnumeratesAllOrderedPairs(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 4)
	s := NewSweep()
	if s.Name() != "sweep" {
		t.Errorf("Name = %q", s.Name())
	}
	seen := map[[2]int]int{}
	const cycles = 3
	for i := 0; i < 12*cycles; i++ { // 4*3 ordered pairs per cycle
		a, b := s.Next(pop)
		if a == b {
			t.Fatalf("sweep returned (%d,%d)", a, b)
		}
		seen[[2]int{a, b}]++
	}
	if len(seen) != 12 {
		t.Fatalf("saw %d pairs, want 12: %v", len(seen), seen)
	}
	for pr, c := range seen {
		if c != cycles {
			t.Fatalf("pair %v seen %d times, want %d", pr, c, cycles)
		}
	}
}

func TestSweepHandlesShrunkPopulation(t *testing.T) {
	p := core.MustNew(2)
	big := population.New(p, 10)
	small := population.New(p, 3)
	s := NewSweep()
	for i := 0; i < 50; i++ {
		s.Next(big)
	}
	for i := 0; i < 20; i++ {
		a, b := s.Next(small)
		if a >= 3 || b >= 3 || a == b {
			t.Fatalf("invalid pair (%d,%d) for n=3", a, b)
		}
	}
}

// The hostile scheduler must starve the k-partition protocol from the
// all-initial configuration: rules 1/2 fire forever, rule 5 never does, so
// no agent ever leaves I. This is the paper's Figure 1 loop made concrete,
// and it shows global fairness is not satisfied by arbitrary schedules.
func TestHostileStarvesKPartition(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 8) // even n: perfect pairing exists
	s := NewHostile(3, p.IsFree)
	if s.Name() != "hostile" {
		t.Errorf("Name = %q", s.Name())
	}
	for i := 0; i < 200000; i++ {
		a, b := s.Next(pop)
		pop.Interact(a, b)
	}
	free := pop.Count(p.Initial()) + pop.Count(p.InitialBar())
	if free != 8 {
		t.Fatalf("hostile scheduler let %d agents escape I", 8-free)
	}
}

// With odd n the perfect same-state pairing argument still holds from the
// all-initial configuration (the scheduler always finds two equal I-states
// among >= 3 free agents by pigeonhole).
func TestHostileStarvesOddN(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 7)
	s := NewHostile(9, p.IsFree)
	for i := 0; i < 100000; i++ {
		a, b := s.Next(pop)
		pop.Interact(a, b)
	}
	free := pop.Count(p.Initial()) + pop.Count(p.InitialBar())
	if free != 7 {
		t.Fatalf("hostile scheduler let %d agents escape I", 7-free)
	}
}

// Sanity: the hostile scheduler degrades gracefully (random fallback) when
// fewer than two free agents exist.
func TestHostileFallback(t *testing.T) {
	p := core.MustNew(3)
	pop := population.FromStates(p, []protocol.State{p.G(1), p.G(2), p.G(3)})
	s := NewHostile(4, p.IsFree)
	for i := 0; i < 100; i++ {
		a, b := s.Next(pop)
		if a == b || a < 0 || b < 0 || a >= pop.N() || b >= pop.N() {
			t.Fatalf("invalid fallback pair (%d,%d)", a, b)
		}
	}
}

func TestMatchingDisjointWithinRound(t *testing.T) {
	p := core.MustNew(3)
	for _, n := range []int{4, 7, 10} {
		pop := population.New(p, n)
		m := NewMatching(5)
		if m.Name() != "matching" {
			t.Fatalf("Name %q", m.Name())
		}
		pairsPerRound := n / 2
		for round := 0; round < 20; round++ {
			seen := make(map[int]bool)
			var started uint64
			for i := 0; i < pairsPerRound; i++ {
				a, b := m.Next(pop)
				if i == 0 {
					started = m.Round() // the first Next of a round draws it
				}
				if a == b || a < 0 || b < 0 || a >= n || b >= n {
					t.Fatalf("n=%d: invalid pair (%d,%d)", n, a, b)
				}
				if seen[a] || seen[b] {
					t.Fatalf("n=%d round %d: agent reused within a round", n, round)
				}
				seen[a], seen[b] = true, true
			}
			if m.Round() != started {
				t.Fatalf("n=%d: round advanced mid-matching", n)
			}
		}
	}
}

func TestMatchingCoversAgentsAcrossRounds(t *testing.T) {
	p := core.MustNew(2)
	n := 9
	pop := population.New(p, n)
	m := NewMatching(7)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		a, b := m.Next(pop)
		seen[a], seen[b] = true, true
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d agents ever scheduled", len(seen), n)
	}
}

// The synchronous-matching dichotomy (see the Matching doc comment):
// with EVEN n, every matching from the all-initial configuration pairs
// identical I-states, so the population parity-flips in lockstep forever
// and no agent ever leaves I; with ODD n the per-round idler breaks the
// lock and the protocol stabilizes. (Tests drive the loop by hand:
// importing sim here would create an import cycle, since sim imports
// sched.)
func TestMatchingParityLockEvenN(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 24)
	m := NewMatching(11)
	for i := 0; i < 200_000; i++ {
		a, b := m.Next(pop)
		pop.Interact(a, b)
	}
	free := pop.Count(p.Initial()) + pop.Count(p.InitialBar())
	if free != 24 {
		t.Fatalf("even-n parity lock broken: %d agents escaped I", 24-free)
	}
}

func TestMatchingStabilizesOddN(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 25)
	m := NewMatching(11)
	for i := 0; i < 10_000_000; i++ {
		a, b := m.Next(pop)
		pop.Interact(a, b)
		if p.IsStable(pop.CountsView()) {
			if pop.Spread() > 1 {
				t.Fatalf("spread %d", pop.Spread())
			}
			return
		}
	}
	t.Fatal("matching scheduler failed to stabilize odd n within 10M interactions")
}
