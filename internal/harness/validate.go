package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/protocol"
)

// MaxK is the largest group count a trial spec may request: the protocol
// uses 3k−2 states and protocol.MaxStates bounds the table size.
const MaxK = (protocol.MaxStates + 2) / 3

// String names the engine the way the binaries' -engine flags spell it.
func (e Engine) String() string {
	switch e {
	case EngineAgent:
		return "agent"
	case EngineCount:
		return "count"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine maps an -engine flag value ("agent" or "count") to an
// Engine. Unknown names return an ErrInvalidSpec-wrapped error so callers
// can treat them like any other malformed spec field.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "agent":
		return EngineAgent, nil
	case "count":
		return EngineCount, nil
	}
	return EngineAgent, fmt.Errorf("%w: unknown engine %q (want agent or count)", ErrInvalidSpec, s)
}

// ValidateSpec checks that spec identifies a runnable trial WITHOUT
// running it: group count in range, population size admitting a target
// signature, and a known engine. Failures wrap ErrInvalidSpec — the same
// sentinel runTrial returns — so admission layers (the HTTP service
// rejects invalid specs with 400 before enqueueing them) and the retry
// policy agree on what "unfixable" means.
func ValidateSpec(spec TrialSpec) error {
	if spec.K < 2 {
		return fmt.Errorf("%w: k=%d (%v)", ErrInvalidSpec, spec.K, core.ErrBadK)
	}
	if spec.K > MaxK {
		return fmt.Errorf("%w: k=%d exceeds the %d-state table bound (max k %d)",
			ErrInvalidSpec, spec.K, protocol.MaxStates, MaxK)
	}
	if spec.Engine != EngineAgent && spec.Engine != EngineCount {
		return fmt.Errorf("%w: unknown engine %d", ErrInvalidSpec, spec.Engine)
	}
	// Proto is safe now that k is in range; TargetCounts rejects
	// populations with no stable signature (n < 3).
	if _, err := Proto(spec.K).TargetCounts(spec.N); err != nil {
		return fmt.Errorf("%w: n=%d k=%d: %v", ErrInvalidSpec, spec.N, spec.K, err)
	}
	return nil
}
