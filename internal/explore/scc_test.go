package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols/bipartition"
)

func TestSCCPartitionsNodes(t *testing.T) {
	g, err := Build(core.MustNew(3), 7)
	if err != nil {
		t.Fatal(err)
	}
	s := g.SCCs()
	seen := make([]bool, len(g.Nodes))
	for c, members := range s.Members {
		for _, v := range members {
			if seen[v] {
				t.Fatalf("node %d in two components", v)
			}
			seen[v] = true
			if s.Comp[v] != c {
				t.Fatalf("Comp[%d] = %d, want %d", v, s.Comp[v], c)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("node %d in no component", v)
		}
	}
}

// Mutual reachability within components, spot-checked: every member of a
// component must reach every other member (verified via ShortestPath with
// a singleton target on small graphs).
func TestSCCMutualReachability(t *testing.T) {
	g, err := Build(core.MustNew(2), 6)
	if err != nil {
		t.Fatal(err)
	}
	s := g.SCCs()
	for _, members := range s.Members {
		if len(members) < 2 {
			continue
		}
		for _, u := range members {
			for _, v := range members {
				if u == v {
					continue
				}
				target := make([]bool, len(g.Nodes))
				target[v] = true
				if _, ok := g.ShortestPath(u, target); !ok {
					t.Fatalf("nodes %d and %d share a component but %d cannot reach %d", u, v, u, v)
				}
			}
		}
	}
}

// The SCC view of Theorem 1 must agree exactly with the frozen-closure
// view: the stable node set equals the union of good terminal components.
func TestSCCAgreesWithStableNodes(t *testing.T) {
	for _, cse := range []struct{ n, k int }{
		{5, 2}, {8, 2}, {6, 3}, {7, 3}, {8, 3}, {8, 4}, {9, 4},
	} {
		g, err := Build(core.MustNew(cse.k), cse.n)
		if err != nil {
			t.Fatal(err)
		}
		stable := g.StableNodes()
		s := g.SCCs()
		good := g.GoodTerminal(s)
		for v := range g.Nodes {
			inGood := good[s.Comp[v]]
			if inGood != stable[v] {
				t.Fatalf("n=%d k=%d node %s: SCC says good-terminal=%v, frozen-closure says stable=%v",
					cse.n, cse.k, g.Nodes[v].Format(g.Proto), inGood, stable[v])
			}
		}
	}
}

// Terminal components of the bipartition protocol: for odd n the stable
// class is a 2-cycle (leftover agent flipping parity) — a terminal SCC
// with exactly 2 members; for even n it is a single dead node.
func TestTerminalComponentShapes(t *testing.T) {
	p := bipartition.New()

	gOdd, err := Build(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := gOdd.SCCs()
	good := gOdd.GoodTerminal(s)
	for c, ok := range good {
		if ok && len(s.Members[c]) != 2 {
			t.Fatalf("n=5: good terminal SCC has %d members, want 2 (parity cycle)", len(s.Members[c]))
		}
	}

	gEven, err := Build(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	s = gEven.SCCs()
	good = gEven.GoodTerminal(s)
	found := false
	for c, ok := range good {
		if ok {
			found = true
			if len(s.Members[c]) != 1 {
				t.Fatalf("n=6: good terminal SCC has %d members, want 1 (dead node)", len(s.Members[c]))
			}
		}
	}
	if !found {
		t.Fatal("n=6: no good terminal component")
	}
}
