package harness

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Observability: the harness records per-trial metrics (wall time,
// interactions, convergence) into a process-wide registry. The default
// is the shared no-op registry, so the parallel trial runner pays
// nothing unless a binary opts in with SetMetrics; all registry metrics
// are atomic, so recording is safe from every worker.
var (
	obsMu  sync.RWMutex
	obsReg = obs.Nop()
)

// SetMetrics installs the registry RunTrial records into. Passing nil
// restores the no-op registry.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		r = obs.Nop()
	}
	obsMu.Lock()
	obsReg = r
	obsMu.Unlock()
}

// Metrics returns the registry trials are currently recorded into.
func Metrics() *obs.Registry {
	obsMu.RLock()
	defer obsMu.RUnlock()
	return obsReg
}

// observeTrial records one finished trial attempt. Wall time lands in a
// power-of-two histogram of microseconds (trial durations span ~1 µs
// model-check-sized runs to minutes-long Figure 6 tails).
//
// The resilience layer adds four more counters, recorded at their
// decision points rather than here: harness/retries (RunTrialCtx, per
// re-derived-seed attempt), harness/timeouts (per attempt that exceeded
// its wall deadline), harness/canceled (trials abandoned because the
// batch context fired), and harness/resumed (RunManyCtx, trials answered
// from the sweep journal instead of re-run).
func observeTrial(reg *obs.Registry, res TrialResult, err error, wall time.Duration) {
	reg.Counter("harness/trials").Inc()
	if err != nil {
		reg.Counter("harness/errors").Inc()
		return
	}
	if !res.Converged {
		reg.Counter("harness/unconverged").Inc()
	}
	reg.Histogram("harness/trial_wall_us").Observe(uint64(wall.Microseconds()))
	reg.Histogram("harness/trial_interactions").Observe(res.Interactions)
	reg.Histogram("harness/trial_productive").Observe(res.Productive)
}
