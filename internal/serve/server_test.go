package serve

// Loopback integration tests for the load-bearing service properties:
// content-addressed replay is byte-identical, backpressure is an
// explicit 429, shutdown drains gracefully, and a restarted server
// answers for trials journaled before the restart.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/rng"
)

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

func getURL(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestTrialCacheHit is the core acceptance test: the same spec twice
// returns a miss then an LRU hit (visible both in the response header
// and the obs counter) with byte-identical bodies.
func TestTrialCacheHit(t *testing.T) {
	reg := obs.New("test")
	srv := New(Config{Workers: 2, QueueDepth: 8, Registry: reg})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"n":24,"k":4,"seed":7}`
	resp1, body1 := postJSON(t, ts.Client(), ts.URL+"/v1/trials", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first trial: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("first trial: %s = %q, want miss", cacheHeader, got)
	}
	hitsBefore := counterValue(t, reg, "serve/cache_hits")

	resp2, body2 := postJSON(t, ts.Client(), ts.URL+"/v1/trials", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second trial: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get(cacheHeader); got != "lru" {
		t.Fatalf("second trial: %s = %q, want lru", cacheHeader, got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache replay is not byte-identical:\n%s\n%s", body1, body2)
	}
	if hits := counterValue(t, reg, "serve/cache_hits"); hits != hitsBefore+1 {
		t.Fatalf("serve/cache_hits = %d after hit, want %d", hits, hitsBefore+1)
	}

	// The same record is addressable by its content hash.
	var rec Record
	if err := json.Unmarshal(body1, &rec); err != nil {
		t.Fatalf("decoding record: %v", err)
	}
	if rec.SpecKey == "" {
		t.Fatal("record has no spec_key")
	}
	resp3, body3 := getURL(t, ts.Client(), ts.URL+"/v1/results/"+rec.SpecKey)
	if resp3.StatusCode != http.StatusOK || !bytes.Equal(body1, body3) {
		t.Fatalf("GET /v1/results/%s: status %d, identical=%t", rec.SpecKey, resp3.StatusCode, bytes.Equal(body1, body3))
	}
}

func TestInvalidSpecRejectedBeforeAdmission(t *testing.T) {
	reg := obs.New("test")
	srv := New(Config{Workers: 1, QueueDepth: 4, Registry: reg})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"n":24,"k":1,"seed":7}`,          // k out of range
		`{"n":1,"k":4,"seed":7}`,           // n too small for k partitions
		`{"n":24,"k":4,"engine":"banana"}`, // unknown engine
		`{"n":24,"k":4,"typo_field":1}`,    // unknown field (strict decode)
		`{"n":`,                            // malformed JSON
	} {
		resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/trials", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400 (%s)", body, resp.StatusCode, b)
		}
	}
	if got := counterValue(t, reg, "serve/admitted"); got != 0 {
		t.Fatalf("invalid specs were admitted: serve/admitted = %d, want 0", got)
	}
}

func TestResultNotFound(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := getURL(t, ts.Client(), ts.URL+"/v1/results/deadbeefdeadbeefdeadbeefdeadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d, want 404", resp.StatusCode)
	}
}

// TestQueueFullAnswers429 pins the backpressure contract: with the one
// worker blocked and the one queue slot taken, the next trial is
// rejected with 429 and a Retry-After hint — it is never silently
// buffered.
func TestQueueFullAnswers429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	old := runTrialFn
	runTrialFn = func(ctx context.Context, spec harness.TrialSpec, _ harness.RunOptions) (harness.TrialResult, error) {
		started <- struct{}{}
		select {
		case <-release:
			return harness.TrialResult{Spec: spec, Converged: true}, nil
		case <-ctx.Done():
			return harness.TrialResult{}, ctx.Err()
		}
	}
	defer func() { runTrialFn = old }()

	reg := obs.New("test")
	srv := New(Config{Workers: 1, QueueDepth: 1, Registry: reg, RetryAfter: 3 * time.Second})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the worker, then the single queue slot.
	type trialReply struct {
		status int
		hdr    string
		body   []byte
	}
	replies := make(chan trialReply, 2)
	for i, body := range []string{`{"n":24,"k":4,"seed":1}`, `{"n":24,"k":4,"seed":2}`} {
		go func(body string) {
			resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/trials", body)
			replies <- trialReply{resp.StatusCode, resp.Header.Get(cacheHeader), b}
		}(body)
		if i == 0 {
			<-started // the worker is now blocked inside trial #1
		} else {
			waitFor(t, func() bool { return srv.Pool().Depth() == 1 })
		}
	}

	resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/trials", `{"n":24,"k":4,"seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429 (%s)", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if got := counterValue(t, reg, "serve/rejected"); got != 1 {
		t.Fatalf("serve/rejected = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK || r.hdr != "miss" {
			t.Fatalf("admitted trial %d: status %d, %s=%q (%s)", i, r.status, cacheHeader, r.hdr, r.body)
		}
	}
}

// TestShutdownDrainsAndJournalSurvivesRestart is the restart acceptance
// test: a sweep is interrupted mid-flight by Shutdown, completed trials
// are already journaled, and a server restarted on that journal answers
// GET /v1/results/{speckey} from disk with the byte-identical record.
func TestShutdownDrainsAndJournalSurvivesRestart(t *testing.T) {
	firstDone := make(chan struct{}, 1)
	old := runTrialFn
	// Trial seed 5 (the sweep's first trial) completes immediately; every
	// other trial blocks until drain cancels the pool context.
	runTrialFn = func(ctx context.Context, spec harness.TrialSpec, _ harness.RunOptions) (harness.TrialResult, error) {
		if spec.Seed == rng.StreamSeed(5, 0, 0) {
			firstDone <- struct{}{}
			return harness.TrialResult{Spec: spec, Interactions: 42, Converged: true}, nil
		}
		<-ctx.Done()
		return harness.TrialResult{}, ctx.Err()
	}
	defer func() { runTrialFn = old }()

	dir := t.TempDir()
	jpath := filepath.Join(dir, "serve.journal")
	journal, err := harness.CreateJournal(jpath, "serve-test")
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Workers: 2, QueueDepth: 8, Journal: journal})
	ts := httptest.NewServer(srv.Handler())

	sweepDone := make(chan []byte, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json",
			strings.NewReader(`{"n":12,"k":3,"trials":3,"seed":5}`))
		if err != nil {
			sweepDone <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		sweepDone <- b
	}()

	<-firstDone // trial 0 finished; trials 1..2 are blocked in-flight
	waitFor(t, func() bool { return journal.Len() == 1 })
	srv.Shutdown() // cancels the pool context: blocked trials abort

	stream := <-sweepDone
	if stream == nil {
		t.Fatal("sweep request failed outright; want a truncated NDJSON stream")
	}
	// The stream holds the one completed record and an in-band abort line.
	lines := nonEmptyLines(stream)
	if len(lines) != 2 || !strings.Contains(lines[1], "sweep aborted") {
		t.Fatalf("interrupted sweep stream = %q, want 1 record + abort line", lines)
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("decoding streamed record: %v", err)
	}

	ts.Close()
	if err := journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}

	// Restart: a fresh server on the reopened journal, with a cold cache,
	// must answer for the completed trial from disk.
	journal2, err := harness.OpenJournal(jpath, "serve-test")
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer journal2.Close()
	reg2 := obs.New("test")
	srv2 := New(Config{Workers: 1, Journal: journal2, Registry: reg2})
	defer srv2.Shutdown()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, body := getURL(t, ts2.Client(), ts2.URL+"/v1/results/"+rec.SpecKey)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restart: status %d (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "journal" {
		t.Fatalf("after restart: %s = %q, want journal", cacheHeader, got)
	}
	if want := lines[0] + "\n"; string(body) != want {
		t.Fatalf("restart replay differs:\n%s\n%s", body, want)
	}
	if got := counterValue(t, reg2, "serve/journal_hits"); got != 1 {
		t.Fatalf("serve/journal_hits = %d, want 1", got)
	}
}

// TestSweepStreamsAndAggregates runs a real (non-stubbed) sweep and
// checks the NDJSON contract: one record per trial in order, then a
// trailer with the aggregated point; a second identical sweep is served
// entirely from the content-addressed store.
func TestSweepStreamsAndAggregates(t *testing.T) {
	reg := obs.New("test")
	srv := New(Config{Workers: 2, QueueDepth: 8, Registry: reg})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"n":12,"k":3,"trials":4,"seed":9}`
	resp, stream := postJSON(t, ts.Client(), ts.URL+"/v1/sweeps", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, stream)
	}
	lines := nonEmptyLines(stream)
	if len(lines) != 5 {
		t.Fatalf("sweep stream has %d lines, want 4 records + trailer:\n%s", len(lines), stream)
	}
	for i, line := range lines[:4] {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := rng.StreamSeed(9, 0, uint64(i)); rec.Result.Spec.Seed != want {
			t.Fatalf("record %d out of order: seed %d, want %d", i, rec.Result.Spec.Seed, want)
		}
	}
	var trailer struct {
		Point harness.Point `json:"point"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if trailer.Point.Trials != 4 {
		t.Fatalf("trailer aggregates %d trials, want 4", trailer.Point.Trials)
	}

	ran := counterValue(t, reg, "serve/trials_run")
	resp2, stream2 := postJSON(t, ts.Client(), ts.URL+"/v1/sweeps", body)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(stream, stream2) {
		t.Fatalf("replayed sweep differs (status %d)", resp2.StatusCode)
	}
	if got := counterValue(t, reg, "serve/trials_run"); got != ran {
		t.Fatalf("replayed sweep recomputed trials: serve/trials_run went %d -> %d", ran, got)
	}
}

func TestSweepTooLargeRejected(t *testing.T) {
	srv := New(Config{Workers: 1, MaxSweepTrials: 10})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/sweeps", `{"n":12,"k":3,"trials":11,"seed":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d, want 400 (%s)", resp.StatusCode, b)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Config{Workers: 3, QueueDepth: 5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := getURL(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var doc healthDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if doc.Status != "ok" || doc.Workers != 3 || doc.QueueCap != 5 {
		t.Fatalf("healthz = %+v, want ok/3 workers/cap 5", doc)
	}

	srv.Shutdown()
	_, body = getURL(t, ts.Client(), ts.URL+"/healthz")
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz body after shutdown: %v", err)
	}
	if doc.Status != "draining" {
		t.Fatalf("healthz after shutdown: status %q, want draining", doc.Status)
	}
}

// TestTrialAfterShutdown pins the drain semantics at the HTTP level:
// admission after Shutdown is 503, not a hang or a 429.
func TestTrialAfterShutdown(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Shutdown()
	resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/trials", `{"n":24,"k":4,"seed":7}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("trial after shutdown: status %d, want 503 (%s)", resp.StatusCode, b)
	}
}

func TestPoolSubmitBlockedExitsOnClose(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	old := runTrialFn
	runTrialFn = func(ctx context.Context, spec harness.TrialSpec, _ harness.RunOptions) (harness.TrialResult, error) {
		select {
		case <-release:
			return harness.TrialResult{Spec: spec}, nil
		case <-ctx.Done():
			return harness.TrialResult{}, ctx.Err()
		}
	}
	defer func() { runTrialFn = old }()

	p := NewPool(1, 1, harness.RunOptions{}, nil, nil, nil)
	spec := harness.TrialSpec{N: 12, K: 3, Seed: 1}
	if _, err := p.TrySubmit(spec, nil); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	spec2 := spec
	spec2.Seed = 2
	waitFor(t, func() bool { return p.Inflight() == 1 })
	if _, err := p.TrySubmit(spec2, nil); err != nil {
		t.Fatalf("second submit (queue slot): %v", err)
	}
	spec3 := spec
	spec3.Seed = 3
	if _, err := p.TrySubmit(spec3, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}

	// A blocking Submit parked on the full queue must exit with
	// ErrDraining when Close cancels the pool, never panic on a closed
	// channel.
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), spec3, nil)
		errc <- err
	}()
	waitFor(t, func() bool { return p.Depth() == 1 }) // still parked
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	err := <-errc
	<-closed // workers fully drained before the test restores runTrialFn
	if !errors.Is(err, ErrDraining) && !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Submit during Close: %v, want ErrDraining", err)
	}
}

// waitFor polls cond for up to 5s; the tests use it only for
// scheduler-timing gaps (a goroutine reaching a blocking point), never
// for result values.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func nonEmptyLines(b []byte) []string {
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	return lines
}
