// Command kpart-compare runs the protocol-comparison ablations (DESIGN.md
// A1–A3): the paper's exact uniform k-partition protocol against the
// repeated-bipartition construction (k = 2^h) and the approximate
// interval-splitting baseline, plus the scheduler-sensitivity ablation.
//
// Usage:
//
//	kpart-compare [-n 64] [-k 4] [-trials 20] [-seed 7] [-out results]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		n      = flag.Int("n", 64, "population size")
		k      = flag.Int("k", 4, "number of groups")
		trials = flag.Int("trials", 20, "trials per contender")
		seed   = flag.Uint64("seed", 7, "root seed")
		outDir = flag.String("out", "results", "directory for CSV output")
	)
	flag.Parse()

	rows, err := harness.Compare(*n, *k, *trials, *seed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}
	fmt.Printf("=== Protocol comparison at n=%d, k=%d (%d trials) ===\n", *n, *k, *trials)
	tbl := harness.CompareTable(rows)
	fmt.Print(tbl.String())
	if path, err := harness.WriteCSVFile(*outDir, "compare.csv", tbl); err == nil {
		fmt.Println("wrote", path)
	} else {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== Scheduler ablation at n=%d, k=%d ===\n", *n, *k)
	srows, err := harness.RunSchedulerAblation(*n, *k, *trials, *seed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}
	stbl := harness.SchedulerTable(srows)
	fmt.Print(stbl.String())
	if path, err := harness.WriteCSVFile(*outDir, "scheduler.csv", stbl); err == nil {
		fmt.Println("wrote", path)
	} else {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== Topology survey at n=%d, k=%d (does the complete-graph assumption matter?) ===\n", *n, *k)
	trows, err := harness.RunTopologySurvey(*n, *k, *trials, *seed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}
	ttbl := harness.TopologyTable(trows)
	fmt.Print(ttbl.String())
	if path, err := harness.WriteCSVFile(*outDir, "topology.csv", ttbl); err == nil {
		fmt.Println("wrote", path)
	} else {
		fmt.Fprintln(os.Stderr, "kpart-compare:", err)
		os.Exit(1)
	}
}
