package core

import (
	"fmt"

	"repro/internal/protocol"
)

// RuleKind identifies which of Algorithm 1's ten rule families an observed
// transition belongs to. Tallying these over an execution quantifies the
// paper's Section 5.2 explanation of the exponential-in-k time: as k
// grows, m-heads collide (rule 8) before finishing a chain, and the
// demolition work (rules 8–10) plus the redone construction dominates.
type RuleKind uint8

// The rule families of Algorithm 1, plus Null for encounters with no rule.
const (
	RuleNull RuleKind = iota // no applicable rule
	Rule1                    // (initial, initial) -> (initial', initial')
	Rule2                    // (initial', initial') -> (initial, initial)
	Rule3                    // (d_i, ini) -> (d_i, flipped)
	Rule4                    // (g_i, ini) -> (g_i, flipped)
	Rule5                    // (initial, initial') -> (g1, m2)   [or (g1, g2) at k=2]
	Rule6                    // (ini, m_i) -> (g_i, m_(i+1))
	Rule7                    // (ini, m_(k-1)) -> (g_(k-1), g_k)
	Rule8                    // (m_i, m_j) -> (d_(i-1), d_(j-1))
	Rule9                    // (d_i, g_i) -> (d_(i-1), initial)
	Rule10                   // (d_1, g_1) -> (initial, initial)
	numRuleKinds
)

// String names the rule family.
func (r RuleKind) String() string {
	if r == RuleNull {
		return "null"
	}
	if r < numRuleKinds {
		return fmt.Sprintf("rule%d", r)
	}
	return fmt.Sprintf("RuleKind(%d)", uint8(r))
}

// NumRuleKinds is the number of RuleKind values (including RuleNull).
const NumRuleKinds = int(numRuleKinds)

// ClassifyPair returns the rule family that fires when states (a, b)
// interact in that order. The classification is derived from the states
// themselves, not from δ's output, and the tests cross-check it against
// the table on every ordered pair.
func (p *Protocol) ClassifyPair(a, b protocol.State) RuleKind {
	ka, ia := p.Decode(a)
	kb, ib := p.Decode(b)
	// Normalize so the "structured" participant comes first for mixed
	// pairs; the rule families are unordered.
	switch {
	case ka == KindInitial && kb == KindInitial:
		return Rule1
	case ka == KindInitialBar && kb == KindInitialBar:
		return Rule2
	case (ka == KindInitial && kb == KindInitialBar) || (ka == KindInitialBar && kb == KindInitial):
		return Rule5
	}
	free := func(k Kind) bool { return k == KindInitial || k == KindInitialBar }
	switch {
	case ka == KindD && free(kb):
		return Rule3
	case kb == KindD && free(ka):
		return Rule3
	case ka == KindG && free(kb):
		return Rule4
	case kb == KindG && free(ka):
		return Rule4
	case ka == KindM && free(kb), kb == KindM && free(ka):
		lvl := ia
		if kb == KindM {
			lvl = ib
		}
		if lvl == p.k-1 {
			return Rule7
		}
		return Rule6
	case ka == KindM && kb == KindM:
		return Rule8
	case ka == KindD && kb == KindG, ka == KindG && kb == KindD:
		di, gi := ia, ib
		if ka == KindG {
			di, gi = ib, ia
		}
		if di != gi {
			return RuleNull
		}
		if di == 1 {
			return Rule10
		}
		return Rule9
	}
	return RuleNull
}

// Tally counts rule-family firings along an execution; it implements
// sim.Hook structurally (no import, same shape as core.Director's view
// trick is unnecessary here because the hook interface only references
// population types).
type Tally struct {
	p *Protocol
	// Counts[kind] is the number of interactions classified as kind.
	Counts [NumRuleKinds]uint64
}

// NewTally returns a Tally for p.
func NewTally(p *Protocol) *Tally { return &Tally{p: p} }

// Observe classifies one interaction between states (a, b).
func (t *Tally) Observe(a, b protocol.State) {
	t.Counts[t.p.ClassifyPair(a, b)]++
}

// Total returns the total number of observed interactions.
func (t *Tally) Total() uint64 {
	var sum uint64
	for _, c := range t.Counts {
		sum += c
	}
	return sum
}

// DemolitionFraction returns the fraction of PRODUCTIVE interactions spent
// on the demolition machinery (rules 8, 9, 10) — the overhead the basic
// strategy of Section 3.1 does not have and the exponential blow-up of
// Figure 6 is made of.
func (t *Tally) DemolitionFraction() float64 {
	productive := t.Total() - t.Counts[RuleNull]
	if productive == 0 {
		return 0
	}
	demo := t.Counts[Rule8] + t.Counts[Rule9] + t.Counts[Rule10]
	return float64(demo) / float64(productive)
}
