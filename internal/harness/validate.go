package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/protocol"
)

// MaxK is the largest group count a trial spec may request: the protocol
// uses 3k−2 states and protocol.MaxStates bounds the table size.
const MaxK = (protocol.MaxStates + 2) / 3

// String names the engine the way the binaries' -engine flags spell it.
func (e Engine) String() string {
	switch e {
	case EngineAgent:
		return "agent"
	case EngineCount:
		return "count"
	case EngineBatch:
		return "batch"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine maps an -engine flag value ("agent", "count" or "batch")
// to an Engine. Unknown names return an ErrInvalidSpec-wrapped error so
// callers can treat them like any other malformed spec field.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "agent":
		return EngineAgent, nil
	case "count":
		return EngineCount, nil
	case "batch":
		return EngineBatch, nil
	}
	return EngineAgent, fmt.Errorf("%w: unknown engine %q (want agent, count or batch)", ErrInvalidSpec, s)
}

// ValidatePartition checks the pure problem parameters (n, k) — group
// count in range for the state-table bound, population size admitting a
// stable target signature — independent of any execution policy. It is
// the shared admission predicate for everything keyed by (n, k) alone:
// trial specs embed it via ValidateSpec, and the analytical twin's
// prediction specs (internal/twin, POST /v1/predict) use it directly, so
// a spec the simulator would reject is rejected by the oracle too, with
// the same ErrInvalidSpec sentinel.
func ValidatePartition(n, k int) error {
	if k < 2 {
		return fmt.Errorf("%w: k=%d (%v)", ErrInvalidSpec, k, core.ErrBadK)
	}
	if k > MaxK {
		return fmt.Errorf("%w: k=%d exceeds the %d-state table bound (max k %d)",
			ErrInvalidSpec, k, protocol.MaxStates, MaxK)
	}
	// Proto is safe now that k is in range; TargetCounts rejects
	// populations with no stable signature (n < 3).
	if _, err := Proto(k).TargetCounts(n); err != nil {
		return fmt.Errorf("%w: n=%d k=%d: %v", ErrInvalidSpec, n, k, err)
	}
	return nil
}

// ValidateSpec checks that spec identifies a runnable trial WITHOUT
// running it: group count in range, population size admitting a target
// signature, and a known engine. Failures wrap ErrInvalidSpec — the same
// sentinel runTrial returns — so admission layers (the HTTP service
// rejects invalid specs with 400 before enqueueing them) and the retry
// policy agree on what "unfixable" means.
func ValidateSpec(spec TrialSpec) error {
	if err := ValidatePartition(spec.N, spec.K); err != nil {
		return err
	}
	switch spec.Engine {
	case EngineAgent, EngineCount, EngineBatch:
	default:
		return fmt.Errorf("%w: unknown engine %d", ErrInvalidSpec, spec.Engine)
	}
	// BatchSize is a mode selector of the batched engine only; on any
	// other engine a non-zero value would silently change the spec's
	// content hash without changing the run. n is positive here (the
	// TargetCounts check passed), so the conversion is safe.
	if spec.BatchSize != 0 {
		if spec.Engine != EngineBatch {
			return fmt.Errorf("%w: batch size %d set for engine %s (only engine batch batches)",
				ErrInvalidSpec, spec.BatchSize, spec.Engine)
		}
		if 2*spec.BatchSize > uint64(spec.N) {
			return fmt.Errorf("%w: batch size %d needs 2·size <= n = %d (disjoint pairs)",
				ErrInvalidSpec, spec.BatchSize, spec.N)
		}
	}
	// The scenario axes (topology, fairness, churn) have their own
	// validator in scenario.go: engine compatibility, mandatory caps,
	// and the churn-schedule walk all live there.
	return validateScenario(spec)
}
