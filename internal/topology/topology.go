// Package topology restricts which agent pairs may interact: interactions
// happen only along edges of an undirected graph, the generalization of
// the population protocol model studied since Angluin et al. (2005). The
// paper's protocol assumes the complete interaction graph (any two agents
// can meet); this package makes that assumption testable by running the
// same protocol on rings, stars, grids and random regular graphs.
//
// The headline finding, pinned down by the tests: the k-partition
// protocol's correctness genuinely NEEDS the complete graph. On a star,
// rule 8 (two m-heads meeting) can never fire between two leaves, and an
// m-head stranded on a leaf facing a committed hub is permanently stuck —
// the population freezes in a non-uniform partition. Global fairness over
// the restricted edge set does not save it: the required configurations
// are simply unreachable.
package topology

import (
	"errors"
	"fmt"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Graph is an undirected interaction graph on n agents (no self-loops, no
// multi-edges). Immutable after construction.
type Graph struct {
	n     int
	edges [][2]int
	adj   [][]int
	name  string
}

// newGraph validates and indexes an edge list.
func newGraph(name string, n int, edges [][2]int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need n >= 2, got %d", n)
	}
	g := &Graph{n: n, name: name, adj: make([][]int, n)}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("topology: invalid edge (%d,%d)", u, v)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.edges = append(g.edges, key)
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
	}
	if len(g.edges) == 0 {
		return nil, errors.New("topology: graph has no edges")
	}
	return g, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name identifies the topology in reports.
func (g *Graph) Name() string { return g.name }

// N returns the number of agents.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns agent i's degree.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) (int, int) { return g.edges[i][0], g.edges[i][1] }

// Connected reports whether the graph is connected — a prerequisite for
// any global computation.
func (g *Graph) Connected() bool {
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// Complete returns K_n.
func Complete(n int) (*Graph, error) {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return newGraph(fmt.Sprintf("complete-%d", n), n, edges)
}

// Ring returns the n-cycle.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return newGraph(fmt.Sprintf("ring-%d", n), n, edges)
}

// Star returns the star with agent 0 as the hub.
func Star(n int) (*Graph, error) {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return newGraph(fmt.Sprintf("star-%d", n), n, edges)
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: bad grid %dx%d", rows, cols)
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return newGraph(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols, edges)
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration model with rejection (retry until simple and connected).
// n·d must be even and d < n.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 2 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("topology: invalid regular graph n=%d d=%d", n, d)
	}
	r := rng.New(seed)
	for attempt := 0; attempt < 1000; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(stubs)
		ok := true
		seen := make(map[[2]int]bool)
		edges := make([][2]int, 0, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			key := [2]int{min(u, v), max(u, v)}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			edges = append(edges, key)
		}
		if !ok {
			continue
		}
		g, err := newGraph(fmt.Sprintf("regular-%d-d%d", n, d), n, edges)
		if err != nil {
			continue
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: could not sample a connected %d-regular graph on %d vertices", d, n)
}

// EdgeScheduler selects an edge uniformly at random each step, with a
// random orientation — the standard random scheduler of graph-restricted
// population protocols. It implements sched.Scheduler.
type EdgeScheduler struct {
	g *Graph
	r *rng.Rand
}

// NewEdgeScheduler builds the scheduler.
func NewEdgeScheduler(g *Graph, seed uint64) *EdgeScheduler {
	return &EdgeScheduler{g: g, r: rng.New(seed)}
}

// Name implements sched.Scheduler.
func (s *EdgeScheduler) Name() string { return "edge-" + s.g.Name() }

// Next implements sched.Scheduler.
func (s *EdgeScheduler) Next(v sched.View) (int, int) {
	e := s.g.edges[s.r.Intn(len(s.g.edges))]
	if s.r.Uint64()&1 == 0 {
		return e[0], e[1]
	}
	return e[1], e[0]
}

// Orbits describes, for each state, the set of states an agent can move
// through WITHOUT changing group while the rest of the configuration
// stays put (for the k-partition protocol: {initial, initial'} for the
// free states, the singleton otherwise — parity flips are its only
// group-preserving moves; see core.ParityOrbit).
type Orbits func(s protocol.State) []protocol.State

// SingletonOrbits is the trivial orbit function (no group-preserving
// mutations). Using it makes GroupFrozen a pure one-step check, which is
// UNSOUND for protocols with handshake states — supply real orbits.
func SingletonOrbits(s protocol.State) []protocol.State {
	return []protocol.State{s}
}

// GroupFrozen reports whether the configuration can never change any
// agent's group again UNDER THIS GRAPH. The sound criterion is orbit
// CLOSURE, not mere one-step group preservation: for every edge, every
// orientation, and every combination of orbit representatives of the
// endpoint states, the transition must map each endpoint back INTO its
// own orbit. Then every reachable configuration differs from this one
// only by orbit (parity) reassignments — by induction the check keeps
// holding and no agent's group can ever move.
//
// Two weaker checks fail instructively, and the tests pin both down:
// plain one-step group preservation misses that two same-parity free
// neighbours can flip into rule 5 (orbit expansion fixes that), and even
// orbit-expanded GROUP preservation misses rule 10 — (d1, g1) → (initial,
// initial) keeps everyone in group 1 yet frees two agents whose later
// rule 5 changes groups. Requiring closure into the orbits rejects both.
func GroupFrozen(pop *population.Population, g *Graph, p protocol.Protocol, orbits Orbits) bool {
	if orbits == nil {
		orbits = SingletonOrbits
	}
	inOrbit := func(s, of protocol.State) bool {
		for _, o := range orbits(of) {
			if s == o {
				return true
			}
		}
		return false
	}
	for _, e := range g.edges {
		for _, dir := range [2][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			sa, sb := pop.State(dir[0]), pop.State(dir[1])
			for _, a := range orbits(sa) {
				for _, b := range orbits(sb) {
					out, _ := p.Delta(a, b)
					if !inOrbit(out.P, sa) || !inOrbit(out.Q, sb) {
						return false
					}
				}
			}
		}
	}
	return true
}

// FrozenCondition is a sim.StopCondition that fires when the configuration
// is group-frozen on the graph. The scan is O(E·orbit²) and runs only on
// steps that changed a state.
type FrozenCondition struct {
	G      *Graph
	Proto  protocol.Protocol
	Orbits Orbits
	frozen bool
}

// Init implements sim.StopCondition.
func (c *FrozenCondition) Init(pop *population.Population) {
	c.frozen = GroupFrozen(pop, c.G, c.Proto, c.Orbits)
}

// Satisfied reports pre-satisfaction at Init.
func (c *FrozenCondition) Satisfied() bool { return c.frozen }

// Step implements sim.StopCondition.
func (c *FrozenCondition) Step(pop *population.Population, s sim.StepInfo) bool {
	if s.Changed {
		c.frozen = GroupFrozen(pop, c.G, c.Proto, c.Orbits)
	}
	return c.frozen
}
