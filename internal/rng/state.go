package rng

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Checkpointable generators: the simulation checkpoint/restore machinery
// (internal/checkpoint) serializes a run's entire dynamic state, which
// includes the scheduler's generator. Each generator marshals to a small
// tagged byte string so a restore can verify it is rehydrating the same
// algorithm.

// Stateful is a Source whose internal state can be exported and restored.
type Stateful interface {
	Source
	// MarshalState returns an opaque, versioned encoding of the state.
	MarshalState() []byte
	// UnmarshalState restores a state produced by MarshalState on the
	// same generator type.
	UnmarshalState(data []byte) error
}

// Tags identifying generator types in marshaled state.
const (
	tagSplitMix64 byte = 1
	tagXoshiro256 byte = 2
	tagPCG32      byte = 3
)

// ErrBadState is returned when unmarshaling data that does not match the
// generator.
var ErrBadState = errors.New("rng: state does not match generator")

// MarshalState implements Stateful.
func (s *SplitMix64) MarshalState() []byte {
	out := make([]byte, 9)
	out[0] = tagSplitMix64
	binary.LittleEndian.PutUint64(out[1:], s.state)
	return out
}

// UnmarshalState implements Stateful.
func (s *SplitMix64) UnmarshalState(data []byte) error {
	if len(data) != 9 || data[0] != tagSplitMix64 {
		return fmt.Errorf("%w: splitmix64", ErrBadState)
	}
	s.state = binary.LittleEndian.Uint64(data[1:])
	return nil
}

// MarshalState implements Stateful.
func (x *Xoshiro256) MarshalState() []byte {
	out := make([]byte, 1+4*8)
	out[0] = tagXoshiro256
	for i, w := range x.s {
		binary.LittleEndian.PutUint64(out[1+8*i:], w)
	}
	return out
}

// UnmarshalState implements Stateful.
func (x *Xoshiro256) UnmarshalState(data []byte) error {
	if len(data) != 1+4*8 || data[0] != tagXoshiro256 {
		return fmt.Errorf("%w: xoshiro256", ErrBadState)
	}
	var s [4]uint64
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[1+8*i:])
	}
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("%w: all-zero xoshiro state", ErrBadState)
	}
	x.s = s
	return nil
}

// MarshalState implements Stateful.
func (p *PCG32) MarshalState() []byte {
	out := make([]byte, 1+16)
	out[0] = tagPCG32
	binary.LittleEndian.PutUint64(out[1:], p.state)
	binary.LittleEndian.PutUint64(out[9:], p.inc)
	return out
}

// UnmarshalState implements Stateful.
func (p *PCG32) UnmarshalState(data []byte) error {
	if len(data) != 17 || data[0] != tagPCG32 {
		return fmt.Errorf("%w: pcg32", ErrBadState)
	}
	p.state = binary.LittleEndian.Uint64(data[1:])
	p.inc = binary.LittleEndian.Uint64(data[9:])
	if p.inc%2 == 0 {
		return fmt.Errorf("%w: pcg32 increment must be odd", ErrBadState)
	}
	return nil
}

// MarshalState exports the state of a Rand whose underlying Source is
// Stateful; it returns nil otherwise.
func (r *Rand) MarshalState() []byte {
	if s, ok := r.src.(Stateful); ok {
		return s.MarshalState()
	}
	return nil
}

// UnmarshalState restores a Rand whose underlying Source is Stateful.
func (r *Rand) UnmarshalState(data []byte) error {
	if s, ok := r.src.(Stateful); ok {
		return s.UnmarshalState(data)
	}
	return fmt.Errorf("%w: source is not stateful", ErrBadState)
}
