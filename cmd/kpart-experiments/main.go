// Command kpart-experiments regenerates the paper's evaluation figures
// (Section 5) as CSV files plus ASCII charts on stdout:
//
//	fig3 — interactions vs n for k in {4,6,8} (jagged, period k)
//	fig4 — per-grouping decomposition of the same sweep (stacked)
//	fig5 — interactions vs n = 120·n' for k in {3,4,5,6} (n mod k = 0)
//	fig6 — interactions vs k at n = 960, log scale (exponential in k)
//
// Auxiliary experiments (opt-in by exact -fig name, never part of
// "all"): traj, scenarios, churn, and predict — the last overlays the
// analytical twin's predictions (internal/twin) on a fresh simulation of
// the fig6 grid, the end-to-end predicted-vs-measured comparison.
//
// Usage:
//
//	kpart-experiments -fig all [-trials 100] [-seed 20180725] [-out results] [-quick]
//	kpart-experiments -fig 6 -resume [-trial-timeout 10m] [-retries 2]
//	kpart-experiments -fig predict [-fig6max 12] [-quick]
//
// -quick shrinks every sweep (fewer trials, smaller ranges) to finish in
// seconds; use it to smoke-test the harness before a full reproduction.
//
// Long campaigns are resilient: every completed trial is checkpointed to
// an append-only journal next to the CSVs (<out>/<fig>.journal), SIGINT
// drains gracefully (in-flight trials abort, completed ones are already
// journaled), and rerunning with -resume picks up exactly where the run
// stopped — the final CSVs are identical to an uninterrupted run's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
)

// knownFigs is the complete -fig vocabulary: the paper figures (bare or
// fig-prefixed, mirroring the matcher in run), "all", and the auxiliary
// experiments (exact-name opt-ins). The dispatch below silently skips
// anything it does not match, so admission is checked against this set
// first.
var knownFigs = map[string]bool{
	"all": true,
	"3":   true, "fig3": true,
	"4": true, "fig4": true,
	"5": true, "fig5": true,
	"6": true, "fig6": true,
	"traj": true, "scenarios": true, "churn": true, "predict": true,
}

// figUsage is the valid-values list printed with the unknown-fig error.
const figUsage = "3, 4, 5, 6 (optionally fig-prefixed), all, traj, scenarios, churn, predict"

func main() {
	var (
		fig          = flag.String("fig", "all", "which figure to run: 3, 4, 5, 6, or all; auxiliary experiments: traj, scenarios (topology × fairness), churn (crash survival), predict (twin predictions vs simulation)")
		trials       = flag.Int("trials", harness.DefaultTrials, "trials per parameter point")
		seed         = flag.Uint64("seed", harness.DefaultSeed, "root seed")
		outDir       = flag.String("out", "results", "directory for CSV output")
		workers      = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		quick        = flag.Bool("quick", false, "shrink all sweeps for a fast smoke run")
		nmax         = flag.Int("nmax", 60, "fig3/4: maximum n")
		fig6max      = flag.Int("fig6max", 12, "fig6: largest k (divisor of 960)")
		engine       = flag.String("engine", "agent", "simulation backend: agent, count or batch (count skips null runs, same distribution; batch aggregates interactions per batch, fastest at large n)")
		debugAddr    = flag.String("debug-addr", "", "serve pprof and /debug/vars on this address (e.g. :6060)")
		metrics      = flag.Bool("metrics", false, "record harness metrics; snapshot written to <out>/metrics.jsonl")
		resume       = flag.Bool("resume", false, "resume from existing <out>/<fig>.journal files instead of starting fresh")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall deadline (0 = none); timed-out trials are retried under derived seeds")
		retries      = flag.Int("retries", 0, "extra attempts for transiently failed trials (deterministic retry seeds)")
	)
	flag.Parse()

	// Unknown -fig values fail loudly before any work: the dispatch below
	// matches by name, and a typo ("-fig 7", "-fig figure6") used to fall
	// through every matcher and exit 0 having run nothing — easy to read
	// as "done" at the end of a long scripted campaign.
	if !knownFigs[*fig] {
		fmt.Fprintf(os.Stderr,
			"kpart-experiments: unknown -fig %q; valid values: %s\n", *fig, figUsage)
		os.Exit(2)
	}

	// Observability: with -metrics or -debug-addr the parallel trial
	// runner records per-trial wall times, interaction histograms,
	// convergence counters, and the resilience counters
	// (retries/timeouts/canceled/resumed); /debug/vars exposes them live
	// during a long sweep, and the snapshot lands next to the CSV/JSON
	// results — including on an interrupted exit.
	reg := obs.Nop()
	if *metrics || *debugAddr != "" {
		reg = obs.New("kpart_experiments")
		reg.PublishExpvar()
		harness.SetMetrics(reg)
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "kpart-experiments: debug server on http://%s/debug/pprof\n", ln.Addr())
	}

	eng, err := harness.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kpart-experiments: %v\n", err)
		os.Exit(2)
	}

	if *quick {
		if *trials == harness.DefaultTrials {
			*trials = 10
		}
		if *nmax == 60 {
			*nmax = 30
		}
		if *fig6max == 12 {
			*fig6max = 6
		}
	}

	// First SIGINT/SIGTERM cancels the context: dispatch stops, in-flight
	// trials abort at their next poll, completed trials are already in
	// the journal. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opts := harness.RunOptions{TrialTimeout: *trialTimeout, Retries: *retries}

	flushMetrics := func() {
		if !reg.Enabled() {
			return
		}
		path, err := harness.SaveSnapshotJSONL(*outDir, "metrics.jsonl", reg.Snapshot())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	// openJournal attaches the figure's checkpoint journal to opts. The
	// campaign meta string ties the journal to this exact sweep shape, so
	// -resume refuses a journal written under different parameters.
	openJournal := func(name string) (*harness.Journal, error) {
		path := filepath.Join(*outDir, name+".journal")
		meta := fmt.Sprintf("%s seed=%d trials=%d engine=%s nmax=%d fig6max=%d quick=%t",
			name, *seed, *trials, *engine, *nmax, *fig6max, *quick)
		if *resume {
			return harness.OpenJournal(path, meta)
		}
		return harness.CreateJournal(path, meta)
	}

	run := func(name string, f func(ctx context.Context, opts harness.RunOptions) error) {
		want := *fig == "all" || *fig == name || *fig == "fig"+name
		if !want {
			return
		}
		start := time.Now()
		fmt.Printf("=== Figure %s ===\n", name)
		j, err := openJournal("fig" + name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		if *resume && j.Len() > 0 {
			fmt.Printf("(resuming: %d trials already journaled in %s)\n", j.Len(), j.Path())
		}
		figOpts := opts
		figOpts.Journal = j
		err = f(ctx, figOpts)
		if cerr := j.Close(); cerr != nil {
			// The resume story depends on the journal's tail being
			// durable; a failed close means "completed trials saved"
			// below could be a lie, so say so.
			fmt.Fprintf(os.Stderr, "kpart-experiments: closing journal %s: %v\n", j.Path(), cerr)
			if err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "kpart-experiments: figure %s interrupted; completed trials saved in %s\n", name, j.Path())
				fmt.Fprintf(os.Stderr, "kpart-experiments: rerun the same command with -resume to continue\n")
				flushMetrics()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "kpart-experiments: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(figure %s done in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("3", func(ctx context.Context, o harness.RunOptions) error {
		return fig3(ctx, o, *trials, *seed, *outDir, *workers, *nmax, false, eng)
	})
	run("4", func(ctx context.Context, o harness.RunOptions) error {
		return fig3(ctx, o, *trials, *seed, *outDir, *workers, *nmax, true, eng)
	})
	run("5", func(ctx context.Context, o harness.RunOptions) error {
		return fig5(ctx, o, *trials, *seed, *outDir, *workers, *quick, eng)
	})
	run("6", func(ctx context.Context, o harness.RunOptions) error {
		return fig6(ctx, o, *trials, *seed, *outDir, *workers, *fig6max, eng)
	})
	// Auxiliary experiments are opt-in (exact -fig match, never part of
	// "all"): they chart behavior outside the paper's model, with the
	// same journal/resume plumbing as the figures.
	runAux := func(name string, f func(ctx context.Context, opts harness.RunOptions) error) {
		if *fig != name {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s (auxiliary) ===\n", name)
		j, err := openJournal(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *resume && j.Len() > 0 {
			fmt.Printf("(resuming: %d trials already journaled in %s)\n", j.Len(), j.Path())
		}
		auxOpts := opts
		auxOpts.Journal = j
		err = f(ctx, auxOpts)
		if cerr := j.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: closing journal %s: %v\n", j.Path(), cerr)
			if err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "kpart-experiments: %s interrupted; completed trials saved in %s\n", name, j.Path())
				fmt.Fprintf(os.Stderr, "kpart-experiments: rerun the same command with -resume to continue\n")
				flushMetrics()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "kpart-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s done in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	runAux("scenarios", func(ctx context.Context, o harness.RunOptions) error {
		return scenariosExp(ctx, o, *trials, *seed, *outDir, *workers)
	})
	runAux("churn", func(ctx context.Context, o harness.RunOptions) error {
		return churnExp(ctx, o, *trials, *seed, *outDir, *workers)
	})
	runAux("predict", func(ctx context.Context, o harness.RunOptions) error {
		return predictExp(ctx, o, *trials, *seed, *outDir, *workers, *fig6max, eng)
	})
	flushMetrics()
	if *fig == "traj" {
		start := time.Now()
		fmt.Println("=== Convergence trajectories (auxiliary) ===")
		if err := traj(*trials, *seed, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-experiments: traj: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(trajectories done in %v)\n", time.Since(start).Round(time.Millisecond))
	}
}

// traj renders the auxiliary convergence-trajectory experiment: mean
// group-size spread over elapsed interactions, per k.
func traj(trials int, seed uint64, outDir string) error {
	cfg := harness.TrajectoryConfig{N: 60, Ks: []int{3, 4, 6}, Trials: trials, Seed: seed}
	if cfg.Trials > 30 {
		cfg.Trials = 30
	}
	series, err := harness.RunTrajectory(cfg)
	if err != nil {
		return err
	}
	fmt.Print(harness.TrajectoryChart(series).String())
	path, err := harness.WriteCSVFile(outDir, "trajectory.csv", harness.TrajectoryTable(series))
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fig3(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers, nmax int, grouping bool, eng harness.Engine) error {
	cfg := harness.Fig3Config{
		Ks: []int{4, 6, 8}, NMax: nmax, NStep: 1,
		Trials: trials, Seed: seed, Workers: workers, Grouping: grouping, Engine: eng,
	}
	series, err := harness.RunFig3Ctx(ctx, cfg, opts)
	if err != nil {
		return err
	}
	name := "fig3"
	if grouping {
		name = "fig4"
	}
	if !grouping {
		chart := &report.LineChart{
			Title:  "Figure 3: interactions to stabilize vs population size n",
			XLabel: "n", YLabel: "mean interactions",
		}
		for _, s := range series {
			chart.Series = append(chart.Series, harness.ToSeries(s))
		}
		fmt.Print(chart.String())
		// The paper's observation: jaggedness with period k.
		for _, s := range series {
			fmt.Printf("k=%d: local dips where n mod k is small — inspect the CSV column n mod %d\n", s.K, s.K)
		}
	} else {
		for _, s := range series {
			fmt.Print(harness.GroupingBars(s).String())
			if _, err := harness.WriteCSVFile(outDir, fmt.Sprintf("fig4_k%d.csv", s.K), harness.GroupingTable(s)); err != nil {
				return err
			}
		}
	}
	path, err := harness.WriteCSVFile(outDir, name+".csv", harness.SweepTable(series))
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	jpath, err := harness.SaveJSON(outDir, name+".json", harness.ResultDoc{
		Experiment: name, Seed: seed, Trials: trials, Series: series,
	})
	if err != nil {
		return err
	}
	fmt.Println("wrote", jpath)
	return nil
}

func fig5(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers int, quick bool, eng harness.Engine) error {
	cfg := harness.Fig5Config{Trials: trials, Seed: seed, Workers: workers, Engine: eng}
	if quick {
		cfg.Base = 60
		cfg.NFactors = []int{1, 2, 3, 4}
	}
	series, err := harness.RunFig5Ctx(ctx, cfg, opts)
	if err != nil {
		return err
	}
	chart := &report.LineChart{
		Title:  "Figure 5: interactions vs n (n mod k = 0)",
		XLabel: "n", YLabel: "mean interactions",
	}
	for _, s := range series {
		chart.Series = append(chart.Series, harness.ToSeries(s))
	}
	fmt.Print(chart.String())
	// Growth analysis: super-linear but sub-exponential in n.
	for _, s := range series {
		rs := harness.ToSeries(s)
		readout, err := harness.GrowthReadout(fmt.Sprintf("fig5 k=%d", s.K), rs.X, rs.Y)
		if err != nil {
			return err
		}
		fmt.Println(readout)
	}
	path, err := harness.WriteCSVFile(outDir, "fig5.csv", harness.SweepTable(series))
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	jpath, err := harness.SaveJSON(outDir, "fig5.json", harness.ResultDoc{
		Experiment: "fig5", Seed: seed, Trials: trials, Series: series,
	})
	if err != nil {
		return err
	}
	fmt.Println("wrote", jpath)
	return nil
}

func fig6(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers, kmax int, eng harness.Engine) error {
	var ks []int
	for _, k := range []int{2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24} {
		if k <= kmax {
			ks = append(ks, k)
		}
	}
	cfg := harness.Fig6Config{Ks: ks, Trials: trials, Seed: seed, Workers: workers, Engine: eng}
	pts, err := harness.RunFig6Ctx(ctx, cfg, opts)
	if err != nil {
		return err
	}
	s := harness.Fig6Series(pts)
	chart := &report.LineChart{
		Title:  "Figure 6: interactions vs k at n=960 (log scale)",
		XLabel: "k", YLabel: "mean interactions", LogY: true,
		Series: []report.Series{s},
	}
	fmt.Print(chart.String())
	readout, err := harness.GrowthReadout("fig6", s.X, s.Y)
	if err != nil {
		return err
	}
	fmt.Println(readout)
	fmt.Print(harness.Fig6Table(pts).String())
	path, err := harness.WriteCSVFile(outDir, "fig6.csv", harness.Fig6Table(pts))
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	jpath, err := harness.SaveJSON(outDir, "fig6.json", harness.ResultDoc{
		Experiment: "fig6", Seed: seed, Trials: trials, Points: pts,
	})
	if err != nil {
		return err
	}
	fmt.Println("wrote", jpath)
	return nil
}
