package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/lint"
)

// bannedTimeFuncs are the package time functions that read the wall
// clock or schedule against it. Any of them inside a deterministic
// package makes a run's outputs depend on when it ran.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Determinism bans wall-clock access in the engine packages. The sim
// and countsim results feed directly into the paper's Lemma 1 /
// Theorem 1 evidence; those numbers must be a pure function of (spec,
// seed). Timing belongs in the harness and cmd layers, which wrap the
// engines. Test files are exempt — benchmarks and soak tests may time
// themselves without touching what a run computes.
var Determinism = &lint.Analyzer{
	Name:    "determinism",
	Doc:     "no time.Now/Since/timers inside the deterministic engine packages",
	Applies: inDeterministicPkg,
	Run:     runDeterminism,
}

// edgeFiles name the sanctioned wall-clock edges inside otherwise
// deterministic packages, keyed by import path. In internal/serve the
// HTTP/executor edge (server.go, pool.go) is where wall-clock use is
// the job — latency histograms, Retry-After, trial wall times — while
// cache.go and spec.go compute content-addressed identities and are
// checked like an engine package. In internal/obs/span the entire
// identity model (IDs, sequence intervals, structure) is deterministic
// by contract and only wall.go may stamp wall durations onto spans.
// Growing any of these sets needs the same review as adding a timing
// call to an engine.
var edgeFiles = map[string]map[string]bool{
	modPath + "/internal/serve": {
		"server.go": true,
		"pool.go":   true,
	},
	modPath + "/internal/obs/span": {
		"wall.go": true,
	},
}

func runDeterminism(pass *lint.Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if ef := edgeFiles[pass.Path]; ef != nil &&
			ef[filepath.Base(pass.Position(f.Pos()).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s in deterministic package %s: results must be a pure function of (spec, seed); take timings in the harness layer",
					fn.Name(), pass.Path)
			}
			return true
		})
	}
}
