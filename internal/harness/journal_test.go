package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSpecKeyCoversIdentityOnly(t *testing.T) {
	base := TrialSpec{N: 20, K: 4, Seed: 9, MaxInteractions: 1000, Grouping: true, Engine: EngineCount}
	if SpecKey(base) != SpecKey(base) {
		t.Fatal("SpecKey not stable")
	}
	variants := []TrialSpec{
		{N: 21, K: 4, Seed: 9, MaxInteractions: 1000, Grouping: true, Engine: EngineCount},
		{N: 20, K: 5, Seed: 9, MaxInteractions: 1000, Grouping: true, Engine: EngineCount},
		{N: 20, K: 4, Seed: 10, MaxInteractions: 1000, Grouping: true, Engine: EngineCount},
		{N: 20, K: 4, Seed: 9, MaxInteractions: 1001, Grouping: true, Engine: EngineCount},
		{N: 20, K: 4, Seed: 9, MaxInteractions: 1000, Grouping: false, Engine: EngineCount},
		{N: 20, K: 4, Seed: 9, MaxInteractions: 1000, Grouping: true, Engine: EngineAgent},
	}
	for i, v := range variants {
		if SpecKey(v) == SpecKey(base) {
			t.Fatalf("variant %d collides with base", i)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "trials.journal")
	j, err := CreateJournal(path, "campaign-x")
	if err != nil {
		t.Fatal(err)
	}
	spec := TrialSpec{N: 20, K: 4, Seed: 1}
	res, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(spec, res, 1234*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(spec, res, 0); err == nil {
		t.Fatal("append after Close accepted")
	}

	j2, err := OpenJournal(path, "campaign-x")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("len %d", j2.Len())
	}
	e, ok := j2.Lookup(spec)
	if !ok {
		t.Fatal("journaled trial not found")
	}
	if e.WallUS != 1234 {
		t.Fatalf("wall %d", e.WallUS)
	}
	// Bit-exact restore: every TrialResult field survives the round trip.
	want, _ := json.Marshal(res)
	got, _ := json.Marshal(e.Result)
	if !bytes.Equal(want, got) {
		t.Fatalf("result changed through journal:\n%s\n%s", want, got)
	}
}

func TestJournalRefusesForeignCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.journal")
	j, err := CreateJournal(path, "fig3 seed=7")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "fig3 seed=8"); err == nil {
		t.Fatal("foreign campaign meta accepted")
	}
	// Empty meta skips the check (callers that don't stamp campaigns).
	j2, err := OpenJournal(path, "")
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
}

func TestJournalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	notj := filepath.Join(dir, "x.journal")
	if err := os.WriteFile(notj, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(notj, ""); err == nil {
		t.Fatal("garbage header accepted")
	}
	empty := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(empty, ""); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestJournalCorruptMiddleRecordRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.journal")
	j, err := CreateJournal(path, "c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrial(TrialSpec{N: 16, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(TrialSpec{N: 16, K: 4, Seed: 3}, res, 0)
	j.Append(TrialSpec{N: 16, K: 4, Seed: 4}, res, 0)
	j.Close()

	// Corrupt the FIRST record (a complete, newline-terminated line): this
	// cannot be a torn append, so load must refuse, not silently drop it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"key"`, `"kxy"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, ""); err == nil {
		t.Fatal("corrupt complete record accepted")
	}
}

// tearFinalRecord chops the journal's last line mid-record, exactly what a
// crash during the final append leaves behind.
func tearFinalRecord(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("journal does not end in newline")
	}
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	torn := data[:cut+(len(data)-cut)/2] // half the final record, no newline
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalTornTailTruncatedAndAppendable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.journal")
	j, err := CreateJournal(path, "c")
	if err != nil {
		t.Fatal(err)
	}
	specs := []TrialSpec{{N: 16, K: 4, Seed: 3}, {N: 16, K: 4, Seed: 4}, {N: 16, K: 4, Seed: 5}}
	for _, s := range specs {
		res, err := RunTrial(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(s, res, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	tearFinalRecord(t, path)

	j2, err := OpenJournal(path, "c")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("after tear: len %d, want 2", j2.Len())
	}
	if _, ok := j2.Lookup(specs[2]); ok {
		t.Fatal("torn trial still resolves")
	}
	// The file must be positioned cleanly after the tear: append the torn
	// trial again and reopen.
	res, err := RunTrial(specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(specs[2], res, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, "c")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 {
		t.Fatalf("after repair: len %d, want 3", j3.Len())
	}
}

// The tentpole's acceptance scenario in miniature: a sweep is killed with
// its final journal record torn mid-line; the resumed run skips every
// completed trial, re-runs the torn one, and the merged CSV is
// byte-identical to an uninterrupted run's.
func TestSweepCrashRecoveryMatchesUninterruptedCSV(t *testing.T) {
	dir := t.TempDir()
	sweep := SweepSpec{N: 18, K: 3, Trials: 6, Seed: 77, PointID: 9, Workers: 4}

	// Reference: the uninterrupted run.
	ptRef, err := SweepPointCtx(context.Background(), sweep, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	csvRef, err := WriteCSVFile(dir, "ref.csv", SweepTable([]KSeries{{K: 3, Points: []Point{ptRef}}}))
	if err != nil {
		t.Fatal(err)
	}

	// "Crashed" run: only 4 of 6 trials complete, then the journal's final
	// record is torn mid-line.
	jpath := filepath.Join(dir, "sweep.journal")
	j, err := CreateJournal(jpath, "crash-test")
	if err != nil {
		t.Fatal(err)
	}
	specs := sweep.Specs()
	if _, err := RunManyCtx(context.Background(), specs[:4], 2, RunOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	tearFinalRecord(t, jpath)

	// Resume: 3 intact records answered from the journal, the torn trial
	// plus the 2 never-started ones re-run.
	reg := obs.New("test")
	SetMetrics(reg)
	defer SetMetrics(nil)
	j2, err := OpenJournal(jpath, "crash-test")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("resumed journal holds %d trials, want 3", j2.Len())
	}
	ptRes, err := SweepPointCtx(context.Background(), sweep, RunOptions{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("harness/resumed").Value(); got != 3 {
		t.Fatalf("resumed counter = %d, want 3", got)
	}
	if got := reg.Counter("harness/trials").Value(); got != 3 {
		t.Fatalf("re-ran %d trials, want 3 (torn + 2 fresh)", got)
	}
	if j2.Len() != 6 {
		t.Fatalf("journal after resume holds %d trials, want 6", j2.Len())
	}

	csvRes, err := WriteCSVFile(dir, "res.csv", SweepTable([]KSeries{{K: 3, Points: []Point{ptRes}}}))
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(csvRef)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(csvRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n%s\n%s", a, b)
	}
}
