// Command pp runs an arbitrary population protocol defined in the text
// format of internal/parse, making the toolkit usable beyond the built-in
// protocols:
//
//	pp -f protocol.pp -n 100 [-seed 1] [-max 1000000] [-init "x=60,y=40"]
//
// The run stops at quiescence (no productive pair exists) or at the
// interaction cap, and prints the final state counts, group sizes, and
// counters. -dump prints the parsed protocol back in canonical form and
// exits. Example protocol files live in cmd/pp/testdata.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/parse"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	var (
		file    = flag.String("f", "", "protocol definition file (required)")
		n       = flag.Int("n", 50, "population size")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		maxI    = flag.Uint64("max", 10_000_000, "interaction cap")
		initCfg = flag.String("init", "", "initial configuration as state=count pairs, e.g. \"x=30,y=20\" (default: all agents in the init state)")
		dump    = flag.Bool("dump", false, "print the parsed protocol in canonical form and exit")
		rules   = flag.Bool("rules", false, "print the transition rules and exit")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "usage: pp -f protocol.pp [-n 50] [-init \"x=30,y=20\"]")
		os.Exit(2)
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	res, err := parse.Reader(f, strings.TrimSuffix(filepath.Base(*file), filepath.Ext(*file)))
	_ = f.Close() // read-only handle, fully consumed by parse.Reader
	if err != nil {
		fatal(err)
	}
	p := res.Protocol

	if *dump {
		fmt.Print(parse.Format(p))
		return
	}
	if *rules {
		fmt.Print(protocol.FormatRules(p, protocol.Rules(p)))
		return
	}

	var pop *population.Population
	if *initCfg == "" {
		pop = population.New(p, *n)
	} else {
		states, err := parseInit(*initCfg, res.Names)
		if err != nil {
			fatal(err)
		}
		pop = population.FromStates(p, states)
	}

	fmt.Printf("protocol %s: %d states, %d groups, n=%d\n", p.Name(), p.NumStates(), p.NumGroups(), pop.N())
	r, err := sim.Run(pop, sched.NewRandom(*seed), sim.NewQuiescence(p), sim.Options{MaxInteractions: *maxI})
	if err != nil {
		fatal(err)
	}
	if r.Converged {
		fmt.Printf("quiesced after %d interactions (%d productive)\n", r.Interactions, r.Productive)
	} else {
		fmt.Printf("still live after %d interactions (cap reached)\n", r.Interactions)
	}
	fmt.Printf("final configuration: %s\n", pop)
	fmt.Printf("group sizes: %v\n", r.GroupSizes)
}

// parseInit expands "x=30,y=20" into a state vector.
func parseInit(s string, names map[string]protocol.State) ([]protocol.State, error) {
	var out []protocol.State
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -init entry %q (want state=count)", part)
		}
		st, ok := names[kv[0]]
		if !ok {
			return nil, fmt.Errorf("unknown state %q in -init", kv[0])
		}
		c, err := strconv.Atoi(kv[1])
		if err != nil || c < 0 {
			return nil, fmt.Errorf("bad count %q in -init", kv[1])
		}
		for i := 0; i < c; i++ {
			out = append(out, st)
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("-init yields %d agents; need >= 2", len(out))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pp:", err)
	os.Exit(1)
}
