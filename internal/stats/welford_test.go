package stats

import (
	"math"
	"testing"
)

// The Welford accumulator must agree with the two-pass Summarize and with
// hand-computed closed forms, including after Merge — the twin calibration
// leans on it for every grid point.

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestWelfordClosedForm(t *testing.T) {
	// 1..n has mean (n+1)/2 and sample variance n(n+1)/12.
	const n = 101
	var w Welford
	for i := 1; i <= n; i++ {
		w.Add(float64(i))
	}
	if w.N() != n {
		t.Fatalf("N = %d, want %d", w.N(), n)
	}
	wantMean := float64(n+1) / 2
	wantVar := float64(n) * float64(n+1) / 12
	if !almostEq(w.Mean(), wantMean, 1e-12) {
		t.Errorf("Mean = %g, want %g", w.Mean(), wantMean)
	}
	if !almostEq(w.Variance(), wantVar, 1e-12) {
		t.Errorf("Variance = %g, want %g", w.Variance(), wantVar)
	}
	if !almostEq(w.Std(), math.Sqrt(wantVar), 1e-12) {
		t.Errorf("Std = %g, want %g", w.Std(), math.Sqrt(wantVar))
	}
	if !almostEq(w.RelStd(), math.Sqrt(wantVar)/wantMean, 1e-12) {
		t.Errorf("RelStd = %g, want %g", w.RelStd(), math.Sqrt(wantVar)/wantMean)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{3.5, -2, 17, 0.25, 9, 9, -41.5, 6.75, 100, 2.125}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if !almostEq(w.Mean(), s.Mean, 1e-12) {
		t.Errorf("Mean = %g, Summarize = %g", w.Mean(), s.Mean)
	}
	if !almostEq(w.Std(), s.Std, 1e-12) {
		t.Errorf("Std = %g, Summarize = %g", w.Std(), s.Std)
	}
	// The one-pass CI95 must match the slice-based half-width helper.
	half := CI95(xs)
	iv := w.CI95()
	if !almostEq(iv.Half, half, 1e-12) || !almostEq(iv.Center, s.Mean, 1e-12) {
		t.Errorf("CI95 = %+v, slice helper half = %g mean = %g", iv, half, s.Mean)
	}
}

func TestWelfordSmallSamples(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.RelStd() != 0 {
		t.Errorf("empty accumulator not all-zero: %+v", w)
	}
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("Mean after one Add = %g, want 42", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("Variance with one sample = %g, want 0", w.Variance())
	}
	if iv := w.CI95(); iv.Half != 0 || iv.Center != 42 {
		t.Errorf("CI95 with one sample = %+v, want degenerate at 42", iv)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset, small spread: the naive sum-of-squares form loses all
	// significant digits here; Welford must not.
	const offset = 1e9
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(offset + float64(i%2)) // alternating offset, offset+1
	}
	if !almostEq(w.Mean(), offset+0.5, 1e-12) {
		t.Errorf("Mean = %g, want %g", w.Mean(), offset+0.5)
	}
	// Bernoulli(1/2) sample variance ≈ 0.25 (n/(n−1) correction ≈ 1).
	if v := w.Variance(); math.Abs(v-0.25) > 1e-3 {
		t.Errorf("Variance = %g, want ≈0.25", v)
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11.5, -3}
	for split := 0; split <= len(xs); split++ {
		var a, b, all Welford
		for i, x := range xs {
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			t.Fatalf("split %d: merged N = %d, want %d", split, a.N(), all.N())
		}
		if !almostEq(a.Mean(), all.Mean(), 1e-12) {
			t.Errorf("split %d: merged Mean = %g, want %g", split, a.Mean(), all.Mean())
		}
		if !almostEq(a.Variance(), all.Variance(), 1e-12) {
			t.Errorf("split %d: merged Variance = %g, want %g", split, a.Variance(), all.Variance())
		}
	}
}

func TestWelfordAddUint64(t *testing.T) {
	var a, b Welford
	a.AddUint64(7)
	a.AddUint64(9)
	b.Add(7)
	b.Add(9)
	if a != b {
		t.Errorf("AddUint64 path diverged: %+v vs %+v", a, b)
	}
}

func TestNormalInterval(t *testing.T) {
	iv := NormalInterval(10, 2, 100, Z95)
	if !almostEq(iv.Half, 1.96*2/10, 1e-12) {
		t.Errorf("Half = %g, want %g", iv.Half, 1.96*2/10)
	}
	if !iv.Contains(10) || !iv.Contains(iv.Low()) || iv.Contains(iv.Low()-1e-9) {
		t.Errorf("Contains misbehaves on %+v", iv)
	}
	if iv := NormalInterval(5, 2, 1, Z95); iv.Half != 0 || iv.Center != 5 {
		t.Errorf("n=1 interval = %+v, want degenerate", iv)
	}
	if iv := NormalInterval(5, 0, 100, Z95); iv.Half != 0 {
		t.Errorf("std=0 interval = %+v, want degenerate", iv)
	}
}

func TestPredictionInterval(t *testing.T) {
	iv := PredictionInterval(100, 7, 2)
	if iv.Low() != 86 || iv.High() != 114 {
		t.Errorf("interval = [%g, %g], want [86, 114]", iv.Low(), iv.High())
	}
	if iv := PredictionInterval(100, 0, 2); iv.Half != 0 {
		t.Errorf("std=0 interval = %+v, want degenerate", iv)
	}
}
