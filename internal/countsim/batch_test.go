package countsim

// The batched engine's test architecture, mirroring the ISSUE 7 contract:
//
//   - Differential: batched and sequential engines reach the same stable
//     configuration across an (n, k, batch) grid; matching-mode boundary
//     configurations are members of the exact reachable set; the
//     final-approach fallback replays the sequential engine byte for byte.
//   - Statistical: chi-square goodness-of-fit of matching-mode per-pair
//     draws against the exact E[D_ab] = m·c_a·(c_b−[a=b])/(n(n−1)); mean
//     interactions-to-stability of matching Size=1 against the exact
//     Markov expectation; adaptive aggregate mean against the sequential
//     engine within the documented window-inflation bound.
//   - Property/fuzz: counts stay non-negative and sum to n, and the
//     null-weight audit reconciles, for arbitrary count vectors and batch
//     sizes.
//
// Every test is seeded, so the statistical gates fail deterministically.

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/markov"
	"repro/internal/protocols/interval"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestBatchValidation(t *testing.T) {
	p := core.MustNew(3)
	if _, err := NewBatch(p, 10, 1, BatchOptions{Size: 6}); err == nil {
		t.Error("Size 6 with n=10 violates 2·size <= n; want error")
	}
	if _, err := NewBatch(p, 1, 1, BatchOptions{}); err == nil {
		t.Error("n=1 must be rejected")
	}
	if _, err := NewBatch(p, 10, 1, BatchOptions{Size: 5}); err != nil {
		t.Errorf("Size 5 with n=10 is legal: %v", err)
	}
}

// The adaptive classifier on Algorithm 1: rules 3/4 (settled agent toggles
// a free agent's bar) are the flip cells, everything else productive is a
// progress cell, and the two free states form the single toggle orbit.
func TestBatchClassifyKPartition(t *testing.T) {
	p := core.MustNew(4)
	b, err := NewBatch(p, 20, 1, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.orbits) != 1 {
		t.Fatalf("orbits = %v, want exactly the free-agent bar orbit", b.orbits)
	}
	o := b.orbits[0]
	if o[0] != int(p.Initial()) || o[1] != int(p.InitialBar()) {
		t.Fatalf("orbit %v, want {initial, initialBar}", o)
	}
	if len(b.flipCells) == 0 {
		t.Fatal("no flip cells classified; rules 3/4 should aggregate")
	}
	if len(b.progCells) == 0 {
		t.Fatal("no progress cells classified")
	}
	// Flip and progress cells partition the non-null cells.
	S := b.sim.S
	nonNull := 0
	for i := 0; i < S*S; i++ {
		if !b.sim.nullPair[i] {
			nonNull++
		}
	}
	if got := len(b.flipCells) + len(b.progCells); got != nonNull {
		t.Fatalf("flip %d + progress %d != non-null %d", len(b.flipCells), len(b.progCells), nonNull)
	}
}

// Matching mode applies only disjoint pairs, so every boundary
// configuration must be sequentially reachable — membership in the exact
// reachable set built by internal/explore.
func TestBatchMatchingStaysInReachableSet(t *testing.T) {
	for _, cse := range []struct {
		n, k int
		size uint64
	}{{8, 2, 2}, {8, 3, 3}, {9, 3, 2}} {
		p := core.MustNew(cse.k)
		g, err := explore.Build(p, cse.n)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 5; seed++ {
			b, err := NewBatch(p, cse.n, seed, BatchOptions{Size: cse.size})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 400; i++ {
				if err := b.Step(); err != nil {
					if errors.Is(err, ErrDead) {
						break
					}
					t.Fatal(err)
				}
				if _, ok := g.Lookup(explore.Config{Counts: b.Counts()}); !ok {
					t.Fatalf("n=%d k=%d size=%d seed=%d batch %d: configuration %v is not sequentially reachable",
						cse.n, cse.k, cse.size, seed, i, b.Counts())
				}
				if p.IsStable(b.CountsView()) {
					break
				}
			}
		}
	}
}

// sortedSizes canonicalizes a group-size vector for comparison.
func sortedSizes(sizes []int) []int {
	out := append([]int(nil), sizes...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// The differential grid: for every (n, k, batch mode), the batched engine
// must stabilize to the same (unique) stable group-size signature the
// sequential engine stabilizes to.
func TestBatchDifferentialStableConfiguration(t *testing.T) {
	type mode struct {
		name string
		opts BatchOptions
	}
	modes := []mode{
		{"adaptive", BatchOptions{}},
		{"adaptive-forced", BatchOptions{SeqThreshold: -1}},
		{"matching-1", BatchOptions{Size: 1}},
		{"matching-3", BatchOptions{Size: 3}},
	}
	for _, cse := range []struct{ n, k int }{{10, 2}, {12, 3}, {16, 4}, {17, 4}} {
		p := core.MustNew(cse.k)
		want := sortedSizes(p.StableGroupSizes(cse.n))
		for seed := uint64(0); seed < 4; seed++ {
			// Sequential reference.
			s, err := New(p, cse.n, rng.StreamSeed(0x5e9, uint64(cse.n), uint64(cse.k), seed))
			if err != nil {
				t.Fatal(err)
			}
			if ok, err := s.RunUntil(p.IsStable, 1<<40); err != nil || !ok {
				t.Fatalf("sequential n=%d k=%d seed=%d: ok=%v err=%v", cse.n, cse.k, seed, ok, err)
			}
			if got := sortedSizes(p.GroupSizesFromCounts(s.CountsView())); !reflect.DeepEqual(got, want) {
				t.Fatalf("sequential stable sizes %v, want %v", got, want)
			}
			for _, m := range modes {
				opts := m.opts
				opts.Check = p.CheckInvariant
				b, err := NewBatch(p, cse.n, rng.StreamSeed(0xba7c4, uint64(cse.n), uint64(cse.k), seed), opts)
				if err != nil {
					t.Fatal(err)
				}
				ok, err := b.RunUntil(p.IsStable, 1<<40)
				if err != nil || !ok {
					t.Fatalf("%s n=%d k=%d seed=%d: ok=%v err=%v", m.name, cse.n, cse.k, seed, ok, err)
				}
				if got := sortedSizes(p.GroupSizesFromCounts(b.CountsView())); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s n=%d k=%d seed=%d: stable sizes %v, want %v (sequential agrees with %v)",
						m.name, cse.n, cse.k, seed, got, want, want)
				}
			}
		}
	}
}

// In the final-approach regime the adaptive engine falls back to exact
// sequential steps that consume the SAME stream the sequential engine
// would: at small n the two engines are byte-identical, step for step.
func TestBatchFallbackMatchesSequentialExactly(t *testing.T) {
	const n, k, seed = 60, 3, 0xfa11
	p := core.MustNew(k)
	s, err := New(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(p, n, seed, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		if p.IsStable(s.CountsView()) {
			if !p.IsStable(b.CountsView()) {
				t.Fatal("sequential stable, batch not")
			}
			if b.Batches() != 0 {
				t.Fatalf("run this small must be all fallback steps, saw %d bulk batches", b.Batches())
			}
			if b.SeqSteps() == 0 {
				t.Fatal("no fallback steps recorded")
			}
			return
		}
		if _, _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.Counts(), b.Counts()) {
			t.Fatalf("step %d: counts diverged: sequential %v, batch %v", i, s.Counts(), b.Counts())
		}
		if s.Interactions() != b.Interactions() {
			t.Fatalf("step %d: interactions diverged: %d vs %d", i, s.Interactions(), b.Interactions())
		}
	}
	t.Fatal("never stabilized")
}

// Matching mode at Size 1 reproduces the sequential law exactly, so its
// mean interactions-to-stability must sit on the exact Markov expectation.
func TestBatchMatchingSizeOneMatchesExactExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution check over many trials; skipped in -short runs")
	}
	const n, k, trials = 6, 3, 12000
	p := core.MustNew(k)
	exact, err := markov.ExpectedStabilization(p, n)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		b, err := NewBatch(p, n, rng.StreamSeed(0xba7c1, uint64(i)), BatchOptions{Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := b.RunUntil(p.IsStable, 1<<40)
		if err != nil || !ok {
			t.Fatalf("trial %d: ok=%v err=%v", i, ok, err)
		}
		x := float64(b.Interactions())
		sum += x
		sumsq += x * x
	}
	mean := sum / trials
	se := math.Sqrt(((sumsq - sum*sum/trials) / (trials - 1)) / trials)
	if diff := math.Abs(mean - exact); diff > 4*se+1e-9 {
		t.Errorf("matching Size=1 mean %.3f vs exact %.3f (diff %.3f > 4·SE %.3f)", mean, exact, diff, 4*se)
	}
}

// Chi-square goodness-of-fit of the matching sampler's per-pair draws:
// over R independent single batches from a frozen configuration, the
// total draws on ordered cell (a, b) must fit R·m·c_a·(c_b−[a=b])/(n(n−1))
// — the exact marginal the package doc promises.
func TestBatchMatchingPairDrawsChiSquare(t *testing.T) {
	const k, n, m, replicates = 3, 12, 3, 6000
	p := core.MustNew(k)
	// A generic mid-execution configuration, reached deterministically.
	warm, err := New(p, n, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := warm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	counts := warm.Counts()
	S := p.NumStates()
	W := float64(n) * float64(n-1)
	obs := make([]float64, S*S)
	for r := uint64(0); r < replicates; r++ {
		b, err := BatchFromCounts(p, counts, rng.StreamSeed(0xc412, r), BatchOptions{Size: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		draws := b.PairDraws()
		var total int64
		for i, d := range draws {
			obs[i] += float64(d)
			total += d
		}
		if total != m {
			t.Fatalf("replicate %d: %d pair draws, want %d", r, total, m)
		}
	}
	exp := make([]float64, S*S)
	for a := 0; a < S; a++ {
		for q := 0; q < S; q++ {
			cb := float64(counts[q])
			if q == a {
				cb--
			}
			if cb < 0 {
				cb = 0
			}
			exp[a*S+q] = replicates * m * float64(counts[a]) * cb / W
		}
	}
	// Pool cells below expectation 5 (chi-square asymptotics).
	var pObs, pExp []float64
	var ro, re float64
	for i := range exp {
		ro += obs[i]
		re += exp[i]
		if re >= 5 {
			pObs = append(pObs, ro)
			pExp = append(pExp, re)
			ro, re = 0, 0
		}
	}
	if re > 0 {
		pObs[len(pObs)-1] += ro
		pExp[len(pExp)-1] += re
	}
	stat, used, err := stats.ChiSquare(pObs, pExp)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical999(used - 1); stat > crit {
		t.Errorf("pair-draw chi-square %.2f exceeds 99.9%% critical %.2f at df=%d", stat, crit, used-1)
	}
}

// The adaptive aggregate mode's interactions-to-stability must track the
// sequential engine's within the documented window-inflation bound
// (~13% expected overshoot in the sparse regime, plus sampling noise).
func TestBatchAdaptiveMeanTracksSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison over dozens of full runs; skipped in -short runs")
	}
	const n, k, trials = 1000, 3, 40
	p := core.MustNew(k)
	meanOf := func(run func(seed uint64) uint64) float64 {
		var sum float64
		for i := uint64(0); i < trials; i++ {
			sum += float64(run(i))
		}
		return sum / trials
	}
	seqMean := meanOf(func(seed uint64) uint64 {
		s, err := New(p, n, rng.StreamSeed(0xada1, seed))
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := s.RunUntil(p.IsStable, 1<<50); err != nil || !ok {
			t.Fatalf("sequential seed %d: ok=%v err=%v", seed, ok, err)
		}
		return s.Interactions()
	})
	batMean := meanOf(func(seed uint64) uint64 {
		b, err := NewBatch(p, n, rng.StreamSeed(0xada2, seed), BatchOptions{SeqThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := b.RunUntil(p.IsStable, 1<<50); err != nil || !ok {
			t.Fatalf("batch seed %d: ok=%v err=%v", seed, ok, err)
		}
		return b.Interactions()
	})
	ratio := batMean / seqMean
	if ratio < 0.70 || ratio > 1.45 {
		t.Errorf("adaptive mean %.0f vs sequential mean %.0f: ratio %.3f outside the accuracy contract [0.70, 1.45]",
			batMean, seqMean, ratio)
	}
}

// Seed stability: a fixed (seed, mode) pins the entire boundary trajectory
// — two runs must agree on every Counts() snapshot and every counter.
// The Makefile race pass runs this under -race as well.
func TestBatchSeedStabilityTrajectory(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts BatchOptions
	}{
		{"adaptive", BatchOptions{SeqThreshold: -1}},
		{"matching", BatchOptions{Size: 8}},
	} {
		p := core.MustNew(4)
		run := func() (traj [][]int, inter, prod uint64) {
			b, err := NewBatch(p, 500, 0x5eed, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				if err := b.Step(); err != nil {
					t.Fatal(err)
				}
				traj = append(traj, b.Counts())
				if p.IsStable(b.CountsView()) {
					break
				}
			}
			return traj, b.Interactions(), b.Productive()
		}
		t1, i1, p1 := run()
		t2, i2, p2 := run()
		if i1 != i2 || p1 != p2 {
			t.Fatalf("%s: counters diverged: (%d,%d) vs (%d,%d)", mode.name, i1, p1, i2, p2)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("%s: boundary trajectories diverged across identical runs", mode.name)
		}
	}
}

// The boundary Check hook runs at every boundary and its error aborts.
func TestBatchCheckHook(t *testing.T) {
	p := core.MustNew(3)
	calls := 0
	b, err := NewBatch(p, 200, 9, BatchOptions{
		SeqThreshold: -1,
		Check: func(counts []int) error {
			calls++
			return p.CheckInvariant(counts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := b.RunUntil(p.IsStable, 1<<50); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if calls == 0 {
		t.Fatal("Check hook never ran")
	}
	boom := errors.New("boom")
	b2, err := NewBatch(p, 200, 9, BatchOptions{Check: func([]int) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Step(); !errors.Is(err, boom) {
		t.Fatalf("Check error not propagated: %v", err)
	}
}

// A quiescent configuration is ErrDead in both modes.
func TestBatchDeadConfiguration(t *testing.T) {
	p := interval.MustNew(4)
	counts := make([]int, p.NumStates())
	counts[p.Interval(1, 1)] = 3
	counts[p.Interval(2, 2)] = 3
	for _, opts := range []BatchOptions{{}, {Size: 2}} {
		b, err := BatchFromCounts(p, counts, 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); !errors.Is(err, ErrDead) {
			t.Fatalf("opts %+v: got %v, want ErrDead", opts, err)
		}
		ok, err := b.RunUntil(func([]int) bool { return false }, 100)
		if err != nil || ok {
			t.Fatalf("RunUntil on dead config: %v %v", err, ok)
		}
	}
}

// Property test: for arbitrary count vectors, batch sizes and seeds, a
// few steps of either mode keep counts non-negative and summing to n,
// with the incremental null weight reconciling against the O(S²) audit.
func TestBatchQuickProperties(t *testing.T) {
	p := core.MustNew(3)
	S := p.NumStates()
	prop := func(raw [7]uint16, sizeSel uint8, forced bool, seed uint64) bool {
		counts := make([]int, S)
		n := 0
		for i := range counts {
			counts[i] = int(raw[i] % 40)
			n += counts[i]
		}
		if n < 2 {
			counts[0] += 2
			n += 2
		}
		opts := BatchOptions{}
		if sizeSel%3 != 0 {
			opts.Size = uint64(sizeSel) % uint64(n/2+1)
		} else if forced {
			opts.SeqThreshold = -1
		}
		b, err := BatchFromCounts(p, counts, seed, opts)
		if err != nil {
			// Only the documented size bound may reject.
			return 2*opts.Size > uint64(n)
		}
		for i := 0; i < 4; i++ {
			if err := b.Step(); err != nil {
				if errors.Is(err, ErrDead) {
					break
				}
				t.Logf("step error: %v", err)
				return false
			}
			sum := 0
			for _, c := range b.CountsView() {
				if c < 0 {
					t.Logf("negative count in %v", b.CountsView())
					return false
				}
				sum += c
			}
			if sum != n {
				t.Logf("counts sum %d, want %d", sum, n)
				return false
			}
			if got := b.sim.auditNullWeight(); got != b.sim.nullW {
				t.Logf("null weight drifted: incremental %d, audit %d", b.sim.nullW, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchApply feeds arbitrary count vectors, sizes and seeds through
// batch application: construction either fails cleanly or a handful of
// steps preserve every invariant without panicking.
func FuzzBatchApply(f *testing.F) {
	f.Add([]byte{10, 0, 0, 0, 0, 0, 0, 0, 7}, uint64(1))
	f.Add([]byte{3, 3, 2, 1, 0, 4, 2, 2, 0}, uint64(2))
	f.Add([]byte{0, 50, 0, 9, 9, 9, 9, 1, 255}, uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) < 2 {
			return
		}
		k := 2 + int(data[0])%3
		p := core.MustNew(k)
		S := p.NumStates()
		counts := make([]int, S)
		n := 0
		for i := 0; i < S; i++ {
			var v byte
			if 1+i < len(data) {
				v = data[1+i]
			}
			counts[i] = int(v % 61)
			n += counts[i]
		}
		var opts BatchOptions
		switch data[len(data)-1] % 3 {
		case 0:
			opts.SeqThreshold = -1
		case 1:
			opts.Size = uint64(data[len(data)-1]) % 16
		}
		b, err := BatchFromCounts(p, counts, seed, opts)
		if err != nil {
			return // invalid inputs must be rejected, not applied
		}
		for i := 0; i < 3; i++ {
			if err := b.Step(); err != nil {
				if errors.Is(err, ErrDead) {
					return
				}
				t.Fatalf("step %d: %v", i, err)
			}
			sum := 0
			for _, c := range b.CountsView() {
				if c < 0 {
					t.Fatalf("negative count in %v", b.CountsView())
				}
				sum += c
			}
			if sum != n {
				t.Fatalf("counts sum %d, want %d", sum, n)
			}
			if got := b.sim.auditNullWeight(); got != b.sim.nullW {
				t.Fatalf("null weight drifted: incremental %d, audit %d", b.sim.nullW, got)
			}
		}
	})
}
