package harness

import (
	"fmt"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Topology survey (ablation A4): run the k-partition protocol on
// restricted interaction graphs until the configuration is group-frozen,
// and record how often the frozen partition is uniform. On the complete
// graph the answer is always (Theorem 1); on stars and rings the protocol
// can deadlock non-uniformly, demonstrating that the paper's
// complete-graph assumption is load-bearing.

// TopologyRow aggregates one graph's trials.
type TopologyRow struct {
	Graph        string
	N, K         int
	Trials       int
	Uniform      int     // frozen with spread <= 1
	NonUniform   int     // frozen with spread > 1
	Unfrozen     int     // hit the interaction cap while still live
	MeanToFreeze float64 // mean interactions to freeze (frozen runs only)
	WorstSpread  int
}

// RunTopologySurvey executes the survey over the standard graph lineup.
func RunTopologySurvey(n, k, trials int, seed uint64, maxInteractions uint64) ([]TopologyRow, error) {
	if maxInteractions == 0 {
		maxInteractions = 50_000_000
	}
	p := Proto(k)
	graphs := []func() (*topology.Graph, error){
		func() (*topology.Graph, error) { return topology.Complete(n) },
		func() (*topology.Graph, error) { return topology.Ring(n) },
		func() (*topology.Graph, error) { return topology.Star(n) },
		func() (*topology.Graph, error) { return topology.RandomRegular(n, 4, seed) },
	}
	var out []TopologyRow
	for gi, mk := range graphs {
		g, err := mk()
		if err != nil {
			// Some graphs are undefined at this n (e.g. 4-regular needs
			// n >= 5 and even n·d); skip rather than fail the survey.
			continue
		}
		row := TopologyRow{Graph: g.Name(), N: n, K: k, Trials: trials}
		var sumFreeze float64
		for t := 0; t < trials; t++ {
			pop := population.New(p, n)
			cond := &topology.FrozenCondition{G: g, Proto: p, Orbits: p.ParityOrbit}
			res, err := sim.Run(pop,
				topology.NewEdgeScheduler(g, rng.StreamSeed(seed, uint64(gi), uint64(t))),
				cond, sim.Options{MaxInteractions: maxInteractions})
			if err != nil {
				return nil, fmt.Errorf("topology survey %s: %w", g.Name(), err)
			}
			if !res.Converged {
				row.Unfrozen++
				continue
			}
			sumFreeze += float64(res.Interactions)
			if sp := res.Spread(); sp > 1 {
				row.NonUniform++
				if sp > row.WorstSpread {
					row.WorstSpread = sp
				}
			} else {
				row.Uniform++
				if sp := res.Spread(); sp > row.WorstSpread {
					row.WorstSpread = sp
				}
			}
		}
		if frozen := row.Uniform + row.NonUniform; frozen > 0 {
			row.MeanToFreeze = sumFreeze / float64(frozen)
		}
		out = append(out, row)
	}
	return out, nil
}

// TopologyTable renders survey rows.
func TopologyTable(rows []TopologyRow) *report.Table {
	t := report.NewTable("graph", "n", "k", "trials", "uniform", "non_uniform", "unfrozen", "mean_to_freeze", "worst_spread")
	for _, r := range rows {
		t.AddRow(r.Graph, r.N, r.K, r.Trials, r.Uniform, r.NonUniform, r.Unfrozen, r.MeanToFreeze, r.WorstSpread)
	}
	return t
}
