package serve

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/harness"
)

func TestTrialRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  TrialRequest
		ok   bool
	}{
		{"valid", TrialRequest{N: 24, K: 4, Seed: 7}, true},
		{"valid count engine", TrialRequest{N: 24, K: 4, Engine: "count"}, true},
		{"k too small", TrialRequest{N: 24, K: 1}, false},
		{"k too large", TrialRequest{N: 24, K: harness.MaxK + 1}, false},
		{"n too small", TrialRequest{N: 1, K: 4}, false},
		{"bad engine", TrialRequest{N: 24, K: 4, Engine: "banana"}, false},
	}
	for _, tc := range cases {
		spec, err := tc.req.Spec()
		if tc.ok {
			if err != nil {
				t.Errorf("%s: %v", tc.name, err)
			} else if spec.N != tc.req.N || spec.K != tc.req.K {
				t.Errorf("%s: spec %+v does not carry the request", tc.name, spec)
			}
			continue
		}
		// Every rejection must wrap the sentinel the HTTP layer maps to
		// 400 — anything else would surface as a 500.
		if !errors.Is(err, harness.ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestSweepRequestValidation(t *testing.T) {
	if _, err := (SweepRequest{N: 12, K: 3, Trials: 4, Seed: 1}).Sweep(0); err != nil {
		t.Fatalf("valid sweep: %v", err)
	}
	for name, req := range map[string]SweepRequest{
		"zero trials":     {N: 12, K: 3, Trials: 0},
		"negative trials": {N: 12, K: 3, Trials: -1},
		"bad point":       {N: 1, K: 3, Trials: 2},
	} {
		if _, err := req.Sweep(0); !errors.Is(err, harness.ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", name, err)
		}
	}
	if _, err := (SweepRequest{N: 12, K: 3, Trials: 5}).Sweep(4); !errors.Is(err, harness.ErrInvalidSpec) {
		t.Error("sweep above the per-request bound was accepted")
	}
	if _, err := (SweepRequest{N: 12, K: 3, Trials: DefaultMaxSweepTrials + 1}).Sweep(0); !errors.Is(err, harness.ErrInvalidSpec) {
		t.Error("sweep above the default bound was accepted")
	}
}

// TestRecordEncodeDeterministic pins the content-addressing premise:
// encoding the same record twice yields identical bytes (Go's JSON
// struct marshaling is field-ordered), so journal replays and LRU hits
// are byte-identical to the response that first computed the trial.
func TestRecordEncodeDeterministic(t *testing.T) {
	spec := harness.TrialSpec{N: 24, K: 4, Seed: 7}
	rec := Record{
		SpecKey: harness.SpecKey(spec),
		Result:  harness.TrialResult{Spec: spec, Interactions: 99, Converged: true, Marks: []uint64{1, 2}},
		WallUS:  1234,
	}
	a, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Encode is not deterministic:\n%s\n%s", a, b)
	}
	if bytes.HasSuffix(a, []byte{'\n'}) {
		t.Fatal("Encode appended a trailing newline; NDJSON writers own that")
	}
}
