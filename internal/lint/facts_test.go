package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

type testFact struct {
	Label string
	N     int
}

func (*testFact) AFact() {}

type otherFact struct {
	Flag bool
}

func (*otherFact) AFact() {}

type badFact struct {
	Ch chan int // not JSON-serializable
}

func (*badFact) AFact() {}

// factFixture loads a two-universe view of one object: the analysis
// unit's Leaf and, through a second package's import, the dependency
// universe's Leaf — distinct types.Object values for the same source.
func factFixture(t *testing.T) (*FactStore, *Package, *Package) {
	t.Helper()
	_, pkgs := loadTestProgram(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

// Leaf is exported so package b sees it.
func Leaf() {}
`,
		"b/b.go": `package b

import "example.com/m/a"

func use() { a.Leaf() }
`,
	}, "a", "b")
	return NewFactStore(pkgs[0].Fset), pkgs[0], pkgs[1]
}

func TestFactStoreRoundTripAcrossUniverses(t *testing.T) {
	store, aPkg, bPkg := factFixture(t)
	leafA := aPkg.Pkg.Scope().Lookup("Leaf")
	if leafA == nil {
		t.Fatal("no Leaf in analysis unit")
	}
	store.ExportObjectFact(leafA, &testFact{Label: "x", N: 7})

	// Import through the analysis-unit object.
	var got testFact
	if !store.ImportObjectFact(leafA, &got) || got.Label != "x" || got.N != 7 {
		t.Fatalf("same-universe import = %+v, ok", got)
	}

	// Import through b's dependency-universe view of the same function.
	leafB := bPkg.Pkg.Imports()[0].Scope().Lookup("Leaf")
	if leafB == nil {
		t.Fatal("no Leaf through b's import")
	}
	if leafB == leafA {
		t.Fatal("fixture did not produce two universes")
	}
	got = testFact{}
	if !store.ImportObjectFact(leafB, &got) || got.Label != "x" {
		t.Fatalf("cross-universe import failed, got %+v", got)
	}

	// A different fact type about the same object is absent.
	var other otherFact
	if store.ImportObjectFact(leafA, &other) {
		t.Fatal("otherFact should not be present")
	}
	// ImportObjectFactAt resolves by the same key.
	got = testFact{}
	if !store.ImportObjectFactAt(store.ObjectKey(leafB), &got) || got.N != 7 {
		t.Fatalf("keyed import failed, got %+v", got)
	}
	if store.Len() != 1 {
		t.Fatalf("Len = %d, want 1", store.Len())
	}
}

func TestFactStoreRejectsBadFacts(t *testing.T) {
	store, aPkg, _ := factFixture(t)
	leaf := aPkg.Pkg.Scope().Lookup("Leaf")
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("nil object", func() { store.ExportObjectFact(nil, &testFact{}) })
	mustPanic("non-serializable fact", func() { store.ExportObjectFact(leaf, &badFact{Ch: make(chan int)}) })
	mustPanic("nil fact pointer", func() { store.ExportObjectFact(leaf, (*testFact)(nil)) })
}

func TestFactStoreEncodeAllDeterministic(t *testing.T) {
	store, aPkg, _ := factFixture(t)
	leaf := aPkg.Pkg.Scope().Lookup("Leaf")
	store.ExportObjectFact(leaf, &testFact{Label: "x", N: 1})
	store.ExportObjectFact(leaf, &otherFact{Flag: true})
	enc := store.EncodeAll()
	if enc != store.EncodeAll() {
		t.Fatal("EncodeAll is not stable")
	}
	lines := strings.Split(strings.TrimSuffix(enc, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 fact lines, got %q", enc)
	}
	for _, line := range lines {
		if !strings.Contains(line, filepath.Join("a", "a.go")) {
			t.Errorf("fact line %q lacks the declaring position", line)
		}
	}
	if !strings.Contains(enc, `{"Label":"x","N":1}`) || !strings.Contains(enc, `{"Flag":true}`) {
		t.Errorf("EncodeAll payloads wrong:\n%s", enc)
	}
	// Re-export replaces, not appends.
	store.ExportObjectFact(leaf, &testFact{Label: "y", N: 2})
	if store.Len() != 2 {
		t.Fatalf("re-export changed Len to %d", store.Len())
	}
	var got testFact
	store.ImportObjectFact(leaf, &got)
	if got.Label != "y" {
		t.Fatalf("re-export did not replace: %+v", got)
	}
}
