package serve

// Loopback tests for POST /v1/predict: happy path, validation mapped to
// 400 before any model runs, byte-identical responses for a repeated
// key, and the span header round-trip.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/span"
	"repro/internal/twin"
)

// postPredict posts a prediction request and returns the response with
// its fully-read body.
func postPredict(t *testing.T, ts *httptest.Server, body, traceID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(span.Header, traceID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestPredictHappyPath(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postPredict(t, ts, `{"n":12,"k":3,"milestones":true}`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("%s = %q, want miss", cacheHeader, got)
	}
	var rec PredictRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	want := PredictKey(twin.Spec{N: 12, K: 3, Milestones: true})
	if rec.SpecKey != want {
		t.Errorf("spec_key %q, want %q", rec.SpecKey, want)
	}
	pr := rec.Prediction
	if pr.Model != "lumped" || pr.Fidelity != twin.FidelityExact {
		t.Errorf("small population answered by %s/%s, want the exact rung", pr.Model, pr.Fidelity)
	}
	if !(pr.ExpectedInteractions > 0) || len(pr.Milestones) != 12/3 {
		t.Errorf("implausible prediction: %+v", pr)
	}
	if pr.IntervalLow < 0 || pr.IntervalHigh < pr.ExpectedInteractions {
		t.Errorf("interval [%g, %g] does not bracket the mean %g",
			pr.IntervalLow, pr.IntervalHigh, pr.ExpectedInteractions)
	}
}

func TestPredictInvalidSpecIs400(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"n":0,"k":3}`,               // no population
		`{"n":10,"k":1}`,              // k < 2
		`{"n":-5,"k":2}`,              // negative population
		`{"n":10,"k":3,"bogus":true}`, // unknown field (strict decode)
		`{not json`,                   // malformed
	} {
		resp, b := postPredict(t, ts, body, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
}

// A repeated key must replay byte-identically — first from the LRU, and
// (because the twin is deterministic) identically even if it were
// recomputed.
func TestPredictRepeatByteIdentical(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"n":24,"k":4}`
	first, b1 := postPredict(t, ts, body, "")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.StatusCode, b1)
	}
	if got := first.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("first %s = %q, want miss", cacheHeader, got)
	}
	second, b2 := postPredict(t, ts, body, "")
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d", second.StatusCode)
	}
	if got := second.Header.Get(cacheHeader); got != "lru" {
		t.Fatalf("second %s = %q, want lru", cacheHeader, got)
	}
	if string(b1) != string(b2) {
		t.Fatalf("responses differ:\n%s\n%s", b1, b2)
	}
}

// The prediction endpoint participates in the same tracing contract as
// trials: a client trace ID is echoed and names the trace in the export,
// and the root span records the endpoint and cache provenance.
func TestPredictSpanRoundTrip(t *testing.T) {
	col := span.NewCollector(nil)
	srv := New(Config{Workers: 1, QueueDepth: 2, Spans: col})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const traceID = "predict-trace.01"
	resp, body := postPredict(t, ts, `{"n":12,"k":3}`, traceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(span.Header); got != traceID {
		t.Fatalf("response %s = %q, want %q", span.Header, got, traceID)
	}
	out := exportWhenDone(t, col, 1)
	var root *span.Span
	for i := range out {
		if out[i].Trace == traceID && out[i].Name == "request" {
			root = &out[i]
		}
	}
	if root == nil {
		t.Fatalf("no request span under trace %q in export %+v", traceID, out)
	}
	attrs := make(map[string]string, len(root.Attrs))
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["endpoint"] != "predict" || attrs["cache"] != "miss" {
		t.Errorf("root attrs %+v, want endpoint=predict cache=miss", attrs)
	}
	if attrs["model"] == "" {
		t.Errorf("root span missing model attr: %+v", attrs)
	}
}
