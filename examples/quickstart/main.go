// Quickstart: partition a population of 30 anonymous agents into 4 groups
// of (almost) equal size with the paper's protocol, and print what
// happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	const (
		n    = 30
		k    = 4
		seed = 2026
	)

	// 1. Build the protocol: 3k-2 = 10 states, symmetric rules,
	//    designated initial state "initial".
	proto, err := core.New(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol %s has %d states\n", proto.Name(), proto.NumStates())

	// 2. Put every agent in the initial state.
	pop := population.New(proto, n)

	// 3. Run under the uniform-random scheduler (globally fair with
	//    probability 1) until the closed-form stable signature of
	//    Lemmas 4-6 is reached.
	target, err := proto.TargetCounts(n)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(pop, sched.NewRandom(seed),
		sim.NewCountTarget(proto.CanonMap(), target), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read out the partition.
	fmt.Printf("stabilized after %d interactions\n", res.Interactions)
	fmt.Printf("group sizes: %v (max-min spread: %d)\n", res.GroupSizes, res.Spread())
	for i := 0; i < n; i++ {
		if i%10 == 0 && i > 0 {
			fmt.Println()
		}
		fmt.Printf("agent%02d->g%d ", i, proto.Group(pop.State(i)))
	}
	fmt.Println()

	// 5. The invariant behind the correctness proof (Lemma 1) holds at
	//    every configuration; check it at the final one.
	if err := proto.CheckInvariant(pop.Counts()); err != nil {
		log.Fatal("invariant violated: ", err)
	}
	fmt.Println("Lemma 1 invariant holds at the final configuration")
}
