package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

// directorScheduler wraps a core.Director as a sched.Scheduler.
func directorScheduler(d *core.Director) sched.Scheduler {
	return sched.Func{SchedName: d.Name(), F: func(v sched.View) (int, int) { return d.Next(v) }}
}

// The Director must stabilize every (n, k) it is pointed at — it realizes
// the constructive executions of Lemmas 2–5.
func TestDirectorStabilizes(t *testing.T) {
	for _, cse := range []struct{ n, k int }{
		{3, 2}, {4, 2}, {12, 3}, {13, 3}, {14, 3},
		{16, 4}, {17, 4}, {18, 4}, {19, 4},
		{40, 8}, {100, 10}, {7, 10}, {960, 12},
	} {
		p := core.MustNew(cse.k)
		pop := population.New(p, cse.n)
		target, err := p.TargetCounts(cse.n)
		if err != nil {
			t.Fatal(err)
		}
		d := core.NewDirector(p)
		res, err := sim.Run(pop, directorScheduler(d), sim.NewCountTarget(p.CanonMap(), target),
			sim.Options{MaxInteractions: uint64(100*cse.n + 100*cse.k)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d: director did not stabilize in %d interactions: %v",
				cse.n, cse.k, res.Interactions, res.FinalCounts)
		}
		if res.Spread() > 1 {
			t.Fatalf("n=%d k=%d: spread %d", cse.n, cse.k, res.Spread())
		}
	}
}

// The headline: under the Director the protocol needs only O(n + k)
// interactions — linear, versus the random scheduler's exponential-in-k
// cost (Figure 6). The bound tested is deliberately loose (3n + 10k).
func TestDirectorLinearTime(t *testing.T) {
	for _, cse := range []struct{ n, k int }{
		{24, 4}, {60, 6}, {120, 8}, {960, 12}, {960, 16},
	} {
		p := core.MustNew(cse.k)
		pop := population.New(p, cse.n)
		target, err := p.TargetCounts(cse.n)
		if err != nil {
			t.Fatal(err)
		}
		d := core.NewDirector(p)
		bound := uint64(3*cse.n + 10*cse.k)
		res, err := sim.Run(pop, directorScheduler(d), sim.NewCountTarget(p.CanonMap(), target),
			sim.Options{MaxInteractions: bound})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d: exceeded linear bound %d (reached %d)",
				cse.n, cse.k, bound, res.Interactions)
		}
		t.Logf("n=%d k=%d: director stabilized in %d interactions (bound %d)",
			cse.n, cse.k, res.Interactions, bound)
	}
}

// The Director must also recover from arbitrary mid-protocol
// configurations — including ones with multiple m-heads and d-states —
// because its case analysis covers Lemma 3's whole partition of C2.
// Build a pathological configuration by hand and direct it home.
func TestDirectorRecoversFromMess(t *testing.T) {
	p := core.MustNew(5)
	// Invariant-consistent mess: two m-heads (m3, m4), one d2, plus the
	// g-agents Lemma 1 forces, plus free agents.
	// For x=1: need #g1 = (#m3+#m4) + (#d2+#d1) + #g5 = 2+1+0 = 3.
	// x=2: #g2 = 2+1 = 3. x=3: #g3 = #m4 + #d2... wait Σ_{p>3}#mp = #m4
	// = 1, Σ_{q>=3}#dq = 0, so #g3 = 1. x=4: 0.
	states := []protocolState{}
	add := func(s protocolState, c int) {
		for i := 0; i < c; i++ {
			states = append(states, s)
		}
	}
	add(p.M(3), 1)
	add(p.M(4), 1)
	add(p.D(2), 1)
	add(p.G(1), 3)
	add(p.G(2), 3)
	add(p.G(3), 1)
	add(p.Initial(), 2)
	add(p.InitialBar(), 1)
	pop := population.FromStates(p, states)
	if err := p.CheckInvariant(pop.Counts()); err != nil {
		t.Fatalf("test configuration broken: %v", err)
	}
	n := pop.N()
	target, err := p.TargetCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDirector(p)
	res, err := sim.Run(pop, directorScheduler(d), sim.NewCountTarget(p.CanonMap(), target),
		sim.Options{MaxInteractions: uint64(50 * n)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("director stuck at %v after %d interactions", res.FinalCounts, res.Interactions)
	}
}

type protocolState = uint16

func TestDirectorName(t *testing.T) {
	d := core.NewDirector(core.MustNew(3))
	if d.Name() != "director" {
		t.Fatalf("Name = %q", d.Name())
	}
}
