// Package serve is the lockguard golden fixture: guarded fields
// accessed with and without their mutex, RWMutex read/write asymmetry,
// caller-held method contracts, branch-local lock state, function
// literals, and annotation hygiene.
package serve

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want `field n \(guarded by mu\) read without holding mu on this path`
}

func (c *counter) badWrite() {
	c.n++ // want `field n \(guarded by mu\) written without holding mu on this path`
}

// branchy locks only inside the if; the effect must not leak past it.
func (c *counter) branchy(b bool) {
	if b {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `field n \(guarded by mu\) written without holding mu on this path`
}

// lit hands the guarded field to a literal that may outlive the lock.
func (c *counter) lit() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `field n \(guarded by mu\) read without holding mu on this path`
	}
}

// evict resets the counter; callers hold the lock.
// guarded by mu
func (c *counter) evict() {
	c.n = 0
}

func (c *counter) flushHeld() {
	c.mu.Lock()
	c.evict()
	c.mu.Unlock()
}

func (c *counter) flushBare() {
	c.evict() // want "call to evict requires the receiver's mu held"
}

type table struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) put(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = v // want `field m \(guarded by rw\) written while only read-locked; Lock rw for writes`
}

func (t *table) del(k string) {
	delete(t.m, k) // want `field m \(guarded by rw\) written without holding rw on this path`
}

func (t *table) putLocked(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

type malformed struct {
	mu sync.Mutex
	a  int // guarded by mu and sometimes rw // want `guarded by takes one mutex designator`
}
