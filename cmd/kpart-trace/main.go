// Command kpart-trace analyzes a JSONL interaction trace produced by
// `kpart -trace`: it re-validates the trace by deterministic replay,
// tallies the Algorithm 1 rule families, and reports scheduler-fairness
// metrics (pair-coverage dispersion, starvation gaps).
//
// Usage:
//
//	kpart -n 24 -k 4 -trace run.jsonl
//	kpart-trace -k 4 run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	k := flag.Int("k", 0, "number of groups the trace was produced with (required)")
	flag.Parse()
	if flag.NArg() != 1 || *k < 2 {
		fmt.Fprintln(os.Stderr, "usage: kpart-trace -k <groups> <trace.jsonl>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	hdr, events, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace: protocol %q, n=%d, %d events\n", hdr.Protocol, hdr.N, len(events))

	p, err := core.New(*k)
	if err != nil {
		fatal(err)
	}
	pop, err := trace.Replay(p, hdr, events)
	if err != nil {
		fatal(fmt.Errorf("replay validation failed: %w", err))
	}
	fmt.Printf("replay: OK — final configuration %s\n", pop)
	if p.IsStable(pop.Counts()) {
		fmt.Println("final configuration is stable (uniform partition reached)")
	} else {
		fmt.Println("final configuration is NOT stable (trace ends mid-run)")
	}
	if err := p.CheckInvariant(pop.Counts()); err != nil {
		fatal(fmt.Errorf("Lemma 1 violated at final configuration: %w", err))
	}

	// Rule-family tally.
	tally := core.NewTally(p)
	meter := fairness.NewMeter(hdr.N)
	for _, e := range events {
		tally.Observe(e.BeforeP, e.BeforeQ)
		meter.Record(e.I, e.J)
	}
	tbl := report.NewTable("rule", "count", "share")
	total := float64(tally.Total())
	for r := core.RuleKind(0); int(r) < core.NumRuleKinds; r++ {
		if c := tally.Counts[r]; c > 0 {
			tbl.AddRow(r.String(), c, fmt.Sprintf("%.2f%%", 100*float64(c)/total))
		}
	}
	fmt.Println("\nrule-family tally:")
	tbl.WriteTo(os.Stdout)
	fmt.Printf("demolition fraction of productive interactions: %.4f\n", tally.DemolitionFraction())

	// Fairness metrics.
	rep := meter.Report()
	fmt.Println("\nscheduler fairness over this prefix:")
	fmt.Printf("  pairs scheduled     %d/%d (starved: %d)\n", rep.Pairs-rep.StarvedPairs, rep.Pairs, rep.StarvedPairs)
	fmt.Printf("  pair-count CV       %.4f\n", rep.CV)
	fmt.Printf("  pair-count Gini     %.4f\n", rep.Gini)
	fmt.Printf("  longest pair gap    %d interactions\n", rep.MaxGap)
	fmt.Printf("  agent-count CV      %.4f\n", rep.AgentCV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-trace:", err)
	os.Exit(1)
}
