// Package harness runs the paper's experiments: it fans simulation trials
// out over a worker pool, aggregates them into per-point statistics, and
// hands the experiment binaries ready-to-render series for every figure of
// Section 5 (and for the ablations DESIGN.md adds).
//
// Seeding discipline: every trial's generator is derived as
// StreamSeed(rootSeed, pointIndex, trialIndex), so any single cell of any
// figure can be reproduced in isolation, and results are independent of
// worker count and scheduling order.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/countsim"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Engine selects the simulation backend for a trial.
type Engine uint8

// The available engines.
const (
	// EngineAgent is the agent-level engine (internal/sim): every
	// scheduled encounter is walked explicitly. The default.
	EngineAgent Engine = iota
	// EngineCount is the count-based engine (internal/countsim): null
	// runs are skipped geometrically. Identical output distribution,
	// much faster on null-dominated workloads (large n, large k).
	EngineCount
)

// TrialSpec describes one simulation trial of the k-partition protocol.
type TrialSpec struct {
	N, K int
	Seed uint64
	// MaxInteractions caps the run (0 = engine default).
	MaxInteractions uint64
	// Grouping requests per-grouping interaction marks (Figure 4).
	Grouping bool
	// Engine selects the backend (default EngineAgent).
	Engine Engine
}

// TrialResult is the outcome of one trial.
type TrialResult struct {
	Spec         TrialSpec
	Interactions uint64
	Productive   uint64
	Converged    bool
	Spread       int
	// Marks holds NI_i (total interactions at the i-th grouping) when
	// Spec.Grouping was set.
	Marks []uint64
}

// protoCache shares immutable protocol tables across trials; building a
// table is O(k²) but there is no reason to do it 100 times per point.
type protoCache struct {
	mu sync.Mutex
	m  map[int]*core.Protocol
}

var cache = protoCache{m: make(map[int]*core.Protocol)}

// Proto returns the shared uniform k-partition protocol instance for k.
func Proto(k int) *core.Protocol {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if p, ok := cache.m[k]; ok {
		return p
	}
	p := core.MustNew(k)
	cache.m[k] = p
	return p
}

// RunTrial executes one trial to stability (or the interaction cap),
// recording per-trial metrics when a registry is installed (SetMetrics).
func RunTrial(spec TrialSpec) (TrialResult, error) {
	reg := Metrics()
	if !reg.Enabled() {
		return runTrial(spec)
	}
	start := time.Now()
	res, err := runTrial(spec)
	observeTrial(reg, res, err, time.Since(start))
	return res, err
}

func runTrial(spec TrialSpec) (TrialResult, error) {
	p := Proto(spec.K)
	target, err := p.TargetCounts(spec.N)
	if err != nil {
		return TrialResult{}, fmt.Errorf("harness: n=%d k=%d: %w", spec.N, spec.K, err)
	}
	if spec.Engine == EngineCount {
		return runCountTrial(p, spec)
	}
	pop := population.New(p, spec.N)
	opts := sim.Options{MaxInteractions: spec.MaxInteractions}
	var gc *sim.GroupingCounter
	if spec.Grouping {
		gc = &sim.GroupingCounter{Watch: p.G(spec.K)}
		opts.Hooks = []sim.Hook{gc}
	}
	res, err := sim.Run(pop, sched.NewRandom(spec.Seed), sim.NewCountTarget(p.CanonMap(), target), opts)
	if err != nil {
		return TrialResult{}, err
	}
	out := TrialResult{
		Spec:         spec,
		Interactions: res.Interactions,
		Productive:   res.Productive,
		Converged:    res.Converged,
		Spread:       res.Spread(),
	}
	if gc != nil {
		out.Marks = append([]uint64(nil), gc.Marks...)
	}
	return out, nil
}

// runCountTrial runs a trial on the count-based engine. Grouping marks are
// reconstructed from the gk count observed inside the stop predicate.
func runCountTrial(p *core.Protocol, spec TrialSpec) (TrialResult, error) {
	s, err := countsim.New(p, spec.N, spec.Seed)
	if err != nil {
		return TrialResult{}, err
	}
	maxI := spec.MaxInteractions
	if maxI == 0 {
		maxI = sim.DefaultMaxInteractions
	}
	gk := p.G(spec.K)
	var marks []uint64
	best := 0
	// Precompute the stable signature once; calling p.IsStable per
	// productive step would rebuild the target and canon slices each time
	// (it dominated the count-engine profile before this change).
	canon := p.CanonMap()
	target, err := p.TargetCounts(spec.N)
	if err != nil {
		return TrialResult{}, err
	}
	scratch := make([]int, len(target))
	pred := func(counts []int) bool {
		if spec.Grouping {
			if c := counts[gk]; c > best {
				for i := best; i < c; i++ {
					marks = append(marks, s.Interactions())
				}
				best = c
			}
		}
		for i := range scratch {
			scratch[i] = 0
		}
		for st, c := range counts {
			scratch[canon[st]] += c
		}
		for i := range scratch {
			if scratch[i] != target[i] {
				return false
			}
		}
		return true
	}
	ok, err := s.RunUntil(pred, maxI)
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{
		Spec:         spec,
		Interactions: s.Interactions(),
		Productive:   s.Productive(),
		Converged:    ok,
		Marks:        marks,
	}
	sizes := p.GroupSizesFromCounts(s.CountsView())
	min, max := sizes[0], sizes[0]
	for _, v := range sizes {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	res.Spread = max - min
	return res, nil
}

// RunMany executes specs over a worker pool and returns results in input
// order. workers <= 0 selects GOMAXPROCS. The first error aborts the batch
// (remaining workers drain).
func RunMany(specs []TrialSpec, workers int) ([]TrialResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]TrialResult, len(specs))
	errs := make([]error, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = RunTrial(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Point is one aggregated parameter point of an experiment.
type Point struct {
	N, K   int
	Trials int
	// Mean and CI95 are over interactions-to-stability of the trials.
	Mean float64
	CI95 float64
	Min  uint64
	Max  uint64
	// Median and P90 expose the run-length distribution's shape: the
	// stabilization time is heavy-tailed (a late m-m collision restarts
	// k chains), so the mean alone overstates the typical run.
	Median float64
	P90    float64
	// MeanDeltas[i] is the mean of NI'_(i+1) (per-grouping interaction
	// cost) over trials; only filled for grouping experiments. The last
	// entry is the mean remainder tail when n mod k != 0.
	MeanDeltas []float64
	// Unconverged counts trials that hit the interaction cap.
	Unconverged int
}

// Aggregate folds a point's trials into a Point.
func Aggregate(n, k int, trials []TrialResult) Point {
	pt := Point{N: n, K: k, Trials: len(trials)}
	if len(trials) == 0 {
		return pt
	}
	xs := make([]float64, 0, len(trials))
	pt.Min, pt.Max = trials[0].Interactions, trials[0].Interactions
	for _, tr := range trials {
		if !tr.Converged {
			pt.Unconverged++
			continue
		}
		xs = append(xs, float64(tr.Interactions))
		if tr.Interactions < pt.Min {
			pt.Min = tr.Interactions
		}
		if tr.Interactions > pt.Max {
			pt.Max = tr.Interactions
		}
	}
	pt.Mean = meanOf(xs)
	pt.CI95 = ci95Of(xs)
	if len(xs) > 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		pt.Median = stats.Quantile(sorted, 0.5)
		pt.P90 = stats.Quantile(sorted, 0.9)
	}

	// Per-grouping decomposition: average NI'_i across trials. Trials of
	// the same (n, k) all have the same number of groupings ⌊n/k⌋ and the
	// same presence of a remainder tail, so rows align.
	groupings := 0
	for _, tr := range trials {
		if len(tr.Marks) > groupings {
			groupings = len(tr.Marks)
		}
	}
	if groupings > 0 {
		withTail := groupings
		hasTail := n%k != 0
		if hasTail {
			withTail++
		}
		sums := make([]float64, withTail)
		counts := make([]int, withTail)
		for _, tr := range trials {
			if !tr.Converged || len(tr.Marks) == 0 {
				continue
			}
			deltas := (&sim.GroupingCounter{Marks: tr.Marks}).Deltas(tr.Interactions)
			for i, d := range deltas {
				if i < len(sums) {
					sums[i] += float64(d)
					counts[i]++
				}
			}
		}
		pt.MeanDeltas = make([]float64, withTail)
		for i := range sums {
			if counts[i] > 0 {
				pt.MeanDeltas[i] = sums[i] / float64(counts[i])
			}
		}
	}
	return pt
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ci95Of(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := meanOf(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sd := ss / float64(len(xs)-1)
	return 1.96 * math.Sqrt(sd/float64(len(xs)))
}

// SweepPoint runs `trials` trials at (n, k) and aggregates them. Seeds are
// derived from (seed, pointID, trial).
func SweepPoint(n, k, trials int, seed, pointID uint64, grouping bool, workers int, maxInteractions uint64, engine Engine) (Point, error) {
	specs := make([]TrialSpec, trials)
	for t := range specs {
		specs[t] = TrialSpec{
			N: n, K: k,
			Seed:            rng.StreamSeed(seed, pointID, uint64(t)),
			Grouping:        grouping,
			MaxInteractions: maxInteractions,
			Engine:          engine,
		}
	}
	results, err := RunMany(specs, workers)
	if err != nil {
		return Point{}, err
	}
	return Aggregate(n, k, results), nil
}
