package serve

import "testing"

// Tests may poke guarded state directly: no lockguard findings in
// _test.go files, so this file carries no want annotations.
func TestDirectPoke(t *testing.T) {
	var c counter
	c.n = 7
	if c.good() != 7 {
		t.Fatal("lost the direct write")
	}
}
