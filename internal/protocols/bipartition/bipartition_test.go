package bipartition

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestFourStates(t *testing.T) {
	p := New()
	if p.NumStates() != 4 {
		t.Fatalf("NumStates = %d, want 4 (space-optimal per OPODIS 2017)", p.NumStates())
	}
	if p.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", p.NumGroups())
	}
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := protocol.CheckSymmetric(p); !ok {
		t.Fatal("bipartition protocol not symmetric")
	}
}

// Cross-validate against the k = 2 instance of the paper's protocol:
// Section 4 says they are exactly the same protocol. Compare δ pointwise
// under the state correspondence (initial, initial', g1, g2) ~
// (initial, initial', r, b).
func TestMatchesKPartitionAtK2(t *testing.T) {
	bp := New()
	kp := core.MustNew(2)
	if bp.NumStates() != kp.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", bp.NumStates(), kp.NumStates())
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			ob, _ := bp.Delta(protocol.State(a), protocol.State(b))
			ok, _ := kp.Delta(protocol.State(a), protocol.State(b))
			if ob != ok {
				t.Errorf("delta(%d,%d): bipartition (%d,%d) vs k-partition (%d,%d)",
					a, b, ob.P, ob.Q, ok.P, ok.Q)
			}
		}
	}
	for s := 0; s < 4; s++ {
		if bp.Group(protocol.State(s)) != kp.Group(protocol.State(s)) {
			t.Errorf("f(%d) differs", s)
		}
	}
}

func TestStabilizesEvenOdd(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 11, 20, 33} {
		p := New()
		pop := population.New(p, n)
		stop := sim.NewCountTarget(p.CanonMap(), p.TargetCounts(n))
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(2, uint64(n))), stop,
			sim.Options{MaxInteractions: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d did not stabilize", n)
		}
		sizes := res.GroupSizes
		if sizes[0] != (n+1)/2 || sizes[1] != n/2 {
			t.Fatalf("n=%d: group sizes %v, want [%d %d]", n, sizes, (n+1)/2, n/2)
		}
	}
}

func TestTheorem1ExhaustiveBipartition(t *testing.T) {
	for n := 3; n <= 12; n++ {
		rep, err := explore.Check(New(), n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.LiveFromAll || !rep.Uniform || rep.Stable == 0 {
			t.Fatalf("n=%d: live=%v uniform=%v stable=%d", n, rep.LiveFromAll, rep.Uniform, rep.Stable)
		}
	}
}

func TestIsFree(t *testing.T) {
	p := New()
	if !p.IsFree(Initial) || !p.IsFree(InitialBar) || p.IsFree(R) || p.IsFree(B) {
		t.Fatal("IsFree misclassifies")
	}
}

func TestTargetCounts(t *testing.T) {
	p := New()
	even := p.TargetCounts(8)
	if even[0] != 0 || even[1] != 4 || even[2] != 4 {
		t.Fatalf("n=8 target %v", even)
	}
	odd := p.TargetCounts(9)
	if odd[0] != 1 || odd[1] != 4 || odd[2] != 4 {
		t.Fatalf("n=9 target %v", odd)
	}
}

func TestAsymmetric3Structure(t *testing.T) {
	p := NewAsymmetric3()
	if p.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3", p.NumStates())
	}
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
	// It must be asymmetric (that is the point): the diagonal rule splits.
	if _, ok := protocol.CheckSymmetric(p); ok {
		t.Fatal("asymmetric protocol reported symmetric")
	}
	out, fired := p.Delta(A3Initial, A3Initial)
	if !fired || out.P != A3R || out.Q != A3B {
		t.Fatalf("split rule: %v", out)
	}
}

func TestAsymmetric3Stabilizes(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10, 31} {
		p := NewAsymmetric3()
		pop := population.New(p, n)
		stop := sim.NewCountTarget(p.CanonMap(), p.TargetCounts(n))
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(8, uint64(n))), stop,
			sim.Options{MaxInteractions: 5_000_000})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d: %v %+v", n, err, res)
		}
		if res.GroupSizes[0] != (n+1)/2 || res.GroupSizes[1] != n/2 {
			t.Fatalf("n=%d: sizes %v", n, res.GroupSizes)
		}
		// Quiescent at stability (no handshake residue).
		q := sim.NewQuiescence(p)
		q.Init(pop)
		if !q.Satisfied() {
			t.Fatalf("n=%d: stable configuration not quiescent", n)
		}
	}
}

// Theorem-1-style exhaustive verification for the 3-state variant: every
// reachable configuration reaches a uniform frozen one.
func TestAsymmetric3Exhaustive(t *testing.T) {
	for n := 2; n <= 12; n++ {
		rep, err := explore.Check(NewAsymmetric3(), n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.LiveFromAll || !rep.Uniform || rep.Stable == 0 {
			t.Fatalf("n=%d: live=%v uniform=%v stable=%d", n, rep.LiveFromAll, rep.Uniform, rep.Stable)
		}
	}
}

// Unlike the symmetric protocol, the asymmetric variant solves n = 2
// (no symmetry to break).
func TestAsymmetric3SolvesN2(t *testing.T) {
	rep, err := explore.Check(NewAsymmetric3(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LiveFromAll || !rep.Uniform {
		t.Fatal("asymmetric bipartition failed at n=2")
	}
}
