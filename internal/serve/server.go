package serve

// The HTTP edge: routing, request decoding, per-endpoint metrics, and
// the streaming sweep handler. Wall-clock use (latency histograms,
// Retry-After) is legitimate here; result computation and caching are
// deterministic and live in pool.go/cache.go/spec.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Config assembles a Server. The zero value is usable: GOMAXPROCS
// workers, DefaultQueueDepth admission slots, DefaultCacheEntries cache
// entries, no journal, no metrics.
type Config struct {
	// Workers is the trial worker count (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	QueueDepth int
	// CacheEntries bounds the result LRU (0 = DefaultCacheEntries).
	CacheEntries int
	// Journal, when non-nil, persists completed trials and answers
	// lookups for results computed before a restart. The caller keeps
	// ownership (kpart-serve closes it after Shutdown).
	Journal *harness.Journal
	// Registry records per-endpoint and pool metrics; nil disables.
	Registry *obs.Registry
	// Spans collects request span trees (see internal/obs/span); nil
	// disables tracing entirely.
	Spans *span.Collector
	// RunOptions is the per-trial execution policy (timeout, retries).
	// Journal and Progress are ignored; the pool journals itself.
	RunOptions harness.RunOptions
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// MaxSweepTrials bounds one sweep request's expansion
	// (0 = DefaultMaxSweepTrials).
	MaxSweepTrials int
}

// Server is the HTTP simulation service. Create with New, expose
// Handler() on a listener, stop with Shutdown.
type Server struct {
	pool           *Pool
	predictions    *Cache
	journal        *harness.Journal
	reg            *obs.Registry
	spans          *span.Collector
	mux            *http.ServeMux
	retryAfter     time.Duration
	maxSweepTrials int
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Nop()
	}
	s := &Server{
		journal:        cfg.Journal,
		reg:            reg,
		spans:          cfg.Spans,
		mux:            http.NewServeMux(),
		retryAfter:     cfg.RetryAfter,
		maxSweepTrials: cfg.MaxSweepTrials,
	}
	if s.retryAfter <= 0 {
		s.retryAfter = time.Second
	}
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth, cfg.RunOptions, cfg.Journal, NewCache(cfg.CacheEntries), reg)
	s.predictions = NewCache(cfg.CacheEntries)
	s.mux.Handle("POST /v1/trials", s.instrument("trials", s.handleTrial))
	s.mux.Handle("POST /v1/sweeps", s.instrument("sweeps", s.handleSweep))
	s.mux.Handle("POST /v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.Handle("GET /v1/results/{speckey}", s.instrument("results", s.handleResult))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", reg.PrometheusHandler())
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the execution core (health introspection, tests).
func (s *Server) Pool() *Pool { return s.pool }

// Shutdown drains the server: in-flight trials are aborted through the
// context plumbing, queued jobs fail fast, and workers are awaited. The
// journal (if any) stays open — its owner closes it once the HTTP
// listener is down, so late handler lookups never race a closed file.
func (s *Server) Shutdown() { s.pool.Close() }

// instrument wraps an endpoint with its request counter and latency
// histogram (serve/http/<name>/requests, .../latency_us, and a
// per-status-class counter).
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	requests := s.reg.Counter("serve/http/" + name + "/requests")
	latency := s.reg.Histogram("serve/http/" + name + "/latency_us")
	classes := [6]obs.Counter{}
	for c := 2; c <= 5; c++ {
		classes[c] = s.reg.Counter(fmt.Sprintf("serve/http/%s/status_%dxx", name, c))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		latency.Observe(uint64(time.Since(start).Microseconds()))
		if c := sw.status / 100; c >= 2 && c <= 5 {
			classes[c].Inc()
		}
	})
}

// statusWriter captures the response status for the per-class counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: msg})
}

// maxRequestBody bounds request bodies; a trial or sweep spec is a few
// hundred bytes, so 1 MiB is generous and still refuses abuse.
const maxRequestBody = 1 << 20

// decodeJSON strictly decodes a bounded request body into v (unknown
// fields are rejected so spec typos fail loudly instead of running a
// default trial).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// cacheHeader is the response header reporting where a trial record
// came from: "miss" (freshly computed), "lru", or "journal".
const cacheHeader = "X-Kpart-Cache"

// startRequestSpan roots a request span for the trial identified by
// key. The trace ID is the client's X-Kpart-Trace value when present
// and valid, else the canonical spec-derived ID; both go through the
// collector's occurrence sequencer (a repeated ID becomes "id.2", so
// two requests never share one trace), and the response echoes the ID
// the trace was actually recorded under. With no collector configured,
// the returned span is nil and the whole downstream pipeline stays
// untraced. The returned finish func ends the span with the request's
// wall interval; call it exactly once.
func (s *Server) startRequestSpan(w http.ResponseWriter, r *http.Request, endpoint, key string) (*span.ActiveSpan, func()) {
	if s.spans == nil {
		return nil, func() {}
	}
	var tr *span.Trace
	if id := r.Header.Get(span.Header); id != "" && span.ValidID(id) {
		tr = s.spans.TraceForID(id)
	} else {
		tr = s.spans.TraceForSpec(key)
	}
	w.Header().Set(span.Header, tr.ID())
	root := tr.Root("request").
		SetAttr("endpoint", endpoint).
		SetAttr("speckey", key)
	sw := span.StartWall()
	return root, func() {
		sw.StopInto(root)
		root.End()
	}
}

// handleTrial: POST /v1/trials. Validate before admission; serve from
// the content-addressed store when possible; otherwise admit without
// blocking — a full queue is the client's backpressure signal.
func (s *Server) handleTrial(w http.ResponseWriter, r *http.Request) {
	var req TrialRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := harness.SpecKey(spec)
	root, finish := s.startRequestSpan(w, r, "trials", key)
	defer finish()
	if body, src, ok := s.pool.Lookup(key); ok {
		root.SetAttr("cache", src)
		writeRecord(w, src, body)
		return
	}
	job, err := s.pool.TrySubmit(spec, root)
	if err != nil {
		root.SetAttr("outcome", "rejected")
		s.writeAdmissionError(w, err)
		return
	}
	_, body, err := job.Wait(r.Context())
	if err != nil {
		root.SetAttr("outcome", "error")
		s.writeTrialError(w, err)
		return
	}
	root.SetAttr("cache", "miss")
	writeRecord(w, "miss", body)
}

// handleResult: GET /v1/results/{speckey}. Pure replay — never computes.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("speckey")
	body, src, ok := s.pool.Lookup(key)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "no completed trial under key "+key)
		return
	}
	writeRecord(w, src, body)
}

// handleSweep: POST /v1/sweeps. Streams one NDJSON Record per trial in
// trial order as results become available, then a trailer line with the
// aggregated point. Admission is blocking per trial (backpressure), so
// a sweep can never trip the queue into rejecting interactive trial
// requests for long.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	sweep, err := req.Sweep(s.maxSweepTrials)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	specs := sweep.Specs()

	// Pipeline: a submitter goroutine resolves or admits each spec in
	// order (blocking on queue space), fanning completions into
	// per-trial slots; the response loop streams slot i as soon as it
	// is ready, so results flow while later trials still compute.
	type slot struct {
		rec  Record
		body []byte
		err  error
	}
	slots := make([]chan slot, len(specs))
	for i := range slots {
		slots[i] = make(chan slot, 1)
	}
	go func() {
		for i, spec := range specs {
			key := harness.SpecKey(spec)
			if body, _, ok := s.pool.Lookup(key); ok {
				var rec Record
				if err := json.Unmarshal(body, &rec); err != nil {
					slots[i] <- slot{err: err}
					continue
				}
				slots[i] <- slot{rec: rec, body: body}
				continue
			}
			job, err := s.pool.Submit(r.Context(), spec, nil)
			if err != nil {
				slots[i] <- slot{err: err}
				continue
			}
			go func(i int, job *Job) {
				rec, body, err := job.Wait(r.Context())
				slots[i] <- slot{rec: rec, body: body, err: err}
			}(i, job)
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	results := make([]harness.TrialResult, 0, len(specs))
	for i := range slots {
		var out slot
		select {
		case out = <-slots[i]:
		case <-r.Context().Done():
			out = slot{err: r.Context().Err()}
		}
		if out.err != nil {
			// The stream is already flowing (status 200 is committed), so
			// the failure is reported in-band as an error line.
			line, _ := json.Marshal(errorDoc{Error: "sweep aborted at trial " + strconv.Itoa(i) + ": " + out.err.Error()})
			_, _ = w.Write(append(line, '\n'))
			return
		}
		_, _ = w.Write(append(out.body, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		results = append(results, out.rec.Result)
	}
	trailer := struct {
		Point harness.Point `json:"point"`
	}{harness.Aggregate(sweep.N, sweep.K, results)}
	line, err := json.Marshal(trailer)
	if err != nil {
		return
	}
	_, _ = w.Write(append(line, '\n'))
}

// healthDoc is the GET /healthz body.
type healthDoc struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCap      int    `json:"queue_cap"`
	Inflight      int    `json:"inflight"`
	CacheEntries  int    `json:"cache_entries"`
	JournalTrials int    `json:"journal_trials,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := healthDoc{
		Status:       "ok",
		Workers:      s.pool.Workers(),
		QueueDepth:   s.pool.Depth(),
		QueueCap:     s.pool.QueueCap(),
		Inflight:     s.pool.Inflight(),
		CacheEntries: s.pool.cache.Len(),
	}
	if s.pool.Closed() {
		doc.Status = "draining"
	}
	if s.journal != nil {
		doc.JournalTrials = s.journal.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// writeRecord sends a stored record with its cache-provenance header.
func writeRecord(w http.ResponseWriter, src string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, src)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

// writeAdmissionError maps pool admission failures to HTTP: a full
// queue is 429 with Retry-After (backpressure, not failure), a draining
// pool is 503.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		writeJSONError(w, http.StatusTooManyRequests, "admission queue is full; retry later")
	case errors.Is(err, ErrDraining):
		writeJSONError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeTrialError maps execution failures: invalid specs (should have
// been caught at validation) are 400, cancellation during drain is 503,
// anything else 500.
func (s *Server) writeTrialError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, harness.ErrInvalidSpec):
		writeJSONError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
		writeJSONError(w, http.StatusServiceUnavailable, "trial aborted: "+err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}
