package protocol

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders a protocol's non-null transition structure as a
// Graphviz digraph: one node per state (labelled, colored by group), one
// edge per ordered rule (p,q)→(p',q') drawn as p → p' annotated with the
// partner states. Useful for eyeballing small protocols and for the
// paper-style figure of Algorithm 1's state machine.
func WriteDot(w io.Writer, p Protocol) error {
	var sb strings.Builder
	sb.WriteString("digraph \"")
	sb.WriteString(escapeDot(p.Name()))
	sb.WriteString("\" {\n  rankdir=LR;\n  node [shape=ellipse, style=filled];\n")
	for s := 0; s < p.NumStates(); s++ {
		fill := groupColor(p.Group(State(s)), p.NumGroups())
		shape := ""
		if State(s) == p.InitialState() {
			shape = ", shape=doublecircle"
		}
		fmt.Fprintf(&sb, "  s%d [label=\"%s\\n(g%d)\", fillcolor=\"%s\"%s];\n",
			s, escapeDot(p.StateName(State(s))), p.Group(State(s)), fill, shape)
	}
	for _, r := range Rules(p) {
		if r.From.P != r.To.P {
			fmt.Fprintf(&sb, "  s%d -> s%d [label=\"with %s\"];\n",
				r.From.P, r.To.P, escapeDot(p.StateName(r.From.Q)))
		}
		if r.From.Q != r.To.Q {
			fmt.Fprintf(&sb, "  s%d -> s%d [label=\"with %s\", style=dashed];\n",
				r.From.Q, r.To.Q, escapeDot(p.StateName(r.From.P)))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeDot(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// groupColor assigns each group a distinct HSV hue (Graphviz accepts
// "H,S,V" color strings in [0,1]).
func groupColor(group, k int) string {
	if k <= 0 {
		k = 1
	}
	h := float64(group-1) / float64(k)
	return fmt.Sprintf("%.3f,0.25,1.0", h)
}
