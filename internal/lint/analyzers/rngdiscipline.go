package analyzers

import (
	"strconv"

	"repro/internal/lint"
)

// bannedRandImports are the randomness sources that bypass the repo's
// seeded, splittable generator.
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// rngPkg is the one package allowed to touch the stdlib generators: it
// wraps them behind the deterministic, seed-derived streams everything
// else consumes.
const rngPkg = modPath + "/internal/rng"

// RNGDiscipline confines math/rand and crypto/rand to internal/rng.
// Every random draw in a trial must come from the seed-derived stream
// so that (seed, spec) replays bit-for-bit; a stray math/rand import is
// a second, unseeded entropy source. _test.go files are exempt —
// throwaway generators in tests don't feed results.
var RNGDiscipline = &lint.Analyzer{
	Name: "rngdiscipline",
	Doc:  "math/rand and crypto/rand may be imported only by internal/rng and _test.go files",
	Run:  runRNGDiscipline,
}

func runRNGDiscipline(pass *lint.Pass) {
	if pass.Path == rngPkg {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !bannedRandImports[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s outside %s: draw randomness from the seeded internal/rng streams so runs replay from (seed, spec)",
				path, rngPkg)
		}
	}
}
