// Command kpart-twin-check is the analytical twin's accuracy gate: it
// holds the surrogate ladder (internal/twin) to its documented error
// budgets against the references committed in TWIN_baseline.json.
//
// The gate has two legs, one per rung:
//
//   - exact leg: the lumped chain is re-solved live and compared against
//     internal/markov's full-configuration chain, point by point; the
//     worst relative error across the mean, the std, and every milestone
//     must stay within twin.RelErrExact.
//
//   - sim leg: the mean-field rung is re-answered live and compared
//     against the committed multi-trial simulation summaries; the worst
//     error across the mean and the milestones (on the global timescale)
//     must stay within twin.RelErrFluid.
//
// Only predictions run at gate time — the expensive simulation side is
// replayed from the baseline file. `-write` regenerates that side
// deterministically (the root seed and trial count are committed with
// each point) after a legitimate change to the trial pipeline;
// `-report-only` prints the same comparison without failing, which is
// the flavor `make check` runs so tier-1 stays green while `make
// twin-check` stays a hard gate.
//
// Usage:
//
//	kpart-twin-check [-baseline TWIN_baseline.json] [-report-only]
//	kpart-twin-check -write [-trials 2000] [-seed 20260807]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/twin"
)

// gridPoint names one (n, k) of the exact leg; the reference is
// recomputed live, so nothing else needs committing.
type gridPoint struct {
	N int `json:"n"`
	K int `json:"k"`
}

// baselineDoc is the TWIN_baseline.json schema.
type baselineDoc struct {
	Version int `json:"version"`
	// Exact lists the points of the exact leg (lumped vs internal/markov,
	// both solved live at gate time).
	Exact []gridPoint `json:"exact"`
	// Sim holds the committed simulation references of the fluid leg.
	Sim []twin.BaselinePoint `json:"sim"`
}

// defaultExactGrid covers r = 0 and r > 0 for k = 2..4 at populations
// small enough for the full configuration chain — the same envelope the
// package tests use.
var defaultExactGrid = []gridPoint{
	{6, 2}, {7, 2}, {6, 3}, {7, 3}, {8, 3}, {9, 3}, {8, 4}, {9, 4},
}

// defaultSimGrid is the fluid leg's spec grid: populations beyond the
// markov reference across k = 2..5, all with milestones so the whole
// trajectory is gated, not just the endpoint.
var defaultSimGrid = []twin.Spec{
	{N: 60, K: 2, Milestones: true},
	{N: 90, K: 3, Milestones: true},
	{N: 150, K: 3, Milestones: true},
	{N: 120, K: 4, Milestones: true},
	{N: 100, K: 5, Milestones: true},
}

func main() {
	var (
		path       = flag.String("baseline", "TWIN_baseline.json", "baseline file to check against (or write)")
		reportOnly = flag.Bool("report-only", false, "print the comparison but always exit 0")
		write      = flag.Bool("write", false, "regenerate the simulation side of the baseline, then report")
		// 2000 trials put the references' 95% half-widths near 3% of the
		// mean — the stabilization time is heavy-tailed, and a reference
		// noisier than ~a third of the 10% budget would gate on luck. At
		// these populations regeneration still takes well under a minute.
		trials = flag.Int("trials", 2000, "-write: simulation trials per grid point")
		seed   = flag.Uint64("seed", 20260807, "-write: root seed for the reference trials")
	)
	flag.Parse()

	var doc baselineDoc
	if *write {
		d, err := generate(*trials, *seed)
		if err != nil {
			fatal(err)
		}
		doc = d
		if err := save(*path, doc); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *path)
	} else {
		b, err := os.ReadFile(*path)
		if err != nil {
			fatal(fmt.Errorf("reading baseline (run with -write to create it): %w", err))
		}
		if err := json.Unmarshal(b, &doc); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *path, err))
		}
	}

	violations := 0
	violations += checkExact(doc.Exact)
	violations += checkSim(doc.Sim)

	if violations > 0 {
		fmt.Printf("\ntwin-check: %d point(s) outside the error budget\n", violations)
		if !*reportOnly {
			os.Exit(1)
		}
		fmt.Println("(report-only: not failing the build)")
		return
	}
	fmt.Println("\ntwin-check: all points within budget")
}

// checkExact runs the exact leg and prints its table, returning the
// number of budget violations.
func checkExact(grid []gridPoint) int {
	fmt.Printf("Exact leg: lumped rung vs internal/markov (budget %.2g)\n", float64(twin.RelErrExact))
	tbl := report.NewTable("n", "k", "mean", "exact_mean", "max_rel_err", "verdict")
	bad := 0
	for _, g := range grid {
		rep, err := twin.CrossValidateExact(g.N, g.K)
		if err != nil {
			fatal(fmt.Errorf("exact leg n=%d k=%d: %w", g.N, g.K, err))
		}
		verdict := "ok"
		if rep.MaxRelErr > twin.RelErrExact {
			verdict = "FAIL"
			bad++
		}
		tbl.AddRow(g.N, g.K, rep.Mean, rep.ExactMean, rep.MaxRelErr, verdict)
	}
	tbl.WriteTo(os.Stdout)
	return bad
}

// checkSim runs the fluid leg against the committed references and
// prints its table, returning the number of budget violations.
func checkSim(points []twin.BaselinePoint) int {
	fmt.Printf("\nSim leg: mean-field rung vs committed trial summaries (budget %.2g)\n",
		float64(twin.RelErrFluid))
	tbl := report.NewTable("n", "k", "trials", "mean", "sim_mean", "sim_ci95", "rel_err", "verdict")
	model := twin.NewMeanField()
	bad := 0
	for _, bp := range points {
		rep, err := twin.CompareBaseline(model, bp)
		if err != nil {
			fatal(fmt.Errorf("sim leg n=%d k=%d: %w", bp.N, bp.K, err))
		}
		verdict := "ok"
		if rep.RelErr > twin.RelErrFluid {
			verdict = "FAIL"
			bad++
		}
		tbl.AddRow(bp.N, bp.K, bp.Trials, rep.Mean, rep.SimMean, rep.SimHalf95, rep.RelErr, verdict)
	}
	tbl.WriteTo(os.Stdout)
	return bad
}

// generate builds a fresh baseline: the exact grid is static (its
// references are recomputed at gate time) and the sim grid is simulated
// now, deterministically from (seed, trials).
func generate(trials int, seed uint64) (baselineDoc, error) {
	doc := baselineDoc{Version: 1, Exact: defaultExactGrid}
	for _, s := range defaultSimGrid {
		fmt.Printf("simulating n=%d k=%d (%d trials)...\n", s.N, s.K, trials)
		bp, err := twin.SimBaseline(s, trials, seed)
		if err != nil {
			return doc, fmt.Errorf("generating n=%d k=%d: %w", s.N, s.K, err)
		}
		doc.Sim = append(doc.Sim, bp)
	}
	return doc, nil
}

// save writes the baseline with stable formatting so regeneration diffs
// cleanly.
func save(path string, doc baselineDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		_ = f.Close() // the encode error is the one worth reporting
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-twin-check:", err)
	os.Exit(1)
}
