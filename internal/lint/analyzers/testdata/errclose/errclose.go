// Golden input for the errclose analyzer; loaded as
// "repro/internal/harness" so the persistence-path scope applies.
package persist

import (
	"bufio"
	"os"
	"strings"
)

func Bad(f *os.File, w *bufio.Writer) {
	f.Close() // want `error from Close\(\) is silently dropped`
	w.Flush() // want `error from Flush\(\)`
	f.Sync()  // want `error from Sync\(\)`
}

func BadWrite(w *bufio.Writer, p []byte) {
	w.Write(p)         // want `error from Write\(\)`
	w.WriteString("x") // want `error from WriteString\(\)`
}

func Good(f *os.File, w *bufio.Writer) error {
	defer f.Close() // deferred closes are exempt (idiomatic read path)
	if err := w.Flush(); err != nil {
		return err
	}
	_ = f.Sync() // explicit discard is visible in review; allowed
	return nil
}

// A Close that returns nothing has no error to drop.
type quietCloser struct{}

func (quietCloser) Close() {}

func GoodNoError(q quietCloser) { q.Close() }

// strings.Builder's Write* methods are documented to never return a
// non-nil error, so bare statement calls on one are fine.
func GoodBuilder(s string) string {
	var b strings.Builder
	b.WriteString(s)
	b.Write([]byte(s))
	pb := &b
	pb.WriteString("tail")
	return b.String()
}
