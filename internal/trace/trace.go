// Package trace records executions as sequences of interaction events,
// serializes them as JSON Lines, and replays them against a fresh
// population. Replay validation is the debugging backstop: any divergence
// between a recorded run and its replay indicates nondeterminism leaking
// into the engine (e.g. map iteration order reaching a scheduler).
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Event is one recorded interaction.
type Event struct {
	// Step is 1-based interaction index.
	Step uint64 `json:"t"`
	// I, J are the interacting agents (initiator, responder).
	I int `json:"i"`
	J int `json:"j"`
	// BeforeP/Q and AfterP/Q are the states around the interaction.
	BeforeP protocol.State `json:"bp"`
	BeforeQ protocol.State `json:"bq"`
	AfterP  protocol.State `json:"ap"`
	AfterQ  protocol.State `json:"aq"`
}

// Header opens a trace stream and pins the run's parameters.
type Header struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	States   int    `json:"states"`
}

// Recorder is a sim.Hook that appends every interaction to an in-memory
// trace. For very long runs, prefer Writer, which streams.
type Recorder struct {
	Header Header
	Events []Event
}

// Init implements sim.Hook.
func (r *Recorder) Init(pop *population.Population) {
	r.Header = Header{
		Protocol: pop.Protocol().Name(),
		N:        pop.N(),
		States:   pop.Protocol().NumStates(),
	}
	r.Events = r.Events[:0]
}

// OnStep implements sim.Hook.
func (r *Recorder) OnStep(pop *population.Population, s sim.StepInfo) {
	r.Events = append(r.Events, Event{
		Step:    pop.Interactions(),
		I:       s.I,
		J:       s.J,
		BeforeP: s.Before.P,
		BeforeQ: s.Before.Q,
		AfterP:  s.After.P,
		AfterQ:  s.After.Q,
	})
}

// Encode writes the trace as JSON Lines: one header line, then one line
// per event.
func (r *Recorder) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(r.Header); err != nil {
		return err
	}
	for i := range r.Events {
		if err := enc.Encode(&r.Events[i]); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a JSONL trace.
func Decode(rd io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, errors.New("trace: empty stream")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("trace: bad header: %w", err)
	}
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return hdr, events, fmt.Errorf("trace: bad event %d: %w", len(events)+1, err)
		}
		events = append(events, e)
	}
	return hdr, events, sc.Err()
}

// ErrDiverged is returned by Replay when the trace does not match the
// protocol's dynamics.
var ErrDiverged = errors.New("trace: replay diverged")

// Replay re-executes a trace against proto from the all-initial
// configuration, verifying every event's before/after states. It returns
// the final population.
func Replay(proto protocol.Protocol, hdr Header, events []Event) (*population.Population, error) {
	if hdr.States != proto.NumStates() {
		return nil, fmt.Errorf("%w: trace has %d states, protocol %d", ErrDiverged, hdr.States, proto.NumStates())
	}
	pop := population.New(proto, hdr.N)
	for idx, e := range events {
		if e.I < 0 || e.I >= hdr.N || e.J < 0 || e.J >= hdr.N || e.I == e.J {
			return nil, fmt.Errorf("%w: event %d has invalid pair (%d,%d)", ErrDiverged, idx, e.I, e.J)
		}
		if pop.State(e.I) != e.BeforeP || pop.State(e.J) != e.BeforeQ {
			return nil, fmt.Errorf("%w: event %d expected states (%d,%d), population has (%d,%d)",
				ErrDiverged, idx, e.BeforeP, e.BeforeQ, pop.State(e.I), pop.State(e.J))
		}
		pop.Interact(e.I, e.J)
		if pop.State(e.I) != e.AfterP || pop.State(e.J) != e.AfterQ {
			return nil, fmt.Errorf("%w: event %d produced (%d,%d), trace says (%d,%d)",
				ErrDiverged, idx, pop.State(e.I), pop.State(e.J), e.AfterP, e.AfterQ)
		}
	}
	return pop, nil
}

// Writer streams events to an io.Writer as they happen; it implements
// sim.Hook. Errors are latched and reported by Err (hooks cannot fail the
// engine).
type Writer struct {
	W   io.Writer
	enc *json.Encoder
	err error
}

// Init implements sim.Hook; it writes the header line.
func (w *Writer) Init(pop *population.Population) {
	w.enc = json.NewEncoder(w.W)
	w.err = w.enc.Encode(Header{
		Protocol: pop.Protocol().Name(),
		N:        pop.N(),
		States:   pop.Protocol().NumStates(),
	})
}

// OnStep implements sim.Hook.
func (w *Writer) OnStep(pop *population.Population, s sim.StepInfo) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(Event{
		Step:    pop.Interactions(),
		I:       s.I,
		J:       s.J,
		BeforeP: s.Before.P,
		BeforeQ: s.Before.Q,
		AfterP:  s.After.P,
		AfterQ:  s.After.Q,
	})
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }
