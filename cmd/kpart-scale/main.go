// Command kpart-scale runs the uniform k-partition protocol at scales the
// agent-level engine (and the paper's own evaluation) does not reach,
// using the count-based engine with geometric null-run skipping
// (internal/countsim): populations are limited by time-to-stability, not
// by memory, and the null-dominated tail is sampled in closed form.
//
// Usage:
//
//	kpart-scale -n 100000 -k 8 -trials 5 [-seed 1]
//	kpart-scale -n 960 -k 16,20,24 -trials 10     # extend Figure 6
//	kpart-scale -n 100000000 -k 8 -engine batch   # planet scale: batched engine, ~1s/trial
//	kpart-scale -n 1000000 -k 8 -progress 100000000 -debug-addr :6060
//	kpart-scale -n 10000000 -k 8 -journal scale.journal -trial-timeout 2h -retries 1
//	kpart-scale -n 10000000 -k 8 -journal scale.journal -resume   # after a crash/SIGINT
//
// Scenario runs (restricted topologies, the weak-fairness adversary,
// churn) use the agent engine — identities matter on a graph — so they
// do not reach count-engine scales, but they reuse the same journal,
// resume, and JSON plumbing:
//
//	kpart-scale -n 600 -k 3 -topology ring -trials 20      # freeze-rate survey
//	kpart-scale -n 12 -k 3 -fairness weak -max 1000000     # adversary stall probe
//	kpart-scale -n 600 -k 3 -churn at=5000,events=3,every=5000,leave=2,crash
//
// Scenario trials may legitimately not converge (frozen configurations,
// adversarial stalls); they are reported per-outcome instead of
// aborting the run.
//
// Wall time is reported per trial as min/median/p90/max (the
// stabilization-time distribution is heavy-tailed, so a mean alone
// misleads); -json writes the full per-trial data machine-readably.
//
// Trials at this scale run for hours, so the binary is interruptible:
// with -journal each completed trial is checkpointed, SIGINT drains
// gracefully, and -resume skips everything already journaled (resumed
// trials reuse their recorded wall times in the summary).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

// trialRecord is one trial's outcome in the JSON output.
type trialRecord struct {
	Trial        int     `json:"trial"`
	Seed         uint64  `json:"seed"`
	Interactions uint64  `json:"interactions"`
	Productive   uint64  `json:"productive"`
	WallMS       float64 `json:"wall_ms"`
	Resumed      bool    `json:"resumed,omitempty"`
	Attempts     int     `json:"attempts,omitempty"`
	// Scenario outcome fields: scenario trials may end frozen (or burn
	// the cap) instead of converging, and churn changes the final size.
	Converged bool `json:"converged,omitempty"`
	Frozen    bool `json:"frozen,omitempty"`
	FinalN    int  `json:"final_n,omitempty"`
}

// pointDoc aggregates one (n, k) point in the JSON output.
type pointDoc struct {
	N                int           `json:"n"`
	K                int           `json:"k"`
	Trials           int           `json:"trials"`
	MeanInteractions float64       `json:"mean_interactions"`
	CI95             float64       `json:"ci95"`
	MeanProductive   float64       `json:"mean_productive"`
	SkipFactor       float64       `json:"skip_factor"`
	Converged        int           `json:"converged,omitempty"`
	Frozen           int           `json:"frozen,omitempty"`
	WallMS           wallSummary   `json:"wall_ms"`
	PerTrial         []trialRecord `json:"per_trial"`
}

// wallSummary is the per-trial wall-time distribution in milliseconds.
type wallSummary struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// resultDoc is the top-level JSON document.
type resultDoc struct {
	Command   string     `json:"command"`
	Seed      uint64     `json:"seed"`
	CreatedAt string     `json:"created_at"`
	Resumed   int        `json:"resumed_trials,omitempty"`
	Points    []pointDoc `json:"points"`
}

func main() {
	var (
		n            = flag.Int("n", 100000, "population size")
		ksFlag       = flag.String("k", "8", "comma-separated group counts")
		trials       = flag.Int("trials", 5, "trials per k")
		seed         = flag.Uint64("seed", 1, "root seed")
		jsonPath     = flag.String("json", "", "write per-trial results as JSON to this file")
		debugAddr    = flag.String("debug-addr", "", "serve pprof and /debug/vars on this address (e.g. :6060)")
		progressN    = flag.Uint64("progress", 0, "interactions between live progress reports (0 = off)")
		journalPath  = flag.String("journal", "", "checkpoint completed trials to this journal file")
		resume       = flag.Bool("resume", false, "resume from -journal, skipping already-completed trials")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall deadline (0 = none); timed-out trials retry under derived seeds")
		retries      = flag.Int("retries", 0, "extra attempts for transiently failed trials")
		engineFlag   = flag.String("engine", "count", "count engine: count (sequential, exact distribution) or batch (aggregated batches, approximate interaction totals, fastest); scenario flags switch to agent")
		batchSize    = flag.Uint64("batch", 0, "batch engine: fixed matching size per batch (0 = adaptive aggregate mode)")
		topoFlag     = flag.String("topology", "", "interaction graph: complete (default), ring, star, grid:RxC, regular:D[@SEED]")
		fairFlag     = flag.String("fairness", "", "scheduler family: uniform (default) or weak (adversary)")
		churnFlag    = flag.String("churn", "", "join/leave schedule, e.g. at=5000,events=2,every=5000,leave=1,crash")
		maxIFlag     = flag.Uint64("max", 0, "interaction cap per trial (0 = unbounded; scenario runs default to 50M)")
	)
	flag.Parse()

	eng, err := harness.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	topo, err := harness.ParseTopology(*topoFlag)
	if err != nil {
		fatal(err)
	}
	fair, err := harness.ParseFairness(*fairFlag)
	if err != nil {
		fatal(err)
	}
	churn, err := harness.ParseChurn(*churnFlag)
	if err != nil {
		fatal(err)
	}
	// Scenario dimensions need agent identities, so they flip the default
	// engine to agent; an explicit -engine count/batch is then an error
	// rather than a silent override.
	scenario := !topo.IsComplete() || fair == harness.FairnessWeak || churn.Enabled()
	engineSet := false
	flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })
	if scenario {
		if engineSet && eng != harness.EngineAgent {
			fatal(fmt.Errorf("-topology/-fairness/-churn need the agent engine, not %s", eng))
		}
		eng = harness.EngineAgent
	} else if eng == harness.EngineAgent {
		fatal(errors.New("kpart-scale is count-based; -engine must be count or batch (agent is only for scenario runs)"))
	}
	if *batchSize != 0 && eng != harness.EngineBatch {
		fatal(errors.New("-batch requires -engine batch"))
	}
	maxI := *maxIFlag
	if maxI == 0 {
		maxI = 1 << 62
		if scenario {
			// Scenario trials can stall forever by design (adversaries,
			// trapped configurations the freeze detector cannot prove), so
			// an unbounded default would hang the survey.
			maxI = 50_000_000
		}
	}

	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kpart-scale: debug server on http://%s/debug/pprof\n", ln.Addr())
	}

	var ks []int
	for _, part := range strings.Split(*ksFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 2 {
			fatal(fmt.Errorf("bad k %q", part))
		}
		ks = append(ks, k)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // second signal kills the process the default way
	}()

	opts := harness.RunOptions{
		TrialTimeout: *trialTimeout,
		Retries:      *retries,
		Progress:     *progressN,
	}
	var j *harness.Journal
	if *resume && *journalPath == "" {
		fatal(errors.New("-resume requires -journal"))
	}
	if *journalPath != "" {
		meta := fmt.Sprintf("kpart-scale n=%d k=%s trials=%d seed=%d engine=%s batch=%d topo=%s fair=%s churn=%s max=%d",
			*n, *ksFlag, *trials, *seed, eng, *batchSize, topo, fair, churn, maxI)
		var err error
		if *resume {
			j, err = harness.OpenJournal(*journalPath, meta)
		} else {
			j, err = harness.CreateJournal(*journalPath, meta)
		}
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		if *resume && j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "kpart-scale: resuming, %d trials already journaled in %s\n", j.Len(), *journalPath)
		}
	}

	doc := resultDoc{
		Command:   strings.Join(os.Args, " "),
		Seed:      *seed,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	cols := []string{"n", "k", "trials", "mean_interactions", "ci95",
		"mean_productive", "skip_factor", "wall_min", "wall_median", "wall_p90", "wall_max"}
	if scenario {
		cols = append(cols, "converged", "frozen")
	}
	tbl := report.NewTable(cols...)
	for ki, k := range ks {
		var xs, wallMS []float64
		var productive, interactions uint64
		pt := pointDoc{N: *n, K: k, Trials: *trials}
		for t := 0; t < *trials; t++ {
			spec := harness.TrialSpec{
				N: *n, K: k,
				Seed:            rng.StreamSeed(*seed, uint64(ki), uint64(t)),
				MaxInteractions: maxI,
				Engine:          eng,
				BatchSize:       *batchSize,
				Topology:        topo,
				Fairness:        fair,
				Churn:           churn,
			}
			var res harness.TrialResult
			var wall time.Duration
			resumed := false
			if j != nil {
				if e, ok := j.Lookup(spec); ok {
					res, wall, resumed = e.Result, time.Duration(e.WallUS)*time.Microsecond, true
					doc.Resumed++
				}
			}
			if !resumed {
				start := time.Now()
				r, err := harness.RunTrialCtx(ctx, spec, opts)
				wall = time.Since(start)
				if err != nil {
					if errors.Is(err, context.Canceled) {
						interrupted(j)
					}
					fatal(err)
				}
				if !r.Converged && !scenario {
					fatal(fmt.Errorf("n=%d k=%d trial %d did not stabilize", *n, k, t))
				}
				res = r
				if j != nil {
					if err := j.Append(spec, res, wall); err != nil {
						fatal(err)
					}
				}
			}
			xs = append(xs, float64(res.Interactions))
			wallMS = append(wallMS, float64(wall)/float64(time.Millisecond))
			interactions += res.Interactions
			productive += res.Productive
			rec := trialRecord{
				Trial: t, Seed: spec.Seed,
				Interactions: res.Interactions, Productive: res.Productive,
				WallMS:  float64(wall) / float64(time.Millisecond),
				Resumed: resumed, Attempts: res.Attempts,
			}
			// Outcome fields only matter when trials can fail to converge;
			// non-scenario runs abort on the first unconverged trial, so
			// the fields would be constant noise there.
			if scenario {
				rec.Converged, rec.Frozen, rec.FinalN = res.Converged, res.Frozen, res.FinalN
				if res.Converged {
					pt.Converged++
				}
				if res.Frozen {
					pt.Frozen++
				}
			}
			pt.PerTrial = append(pt.PerTrial, rec)
		}
		pt.MeanInteractions = stats.Mean(xs)
		pt.CI95 = stats.CI95(xs)
		pt.MeanProductive = float64(productive) / float64(*trials)
		pt.SkipFactor = float64(interactions) / float64(productive)
		pt.WallMS = wallSummary{
			Min:    stats.QuantileOf(wallMS, 0),
			Median: stats.QuantileOf(wallMS, 0.5),
			P90:    stats.QuantileOf(wallMS, 0.9),
			Max:    stats.QuantileOf(wallMS, 1),
			Mean:   stats.Mean(wallMS),
		}
		doc.Points = append(doc.Points, pt)
		row := []any{*n, k, *trials, pt.MeanInteractions, pt.CI95,
			pt.MeanProductive, pt.SkipFactor,
			ms(pt.WallMS.Min), ms(pt.WallMS.Median), ms(pt.WallMS.P90), ms(pt.WallMS.Max)}
		if scenario {
			row = append(row, pt.Converged, pt.Frozen)
		}
		tbl.AddRow(row...)
	}
	switch {
	case scenario:
		fmt.Printf("agent engine, scenario: topology=%s fairness=%s churn=%s cap=%d\n", topo, fair, churn, maxI)
	case eng == harness.EngineBatch:
		fmt.Println("batched count engine (bulk sampled batches; interaction totals approximate in adaptive mode)")
	default:
		fmt.Println("count-based engine (exact distribution, null runs skipped geometrically)")
	}
	tbl.WriteTo(os.Stdout)
	if doc.Resumed > 0 {
		fmt.Printf("(%d of %d trials resumed from journal)\n", doc.Resumed, len(ks)**trials)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *jsonPath)
	}
}

// interrupted reports a graceful SIGINT drain and exits 130.
func interrupted(j *harness.Journal) {
	if j != nil {
		if err := j.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kpart-scale: closing journal: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "kpart-scale: interrupted; completed trials saved in %s — rerun with -resume to continue\n", j.Path())
	} else {
		fmt.Fprintln(os.Stderr, "kpart-scale: interrupted (run with -journal to make runs resumable)")
	}
	os.Exit(130)
}

// ms renders a millisecond quantity as a duration string.
func ms(v float64) string {
	return time.Duration(v * float64(time.Millisecond)).Round(time.Millisecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-scale:", err)
	os.Exit(1)
}
