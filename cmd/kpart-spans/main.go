// Command kpart-spans renders span JSONL exports (kpart-serve
// -trace-out, or any internal/obs/span collector sink) for humans:
// per-trace tree views with logical (interaction-count) and wall
// intervals, the critical path through each trace, and a per-name
// rollup attributing where the time went across all traces.
//
// Usage:
//
//	kpart-spans [-trace ID] [-critical] [-rollup] [-no-wall] spans.jsonl
//	cat spans.jsonl | kpart-spans
//
// The default output is the tree view. All views are deterministic:
// spans order by (trace, id), never by arrival, so two exports of the
// same deterministic pipeline render identically (modulo wall stamps,
// which -no-wall suppresses for byte-comparable output).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs/span"
)

func main() {
	var (
		traceID  = flag.String("trace", "", "render only this trace ID")
		critical = flag.Bool("critical", false, "show each trace's critical path")
		rollup   = flag.Bool("rollup", false, "show the per-name cost rollup")
		noWall   = flag.Bool("no-wall", false, "suppress wall stamps (deterministic output)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kpart-spans [-trace ID] [-critical] [-rollup] [-no-wall] [spans.jsonl]")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	default:
		flag.Usage()
		os.Exit(2)
	}

	spans, err := span.ReadJSONL(in)
	if err != nil {
		fatal(err)
	}
	if *traceID != "" {
		kept := spans[:0]
		for _, s := range spans {
			if s.Trace == *traceID {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if len(spans) == 0 {
		fmt.Println("no spans")
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	trees := span.BuildTrees(spans)
	if !*critical && !*rollup {
		for _, tree := range trees {
			fmt.Fprintf(w, "trace %s\n", tree.Trace)
			for _, root := range tree.Roots {
				renderNode(w, root, 1, *noWall)
			}
		}
	}
	if *critical {
		for _, tree := range trees {
			for _, root := range tree.Roots {
				path := span.CriticalPath(root)
				var names []string
				var cost uint64
				for _, n := range path {
					names = append(names, n.Span.Name)
				}
				cost = span.Cost(path[len(path)-1].Span)
				fmt.Fprintf(w, "trace %s critical: %s (leaf cost %d)\n",
					tree.Trace, strings.Join(names, " -> "), cost)
			}
		}
	}
	if *rollup {
		fmt.Fprintf(w, "%-24s %8s %14s %14s\n", "name", "count", "wall_us", "interactions")
		for _, st := range span.Rollup(spans) {
			fmt.Fprintf(w, "%-24s %8d %14d %14d\n", st.Name, st.Count, st.WallDurUS, st.SeqDelta)
		}
	}
}

// renderNode prints one span line and recurses into its children.
func renderNode(w io.Writer, n *span.Node, depth int, noWall bool) {
	s := n.Span
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%s]", strings.Repeat("  ", depth), s.Name, s.ID)
	if s.EndSeq > s.StartSeq {
		fmt.Fprintf(&b, " seq=%d..%d (%d)", s.StartSeq, s.EndSeq, s.EndSeq-s.StartSeq)
	}
	if !noWall && s.WallDurUS > 0 {
		fmt.Fprintf(&b, " wall=%dus", s.WallDurUS)
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w, b.String())
	for _, c := range n.Children {
		renderNode(w, c, depth+1, noWall)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-spans:", err)
	os.Exit(2)
}
