package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("n", "interactions", "spread")
	tb.AddRow(12, 345.678, 1)
	tb.AddRow(120, 45678.9, 0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("no separator line:\n%s", out)
	}
	// Header and rows must render all columns.
	if !strings.Contains(lines[0], "interactions") || !strings.Contains(lines[2], "345.7") {
		t.Fatalf("content missing:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1200:    "1200",
		1234.56: "1234.6",
		0.125:   "0.125",
		-42:     "-42",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(`x,y`, `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestLineChartRendersSeries(t *testing.T) {
	c := &LineChart{
		Title:  "fig",
		XLabel: "n",
		YLabel: "interactions",
		Width:  40,
		Height: 10,
		Series: []Series{
			{Name: "k=4", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
			{Name: "k=6", X: []float64{1, 2, 3}, Y: []float64{15, 30, 60}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "k=4") || !strings.Contains(out, "k=6") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing markers:\n%s", out)
	}
}

func TestLineChartLogY(t *testing.T) {
	c := &LineChart{
		LogY:   true,
		Width:  30,
		Height: 8,
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{10, 1000, 100000}}},
	}
	out := c.String()
	if !strings.Contains(out, "1e+05") && !strings.Contains(out, "100000") {
		t.Fatalf("log chart label missing:\n%s", out)
	}
	// Non-positive y values must be skipped, not crash.
	c.Series[0].Y[0] = 0
	_ = c.String()
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{Title: "t"}
	if out := c.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart:\n%s", out)
	}
}

func TestLineChartConstantAxes(t *testing.T) {
	c := &LineChart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}},
	}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestStackedBars(t *testing.T) {
	s := &StackedBars{
		Title:    "fig4",
		XLabel:   "n",
		Segments: []string{"1st", "2nd", "3rd"},
		X:        []float64{8, 12},
		Values:   [][]float64{{10, 20}, {10, 20, 40}},
		Width:    20,
	}
	out := s.String()
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "total 70") {
		t.Fatalf("stacked bars:\n%s", out)
	}
	if !strings.Contains(out, "1st") || !strings.Contains(out, "3rd") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestStackedBarsAllZero(t *testing.T) {
	s := &StackedBars{X: []float64{1}, Values: [][]float64{{0}}}
	_ = s.String() // must not divide by zero
}

func TestWriteCSVPlain(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x,y\n1,2\n3,4\n" {
		t.Fatalf("got %q", sb.String())
	}
}
