package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// CtxFlow enforces the cancellation invariant PR 2 established by hand:
// every function reachable (over the call graph, goroutine launches
// included) from harness's context-threaded entry points
// (exported *Ctx functions) or from serve's HTTP handlers that contains
// an unbounded loop or a blocking channel operation must both be able
// to receive a context.Context (parameter, context-carrying struct
// parameter or receiver, *http.Request, or closure over one) and poll
// it (ctx.Err()/ctx.Done() directly, or by calling something that
// does). A trial capped at 10^16 interactions that misses one poll in
// one loop is uncancellable in exactly the way this check makes
// structural.
//
// Scope: the check only fires for functions living in the packages that
// carry the invariant (harness, serve, sim, countsim, obs, obs/span).
// Reachable code elsewhere — e.g. internal/rng's rejection samplers,
// whose for-loops terminate with probability 1 after a handful of
// draws — is deliberately out of scope.
var CtxFlow = &lint.Analyzer{
	Name:            "ctxflow",
	Doc:             "functions reachable from RunTrialCtx/serve handlers with unbounded loops or blocking channel ops must accept and poll a context.Context",
	Applies:         ctxflowScope,
	Run:             func(*lint.Pass) {},
	RunProgram:      runCtxFlowProgram,
	Interprocedural: true,
}

func ctxflowScope(path string) bool {
	for _, suf := range []string{"/harness", "/serve", "/sim", "/countsim", "/obs", "/obs/span"} {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func runCtxFlowProgram(pp *lint.ProgramPass) {
	g := pp.Program.Graph

	// Roots: harness's exported *Ctx entry points and serve's HTTP
	// handlers, identified structurally so golden fixtures under
	// testdata import paths work exactly like the real tree.
	var roots []*lint.Func
	rootOf := make(map[*lint.Func]*lint.Func)
	for _, fn := range g.Funcs {
		if fn.Decl == nil || fn.Obj == nil || pp.InTestFile(fn.Pos()) {
			continue
		}
		path := fn.Pkg.Path
		isRoot := false
		switch {
		case strings.HasSuffix(path, "/harness"):
			isRoot = fn.Obj.Exported() && strings.HasSuffix(fn.Obj.Name(), "Ctx")
		case strings.HasSuffix(path, "/serve"):
			isRoot = isHandlerSig(fn.Sig())
		}
		if isRoot {
			roots = append(roots, fn)
		}
	}

	// Reachability with provenance (which root reached the function, for
	// the diagnostic).
	queue := append([]*lint.Func(nil), roots...)
	for _, r := range roots {
		rootOf[r] = r
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range g.Callees(f) {
			if e.Callee != nil && rootOf[e.Callee] == nil {
				rootOf[e.Callee] = rootOf[f]
				queue = append(queue, e.Callee)
			}
		}
	}

	pollers := pollingFuncs(pp, g)

	fns := make([]*lint.Func, 0, len(rootOf))
	for fn := range rootOf {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Key() < fns[j].Key() })
	for _, fn := range fns {
		if fn.Body() == nil || pp.InTestFile(fn.Pos()) || !ctxflowScope(fn.Pkg.Path) {
			continue
		}
		blocks := blockingConstructs(fn)
		if len(blocks) == 0 {
			continue
		}
		root := rootOf[fn].Name()
		if !acceptsCtx(fn) {
			for _, b := range blocks {
				pp.Reportf(b.pos, "%s is reachable from %s and contains a %s but cannot receive a context.Context; accept ctx (parameter, context-carrying struct, or *http.Request)", fn.Name(), root, b.what)
			}
			continue
		}
		if !pollers[fn] {
			for _, b := range blocks {
				pp.Reportf(b.pos, "%s is reachable from %s and contains a %s but never polls its context (ctx.Err()/ctx.Done(), directly or via a callee); cancellation cannot interrupt it", fn.Name(), root, b.what)
			}
		}
	}
}

// pollingFuncs computes the functions that poll a context: those that
// select .Err or .Done on a context.Context-typed expression, closed
// under "calls a polling function" (static, dynamic, and interface
// edges; a launch via go does not make the launcher polled).
func pollingFuncs(pp *lint.ProgramPass, g *lint.CallGraph) map[*lint.Func]bool {
	polls := make(map[*lint.Func]bool)
	for _, fn := range g.Funcs {
		if fn.Body() != nil && pollsDirectly(fn) {
			polls[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			if polls[fn] {
				continue
			}
			for _, e := range g.Callees(fn) {
				if e.Kind == lint.CallGo {
					continue
				}
				if polls[e.Callee] {
					polls[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return polls
}

func pollsDirectly(fn *lint.Func) bool {
	found := false
	inspectSkippingLits(fn.Body(), func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return
		}
		if isContextType(fn.Pkg.Info.TypeOf(sel.X)) {
			found = true
		}
	})
	return found
}

// acceptsCtx reports whether the function can receive a context: a
// context.Context parameter, a parameter or receiver whose struct type
// carries a context.Context field, an *http.Request parameter, or (for
// literals) an enclosing function that accepts one.
func acceptsCtx(fn *lint.Func) bool {
	if sig := fn.Sig(); sig != nil {
		if recv := sig.Recv(); recv != nil && carriesCtx(recv.Type()) {
			return true
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if carriesCtx(params.At(i).Type()) {
				return true
			}
		}
	}
	if fn.Parent != nil {
		return acceptsCtx(fn.Parent)
	}
	return false
}

// carriesCtx reports whether t is context.Context, *http.Request, or a
// (pointer to) struct with a context.Context field.
func carriesCtx(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) || typePathString(t) == "*net/http.Request" {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return t != nil && typePathString(t) == "context.Context"
}

func typePathString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Path() })
}

// blockingConstruct is one potentially-unbounded wait in a function.
type blockingConstruct struct {
	pos  token.Pos
	what string
}

// blockingConstructs lists the unbounded loops and blocking channel
// operations directly in fn's body (function literals are their own
// call-graph nodes and are inspected separately). A send/receive that
// is the communication of a select case is charged to the select; a
// select with a default case never blocks.
func blockingConstructs(fn *lint.Func) []blockingConstruct {
	info := fn.Pkg.Info
	// Communication clauses of selects are governed by their select.
	comm := make(map[ast.Node]bool)
	inspectSkippingLits(fn.Body(), func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				comm[cc.Comm] = true
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						comm[u] = true
					}
					return true
				})
			}
		}
	})

	var out []blockingConstruct
	add := func(pos token.Pos, what string) {
		out = append(out, blockingConstruct{pos: pos, what: what})
	}
	inspectSkippingLits(fn.Body(), func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				add(n.Pos(), "loop with no condition")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					add(n.Pos(), "range over a channel")
				}
			}
		case *ast.SendStmt:
			if !comm[n] {
				add(n.Pos(), "blocking channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm[n] {
				add(n.Pos(), "blocking channel receive")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				add(n.Pos(), "blocking select")
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// isHandlerSig matches func(http.ResponseWriter, *http.Request).
func isHandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return typePathString(sig.Params().At(0).Type()) == "net/http.ResponseWriter" &&
		typePathString(sig.Params().At(1).Type()) == "*net/http.Request"
}

// inspectSkippingLits walks n without entering nested function
// literals.
func inspectSkippingLits(n ast.Node, f func(ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		f(m)
		return true
	})
}
