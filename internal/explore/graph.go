package explore

// Graph-restricted model checking. The multiset checker (explore.go)
// exploits anonymity: on the complete interaction graph, WHICH agents
// hold which states is irrelevant, so configurations collapse to
// state-count multisets. Under a restricted interaction graph that
// collapse is unsound — whether two free agents can ever meet depends
// on where they sit — so this file builds the configuration graph over
// full agent-state VECTORS, with one move per edge orientation, and
// re-runs the same stability/liveness analysis.
//
// The headline use is mechanizing the freeze findings exactly: on a
// star (and most sparse graphs), some reachable configuration cannot
// reach any stable-uniform configuration — global fairness over the
// restricted edge set quantifies only over reachable configurations,
// so it cannot save the protocol. CheckVector reports those trapped
// configurations; the harness's FrozenCondition outcomes are the
// runtime shadow of the same fact, and the tests tie the two together.

import (
	"fmt"

	"repro/internal/protocol"
)

// stableMask computes the nodes whose whole forward closure is frozen:
// a node is stable iff it cannot reach any non-frozen node (backward
// taint propagation over reversed edges).
func stableMask(succ [][]int, frozen []bool) []bool {
	n := len(frozen)
	pred := make([][]int, n)
	for u, ss := range succ {
		for _, v := range ss {
			pred[v] = append(pred[v], u)
		}
	}
	tainted := make([]bool, n)
	var stack []int
	for i, f := range frozen {
		if !f {
			tainted[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range pred[v] {
			if !tainted[u] {
				tainted[u] = true
				stack = append(stack, u)
			}
		}
	}
	stable := make([]bool, n)
	for i := range stable {
		stable[i] = !tainted[i]
	}
	return stable
}

// reachMask computes, for every node, whether it can reach some node in
// the target mask (backward reachability over reversed edges).
func reachMask(succ [][]int, target []bool) []bool {
	n := len(target)
	pred := make([][]int, n)
	for u, ss := range succ {
		for _, v := range ss {
			pred[v] = append(pred[v], u)
		}
	}
	ok := make([]bool, n)
	var stack []int
	for i, t := range target {
		if t {
			ok[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range pred[v] {
			if !ok[u] {
				ok[u] = true
				stack = append(stack, u)
			}
		}
	}
	return ok
}

// VectorGraph is the reachable configuration graph of a protocol on a
// fixed interaction graph, over agent-state vectors (agents are
// distinguishable here: position in the vector is identity).
type VectorGraph struct {
	Proto protocol.Protocol
	// Edges is the undirected interaction graph as an edge list over
	// agent indices; both orientations of every edge are explored.
	Edges [][2]int
	// Nodes, indexed by dense id in BFS order from the all-initial
	// configuration (node 0). Each node is a full state vector.
	Nodes [][]protocol.State
	// Succ[i] lists the ids reachable from node i by one productive
	// transition along some edge (deduplicated, insertion order).
	Succ [][]int
	// Frozen[i] reports that every transition enabled at node i keeps
	// both participants in their current group.
	Frozen []bool

	index map[string]int
}

func vectorKey(states []protocol.State) string {
	b := make([]byte, len(states))
	for i, s := range states {
		b[i] = byte(s)
	}
	return string(b)
}

// BuildVector explores the configuration graph of p with n agents
// interacting only along edges, starting from the all-initial vector.
// The state space is |Q|^n in the worst case, so this is for SMALL
// instances; construction fails fast past MaxNodes.
func BuildVector(p protocol.Protocol, n int, edges [][2]int) (*VectorGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("explore: need n >= 2, got %d", n)
	}
	if p.NumStates() > 256 {
		return nil, fmt.Errorf("explore: vector exploration supports at most 256 states, protocol has %d", p.NumStates())
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("explore: empty edge list")
	}
	for _, e := range edges {
		if e[0] == e[1] || e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("explore: invalid edge (%d,%d) for n=%d", e[0], e[1], n)
		}
	}
	start := make([]protocol.State, n)
	for i := range start {
		start[i] = p.InitialState()
	}
	g := &VectorGraph{Proto: p, Edges: edges, index: make(map[string]int)}
	g.add(start)
	for i := 0; i < len(g.Nodes); i++ {
		if len(g.Nodes) > MaxNodes {
			return nil, fmt.Errorf("explore: exceeded %d configurations", MaxNodes)
		}
		cur := g.Nodes[i]
		frozen := true
		var succ []int
		seen := map[int]bool{}
		for _, e := range edges {
			for _, dir := range [2][2]int{{e[0], e[1]}, {e[1], e[0]}} {
				u, v := dir[0], dir[1]
				out, _ := p.Delta(cur[u], cur[v])
				if out.P == cur[u] && out.Q == cur[v] {
					continue
				}
				if p.Group(cur[u]) != p.Group(out.P) || p.Group(cur[v]) != p.Group(out.Q) {
					frozen = false
				}
				next := append([]protocol.State(nil), cur...)
				next[u], next[v] = out.P, out.Q
				id := g.add(next)
				if !seen[id] {
					seen[id] = true
					succ = append(succ, id)
				}
			}
		}
		g.Succ = append(g.Succ, succ)
		g.Frozen = append(g.Frozen, frozen)
	}
	return g, nil
}

func (g *VectorGraph) add(states []protocol.State) int {
	k := vectorKey(states)
	if id, ok := g.index[k]; ok {
		return id
	}
	id := len(g.Nodes)
	g.index[k] = id
	g.Nodes = append(g.Nodes, states)
	return id
}

// Lookup returns the node id of a state vector, if reachable.
func (g *VectorGraph) Lookup(states []protocol.State) (int, bool) {
	id, ok := g.index[vectorKey(states)]
	return id, ok
}

// StableNodes computes the stable mask: nodes whose whole forward
// closure is frozen.
func (g *VectorGraph) StableNodes() []bool {
	return stableMask(g.Succ, g.Frozen)
}

// CanReach computes, for every node, whether it can reach some node in
// the target mask.
func (g *VectorGraph) CanReach(target []bool) []bool {
	return reachMask(g.Succ, target)
}

// groupSpread returns max−min of the group-size vector of a state
// vector under p's output mapping.
func groupSpread(p protocol.Protocol, states []protocol.State) int {
	sizes := make([]int, p.NumGroups())
	for _, s := range states {
		sizes[p.Group(s)-1]++
	}
	min, max := sizes[0], sizes[0]
	for _, v := range sizes[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// VectorReport summarizes a CheckVector run.
type VectorReport struct {
	N         int
	Edges     int
	Reachable int // reachable configurations (state vectors)
	Stable    int // stable configurations
	// StableUniform counts stable configurations whose partition is
	// uniform (spread <= the maxSpread passed to CheckVector).
	StableUniform int
	// Trapped counts reachable configurations from which NO
	// stable-uniform configuration is reachable: global fairness over
	// this interaction graph cannot rescue an execution that enters one.
	// Trapped == 0 is exactly "the protocol stabilizes to a uniform
	// partition under global fairness on this graph".
	Trapped int
	// FirstTrapped is a sample trapped configuration (nil when none).
	FirstTrapped []protocol.State
	// FirstStableNonUniform is a sample stable configuration with spread
	// beyond the bound (nil when none) — the partition the protocol
	// freezes into when it fails.
	FirstStableNonUniform []protocol.State
}

// CheckVector model-checks p with n agents on the given interaction
// graph: it reports how many reachable configurations are trapped
// (cannot reach a stable uniform partition) and samples witnesses. On
// the complete graph the protocol has Trapped == 0 (Theorem 1); on
// sparse graphs the trapped count is the exact, exhaustive form of the
// star/ring freeze finding.
func CheckVector(p protocol.Protocol, n int, edges [][2]int, maxSpread int) (VectorReport, error) {
	g, err := BuildVector(p, n, edges)
	if err != nil {
		return VectorReport{}, err
	}
	stable := g.StableNodes()
	rep := VectorReport{N: n, Edges: len(edges), Reachable: len(g.Nodes)}
	goal := make([]bool, len(g.Nodes))
	for i, s := range stable {
		if !s {
			continue
		}
		rep.Stable++
		if groupSpread(p, g.Nodes[i]) <= maxSpread {
			rep.StableUniform++
			goal[i] = true
		} else if rep.FirstStableNonUniform == nil {
			rep.FirstStableNonUniform = append([]protocol.State(nil), g.Nodes[i]...)
		}
	}
	live := g.CanReach(goal)
	for i, ok := range live {
		if !ok {
			rep.Trapped++
			if rep.FirstTrapped == nil {
				rep.FirstTrapped = append([]protocol.State(nil), g.Nodes[i]...)
			}
		}
	}
	return rep, nil
}
