package fairness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestPairIndexBijective(t *testing.T) {
	m := NewMeter(7)
	seen := make(map[int]bool)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			idx := m.pairIndex(i, j)
			if idx < 0 || idx >= 21 {
				t.Fatalf("pairIndex(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("pairIndex collision at (%d,%d)", i, j)
			}
			seen[idx] = true
			if m.pairIndex(j, i) != idx {
				t.Fatalf("pairIndex not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if len(seen) != 21 {
		t.Fatalf("covered %d indices, want 21", len(seen))
	}
}

func TestRecordAndPairCount(t *testing.T) {
	m := NewMeter(4)
	m.Record(0, 1)
	m.Record(1, 0)
	m.Record(2, 3)
	if m.PairCount(0, 1) != 2 || m.PairCount(1, 0) != 2 {
		t.Fatalf("pair (0,1) count %d", m.PairCount(0, 1))
	}
	if m.PairCount(2, 3) != 1 || m.PairCount(0, 2) != 0 {
		t.Fatal("counts wrong")
	}
	if m.Steps() != 3 {
		t.Fatalf("steps %d", m.Steps())
	}
}

func TestReportUniformTendsToFair(t *testing.T) {
	const n = 10
	m := NewMeter(n)
	p := core.MustNew(3)
	pop := population.New(p, n)
	if _, err := sim.Run(pop, sched.NewRandom(1), sim.After{N: 200000},
		sim.Options{Hooks: []sim.Hook{m}}); err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if r.StarvedPairs != 0 {
		t.Fatalf("random scheduler starved %d pairs", r.StarvedPairs)
	}
	if r.CV > 0.05 {
		t.Fatalf("pair-count CV %.4f too high for 200k uniform steps", r.CV)
	}
	if r.Gini > 0.03 {
		t.Fatalf("Gini %.4f too high", r.Gini)
	}
	if r.AgentCV > 0.05 {
		t.Fatalf("agent CV %.4f too high", r.AgentCV)
	}
}

// The sweep scheduler is perfectly even by construction.
func TestReportSweepPerfectlyEven(t *testing.T) {
	const n = 6
	m := NewMeter(n)
	p := core.MustNew(2)
	pop := population.New(p, n)
	cycles := 100
	if _, err := sim.Run(pop, sched.NewSweep(), sim.After{N: uint64(n * (n - 1) * cycles)},
		sim.Options{Hooks: []sim.Hook{m}}); err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	// Each unordered pair appears exactly twice per cycle (both orders).
	if r.MinCount != r.MaxCount || r.MinCount != uint64(2*cycles) {
		t.Fatalf("sweep counts uneven: min %d max %d", r.MinCount, r.MaxCount)
	}
	if r.CV != 0 || r.Gini != 0 {
		t.Fatalf("sweep CV %.4f Gini %.4f, want 0", r.CV, r.Gini)
	}
}

// The hostile scheduler must show up as grossly unfair: from the
// all-initial configuration it pairs the same-parity free agents forever,
// leaving agent-level balance but starving specific pair classes over any
// window once the population polarizes. We assert a much weaker but
// robust signal: its Gini stays far above the random scheduler's.
func TestReportHostileUnfair(t *testing.T) {
	const n = 8
	p := core.MustNew(4)

	run := func(s sched.Scheduler) Report {
		m := NewMeter(n)
		pop := population.New(p, n)
		if _, err := sim.Run(pop, s, sim.After{N: 50000},
			sim.Options{Hooks: []sim.Hook{m}}); err != nil {
			t.Fatal(err)
		}
		return m.Report()
	}
	hostile := run(sched.NewHostile(3, p.IsFree))
	random := run(sched.NewRandom(3))
	if hostile.Gini < 4*random.Gini {
		t.Fatalf("hostile Gini %.4f not clearly above random %.4f", hostile.Gini, random.Gini)
	}
	if hostile.MaxGap < 10*random.MaxGap {
		t.Fatalf("hostile max gap %d vs random %d", hostile.MaxGap, random.MaxGap)
	}
}

func TestGiniExtremes(t *testing.T) {
	if g := gini([]uint64{5, 5, 5, 5}); g > 1e-12 {
		t.Fatalf("even Gini %v", g)
	}
	g := gini([]uint64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated Gini %v", g)
	}
	if gini([]uint64{0, 0}) != 0 {
		t.Fatal("all-zero Gini nonzero")
	}
}

func TestReportEmptyMeter(t *testing.T) {
	m := NewMeter(2)
	r := m.Report()
	if r.Steps != 0 || r.CV != 0 || r.StarvedPairs != 1 {
		t.Fatalf("%+v", r)
	}
}

// The three-regime separation the package doc promises, now with the
// weak adversary in the middle: uniform random starves nothing and
// drives dispersion toward zero; the weak adversary starves nothing
// (its rotation is the weak-fairness obligation) but keeps dispersion
// far above random, because three out of four steps go to the hostile
// same-state oscillation; Hostile starves entire pair classes outright.
// n=12, k=3 is the stalling configuration from the sched tests: free
// agents persist forever there, so the hostile branch never runs dry
// and the dispersion signal doesn't wash out after stabilization.
func TestReportSeparatesThreeRegimes(t *testing.T) {
	const n = 12
	p := core.MustNew(3)

	run := func(s sched.Scheduler) Report {
		m := NewMeter(n)
		pop := population.New(p, n)
		if _, err := sim.Run(pop, s, sim.After{N: 50000},
			sim.Options{Hooks: []sim.Hook{m}}); err != nil {
			t.Fatal(err)
		}
		return m.Report()
	}
	random := run(sched.NewRandom(9))
	weak := run(sched.NewWeakAdversary(9, sched.WeakOptions{IsFree: p.IsFree}))
	hostile := run(sched.NewHostile(9, p.IsFree))

	// Weak fairness: the rotation reaches every pair, so nothing starves.
	if weak.StarvedPairs != 0 {
		t.Fatalf("weak adversary starved %d pairs; its rotation should reach all", weak.StarvedPairs)
	}
	if random.StarvedPairs != 0 {
		t.Fatalf("random starved %d pairs", random.StarvedPairs)
	}
	// Hostility: dispersion clearly above uniform random.
	if weak.Gini < 3*random.Gini {
		t.Errorf("weak Gini %.4f not clearly above random %.4f", weak.Gini, random.Gini)
	}
	// Bounded starvation separates weak from hostile: hostile's worst
	// pair gap is unbounded in the run length, weak's is capped by
	// Patience times the ordered-pair domain (4·n·(n−1) = 224 here,
	// observed from the unordered-meter side so allow both orders).
	bound := uint64(sched.DefaultWeakPatience * n * (n - 1))
	if weak.MaxGap > bound {
		t.Errorf("weak max gap %d exceeds the weak-fairness bound %d", weak.MaxGap, bound)
	}
	if hostile.MaxGap <= bound {
		t.Errorf("hostile max gap %d unexpectedly within the weak bound %d", hostile.MaxGap, bound)
	}
	if hostile.StarvedPairs == 0 {
		t.Error("hostile starved no pairs in 50k steps; expected persistent starvation")
	}
}
