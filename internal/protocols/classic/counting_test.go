package classic

import (
	"testing"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestCountingValidation(t *testing.T) {
	if _, err := NewCounting(0); err == nil {
		t.Fatal("maxN=0 accepted")
	}
	if _, err := NewCounting(protocol.MaxStates); err == nil {
		t.Fatal("oversized maxN accepted")
	}
	c, err := NewCounting(50)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 53 {
		t.Fatalf("NumStates = %d, want 53", c.NumStates())
	}
	if err := protocol.Validate(c); err != nil {
		t.Fatal(err)
	}
}

// One base station + m marked agents: the base must converge to exactly m
// and never overshoot, for several m.
func TestCountingConverges(t *testing.T) {
	c, err := NewCounting(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 5, 17, 40} {
		states := make([]protocol.State, m+1)
		states[0] = c.Base(0)
		for i := 1; i <= m; i++ {
			states[i] = c.Marked()
		}
		pop := population.FromStates(c, states)
		overshoot := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
			if v, ok := c.Value(pop.CountsView()); !ok || v > m {
				t.Fatalf("m=%d: base value %d (unique=%v)", m, v, ok)
			}
		})
		stop := sim.NewCountsPredicate(func(counts []int) bool {
			v, ok := c.Value(counts)
			return ok && v == m
		})
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(77, uint64(m))), stop,
			sim.Options{MaxInteractions: 1_000_000, Hooks: []sim.Hook{overshoot}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("m=%d: base never reached the true count", m)
		}
		if pop.Count(c.Marked()) != 0 || pop.Count(c.Counted()) != m {
			t.Fatalf("m=%d: marked=%d counted=%d", m, pop.Count(c.Marked()), pop.Count(c.Counted()))
		}
	}
}

// The count is stable: once every agent is counted, nothing changes.
func TestCountingQuiescesAtTruth(t *testing.T) {
	c, err := NewCounting(8)
	if err != nil {
		t.Fatal(err)
	}
	states := []protocol.State{c.Base(5), c.Counted(), c.Counted(), c.Counted(), c.Counted(), c.Counted()}
	pop := population.FromStates(c, states)
	q := sim.NewQuiescence(c)
	q.Init(pop)
	if !q.Satisfied() {
		t.Fatal("fully-counted configuration not quiescent")
	}
}

func TestCountingCodecPanics(t *testing.T) {
	c, _ := NewCounting(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Base(5)
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(1); err == nil {
		t.Fatal("c=1 accepted")
	}
	th, err := NewThreshold(5)
	if err != nil {
		t.Fatal(err)
	}
	if th.C() != 5 || th.NumStates() != 6 { // weights 0..5
		t.Fatalf("C=%d states=%d", th.C(), th.NumStates())
	}
	if err := protocol.Validate(th); err != nil {
		t.Fatal(err)
	}
}

// n >= c must decide true; n < c must decide false — for a grid around
// the threshold.
func TestThresholdDecides(t *testing.T) {
	const c = 6
	th, err := NewThreshold(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 5, 6, 7, 20} {
		pop := population.New(th, n)
		stop := sim.NewCountsPredicate(func(counts []int) bool {
			decided, _ := th.Decided(counts)
			return decided
		})
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(88, uint64(n))), stop,
			sim.Options{MaxInteractions: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: never decided", n)
		}
		_, answer := th.Decided(pop.Counts())
		if want := n >= c; answer != want {
			t.Fatalf("n=%d: decided %v, want %v (counts %v)", n, answer, want, pop.Counts())
		}
	}
}

// Saturation is monotone: once an agent reports "yes" the answer never
// disappears.
func TestThresholdMonotone(t *testing.T) {
	th, err := NewThreshold(4)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(th, 12)
	sawYes := false
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		yes := pop.Count(protocol.State(4)) > 0
		if sawYes && !yes {
			t.Fatal("saturated state disappeared")
		}
		sawYes = sawYes || yes
	})
	if _, err := sim.Run(pop, sched.NewRandom(5), sim.After{N: 100_000},
		sim.Options{Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
	if !sawYes {
		t.Fatal("n=12 >= 4 never saturated in 100k interactions")
	}
}

// Weight bookkeeping: the total carried weight never increases, and only
// decreases via saturation capping.
func TestThresholdWeightConservation(t *testing.T) {
	th, err := NewThreshold(10)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(th, 8) // n < c: weight must be conserved exactly
	weight := func() int {
		total := 0
		for w := 1; w <= 10; w++ {
			total += w * pop.Count(protocol.State(w))
		}
		return total
	}
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		if weight() != 8 {
			t.Fatalf("weight %d != 8 below the cap", weight())
		}
	})
	if _, err := sim.Run(pop, sched.NewRandom(6), sim.After{N: 50_000},
		sim.Options{Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}

func TestModCounterValidation(t *testing.T) {
	if _, err := NewModCounter(1); err == nil {
		t.Fatal("m=1 accepted")
	}
	mc, err := NewModCounter(5)
	if err != nil {
		t.Fatal(err)
	}
	if mc.M() != 5 || mc.NumStates() != 6 {
		t.Fatalf("M=%d states=%d", mc.M(), mc.NumStates())
	}
	if err := protocol.Validate(mc); err != nil {
		t.Fatal(err)
	}
}

// The surviving carrier must hold exactly n mod m, across remainder
// classes including n ≡ 0.
func TestModCounterComputesResidue(t *testing.T) {
	const m = 5
	mc, err := NewModCounter(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 7, 10, 12, 13, 24} {
		pop := population.New(mc, n)
		stop := sim.NewCountsPredicate(func(counts []int) bool {
			_, done := mc.Result(counts)
			return done
		})
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(91, uint64(n))), stop,
			sim.Options{MaxInteractions: 1_000_000})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d: %v %+v", n, err, res)
		}
		value, done := mc.Result(pop.Counts())
		if !done || value != n%m {
			t.Fatalf("n=%d: computed %d (done=%v), want %d", n, value, done, n%m)
		}
	}
}

// Residue invariant: the sum of carrier values mod m is conserved by
// every interaction — the correctness core of the protocol, fuzzed along
// a random execution.
func TestModCounterConservation(t *testing.T) {
	const m = 7
	mc, err := NewModCounter(m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 23
	pop := population.New(mc, n)
	residue := func() int {
		total := 0
		for v := 1; v <= m; v++ {
			total += v * pop.Count(mc.Carrier(v))
		}
		return total % m
	}
	want := residue()
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		if residue() != want {
			t.Fatalf("residue drifted from %d to %d", want, residue())
		}
	})
	if _, err := sim.Run(pop, sched.NewRandom(3), sim.After{N: 50_000},
		sim.Options{Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}

func TestModCounterCodecPanics(t *testing.T) {
	mc, _ := NewModCounter(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mc.Carrier(5)
}
