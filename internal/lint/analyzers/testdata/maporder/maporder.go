// Golden input for the maporder analyzer: ordered output built from
// map iteration, in both flagged shapes (unsorted append, direct
// writes) and the sanctioned collect-sort-emit fixes.
package maporder

import (
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append while ranging over a map`
	}
	return out
}

func BadFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%d\n", k, v) // want `Fprintf inside a range over a map`
	}
}

func BadCSV(w *csv.Writer, m map[string]string) {
	for k, v := range m {
		w.Write([]string{k, v}) // want `Write inside a range over a map`
	}
}

func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `WriteString inside a range over a map`
	}
	return sb.String()
}

// The canonical fix: collect keys, sort, then emit. Must pass.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slices.Sort counts as the intervening sort too.
func GoodSlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

type kv struct {
	k string
	v int
}

// sort.Slice over a struct accumulator also counts.
func GoodSortSlice(m map[string]int) []kv {
	var rows []kv
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	return rows
}

// Ranging over a slice is ordered; append freely.
func GoodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Order-insensitive aggregation over a map is fine.
func GoodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
