package span

// The sanctioned timing edge of the span package. Wall-clock reads are
// confined to this file: the harness and serve layers (which are
// allowed to time things) capture durations here and attach them to
// spans through ActiveSpan.SetWall; every other file of this package is
// held to the engine-package determinism standard by kpart-lint's
// determinism analyzer. Growing wall-clock use beyond this file needs
// the same review as adding a timing call to an engine.

import (
	"sync"
	"time"
)

// epoch anchors all wall stamps of a process, so WallStartUS values in
// one export share an origin and stay small.
var (
	epochOnce sync.Once
	epoch     time.Time
)

func processEpoch() time.Time {
	epochOnce.Do(func() { epoch = time.Now() })
	return epoch
}

// WallNow returns microseconds since the process trace epoch. Only
// harness/serve-edge code may call it; engine-scope code records
// interaction counts (SetSeq) instead.
func WallNow() uint64 {
	return uint64(time.Since(processEpoch()).Microseconds())
}

// Stopwatch captures one wall interval for a span.
type Stopwatch struct{ start uint64 }

// StartWall begins a wall interval.
func StartWall() Stopwatch { return Stopwatch{start: WallNow()} }

// StopInto stamps the elapsed interval onto s (no-op on a nil span).
func (w Stopwatch) StopInto(s *ActiveSpan) {
	now := WallNow()
	s.SetWall(w.start, now-w.start)
}
