package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// LockGuard enforces `// guarded by <mu>` annotations: a struct field so
// annotated may only be read while its mutex is held (RLock suffices)
// and only written while it is fully locked, on every path the call
// graph can see. A method may declare `// guarded by <mu>` in its doc
// comment, meaning callers must hold the receiver's mutex across the
// call; the analyzer then checks call sites instead of the body's
// accesses (the body is checked assuming the lock held on entry).
//
// The lock-state tracking is a deliberately conservative linear
// abstract interpretation: Lock/RLock add to the held set, Unlock/
// RUnlock remove, `defer mu.Unlock()` keeps the lock held to the end of
// the function, and control-flow branches are analyzed with a copy of
// the held set whose effects do not survive the branch. Function
// literals are analyzed as their own functions with an empty held set
// (a literal may run on another goroutine or after the caller
// returned). Accesses in _test.go files are exempt — tests may poke
// single-threaded state directly.
//
// Annotation hygiene (malformed grammar, unknown or non-mutex sibling,
// doc annotation on a non-method) is reported by the per-package pass;
// the fact store carries the annotations to the whole-program pass that
// does the checking.
var LockGuard = &lint.Analyzer{
	Name:            "lockguard",
	Doc:             "fields annotated `// guarded by <mu>` must only be accessed with that mutex held, on every call-graph path",
	Run:             runLockGuard,
	RunProgram:      runLockGuardProgram,
	Interprocedural: true,
}

// guardedByFact marks a struct field as guarded by the named sibling
// mutex field.
type guardedByFact struct {
	Mutex string
}

func (*guardedByFact) AFact() {}

// requiresLockFact marks a method as requiring the receiver's named
// mutex held by the caller.
type requiresLockFact struct {
	Mutex string
}

func (*requiresLockFact) AFact() {}

// runLockGuard collects and validates annotations, exporting facts.
func runLockGuard(pass *lint.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				collectFieldGuards(pass, n)
			case *ast.FuncDecl:
				collectFuncGuard(pass, n)
				return false // field guards inside function bodies still found? no nested named structs expected
			}
			return true
		})
	}
}

func collectFieldGuards(pass *lint.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		mutex, at, ok := guardAnnotation(pass, field.Doc, field.Comment)
		if !ok {
			continue
		}
		if mutex == "" {
			continue // malformed; already reported by guardAnnotation
		}
		if strings.Contains(mutex, ".") {
			pass.Reportf(at, "guarded by %q: field guards must name a sibling mutex field (single identifier)", mutex)
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(at, "guarded by %s: annotation on an embedded field is not supported", mutex)
			continue
		}
		if !structHasMutex(pass, st, mutex) {
			pass.Reportf(at, "guarded by %s: no sibling field %s of type sync.Mutex or sync.RWMutex in this struct", mutex, mutex)
			continue
		}
		for _, name := range field.Names {
			if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
				pass.Facts.ExportObjectFact(obj, &guardedByFact{Mutex: mutex})
			}
		}
	}
}

func collectFuncGuard(pass *lint.Pass, fd *ast.FuncDecl) {
	mutex, at, ok := guardAnnotation(pass, fd.Doc, nil)
	if !ok || mutex == "" {
		return
	}
	if strings.Contains(mutex, ".") {
		pass.Reportf(at, "guarded by %q: method guards must name a mutex field on the receiver (single identifier)", mutex)
		return
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		pass.Reportf(at, "guarded by %s: only methods can require a caller-held lock", mutex)
		return
	}
	recvType := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil || !typeHasMutexField(recvType, mutex) {
		pass.Reportf(at, "guarded by %s: receiver type has no mutex field %s", mutex, mutex)
		return
	}
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		pass.Facts.ExportObjectFact(obj, &requiresLockFact{Mutex: mutex})
	}
}

// guardAnnotation scans the comment groups for one guarded-by
// annotation. ok reports whether any guarded-by comment (well- or
// malformed) was present; mutex is empty when malformed (reported
// here).
func guardAnnotation(pass *lint.Pass, groups ...*ast.CommentGroup) (mutex string, at token.Pos, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			name, isGuard, err := ParseGuardedBy(c.Text)
			if !isGuard {
				continue
			}
			if err != nil {
				pass.Reportf(c.Pos(), "malformed guarded-by annotation: %v", err)
				return "", c.Pos(), true
			}
			return name, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// structHasMutex reports whether the literal struct type has a field
// named mutex whose type is a sync mutex.
func structHasMutex(pass *lint.Pass, st *ast.StructType, mutex string) bool {
	for _, field := range st.Fields.List {
		t := pass.Info.TypeOf(field.Type)
		for _, name := range field.Names {
			if name.Name == mutex && isMutexType(t) {
				return true
			}
		}
		// Embedded sync.Mutex / sync.RWMutex answer to their type name.
		if len(field.Names) == 0 && isMutexType(t) && mutexBaseName(t) == mutex {
			return true
		}
	}
	return false
}

// typeHasMutexField reports whether t (after pointer indirection) is a
// struct with a mutex field of the given name.
func typeHasMutexField(t types.Type, mutex string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == mutex && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s := types.TypeString(t, func(p *types.Package) string { return p.Path() })
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

func mutexBaseName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Held-set bits.
const (
	heldRead  uint8 = 1 // RLock or Lock
	heldWrite uint8 = 2 // Lock only
)

// runLockGuardProgram walks every function body with the conservative
// lock-state abstraction and checks guarded accesses and lock-requiring
// calls.
func runLockGuardProgram(pp *lint.ProgramPass) {
	for _, fn := range pp.Program.Graph.Funcs {
		if fn.Body() == nil || pp.InTestFile(fn.Pos()) {
			continue
		}
		c := &lgChecker{pp: pp, pkg: fn.Pkg, fn: fn}
		held := make(map[string]uint8)
		// A method annotated `// guarded by mu` is checked assuming the
		// receiver's mutex held on entry.
		if fn.Obj != nil && fn.Decl != nil && fn.Decl.Recv != nil && len(fn.Decl.Recv.List) > 0 {
			var req requiresLockFact
			if pp.Facts.ImportObjectFact(fn.Obj, &req) {
				if names := fn.Decl.Recv.List[0].Names; len(names) > 0 {
					if recv, ok := fn.Pkg.Info.Defs[names[0]].(*types.Var); ok {
						held[pp.Facts.ObjectKey(recv)+"."+req.Mutex] = heldRead | heldWrite
					}
				}
			}
		}
		c.stmts(fn.Body().List, held)
	}
}

// lgChecker walks one function body tracking the held-mutex set.
type lgChecker struct {
	pp  *lint.ProgramPass
	pkg *lint.Package
	fn  *lint.Func
}

// stmts processes a statement sequence, threading the held set through
// and returning its final state.
func (c *lgChecker) stmts(list []ast.Stmt, held map[string]uint8) map[string]uint8 {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

func copyHeld(held map[string]uint8) map[string]uint8 {
	out := make(map[string]uint8, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// stmt processes one statement, returning the held set after it.
// Branch bodies run on copies: their lock-state effects conservatively
// do not survive the branch.
func (c *lgChecker) stmt(s ast.Stmt, held map[string]uint8) map[string]uint8 {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		if key, op, ok := c.lockOp(s.X); ok {
			return applyLockOp(held, key, op)
		}
		c.scan(s.X, held, false)
		return held
	case *ast.DeferStmt:
		if key, op, ok := c.lockOp(s.Call); ok {
			if op == "Unlock" || op == "RUnlock" {
				// defer mu.Unlock(): the lock stays held to function end.
				return held
			}
			// defer mu.Lock() is almost certainly a bug but not ours to
			// diagnose; treat as a no-op for the held set.
			_ = key
			return held
		}
		for _, arg := range s.Call.Args {
			c.scan(arg, held, false)
		}
		c.checkCallContract(s.Call, held)
		return held
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			c.scan(arg, held, false)
		}
		c.checkCallContract(s.Call, held)
		return held
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.scan(rhs, held, false)
		}
		for _, lhs := range s.Lhs {
			// x.f += v both reads and writes; plain = only writes. Write
			// implies the stricter requirement either way.
			c.scan(lhs, held, true)
		}
		return held
	case *ast.IncDecStmt:
		c.scan(s.X, held, true)
		return held
	case *ast.SendStmt:
		c.scan(s.Chan, held, false)
		c.scan(s.Value, held, false)
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scan(r, held, false)
		}
		return held
	case *ast.IfStmt:
		held = c.stmt(s.Init, held)
		c.scan(s.Cond, held, false)
		c.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		held = c.stmt(s.Init, held)
		if s.Cond != nil {
			c.scan(s.Cond, held, false)
		}
		body := copyHeld(held)
		body = c.stmts(s.Body.List, body)
		c.stmt(s.Post, body)
		return held
	case *ast.RangeStmt:
		c.scan(s.X, held, false)
		c.stmts(s.Body.List, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		held = c.stmt(s.Init, held)
		if s.Tag != nil {
			c.scan(s.Tag, held, false)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.scan(e, held, false)
				}
				c.stmts(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		held = c.stmt(s.Init, held)
		c.stmt(s.Assign, copyHeld(held))
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := copyHeld(held)
				inner = c.stmt(cc.Comm, inner)
				c.stmts(cc.Body, inner)
			}
		}
		return held
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scan(v, held, false)
					}
				}
			}
		}
		return held
	default:
		// Branch/empty/etc: nothing to track.
		return held
	}
}

func applyLockOp(held map[string]uint8, key, op string) map[string]uint8 {
	if key == "" {
		return held
	}
	switch op {
	case "Lock":
		held[key] = heldRead | heldWrite
	case "RLock":
		held[key] |= heldRead
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return held
}

// lockOp recognizes expr as a call to (sync.Mutex).Lock and friends,
// returning the held-set key of the mutex expression.
func (c *lgChecker) lockOp(expr ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fn := lint.CalleeFunc(c.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return c.exprKey(sel.X), fn.Name(), true
}

// exprKey renders a stable identity for the expression holding a mutex
// or guarded field: the root object's declaration position followed by
// the selected field path. Empty when the expression is too complex to
// identify (map index, function result, ...).
func (c *lgChecker) exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pkg.Info.Uses[e]; obj != nil {
			return c.pp.Facts.ObjectKey(obj)
		}
		if obj := c.pkg.Info.Defs[e]; obj != nil {
			return c.pp.Facts.ObjectKey(obj)
		}
		return ""
	case *ast.SelectorExpr:
		base := c.exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return c.exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.exprKey(e.X)
		}
		return ""
	default:
		return ""
	}
}

// scan checks every guarded-field access and lock-requiring call in the
// expression, without descending into function literals (they are
// separate call-graph nodes, analyzed with an empty held set).
func (c *lgChecker) scan(e ast.Expr, held map[string]uint8, write bool) {
	if e == nil {
		return
	}
	// writes marks the selectors that constitute mutation of the guarded
	// field: the lvalue path of an assignment (including through map/
	// slice indexing and pointer derefs) and the map argument of the
	// delete builtin. Everything else is a read.
	writes := make(map[ast.Node]bool)
	if write {
		if t := writeTarget(e); t != nil {
			writes[t] = true
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCallContract(n, held)
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
					if t := writeTarget(n.Args[0]); t != nil {
						writes[t] = true
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			c.checkAccess(n, held, writes[n])
			return true
		}
		return true
	})
}

// writeTarget unwraps an lvalue to the selector being mutated:
// c.m[k] = v and *p.f = v write fields m and f respectively.
func writeTarget(e ast.Expr) *ast.SelectorExpr {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return t
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// checkAccess reports sel when it selects a guarded field without the
// required lock held.
func (c *lgChecker) checkAccess(sel *ast.SelectorExpr, held map[string]uint8, write bool) {
	s, ok := c.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	var guard guardedByFact
	if !c.pp.Facts.ImportObjectFact(fv, &guard) {
		return
	}
	base := c.exprKey(sel.X)
	if base == "" {
		c.pp.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but the holder expression is too complex to prove the lock held; bind it to a variable first", fv.Name(), guard.Mutex)
		return
	}
	key := base + "." + guard.Mutex
	state := held[key]
	if write && state&heldWrite == 0 {
		if state&heldRead != 0 {
			c.pp.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) written while only read-locked; Lock %s for writes", fv.Name(), guard.Mutex, guard.Mutex)
			return
		}
		c.pp.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) written without holding %s on this path", fv.Name(), guard.Mutex, guard.Mutex)
		return
	}
	if !write && state&heldRead == 0 {
		c.pp.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) read without holding %s on this path", fv.Name(), guard.Mutex, guard.Mutex)
	}
}

// checkCallContract reports calls to methods annotated `// guarded by
// <mu>` made without the receiver's mutex fully held.
func (c *lgChecker) checkCallContract(call *ast.CallExpr, held map[string]uint8) {
	fn := lint.CalleeFunc(c.pkg.Info, call)
	if fn == nil {
		return
	}
	var req requiresLockFact
	if !c.pp.Facts.ImportObjectFact(fn, &req) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := c.exprKey(sel.X)
	if base == "" {
		c.pp.Reportf(call.Pos(), "call to %s requires %s held but the receiver expression is too complex to prove it; bind it to a variable first", fn.Name(), req.Mutex)
		return
	}
	if held[base+"."+req.Mutex]&heldWrite == 0 {
		c.pp.Reportf(call.Pos(), "call to %s requires the receiver's %s held (declared `// guarded by %s`), not held on this path", fn.Name(), req.Mutex, req.Mutex)
	}
}
