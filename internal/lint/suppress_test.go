package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in           string
		name, reason string
		ok           bool
		errContains  string
	}{
		{in: "// ordinary comment"},
		{in: "//go:build linux"},
		{in: "//lint:allow errclose -- close error already reported", name: "errclose", reason: "close error already reported", ok: true},
		{in: "//lint:allow errclose --  padded  reason ", name: "errclose", reason: "padded  reason", ok: true},
		{in: "//lint:allow errclose", ok: true, errContains: "no reason"},
		{in: "//lint:allow errclose --", ok: true, errContains: "no reason"},
		{in: "//lint:allow errclose --   ", ok: true, errContains: "no reason"},
		{in: "//lint:allow", ok: true, errContains: "analyzer name"},
		{in: "//lint:allow  -- why", ok: true, errContains: "analyzer name"},
		{in: "//lint:allow a b -- why", ok: true, errContains: "one analyzer name"},
		{in: "//lint:deny errclose -- why", ok: true, errContains: "unknown lint directive"},
		{in: "lint:allow errclose -- no slashes still a directive", name: "errclose", reason: "no slashes still a directive", ok: true},
	}
	for _, c := range cases {
		name, reason, ok, err := ParseAllow(c.in)
		if ok != c.ok {
			t.Errorf("ParseAllow(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if c.errContains != "" {
			if err == nil || !strings.Contains(err.Error(), c.errContains) {
				t.Errorf("ParseAllow(%q) err = %v, want containing %q", c.in, err, c.errContains)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAllow(%q) unexpected error: %v", c.in, err)
			continue
		}
		if name != c.name || reason != c.reason {
			t.Errorf("ParseAllow(%q) = (%q, %q), want (%q, %q)", c.in, name, reason, c.name, c.reason)
		}
	}
}

func at(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

// One directive must silence exactly one diagnostic: with findings on
// its own line and the next, the same-line match wins and the next-line
// finding survives.
func TestApplySuppressionsExactlyOne(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errclose", Pos: at("f.go", 10), Message: "first"},
		{Analyzer: "errclose", Pos: at("f.go", 11), Message: "second"},
	}
	sups := []*Suppression{{Analyzer: "errclose", Reason: "r", Pos: at("f.go", 10)}}
	out := ApplySuppressions(diags, sups)
	if len(out) != 1 || out[0].Message != "second" {
		t.Fatalf("want exactly the line-11 diagnostic to survive, got %v", out)
	}
}

// The standalone form (directive alone on the line above) applies only
// when nothing matched on the directive's own line.
func TestApplySuppressionsNextLine(t *testing.T) {
	diags := []Diagnostic{{Analyzer: "maporder", Pos: at("f.go", 5), Message: "m"}}
	sups := []*Suppression{{Analyzer: "maporder", Reason: "r", Pos: at("f.go", 4)}}
	if out := ApplySuppressions(diags, sups); len(out) != 0 {
		t.Fatalf("standalone suppression did not apply: %v", out)
	}
}

// A directive for a different analyzer suppresses nothing and is
// reported as unused; the original finding survives.
func TestApplySuppressionsWrongAnalyzer(t *testing.T) {
	diags := []Diagnostic{{Analyzer: "errclose", Pos: at("f.go", 3), Message: "m"}}
	sups := []*Suppression{{Analyzer: "determinism", Reason: "r", Pos: at("f.go", 3)}}
	out := ApplySuppressions(diags, sups)
	if len(out) != 2 {
		t.Fatalf("want surviving finding + unused-suppression, got %v", out)
	}
	var sawUnused, sawOriginal bool
	for _, d := range out {
		if d.Analyzer == SuppressName && strings.Contains(d.Message, "unused") {
			sawUnused = true
		}
		if d.Analyzer == "errclose" {
			sawOriginal = true
		}
	}
	if !sawUnused || !sawOriginal {
		t.Fatalf("want unused + original, got %v", out)
	}
}

// Suppression-hygiene findings can never themselves be suppressed.
func TestSuppressDiagnosticsUnsuppressible(t *testing.T) {
	diags := []Diagnostic{{Analyzer: SuppressName, Pos: at("f.go", 7), Message: "unused"}}
	sups := []*Suppression{{Analyzer: SuppressName, Reason: "r", Pos: at("f.go", 7)}}
	out := ApplySuppressions(diags, sups)
	// The hygiene finding survives and the directive is itself unused.
	if len(out) != 2 {
		t.Fatalf("suppress diagnostics must be unsuppressible, got %v", out)
	}
}
