package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// The SARIF writer is pinned to the byte: code-scanning consumers diff
// uploaded logs, so incidental reordering or whitespace drift is a
// regression even when the JSON is semantically equal.
func TestWriteSARIFGolden(t *testing.T) {
	suite := []*Analyzer{
		{Name: "maporder", Doc: "map iteration order must not reach output"},
		{Name: "ctxflow", Doc: "reachable unbounded work must poll a context"},
	}
	diags := []Diagnostic{
		{
			Analyzer: "maporder",
			Pos:      token.Position{Filename: "/src/m/b/b.go", Line: 4, Column: 9},
			Message:  "append while ranging over a map",
		},
		{
			Analyzer: "ctxflow",
			Pos:      token.Position{Filename: "/src/m/a/a.go", Line: 12, Column: 2},
			Message:  "loop with no condition but cannot receive a context.Context",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, suite, "/src/m"); err != nil {
		t.Fatal(err)
	}
	want := `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "kpart-lint",
          "rules": [
            {
              "id": "ctxflow",
              "shortDescription": {
                "text": "reachable unbounded work must poll a context"
              }
            },
            {
              "id": "maporder",
              "shortDescription": {
                "text": "map iteration order must not reach output"
              }
            },
            {
              "id": "suppress",
              "shortDescription": {
                "text": "suppression hygiene: //lint:allow directives must name a real analyzer, carry a reason, and be used"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "ctxflow",
          "ruleIndex": 0,
          "level": "error",
          "message": {
            "text": "loop with no condition but cannot receive a context.Context"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "a/a.go"
                },
                "region": {
                  "startLine": 12,
                  "startColumn": 2
                }
              }
            }
          ]
        },
        {
          "ruleId": "maporder",
          "ruleIndex": 1,
          "level": "error",
          "message": {
            "text": "append while ranging over a map"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "b/b.go"
                },
                "region": {
                  "startLine": 4,
                  "startColumn": 9
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("SARIF output drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The caller's slice order is untouched (WriteSARIF sorts a copy).
	if diags[0].Analyzer != "maporder" {
		t.Error("WriteSARIF mutated the caller's slice")
	}
}

// An empty run still carries the full rules table and an empty (not
// null) results array — consumers treat "no results" and "no run" very
// differently.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, []*Analyzer{{Name: "alpha", Doc: "d"}}, ""); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Tool.Driver.Rules) != 2 {
		t.Fatalf("want 1 run with rules [alpha suppress], got %+v", log)
	}
	if log.Runs[0].Results == nil {
		t.Error("results must be [], not null")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("results must encode as an empty array:\n%s", buf.String())
	}
}

// A diagnostic from an analyzer outside the suite (a driver bug or a
// future phase) still maps to a rule rather than a dangling ruleIndex.
func TestWriteSARIFUnknownAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{
		Analyzer: "mystery",
		Pos:      token.Position{Filename: "x.go", Line: 1, Column: 1},
		Message:  "m",
	}}
	if err := WriteSARIF(&buf, diags, nil, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"id": "mystery"`)) {
		t.Errorf("unknown analyzer must get a synthetic rule:\n%s", buf.String())
	}
}
