package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// flushCloseNames are the I/O completion methods whose error return
// carries the "did the bytes actually land" answer. For a buffered
// writer or an os.File, ignoring them means a full-looking run can
// leave a truncated CSV or journal behind.
var flushCloseNames = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Write": true, "WriteString": true, "WriteAll": true,
}

// ErrClose flags a bare statement call to Close/Flush/Sync/Write/
// WriteString/WriteAll that returns an error, in the persistence
// packages and the cmd/ binaries. `_ = f.Close()` is the sanctioned
// explicit discard (visible in review), and deferred calls are exempt
// (the idiomatic read-path `defer f.Close()`); everything else must
// check. Test files are exempt.
var ErrClose = &lint.Analyzer{
	Name:    "errclose",
	Doc:     "no unchecked Close/Flush/Sync/Write errors in the persistence paths",
	Applies: inPersistencePkg,
	Run:     runErrClose,
}

func runErrClose(pass *lint.Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !flushCloseNames[sel.Sel.Name] {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			if isStringsBuilder(receiverType(pass, sel.X)) {
				// strings.Builder's Write* methods are documented to
				// always return a nil error; checking it is noise.
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s() is silently dropped; check it, or `_ = x.%s()` to discard explicitly",
				sel.Sel.Name, sel.Sel.Name)
			return true
		})
	}
}

// receiverType resolves the static type of a method receiver
// expression. Info.Types may omit bare identifiers (go/types records
// those only in Uses), so fall back to the identifier's object.
func receiverType(pass *lint.Pass, e ast.Expr) types.Type {
	e = ast.Unparen(e)
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isStringsBuilder(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "strings" && obj.Name() == "Builder"
}

// returnsError reports whether any result of the call is exactly error.
func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), lint.ErrorType) {
			return true
		}
	}
	return false
}
