package parse

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/protocols/classic"
	"repro/internal/sched"
	"repro/internal/sim"
)

const majoritySrc = `
# the three-state approximate majority protocol
protocol approx-majority
init x
group x 1
group y 2
group blank 1
orule x y -> x blank
orule y x -> y blank
orule x blank -> x x
orule y blank -> y y
`

func TestParseMajorityMatchesHandWritten(t *testing.T) {
	res, err := String(majoritySrc, "f")
	if err != nil {
		t.Fatal(err)
	}
	p := res.Protocol
	ref := classic.NewApproxMajority()
	if p.NumStates() != ref.NumStates() || p.Name() != "approx-majority" {
		t.Fatalf("structure: %d states, %q", p.NumStates(), p.Name())
	}
	// δ must agree pointwise under the name correspondence (the parsed
	// protocol's state order matches first-mention order: x, y, blank —
	// identical to the hand-written constants).
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			got, _ := p.Delta(protocol.State(a), protocol.State(b))
			want, _ := ref.Delta(protocol.State(a), protocol.State(b))
			if got != want {
				t.Fatalf("delta(%d,%d): %v vs %v", a, b, got, want)
			}
		}
	}
}

func TestParsedProtocolRuns(t *testing.T) {
	res, err := String(majoritySrc, "f")
	if err != nil {
		t.Fatal(err)
	}
	x := res.Names["x"]
	y := res.Names["y"]
	states := make([]protocol.State, 60)
	for i := range states {
		if i < 40 {
			states[i] = x
		} else {
			states[i] = y
		}
	}
	pop := population.FromStates(res.Protocol, states)
	stop := sim.NewCountsPredicate(func(c []int) bool {
		return c[res.Names["blank"]] == 0 && (c[x] == 0 || c[y] == 0)
	})
	r, err := sim.Run(pop, sched.NewRandom(4), stop, sim.Options{MaxInteractions: 5_000_000})
	if err != nil || !r.Converged {
		t.Fatalf("%v %+v", err, r)
	}
	if pop.Count(x) != 60 {
		t.Fatalf("majority lost: x=%d", pop.Count(x))
	}
}

func TestParseSymmetricFlag(t *testing.T) {
	src := `
symmetric
init a
rule a a -> b b
`
	if _, err := String(src, "ok"); err != nil {
		t.Fatalf("symmetric protocol rejected: %v", err)
	}
	bad := `
symmetric
init a
orule a b -> b a
`
	if _, err := String(bad, "bad"); err == nil {
		t.Fatal("ordered rule accepted under symmetric")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing init":      "rule a b -> c d\n",
		"bad group int":     "init a\ngroup a zero\n",
		"bad group value":   "init a\ngroup a 0\n",
		"bad arrow":         "init a\nrule a b => c d\n",
		"unknown directive": "init a\nfrobnicate\n",
		"protocol arity":    "protocol a b\ninit a\n",
		"symmetric arity":   "symmetric yes\ninit a\n",
		"init arity":        "init\n",
		"empty":             "# nothing\n",
	}
	for name, src := range cases {
		if _, err := String(src, "x"); !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: got %v, want ErrSyntax", name, err)
		}
	}
}

func TestParseConflictSurfacesBuildError(t *testing.T) {
	src := `
init a
rule a b -> a a
rule a b -> b b
`
	if _, err := String(src, "x"); !errors.Is(err, protocol.ErrNotDeterministic) {
		t.Fatalf("got %v", err)
	}
}

// Round trip: Format a hand-built protocol, parse it back, and the
// transition tables must be identical.
func TestFormatParseRoundTrip(t *testing.T) {
	for _, ref := range []protocol.Protocol{
		classic.NewLeaderElection(),
		classic.NewApproxMajority(),
		core.MustNew(3),
	} {
		src := Format(ref)
		res, err := String(src, "rt")
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", ref.Name(), err, src)
		}
		p := res.Protocol
		if p.NumStates() != ref.NumStates() {
			t.Fatalf("%s: %d states vs %d", ref.Name(), p.NumStates(), ref.NumStates())
		}
		// State order is preserved: Format emits init first? No — states
		// appear in rule order; map through names instead.
		id := func(s protocol.State) protocol.State {
			return res.Names[ref.StateName(s)]
		}
		for a := 0; a < ref.NumStates(); a++ {
			for b := 0; b < ref.NumStates(); b++ {
				want, _ := ref.Delta(protocol.State(a), protocol.State(b))
				got, _ := p.Delta(id(protocol.State(a)), id(protocol.State(b)))
				if got.P != id(want.P) || got.Q != id(want.Q) {
					t.Fatalf("%s: delta(%s,%s) differs after round trip",
						ref.Name(), ref.StateName(protocol.State(a)), ref.StateName(protocol.State(b)))
				}
			}
		}
		if ref.Group(ref.InitialState()) != p.Group(id(ref.InitialState())) {
			t.Fatalf("%s: group mapping lost", ref.Name())
		}
	}
}

func TestFormatMentionsSymmetric(t *testing.T) {
	out := Format(core.MustNew(3))
	if !strings.Contains(out, "symmetric") {
		t.Fatalf("symmetric flag missing:\n%s", out)
	}
}
