package twin

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/markov"
)

// TestLumpedProjectionIsExact checks the reduction at the strongest level:
// project every full configuration onto its reduced vector and require
// that stable flags, self-loops, and entire outgoing distributions agree
// edge-for-edge. This is what "exactly lumped" means — any merge that
// altered a single transition probability would show up here before it
// could bias a hitting time. (This is also the test that caught the
// initial/initial'-swap "lumping": rules 9 and 10 emit specifically
// initial, so the swap is not an automorphism.)
func TestLumpedProjectionIsExact(t *testing.T) {
	for _, fx := range []struct{ n, k int }{{6, 3}, {8, 4}, {7, 2}} {
		p := harness.Proto(fx.k)
		ch, err := markov.New(p, fx.n)
		if err != nil {
			t.Fatal(err)
		}
		lch, err := buildLumped(p, fx.n, 0)
		if err != nil {
			t.Fatal(err)
		}
		rvec := make([]int32, vecLen(fx.k))
		proj := make([]int, len(ch.Graph.Nodes))
		for i, node := range ch.Graph.Nodes {
			encodeReduced(p, node.Counts, rvec)
			id, ok := lch.index[vecKey(rvec)]
			if !ok {
				t.Fatalf("n=%d k=%d: full node %d (%v) projects to unknown reduced vector %v",
					fx.n, fx.k, i, node.Counts, rvec)
			}
			proj[i] = id
		}
		for i := range ch.Graph.Nodes {
			li := proj[i]
			if ch.Stable[i] != lch.stable[li] {
				t.Errorf("n=%d k=%d: node %d: markov stable=%v, lumped stable=%v",
					fx.n, fx.k, i, ch.Stable[i], lch.stable[li])
			}
			want := make(map[int]float64)
			wantSelf := ch.SelfLoop[i]
			for _, e := range ch.Out[i] {
				if tgt := proj[e.To]; tgt == li {
					wantSelf += e.P
				} else {
					want[tgt] += e.P
				}
			}
			if d := wantSelf - lch.self[li]; d > 1e-12 || d < -1e-12 {
				t.Errorf("n=%d k=%d: node %d: self-loop %g vs %g", fx.n, fx.k, i, wantSelf, lch.self[li])
			}
			got := make(map[int]float64)
			for _, e := range lch.out[li] {
				got[e.To] = e.P
			}
			if len(got) != len(want) {
				t.Errorf("n=%d k=%d: node %d: %d projected edges vs %d lumped", fx.n, fx.k, i, len(want), len(got))
				continue
			}
			for tgt, wp := range want {
				if gp := got[tgt]; gp-wp > 1e-12 || wp-gp > 1e-12 {
					t.Errorf("n=%d k=%d: node %d: edge to %d: %g vs %g", fx.n, fx.k, i, tgt, wp, gp)
				}
			}
		}
	}
}
