// Golden input for the determinism analyzer over the batched count
// engine; loaded under "repro/internal/countsim", where a batch
// trajectory is replay identity — a pure function of (spec, seed) — so
// the engine may not read the clock, not even to time its own batches.
package countsim

import "time"

type fakeBatch struct {
	batches uint64
	started time.Time
}

func (b *fakeBatch) beginBatch() {
	b.started = time.Now() // want `time\.Now in deterministic package`
	b.batches++
}

func (b *fakeBatch) boundaryWall() time.Duration {
	return time.Since(b.started) // want `time\.Since`
}

func (b *fakeBatch) throttleWindow() {
	// Pacing a batch against the wall clock would make the drawn window
	// sizes depend on machine load.
	time.Sleep(time.Microsecond) // want `time\.Sleep`
}

func (b *fakeBatch) armDeadline() {
	_ = time.NewTimer(time.Second) // want `time\.NewTimer`
}

// Pure arithmetic on caller-supplied durations is deterministic: the
// harness layer owns the clock and hands results down.
func okPerBatchBudget(total time.Duration, batches uint64) time.Duration {
	return total / time.Duration(batches+1)
}
