package main

import (
	"context"
	"fmt"
	"math"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/twin"
)

// predictExp is the end-to-end predicted-vs-measured experiment: it
// re-simulates the fig6 grid (interactions vs k at n = 960, with the
// same journal/resume plumbing as the figure) and overlays the
// analytical twin's predictions for the same points, charting both and
// tabulating the per-point disagreement. The twin never sees the trial
// data — the rel_err column is a genuine out-of-sample comparison, the
// wide-grid companion to the committed gate in `make twin-check`.
func predictExp(ctx context.Context, opts harness.RunOptions, trials int, seed uint64, outDir string, workers, kmax int, eng harness.Engine) error {
	var ks []int
	for _, k := range []int{2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24} {
		if k <= kmax {
			ks = append(ks, k)
		}
	}
	cfg := harness.Fig6Config{Ks: ks, Trials: trials, Seed: seed, Workers: workers, Engine: eng}
	pts, err := harness.RunFig6Ctx(ctx, cfg, opts)
	if err != nil {
		return err
	}

	sim := harness.Fig6Series(pts)
	sim.Name = "simulated " + sim.Name
	pred := report.Series{Name: "predicted (twin)"}
	tbl := report.NewTable("n", "k", "model", "fidelity",
		"predicted", "interval_low", "interval_high", "sim_mean", "sim_ci95", "rel_err")
	worst := 0.0
	for _, pt := range pts {
		pr, err := twin.Auto(twin.Spec{N: pt.N, K: pt.K})
		if err != nil {
			return fmt.Errorf("predict n=%d k=%d: %w", pt.N, pt.K, err)
		}
		re := math.Abs(pr.ExpectedInteractions-pt.Mean) / (1 + math.Abs(pt.Mean))
		if re > worst {
			worst = re
		}
		pred.X = append(pred.X, float64(pt.K))
		pred.Y = append(pred.Y, pr.ExpectedInteractions)
		tbl.AddRow(pt.N, pt.K, pr.Model, string(pr.Fidelity),
			pr.ExpectedInteractions, pr.IntervalLow, pr.IntervalHigh, pt.Mean, pt.CI95, re)
	}

	chart := &report.LineChart{
		Title:  "Predicted vs simulated interactions at n=960 (log scale)",
		XLabel: "k", YLabel: "mean interactions", LogY: true,
		Series: []report.Series{sim, pred},
	}
	fmt.Print(chart.String())
	fmt.Print(tbl.String())
	fmt.Printf("worst rel_err %.4f (mean-field budget %.2f)\n", worst, twin.RelErrFluid)

	path, err := harness.WriteCSVFile(outDir, "predict.csv", tbl)
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	jpath, err := harness.SaveJSON(outDir, "predict.json", harness.ResultDoc{
		Experiment: "predict", Seed: seed, Trials: trials, Points: pts,
	})
	if err != nil {
		return err
	}
	fmt.Println("wrote", jpath)
	return nil
}
