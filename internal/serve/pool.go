package serve

// The executor edge of the service: a fixed worker pool behind an
// explicit bounded admission queue. Admission is the backpressure
// mechanism — when the queue is full, TrySubmit fails and the HTTP layer
// answers 429 instead of piling up goroutines. Workers execute trials
// through the harness's context plumbing, so cancelling the pool's base
// context (SIGINT) aborts in-flight trials at their next poll; completed
// trials are already journaled and cached. Wall-clock use is legitimate
// here (trial wall times are metadata, not results) — this file is in
// the determinism analyzer's HTTP/executor-edge allowlist for
// internal/serve.

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Admission errors. The HTTP layer maps ErrQueueFull to 429 (with
// Retry-After) and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue is full")
	ErrDraining  = errors.New("serve: server is draining")
)

// DefaultQueueDepth bounds the admission queue when a Config leaves it 0.
const DefaultQueueDepth = 64

// runTrialFn is harness.RunTrialCtx, indirected so tests can pin
// admission and drain behavior with a controllable executor. Swapped
// only before a pool exists and restored after it closes.
var runTrialFn = harness.RunTrialCtx

// Job is one admitted trial: submit it, then Wait for its outcome.
// Completion is a broadcast (the done channel closes once the outcome
// is stored), so any number of coalesced waiters can Wait on one job.
type Job struct {
	Spec harness.TrialSpec
	Key  string
	done chan struct{} // closed after out is stored
	out  outcome

	// parent is the submitting request's span; the worker roots the
	// trial's span subtree under it (nil = untraced). queueSpan covers
	// admission to worker pickup.
	parent    *span.ActiveSpan
	queueSpan *span.ActiveSpan
	queueWall span.Stopwatch

	enqueued time.Time // set at admission, for the queue-wait histogram
}

type outcome struct {
	rec  Record
	body []byte
	err  error
}

// Wait blocks until the job completes or ctx fires. The job keeps
// running (and still fills the cache and journal) if the waiter gives
// up.
func (j *Job) Wait(ctx context.Context) (Record, []byte, error) {
	select {
	case <-j.done:
		return j.out.rec, j.out.body, j.out.err
	case <-ctx.Done():
		return Record{}, nil, ctx.Err()
	}
}

// Pool is the bounded execution core: admission queue, workers, the
// content-addressed cache, and the optional journal that persists
// results across restarts. Create one with NewPool, stop it with Close.
type Pool struct {
	ctx     context.Context
	cancel  context.CancelFunc
	opts    harness.RunOptions
	journal *harness.Journal
	cache   *Cache
	flight  *flightGroup
	workers int

	mu     sync.RWMutex // serializes closed vs. sends on queue
	closed bool         // guarded by mu
	queue  chan *Job
	wg     sync.WaitGroup

	inflight atomic.Int64

	// Metrics are resolved once at construction (obs registry contract:
	// no name lookups on the hot path).
	cacheHits   obs.Counter
	journalHits obs.Counter
	cacheMisses obs.Counter
	evictions   obs.Counter
	admitted    obs.Counter
	rejected    obs.Counter
	coalesced   obs.Counter
	trialsRun   obs.Counter
	trialErrors obs.Counter
	journalErrs obs.Counter
	depthGauge  obs.Gauge
	inflightG   obs.Gauge
	trialWallUS obs.Histogram
	queueWaitUS obs.Histogram
}

// NewPool starts workers goroutines consuming a queueDepth-bounded
// admission queue (0 selects GOMAXPROCS workers / DefaultQueueDepth).
// opts is the per-trial execution policy; its Journal and Progress
// fields are ignored (the pool journals completed trials itself through
// journal, which may be nil). reg may be nil for no metrics.
func NewPool(workers, queueDepth int, opts harness.RunOptions, journal *harness.Journal, cache *Cache, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	if cache == nil {
		cache = NewCache(0)
	}
	if reg == nil {
		reg = obs.Nop()
	}
	opts.Journal = nil
	opts.Progress = 0
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		ctx: ctx, cancel: cancel,
		opts: opts, journal: journal, cache: cache, workers: workers,
		flight: newFlightGroup(),
		queue:  make(chan *Job, queueDepth),

		cacheHits:   reg.Counter("serve/cache_hits"),
		journalHits: reg.Counter("serve/journal_hits"),
		cacheMisses: reg.Counter("serve/cache_misses"),
		evictions:   reg.Counter("serve/cache_evictions"),
		admitted:    reg.Counter("serve/admitted"),
		rejected:    reg.Counter("serve/rejected"),
		coalesced:   reg.Counter("serve/coalesced"),
		trialsRun:   reg.Counter("serve/trials_run"),
		trialErrors: reg.Counter("serve/trial_errors"),
		journalErrs: reg.Counter("serve/journal_errors"),
		depthGauge:  reg.Gauge("serve/queue_depth"),
		inflightG:   reg.Gauge("serve/inflight"),
		trialWallUS: reg.Histogram("serve/trial_wall_us"),
		queueWaitUS: reg.Histogram("serve/queue_wait_us"),
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Lookup serves key from the LRU or, failing that, from the journal a
// restarted server loaded from disk (re-encoding the entry and warming
// the LRU). The source string is "lru" or "journal".
func (p *Pool) Lookup(key string) (body []byte, source string, ok bool) {
	if body, ok := p.cache.Get(key); ok {
		p.cacheHits.Inc()
		return body, "lru", true
	}
	if p.journal != nil {
		if e, ok := p.journal.LookupKey(key); ok {
			rec := Record{SpecKey: key, Result: e.Result, WallUS: e.WallUS}
			if body, err := rec.Encode(); err == nil {
				p.evictions.Add(uint64(p.cache.Put(key, body)))
				p.journalHits.Inc()
				return body, "journal", true
			}
		}
	}
	p.cacheMisses.Inc()
	return nil, "", false
}

// newJob wraps spec for submission. parent (nil = untraced) becomes the
// root of the job's span subtree; the queue span starts here so it
// covers the full admission-to-pickup wait, and it must exist before
// the job is visible to a worker.
func newJob(spec harness.TrialSpec, parent *span.ActiveSpan) *Job {
	j := &Job{
		Spec:     spec,
		Key:      harness.SpecKey(spec),
		done:     make(chan struct{}),
		parent:   parent,
		enqueued: time.Now(),
	}
	j.queueSpan = parent.Child("queue")
	j.queueWall = span.StartWall()
	return j
}

// abandonQueue ends the queue span of a job that never reached a
// worker (rejected, drained, cancelled, or coalesced at admission).
func (j *Job) abandonQueue(reason string) {
	j.queueWall.StopInto(j.queueSpan)
	j.queueSpan.SetAttr("outcome", reason).End()
}

// failAdmission completes a job that was turned away at admission: the
// queue span ends and err is stored and broadcast through done. This
// must run on every abandon path, because between flight.join and
// flight.leave a concurrent submitter may have coalesced onto this job
// — closing done with the admission error is what lets that waiter
// fail fast instead of blocking forever on a job no worker will run.
func (j *Job) failAdmission(reason string, err error) {
	j.abandonQueue(reason)
	j.out = outcome{err: err}
	close(j.done)
}

// TrySubmit admits spec without blocking: ErrQueueFull when the
// admission queue is at capacity, ErrDraining after Close. An identical
// spec already in flight is coalesced — the existing job is returned
// and no new work enters the queue. parent (nil = untraced) roots the
// job's span subtree.
func (p *Pool) TrySubmit(spec harness.TrialSpec, parent *span.ActiveSpan) (*Job, error) {
	j := newJob(spec, parent)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		j.failAdmission("draining", ErrDraining)
		return nil, ErrDraining
	}
	if prior, joined := p.flight.join(j.Key, j); joined {
		p.coalesced.Inc()
		j.abandonQueue("coalesced")
		parent.SetAttr("coalesced", "true")
		return prior, nil
	}
	select {
	case p.queue <- j:
		p.admitted.Inc()
		p.depthGauge.Add(1)
		return j, nil
	default:
		p.flight.leave(j.Key, j)
		p.rejected.Inc()
		j.failAdmission("rejected", ErrQueueFull)
		return nil, ErrQueueFull
	}
}

// Submit admits spec, blocking until queue space frees up, ctx fires, or
// the pool drains. Sweeps use it so a long point applies backpressure to
// its own connection instead of failing mid-stream. In-flight identical
// specs coalesce exactly as in TrySubmit.
func (p *Pool) Submit(ctx context.Context, spec harness.TrialSpec, parent *span.ActiveSpan) (*Job, error) {
	j := newJob(spec, parent)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		j.failAdmission("draining", ErrDraining)
		return nil, ErrDraining
	}
	if prior, joined := p.flight.join(j.Key, j); joined {
		p.coalesced.Inc()
		j.abandonQueue("coalesced")
		parent.SetAttr("coalesced", "true")
		return prior, nil
	}
	// Close cancels p.ctx before closing the queue channel, so a sender
	// blocked here always exits via ErrDraining rather than racing the
	// close.
	select {
	case p.queue <- j:
		p.admitted.Inc()
		p.depthGauge.Add(1)
		return j, nil
	case <-ctx.Done():
		p.flight.leave(j.Key, j)
		j.failAdmission("cancelled", ctx.Err())
		return nil, ctx.Err()
	case <-p.ctx.Done():
		p.flight.leave(j.Key, j)
		j.failAdmission("draining", ErrDraining)
		return nil, ErrDraining
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.depthGauge.Add(-1)
		p.queueWaitUS.Observe(uint64(time.Since(j.enqueued).Microseconds()))
		j.queueWall.StopInto(j.queueSpan)
		j.queueSpan.End()
		out := p.execute(j)
		// Store-then-close is the broadcast: every Wait (including
		// coalesced waiters that joined later) observes out after done.
		// Leaving the flight group first keeps the window where a new
		// submitter could join a finished job closed — post-completion
		// submissions start fresh and hit the cache instead.
		p.flight.leave(j.Key, j)
		j.out = out
		close(j.done)
	}
}

// execute runs one admitted job. An identical spec may have completed
// while this one sat in the queue, so the cache is consulted once more
// before paying for the simulation.
func (p *Pool) execute(j *Job) outcome {
	if body, ok := p.cache.Get(j.Key); ok {
		p.cacheHits.Inc()
		var rec Record
		if err := json.Unmarshal(body, &rec); err == nil {
			return outcome{rec: rec, body: body}
		}
	}
	p.inflight.Add(1)
	p.inflightG.Add(1)
	defer func() {
		p.inflight.Add(-1)
		p.inflightG.Add(-1)
	}()
	ctx := p.ctx
	if j.parent != nil {
		// The worker roots the harness's trial/attempt/engine spans
		// under the submitting request's span.
		ctx = span.NewContext(ctx, j.parent)
	}
	start := time.Now()
	res, err := runTrialFn(ctx, j.Spec, p.opts)
	wall := time.Since(start)
	if err != nil {
		p.trialErrors.Inc()
		return outcome{err: err}
	}
	p.trialsRun.Inc()
	p.trialWallUS.Observe(uint64(wall.Microseconds()))
	rec := Record{SpecKey: j.Key, Result: res, WallUS: uint64(wall.Microseconds())}
	body, encErr := rec.Encode()
	if encErr != nil {
		return outcome{err: encErr}
	}
	if p.journal != nil {
		// A journal append failure must not fail the response — the
		// result is correct, only its persistence is degraded.
		if jerr := p.journal.Append(j.Spec, res, wall); jerr != nil {
			p.journalErrs.Inc()
		}
	}
	p.evictions.Add(uint64(p.cache.Put(j.Key, body)))
	return outcome{rec: rec, body: body}
}

// Depth reports the number of queued (not yet picked up) jobs.
func (p *Pool) Depth() int { return len(p.queue) }

// QueueCap reports the admission queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Inflight reports how many trials are executing right now.
func (p *Pool) Inflight() int { return int(p.inflight.Load()) }

// Closed reports whether the pool has begun draining.
func (p *Pool) Closed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// Close drains the pool: the base context is cancelled first (in-flight
// trials abort at their next cancellation poll, queued jobs fail fast),
// then the queue is closed and the workers are awaited. Idempotent.
func (p *Pool) Close() {
	p.cancel()
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
