// Graphchurn: the scenario engine in one tour — what happens to uniform
// k-partition when the paper's model assumptions are relaxed one axis at
// a time.
//
// The paper proves convergence on the complete interaction graph, under
// global fairness, over a fixed population. This example relaxes each
// assumption and watches the protocol fail in three characteristic ways:
//
//  1. Topology: the same trials on a ring mostly group-freeze short of
//     uniformity, and on a star they always do (the hub commits on the
//     first productive interaction and every leaf is stranded — the
//     model checker in internal/explore proves no uniform configuration
//     is reachable at all).
//
//  2. Fairness: a weakly fair adversary (every pair still meets
//     infinitely often) stalls the protocol forever on the complete
//     graph, while the fairness meter certifies the schedule starved no
//     pair — the stall is scheduling, not starvation.
//
//  3. Churn: a single crash after stabilization can leave a committed
//     configuration whose group sizes can never match the survivors'
//     target — the protocol is not self-stabilizing, so the run freezes.
//
//     go run ./examples/graphchurn
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/harness"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

const (
	n      = 12
	k      = 3
	trials = 8
	cap1M  = 1_000_000
)

// tally runs `trials` seeded trials of spec and counts the outcomes.
func tally(spec harness.TrialSpec) (converged, frozen, capped int) {
	for t := 0; t < trials; t++ {
		spec.Seed = uint64(0xc0ffee + 7*t)
		r, err := harness.RunTrial(spec)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case r.Converged:
			converged++
		case r.Frozen:
			frozen++
		default:
			capped++
		}
	}
	return
}

func main() {
	// --- Act 1: restricted interaction graphs -------------------------
	fmt.Printf("act 1: topology (n=%d, k=%d, %d trials each)\n\n", n, k, trials)
	fmt.Println("topology   converged  frozen  capped")
	for _, topo := range []string{"complete", "ring", "star", "grid:3x4"} {
		ts, err := harness.ParseTopology(topo)
		if err != nil {
			log.Fatal(err)
		}
		spec := harness.TrialSpec{N: n, K: k, Topology: ts}
		if !ts.IsComplete() {
			spec.MaxInteractions = cap1M // scenario runs must be capped
		}
		c, f, x := tally(spec)
		fmt.Printf("%-9s  %9d  %6d  %6d\n", topo, c, f, x)
	}
	fmt.Println("\nthe complete graph always converges (Theorem 1); the star never")
	fmt.Println("does — its first productive interaction commits the hub and no")
	fmt.Println("uniform configuration is reachable after that.")

	// --- Act 2: weak fairness, audited by the meter -------------------
	fmt.Println("\nact 2: weak fairness on the complete graph")
	proto, err := core.New(k)
	if err != nil {
		log.Fatal(err)
	}
	target, err := proto.TargetCounts(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscheduler       converged  interactions  starved-pairs  gini   max-gap")
	for _, tc := range []struct {
		name string
		s    sched.Scheduler
	}{
		{"uniform", sched.NewRandom(7)},
		{"weak-adversary", sched.NewWeakAdversary(7, sched.WeakOptions{IsFree: proto.IsFree})},
	} {
		pop := population.New(proto, n)
		meter := fairness.NewMeter(n)
		res, err := sim.Run(pop, tc.s, sim.NewCountTarget(proto.CanonMap(), target),
			sim.Options{MaxInteractions: 200_000, Hooks: []sim.Hook{meter}})
		if err != nil {
			log.Fatal(err)
		}
		rep := meter.Report()
		fmt.Printf("%-14s  %9v  %12d  %13d  %.3f  %7d\n",
			tc.name, res.Converged, res.Interactions, rep.StarvedPairs, rep.Gini, rep.MaxGap)
	}
	fmt.Println("\nthe adversary's schedule starves no pair (weakly fair by the")
	fmt.Println("meter's own audit) yet the protocol never leaves the handshake")
	fmt.Println("oscillation: convergence genuinely needs global fairness.")

	// --- Act 3: churn -------------------------------------------------
	fmt.Println("\nact 3: churn (crash one committed agent after stabilization)")
	churn, err := harness.ParseChurn("at=2000,events=1,leave=1,crash")
	if err != nil {
		log.Fatal(err)
	}
	spec := harness.TrialSpec{
		N: n, K: k, Seed: 0xdead,
		MaxInteractions: cap1M,
		Churn:           churn,
	}
	r, err := harness.RunTrial(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstarted with n=%d, crashed 1 agent at interaction 2000, ended with n=%d\n",
		n, r.FinalN)
	fmt.Printf("converged=%v frozen=%v after %d interactions\n",
		r.Converged, r.Frozen, r.Interactions)
	fmt.Println("\nwith n-1 = 11 agents the target is (4,4,3) plus free agents, but the")
	fmt.Println("survivors are already committed near (4,4,4-1): whether the run can")
	fmt.Println("re-balance depends on which group the crash hit — the protocol has")
	fmt.Println("no rule to un-commit an agent, so some crashes freeze it forever.")
	fmt.Println("(EXPERIMENTS.md's churn recipe sweeps this into a survival curve.)")
}
