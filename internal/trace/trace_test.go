package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

func record(t *testing.T, n, k int, steps uint64) (*core.Protocol, *Recorder, sim.Result) {
	t.Helper()
	p := core.MustNew(k)
	pop := population.New(p, n)
	rec := &Recorder{}
	res, err := sim.Run(pop, sched.NewRandom(42), sim.After{N: steps},
		sim.Options{Hooks: []sim.Hook{rec}})
	if err != nil {
		t.Fatal(err)
	}
	return p, rec, res
}

func TestRecorderCapturesAll(t *testing.T) {
	_, rec, res := record(t, 10, 3, 500)
	if uint64(len(rec.Events)) != res.Interactions {
		t.Fatalf("recorded %d events for %d interactions", len(rec.Events), res.Interactions)
	}
	if rec.Header.N != 10 || rec.Header.Protocol != "uniform-3-partition" {
		t.Fatalf("header %+v", rec.Header)
	}
	for i, e := range rec.Events {
		if e.Step != uint64(i+1) {
			t.Fatalf("event %d has step %d", i, e.Step)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, rec, _ := record(t, 8, 3, 300)
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != rec.Header {
		t.Fatalf("header mismatch: %+v vs %+v", hdr, rec.Header)
	}
	if len(events) != len(rec.Events) {
		t.Fatalf("event count %d vs %d", len(events), len(rec.Events))
	}
	for i := range events {
		if events[i] != rec.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, events[i], rec.Events[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, _, err := Decode(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, _, err := Decode(strings.NewReader(`{"protocol":"x","n":3,"states":4}` + "\ngarbage\n")); err == nil {
		t.Error("garbage event accepted")
	}
}

func TestReplayMatches(t *testing.T) {
	p, rec, _ := record(t, 9, 4, 1000)
	pop, err := Replay(p, rec.Header, rec.Events)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Interactions() != 1000 {
		t.Fatalf("replay applied %d interactions", pop.Interactions())
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	p, rec, _ := record(t, 9, 4, 200)

	// Wrong protocol size.
	if _, err := Replay(core.MustNew(5), rec.Header, rec.Events); !errors.Is(err, ErrDiverged) {
		t.Errorf("state-count mismatch not detected: %v", err)
	}

	// Tamper with an event's before-state.
	ev := append([]Event(nil), rec.Events...)
	ev[50].BeforeP ^= 1
	if _, err := Replay(p, rec.Header, ev); !errors.Is(err, ErrDiverged) {
		t.Errorf("before-state tamper not detected: %v", err)
	}

	// Tamper with an after-state.
	ev = append([]Event(nil), rec.Events...)
	ev[10].AfterP = ev[10].BeforeP ^ 1
	if _, err := Replay(p, rec.Header, ev); !errors.Is(err, ErrDiverged) {
		t.Errorf("after-state tamper not detected: %v", err)
	}

	// Invalid pair.
	ev = append([]Event(nil), rec.Events...)
	ev[0].J = ev[0].I
	if _, err := Replay(p, rec.Header, ev); !errors.Is(err, ErrDiverged) {
		t.Errorf("self pair not detected: %v", err)
	}
}

func TestWriterStreamsEquivalentTrace(t *testing.T) {
	p := core.MustNew(3)
	pop := population.New(p, 8)
	var buf bytes.Buffer
	w := &Writer{W: &buf}
	if _, err := sim.Run(pop, sched.NewRandom(7), sim.After{N: 400},
		sim.Options{Hooks: []sim.Hook{w}}); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	hdr, events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 400 {
		t.Fatalf("streamed %d events", len(events))
	}
	if _, err := Replay(p, hdr, events); err != nil {
		t.Fatal(err)
	}
}

// Determinism: the same seed must produce bit-identical traces — the
// reproducibility contract EXPERIMENTS.md relies on.
func TestSameSeedSameTrace(t *testing.T) {
	_, rec1, _ := record(t, 12, 4, 600)
	_, rec2, _ := record(t, 12, 4, 600)
	if len(rec1.Events) != len(rec2.Events) {
		t.Fatal("trace lengths differ for identical seeds")
	}
	for i := range rec1.Events {
		if rec1.Events[i] != rec2.Events[i] {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
}
