package harness

import (
	"fmt"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/protocols/composed"
	"repro/internal/protocols/interval"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// This file implements the protocol-comparison ablations (DESIGN.md A1/A2):
// the paper's exact protocol vs repeated bipartition vs the approximate
// interval baseline, on state budget, output quality (spread), and
// interactions to stability. Because the three protocols stabilize in
// different senses, each Contender carries its own stop condition factory.

// Contender is one protocol entered into a comparison.
type Contender struct {
	Name string
	// Build returns the protocol instance and a stop condition detecting
	// ITS notion of stability for n agents.
	Build func(k, n int) (protocol.Protocol, sim.StopCondition, error)
	// Supports reports whether the contender is defined at this k.
	Supports func(k int) bool
}

// Contenders returns the standard lineup.
func Contenders() []Contender {
	return []Contender{
		{
			Name: "k-partition (paper)",
			Build: func(k, n int) (protocol.Protocol, sim.StopCondition, error) {
				p := Proto(k)
				tgt, err := p.TargetCounts(n)
				if err != nil {
					return nil, nil, err
				}
				return p, sim.NewCountTarget(p.CanonMap(), tgt), nil
			},
			Supports: func(k int) bool { return k >= 2 },
		},
		{
			Name: "repeated bipartition",
			Build: func(k, n int) (protocol.Protocol, sim.StopCondition, error) {
				p, err := composed.New(k)
				if err != nil {
					return nil, nil, err
				}
				return p, sim.NewCountsPredicate(p.Stable), nil
			},
			Supports: func(k int) bool { return k >= 2 && k&(k-1) == 0 },
		},
		{
			Name: "interval baseline",
			Build: func(k, n int) (protocol.Protocol, sim.StopCondition, error) {
				p, err := interval.New(k)
				if err != nil {
					return nil, nil, err
				}
				return p, sim.NewCountsPredicate(p.Stable), nil
			},
			Supports: func(k int) bool { return k >= 2 },
		},
	}
}

// CompareResult is one contender's aggregate at one (n, k) point.
type CompareResult struct {
	Name        string
	N, K        int
	States      int
	Trials      int
	Mean        float64 // mean interactions to its stability notion
	CI95        float64
	MeanSpread  float64 // mean final group-size spread
	WorstSpread int
	Unconverged int
}

// Compare runs every supporting contender at (n, k) for the given number
// of trials and returns one row per contender.
func Compare(n, k, trials int, seed uint64, maxInteractions uint64) ([]CompareResult, error) {
	var out []CompareResult
	for ci, c := range Contenders() {
		if !c.Supports(k) {
			continue
		}
		row := CompareResult{Name: c.Name, N: n, K: k, Trials: trials}
		var xs []float64
		for t := 0; t < trials; t++ {
			proto, stop, err := c.Build(k, n)
			if err != nil {
				return nil, fmt.Errorf("compare %q: %w", c.Name, err)
			}
			row.States = proto.NumStates()
			pop := population.New(proto, n)
			s := sched.NewRandom(rng.StreamSeed(seed, uint64(ci)<<32|uint64(n)<<8|uint64(k), uint64(t)))
			res, err := sim.Run(pop, s, stop, sim.Options{MaxInteractions: maxInteractions})
			if err != nil {
				return nil, fmt.Errorf("compare %q: %w", c.Name, err)
			}
			if !res.Converged {
				row.Unconverged++
				continue
			}
			xs = append(xs, float64(res.Interactions))
			sp := res.Spread()
			row.MeanSpread += float64(sp)
			if sp > row.WorstSpread {
				row.WorstSpread = sp
			}
		}
		if n := len(xs); n > 0 {
			row.Mean = meanOf(xs)
			row.CI95 = ci95Of(xs)
			row.MeanSpread /= float64(n)
		}
		out = append(out, row)
	}
	return out, nil
}

// SchedulerAblation compares the random scheduler against the
// deterministic sweep scheduler at (n, k): both are fair enough in
// practice for this protocol (every pair recurs), but their interaction
// counts differ, quantifying the scheduler's influence on the time metric
// (DESIGN.md A3).
type SchedulerAblationRow struct {
	Scheduler   string
	N, K        int
	Trials      int
	Mean        float64
	CI95        float64
	Unconverged int
}

// RunSchedulerAblation executes the ablation. The sweep scheduler is
// deterministic, so its "trials" differ only in nothing — it runs once.
func RunSchedulerAblation(n, k, trials int, seed uint64, maxInteractions uint64) ([]SchedulerAblationRow, error) {
	p := Proto(k)
	tgt, err := p.TargetCounts(n)
	if err != nil {
		return nil, err
	}

	random := SchedulerAblationRow{Scheduler: "random", N: n, K: k, Trials: trials}
	var xs []float64
	for t := 0; t < trials; t++ {
		pop := population.New(p, n)
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(seed, 99, uint64(t))),
			sim.NewCountTarget(p.CanonMap(), tgt), sim.Options{MaxInteractions: maxInteractions})
		if err != nil {
			return nil, err
		}
		if !res.Converged {
			random.Unconverged++
			continue
		}
		xs = append(xs, float64(res.Interactions))
	}
	random.Mean, random.CI95 = meanOf(xs), ci95Of(xs)

	sweep := SchedulerAblationRow{Scheduler: "sweep", N: n, K: k, Trials: 1}
	pop := population.New(p, n)
	res, err := sim.Run(pop, sched.NewSweep(), sim.NewCountTarget(p.CanonMap(), tgt),
		sim.Options{MaxInteractions: maxInteractions})
	if err != nil {
		return nil, err
	}
	if res.Converged {
		sweep.Mean = float64(res.Interactions)
	} else {
		sweep.Unconverged = 1
	}
	return []SchedulerAblationRow{random, sweep}, nil
}
