// Package sched provides interaction schedulers: the adversary that decides
// which pair of agents meets next (Section 2.1 of the paper).
//
// The paper's correctness result assumes global fairness — if a
// configuration C occurs infinitely often, every configuration reachable
// from C in one step also occurs infinitely often. Global fairness is a
// property of infinite executions and cannot be mechanized directly; this
// package therefore provides:
//
//   - Random: the uniform-random scheduler used in the paper's Section 5,
//     whose infinite executions are globally fair with probability 1;
//   - Sweep: a deterministic cyclic scheduler that enumerates all pairs
//     (weakly fair — every pair fires infinitely often — but NOT globally
//     fair in general);
//   - Hostile: an adversarial scheduler that exploits the initial/initial'
//     oscillation of Figure 1 to starve the protocol forever, demonstrating
//     that the fairness assumption is necessary;
//   - WeakAdversary (weak.go): a scheduler that is PROVABLY weakly fair —
//     a cyclic obligation visits every pair infinitely often — yet steers
//     the protocol into the same handshake oscillation, separating weak
//     from global fairness without ever starving a pair.
//
// Exhaustive verification of the fairness-dependent liveness lives in
// internal/explore instead, where reachability over the whole configuration
// graph replaces the infinite-schedule quantifier.
package sched

import (
	"repro/internal/protocol"
	"repro/internal/rng"
)

// View is the read-only access a scheduler gets to the population. The
// *population.Population type satisfies it.
type View interface {
	// N returns the number of agents.
	N() int
	// State returns agent i's current state.
	State(i int) protocol.State
}

// Scheduler picks the next interacting pair. Implementations are stateful
// and not safe for concurrent use; each trial owns its scheduler.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Next returns the next (initiator, responder) pair, two distinct
	// agent indices in [0, v.N()).
	Next(v View) (int, int)
}

// Func adapts a function to the Scheduler interface; used to plug in
// protocol-aware strategies (e.g. core.Director) that live in packages
// which cannot import sched without creating a cycle in their tests.
type Func struct {
	// SchedName is returned by Name.
	SchedName string
	// F picks the next pair.
	F func(v View) (int, int)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.SchedName }

// Next implements Scheduler.
func (f Func) Next(v View) (int, int) { return f.F(v) }

// Random selects unordered pairs uniformly at random, the interaction model
// of the paper's simulations ("selecting two agents uniformly at random in
// each configuration").
type Random struct {
	r *rng.Rand
}

// NewRandom returns a Random scheduler with its own generator seeded by
// seed.
func NewRandom(seed uint64) *Random {
	return &Random{r: rng.New(seed)}
}

// NewRandomFrom returns a Random scheduler drawing from r.
func NewRandomFrom(r *rng.Rand) *Random { return &Random{r: r} }

// Name implements Scheduler.
func (s *Random) Name() string { return "random" }

// RNG exposes the scheduler's generator for checkpoint capture/restore;
// the generator is the scheduler's only dynamic state.
func (s *Random) RNG() *rng.Rand { return s.r }

// Next implements Scheduler.
func (s *Random) Next(v View) (int, int) {
	return s.r.Pair(v.N())
}

// Sweep cycles deterministically through all ordered pairs (i, j), i != j,
// in lexicographic order. Every pair occurs infinitely often (weak
// fairness), but the schedule is oblivious to the configuration, so it does
// not guarantee global fairness; it exists to let tests and ablations
// compare scheduler assumptions.
type Sweep struct {
	i, j int
}

// NewSweep returns a Sweep scheduler starting at pair (0, 1).
func NewSweep() *Sweep { return &Sweep{i: 0, j: 1} }

// Name implements Scheduler.
func (s *Sweep) Name() string { return "sweep" }

// Next implements Scheduler.
func (s *Sweep) Next(v View) (int, int) {
	n := v.N()
	if s.i >= n || s.j >= n { // population smaller than cursor; restart
		s.i, s.j = 0, 1
	}
	i, j := s.i, s.j
	// Advance to the next ordered pair with i != j.
	s.j++
	if s.j == s.i {
		s.j++
	}
	if s.j >= n {
		s.j = 0
		s.i++
		if s.i >= n {
			s.i = 0
			s.j = 1
		}
	}
	return i, j
}

// Hostile is an unfair adversary for protocols with the initial/initial'
// handshake (the paper's Figure 1 scenario): whenever it can find two free
// agents whose I-states are equal, it schedules them, forcing rules 1/2 to
// oscillate the whole free set between initial and initial' without ever
// letting rule 5 fire. If no such pair exists it falls back to a random
// pair. Against the k-partition protocol from the all-initial configuration
// it prevents stabilization forever.
type Hostile struct {
	r    *rng.Rand
	free func(protocol.State) bool
	scan []int
}

// NewHostile returns a Hostile scheduler. isFree classifies the target
// protocol's I-states (for the k-partition protocol, states 0 and 1).
func NewHostile(seed uint64, isFree func(protocol.State) bool) *Hostile {
	return &Hostile{r: rng.New(seed), free: isFree}
}

// Name implements Scheduler.
func (s *Hostile) Name() string { return "hostile" }

// Next implements Scheduler.
func (s *Hostile) Next(v View) (int, int) {
	n := v.N()
	// Find two free agents in the same I-state. With the all-initial start
	// the free set always has uniform parity under this scheduler, so the
	// first two free agents found match.
	s.scan = s.scan[:0]
	var first = -1
	for i := 0; i < n; i++ {
		st := v.State(i)
		if !s.free(st) {
			continue
		}
		if first == -1 {
			first = i
			continue
		}
		if v.State(first) == st {
			return first, i
		}
		s.scan = append(s.scan, i)
	}
	// No same-state free pair; any two equal among the rest?
	for _, i := range s.scan {
		for _, j := range s.scan {
			if i != j && v.State(i) == v.State(j) {
				return i, j
			}
		}
	}
	return s.r.Pair(n)
}
