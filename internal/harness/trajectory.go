package harness

import (
	"fmt"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Convergence trajectories: the paper evaluates only the endpoint (total
// interactions to stability); this auxiliary experiment shows HOW the
// partition becomes uniform — the mean group-size spread as a function of
// elapsed interactions. The spread collapses quickly to ~1-2 and then
// plateaus while the protocol finishes the last grouping, visualizing why
// the final grouping dominates the cost (Figure 4's observation from a
// different angle).

// TrajectoryConfig parameterizes the experiment.
type TrajectoryConfig struct {
	N      int
	Ks     []int
	Trials int
	Seed   uint64
	// Samples is the number of equally spaced sample points; the horizon
	// is per-k: HorizonFactor × (mean stabilization estimate from a pilot
	// trial), so curves for different k are comparable.
	Samples       int
	HorizonFactor float64
}

func (c *TrajectoryConfig) fill() {
	if c.N == 0 {
		c.N = 60
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{3, 6}
	}
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Samples == 0 {
		c.Samples = 40
	}
	if c.HorizonFactor == 0 {
		c.HorizonFactor = 1.2
	}
}

// TrajectorySeries is one k's mean-spread curve.
type TrajectorySeries struct {
	K          int
	Horizon    uint64    // interactions spanned
	X          []float64 // sample positions (interactions)
	MeanSpread []float64
	// StableFrac[i] is the fraction of trials already stable at sample i.
	StableFrac []float64
}

// RunTrajectory executes the experiment.
func RunTrajectory(cfg TrajectoryConfig) ([]TrajectorySeries, error) {
	cfg.fill()
	var out []TrajectorySeries
	for ki, k := range cfg.Ks {
		p := Proto(k)
		target, err := p.TargetCounts(cfg.N)
		if err != nil {
			return nil, err
		}

		// Pilot: estimate the horizon from three quick runs.
		var pilot uint64
		for t := 0; t < 3; t++ {
			res, err := RunTrial(TrialSpec{N: cfg.N, K: k, Seed: rng.StreamSeed(cfg.Seed, 7777, uint64(ki*3+t))})
			if err != nil {
				return nil, err
			}
			pilot += res.Interactions
		}
		horizon := uint64(float64(pilot/3) * cfg.HorizonFactor)
		if horizon < uint64(cfg.Samples) {
			horizon = uint64(cfg.Samples)
		}
		interval := horizon / uint64(cfg.Samples)
		if interval == 0 {
			interval = 1
		}

		s := TrajectorySeries{K: k, Horizon: horizon}
		sums := make([]float64, cfg.Samples+1)
		stable := make([]float64, cfg.Samples+1)
		counts := make([]int, cfg.Samples+1)
		for t := 0; t < cfg.Trials; t++ {
			pop := population.New(p, cfg.N)
			rec := &sim.SpreadRecorder{Interval: interval}
			ct := sim.NewCountTarget(p.CanonMap(), target)
			ct.Init(pop)
			// Run to the horizon, sampling spread; track stability via
			// the count-target detector without stopping.
			stableAt := uint64(0)
			hook := sim.StepFunc(func(pop *population.Population, st sim.StepInfo) {
				if ct.Step(pop, st) && stableAt == 0 {
					stableAt = pop.Interactions()
				}
			})
			if _, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(cfg.Seed, uint64(1000+ki), uint64(t))),
				sim.After{N: horizon}, sim.Options{Hooks: []sim.Hook{rec, hook}}); err != nil {
				return nil, err
			}
			for i := 0; i <= cfg.Samples && i < len(rec.Samples); i++ {
				sums[i] += float64(rec.Samples[i])
				counts[i]++
				if stableAt != 0 && uint64(i)*interval >= stableAt {
					stable[i]++
				}
			}
		}
		for i := 0; i <= cfg.Samples; i++ {
			if counts[i] == 0 {
				break
			}
			s.X = append(s.X, float64(uint64(i)*interval))
			s.MeanSpread = append(s.MeanSpread, sums[i]/float64(counts[i]))
			s.StableFrac = append(s.StableFrac, stable[i]/float64(cfg.Trials))
		}
		out = append(out, s)
	}
	return out, nil
}

// TrajectoryTable renders the curves.
func TrajectoryTable(series []TrajectorySeries) *report.Table {
	t := report.NewTable("k", "interactions", "mean_spread", "stable_fraction")
	for _, s := range series {
		for i := range s.X {
			t.AddRow(s.K, s.X[i], s.MeanSpread[i], s.StableFrac[i])
		}
	}
	return t
}

// TrajectoryChart renders normalized curves (x as a fraction of each k's
// horizon so the series overlay).
func TrajectoryChart(series []TrajectorySeries) *report.LineChart {
	c := &report.LineChart{
		Title:  "Convergence trajectory: mean group-size spread over time",
		XLabel: "fraction of horizon",
		YLabel: "mean spread",
	}
	for _, s := range series {
		rs := report.Series{Name: fmt.Sprintf("k=%d", s.K)}
		for i := range s.X {
			rs.X = append(rs.X, s.X[i]/float64(s.Horizon))
			rs.Y = append(rs.Y, s.MeanSpread[i])
		}
		c.Series = append(c.Series, rs)
	}
	return c
}
