package span

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Trace: "t1", ID: "00000001", Name: "request", WallStartUS: 10, WallDurUS: 100},
		{Trace: "t1", ID: "00000002", Parent: "00000001", Name: "queue", WallStartUS: 11, WallDurUS: 5},
		{Trace: "t1", ID: "00000003", Parent: "00000001", Name: "trial", WallStartUS: 16, WallDurUS: 90},
		{Trace: "t1", ID: "00000004", Parent: "00000003", Name: "phase/grouping", StartSeq: 0, EndSeq: 40},
		{Trace: "t1", ID: "00000005", Parent: "00000003", Name: "phase/grouping", StartSeq: 40, EndSeq: 90},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := sampleSpans()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if eqSpan(in[i]) != eqSpan(out[i]) {
			t.Errorf("span %d round-tripped as %+v, want %+v", i, out[i], in[i])
		}
	}
}

// comparableSpan is Span minus the non-comparable Attrs slice (the
// sample spans carry none).
type comparableSpan struct {
	trace, id, parent, name            string
	startSeq, endSeq, wallStart, wallD uint64
}

func eqSpan(s Span) comparableSpan {
	return comparableSpan{s.Trace, s.ID, s.Parent, s.Name, s.StartSeq, s.EndSeq, s.WallStartUS, s.WallDurUS}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"trace\":\"t\",\"id\":\"1\",\"name\":\"a\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ReadJSONL(strings.NewReader("{\"name\":\"orphan\"}\n")); err == nil {
		t.Fatal("span without trace/id must error")
	}
	spans, err := ReadJSONL(strings.NewReader("\n  \n"))
	if err != nil || len(spans) != 0 {
		t.Fatalf("blank input: %v, %v", spans, err)
	}
}

func TestBuildTreesAndCriticalPath(t *testing.T) {
	trees := BuildTrees(sampleSpans())
	if len(trees) != 1 || trees[0].Trace != "t1" {
		t.Fatalf("trees = %+v", trees)
	}
	roots := trees[0].Roots
	if len(roots) != 1 || roots[0].Span.Name != "request" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("request has %d children, want 2", len(roots[0].Children))
	}
	path := CriticalPath(roots[0])
	var names []string
	for _, n := range path {
		names = append(names, n.Span.Name)
	}
	want := "request trial phase/grouping"
	if strings.Join(names, " ") != want {
		t.Fatalf("critical path %v, want %q", names, want)
	}
	// The chosen phase span is the costlier one (seq delta 50 vs 40).
	if last := path[len(path)-1].Span; last.ID != "00000005" {
		t.Fatalf("critical path leaf %s, want 00000005", last.ID)
	}
}

func TestBuildTreesOrphanBecomesRoot(t *testing.T) {
	trees := BuildTrees([]Span{{Trace: "t", ID: "00000002", Parent: "00000001", Name: "orphan"}})
	if len(trees) != 1 || len(trees[0].Roots) != 1 {
		t.Fatalf("orphan span must render as a root: %+v", trees)
	}
}

func TestRollup(t *testing.T) {
	stats := Rollup(sampleSpans())
	byName := make(map[string]NameStat)
	for _, s := range stats {
		byName[s.Name] = s
	}
	ph := byName["phase/grouping"]
	if ph.Count != 2 || ph.SeqDelta != 90 {
		t.Fatalf("phase rollup = %+v, want count 2, seq 90", ph)
	}
	if byName["request"].WallDurUS != 100 {
		t.Fatalf("request rollup = %+v", byName["request"])
	}
	// Descending wall duration: request first.
	if stats[0].Name != "request" {
		t.Fatalf("rollup order %v", stats)
	}
}

// FuzzReadJSONL is the fuzz-smoke seed for the span decoder: whatever
// the input, the reader must return cleanly (spans or error), never
// panic, and every span it does return must carry a trace and an ID.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleSpans()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{\"trace\":\"t\",\"id\":\"1\",\"name\":\"x\",\"attrs\":[{\"k\":\"a\",\"v\":\"b\"}]}\n")
	f.Add("not json at all\n")
	f.Add("{\"trace\":\"\",\"id\":\"\"}\n")
	f.Fuzz(func(t *testing.T, in string) {
		spans, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, s := range spans {
			if s.Trace == "" || s.ID == "" {
				t.Fatalf("decoder accepted a span without identity: %+v", s)
			}
		}
		// Decoded spans must re-encode and re-decode stably.
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, spans); err != nil {
			t.Fatal(err)
		}
		again, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if len(again) != len(spans) {
			t.Fatalf("re-decode length %d, want %d", len(again), len(spans))
		}
	})
}
