package interval

import (
	"testing"

	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestNewRejectsBadK(t *testing.T) {
	for _, k := range []int{-1, 0, 1} {
		if _, err := New(k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

// State budget: k(k+1)/2 intervals, within the cited k(k+3)/2 bound.
func TestStateBudget(t *testing.T) {
	for k := 2; k <= 16; k++ {
		p := MustNew(k)
		if got, want := p.NumStates(), k*(k+1)/2; got != want {
			t.Errorf("k=%d: %d states, want %d", k, got, want)
		}
		if p.NumStates() > k*(k+3)/2 {
			t.Errorf("k=%d: exceeds cited budget", k)
		}
		if err := protocol.Validate(p); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// Unlike the paper's protocol, the split rule is asymmetric: two agents in
// the same splittable state leave in different states.
func TestAsymmetric(t *testing.T) {
	p := MustNew(4)
	if s, ok := protocol.CheckSymmetric(p); ok {
		t.Fatal("interval baseline unexpectedly symmetric")
	} else if p.lo[s] == p.hi[s] {
		t.Fatalf("asymmetry reported on a singleton state %s", p.StateName(s))
	}
}

func TestBoundsRoundTrip(t *testing.T) {
	p := MustNew(6)
	for lo := 1; lo <= 6; lo++ {
		for hi := lo; hi <= 6; hi++ {
			s := p.Interval(lo, hi)
			gl, gh := p.Bounds(s)
			if gl != lo || gh != hi {
				t.Fatalf("Bounds(Interval(%d,%d)) = (%d,%d)", lo, hi, gl, gh)
			}
			if p.IsFinal(s) != (lo == hi) {
				t.Fatalf("IsFinal wrong for [%d,%d]", lo, hi)
			}
			if p.Group(s) != lo {
				t.Fatalf("f([%d,%d]) = %d", lo, hi, p.Group(s))
			}
		}
	}
}

func TestSplitRule(t *testing.T) {
	p := MustNew(5)
	// [1,5] splits at mid 3 into [1,3] and [4,5].
	out, fired := p.Delta(p.Interval(1, 5), p.Interval(1, 5))
	if !fired || out.P != p.Interval(1, 3) || out.Q != p.Interval(4, 5) {
		t.Fatalf("split = (%s, %s)", p.StateName(out.P), p.StateName(out.Q))
	}
	// Different intervals never interact.
	out, _ = p.Delta(p.Interval(1, 3), p.Interval(4, 5))
	if out.P != p.Interval(1, 3) || out.Q != p.Interval(4, 5) {
		t.Fatal("cross-interval interaction not null")
	}
	// Singletons never interact.
	out, _ = p.Delta(p.Interval(2, 2), p.Interval(2, 2))
	if out.P != p.Interval(2, 2) {
		t.Fatal("singleton interaction not null")
	}
}

func TestCodecPanics(t *testing.T) {
	p := MustNew(4)
	for _, fn := range []func(){
		func() { p.Interval(0, 3) },
		func() { p.Interval(2, 5) },
		func() { p.Interval(3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid interval accepted")
				}
			}()
			fn()
		}()
	}
}

// The baseline's contract: every group ends with at least n/(2k) agents.
// Verified across a grid with n large enough for the reconstruction's
// guarantee (n >= 4·k·log2(k); see the package comment).
func TestMinGuarantee(t *testing.T) {
	for _, cse := range []struct{ n, k int }{
		{64, 3}, {100, 4}, {128, 4}, {200, 5}, {240, 6}, {512, 8},
	} {
		p := MustNew(cse.k)
		pop := population.New(p, cse.n)
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(5, uint64(cse.n), uint64(cse.k))),
			sim.NewCountsPredicate(p.Stable), sim.Options{MaxInteractions: 100_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d did not quiesce", cse.n, cse.k)
		}
		min := p.MinGuarantee(cse.n)
		for g, size := range res.GroupSizes {
			if size < min {
				t.Errorf("n=%d k=%d: group %d has %d agents, guarantee is %d (sizes %v)",
					cse.n, cse.k, g+1, size, min, res.GroupSizes)
			}
		}
	}
}

// Quiescence and the Stable predicate agree: once Stable fires, the
// generic quiescence detector must also consider the configuration dead.
func TestStableImpliesQuiescent(t *testing.T) {
	p := MustNew(4)
	pop := population.New(p, 37)
	res, err := sim.Run(pop, sched.NewRandom(77), sim.NewCountsPredicate(p.Stable),
		sim.Options{MaxInteractions: 10_000_000})
	if err != nil || !res.Converged {
		t.Fatalf("setup: %v %+v", err, res)
	}
	q := sim.NewQuiescence(p)
	q.Init(pop)
	if !q.Satisfied() {
		t.Fatal("Stable configuration not quiescent")
	}
}

// Agent conservation and interval nesting along executions: every agent's
// interval only ever shrinks and stays inside its previous interval.
func TestIntervalsOnlyShrink(t *testing.T) {
	p := MustNew(8)
	pop := population.New(p, 50)
	prev := make([][2]int, 50)
	for i := range prev {
		prev[i] = [2]int{1, 8}
	}
	hook := sim.StepFunc(func(pop *population.Population, s sim.StepInfo) {
		for _, idx := range []int{s.I, s.J} {
			lo, hi := p.Bounds(pop.State(idx))
			if lo < prev[idx][0] || hi > prev[idx][1] {
				t.Fatalf("agent %d interval grew: [%d,%d] -> [%d,%d]",
					idx, prev[idx][0], prev[idx][1], lo, hi)
			}
			prev[idx] = [2]int{lo, hi}
		}
	})
	if _, err := sim.Run(pop, sched.NewRandom(3), sim.NewCountsPredicate(p.Stable),
		sim.Options{MaxInteractions: 5_000_000, Hooks: []sim.Hook{hook}}); err != nil {
		t.Fatal(err)
	}
}
