// Package rpartition implements the R-generalized partition problem the
// paper points to as follow-up work (Umino, Kitamura, Izumi;
// "Differentiation in population protocols", BDA 2018): divide the
// population into k groups whose sizes follow a given ratio vector
// R = (r1, ..., rk).
//
// The implementation is the natural reduction the uniform protocol makes
// available: run the paper's uniform K-partition protocol with
// K = r1 + ... + rk virtual groups and map virtual group j to the output
// group i whose ratio window contains j (prefix sums of R). Every virtual
// group ends with ⌊n/K⌋ or ⌈n/K⌉ agents, so output group i receives
// between ri·⌊n/K⌋ and ri·⌈n/K⌉ agents — within ri of the ideal ri·n/K.
// The protocol inherits symmetry, the designated initial state, the 3K−2
// state bound, and the global-fairness stabilization proof wholesale.
package rpartition

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/protocol"
)

// Errors returned by New.
var (
	ErrEmptyRatio = errors.New("rpartition: ratio vector must have >= 2 entries")
	ErrBadRatio   = errors.New("rpartition: ratio entries must be >= 1")
)

// Protocol runs the uniform K-partition protocol and re-maps its output
// groups through a ratio vector. It implements protocol.Protocol.
type Protocol struct {
	*core.Protocol
	ratio []int
	// groupOf[j] is the output group (1-based) of virtual group j (1-based).
	groupOf []int
}

// New constructs the protocol for the given ratio vector.
func New(ratio []int) (*Protocol, error) {
	if len(ratio) < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrEmptyRatio, len(ratio))
	}
	K := 0
	for _, r := range ratio {
		if r < 1 {
			return nil, fmt.Errorf("%w: %v", ErrBadRatio, ratio)
		}
		K += r
	}
	inner, err := core.New(K)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		Protocol: inner,
		ratio:    append([]int(nil), ratio...),
		groupOf:  make([]int, K+1),
	}
	j := 1
	for i, r := range ratio {
		for c := 0; c < r; c++ {
			p.groupOf[j] = i + 1
			j++
		}
	}
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(ratio []int) *Protocol {
	p, err := New(ratio)
	if err != nil {
		panic(err)
	}
	return p
}

// Name identifies the protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("rpartition-%v", p.ratio)
}

// NumGroups returns len(R), the number of OUTPUT groups.
func (p *Protocol) NumGroups() int { return len(p.ratio) }

// Group maps a state to its output group: the virtual group of the
// underlying uniform protocol, folded through the ratio windows.
func (p *Protocol) Group(s protocol.State) int {
	return p.groupOf[p.Protocol.Group(s)]
}

// Ratio returns a copy of the ratio vector.
func (p *Protocol) Ratio() []int { return append([]int(nil), p.ratio...) }

// K returns the number of virtual groups, ΣR.
func (p *Protocol) K() int { return p.Protocol.K() }

// IdealSizes returns the real-valued ideal size ri·n/K of each output
// group, rounded to the enclosing integer bounds [lo, hi] the protocol
// guarantees: lo = ri·⌊n/K⌋ and hi = ri·⌈n/K⌉ (hi = lo when K divides n;
// the virtual remainder tightens the true range further).
func (p *Protocol) IdealSizes(n int) (lo, hi []int) {
	K := p.Protocol.K()
	q := n / K
	lo = make([]int, len(p.ratio))
	hi = make([]int, len(p.ratio))
	for i, r := range p.ratio {
		lo[i] = r * q
		if n%K == 0 {
			hi[i] = r * q
		} else {
			hi[i] = r * (q + 1)
		}
	}
	return lo, hi
}
