package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; the returned metric values are atomic, so
// the intended pattern is to resolve names once at wiring time and hold
// the Counter/Gauge/Histogram on the hot path.
//
// A disabled Registry (see Nop) hands out shared no-op metrics, so
// instrumented code never branches on whether observability is on.
type Registry struct {
	name    string
	enabled bool

	mu      sync.Mutex
	kinds   map[string]string // name -> "counter"|"gauge"|"histogram"
	counter map[string]*atomicCounter
	gauge   map[string]*atomicGauge
	hist    map[string]*atomicHistogram
}

// New returns an enabled registry identified by name (the name prefixes
// expvar publication and snapshot documents).
func New(name string) *Registry {
	return &Registry{
		name:    name,
		enabled: true,
		kinds:   make(map[string]string),
		counter: make(map[string]*atomicCounter),
		gauge:   make(map[string]*atomicGauge),
		hist:    make(map[string]*atomicHistogram),
	}
}

// nop is the shared disabled registry; all Nop() callers get the same one.
var nop = &Registry{name: "nop"}

// Nop returns the shared disabled registry: every metric it hands out is
// a no-op and Snapshot returns no metrics.
func Nop() *Registry { return nop }

// Enabled reports whether this registry records anything.
func (r *Registry) Enabled() bool { return r != nil && r.enabled }

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// checkKind registers name under kind or panics on a kind conflict —
// reusing one name for two metric types is a programming error.
func (r *Registry) checkKind(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the counter registered under name, creating it on
// first use. Disabled registries return a no-op.
func (r *Registry) Counter(name string) Counter {
	if !r.Enabled() {
		return nopCounter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counter[name]
	if !ok {
		c = &atomicCounter{}
		r.counter[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Disabled registries return a no-op.
func (r *Registry) Gauge(name string) Gauge {
	if !r.Enabled() {
		return nopGauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauge[name]
	if !ok {
		g = &atomicGauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Disabled registries return a no-op.
func (r *Registry) Histogram(name string) Histogram {
	if !r.Enabled() {
		return nopHistogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	h, ok := r.hist[name]
	if !ok {
		h = &atomicHistogram{}
		r.hist[name] = h
	}
	return h
}

// names returns all registered metric names, sorted, so snapshots are
// stable across runs regardless of registration order.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
