// The deterministic half of internal/serve: a file not in
// edgeFiles is held to the engine-package standard — cache
// behavior and record identity must not depend on when a run happened.
package serve

import "time"

func AgeBasedEviction() bool {
	deadline := time.Now()                    // want `time\.Now in deterministic package`
	return time.Since(deadline) > time.Minute // want `time\.Since`
}
