package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestCheckInvariantInitialConfig(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		p := core.MustNew(k)
		counts := make([]int, p.NumStates())
		counts[p.Initial()] = 10
		if err := p.CheckInvariant(counts); err != nil {
			t.Errorf("k=%d: initial config violates invariant: %v", k, err)
		}
	}
}

func TestCheckInvariantRejectsWrongLength(t *testing.T) {
	p := core.MustNew(4)
	if err := p.CheckInvariant(make([]int, 3)); err == nil {
		t.Error("short counts accepted")
	}
}

func TestCheckInvariantDetectsViolation(t *testing.T) {
	p := core.MustNew(4)
	counts := make([]int, p.NumStates())
	// One m3 with no corresponding g1/g2: violates Lemma 1 at x=1 and 2.
	counts[p.M(3)] = 1
	counts[p.Initial()] = 5
	if err := p.CheckInvariant(counts); err == nil {
		t.Error("invariant violation not detected")
	}
	// Repair it: m3 requires one g1 and one g2.
	counts[p.G(1)] = 1
	counts[p.G(2)] = 1
	if err := p.CheckInvariant(counts); err != nil {
		t.Errorf("repaired config still flagged: %v", err)
	}
}

// Lemma 1 must be preserved by EVERY single transition from ANY
// invariant-satisfying configuration — the inductive step of the paper's
// proof, fuzzed with testing/quick. We synthesize a random reachable-shaped
// configuration by construction (choosing #mp, #dq, #gk freely and deriving
// the #gx the invariant forces), then apply one random rule.
func TestInvariantInductiveStep(t *testing.T) {
	k := 5
	p := core.MustNew(k)
	r := rng.New(424242)

	build := func() []int {
		counts := make([]int, p.NumStates())
		counts[p.Initial()] = r.Intn(4)
		counts[p.InitialBar()] = r.Intn(4)
		for i := 2; i <= k-1; i++ {
			counts[p.M(i)] = r.Intn(3)
		}
		for i := 1; i <= k-2; i++ {
			counts[p.D(i)] = r.Intn(3)
		}
		gk := r.Intn(3)
		counts[p.G(k)] = gk
		for x := 1; x <= k-1; x++ {
			c := gk
			for q := x + 1; q <= k-1; q++ {
				c += counts[p.M(q)]
			}
			for q := x; q <= k-2; q++ {
				c += counts[p.D(q)]
			}
			counts[p.G(x)] = c
		}
		return counts
	}

	f := func(seed uint64) bool {
		counts := build()
		if err := p.CheckInvariant(counts); err != nil {
			t.Fatalf("constructed config violates invariant: %v", err)
		}
		// Pick a random applicable ordered pair of present states.
		rr := rng.New(seed)
		var present []protocol.State
		for s, c := range counts {
			for i := 0; i < c; i++ {
				present = append(present, protocol.State(s))
			}
		}
		if len(present) < 2 {
			return true
		}
		i, j := rr.Pair(len(present))
		a, b := present[i], present[j]
		out, _ := p.Delta(a, b)
		counts[a]--
		counts[b]--
		counts[out.P]++
		counts[out.Q]++
		return p.CheckInvariant(counts) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 1 along full random executions, checked by the engine every few
// steps, across a grid of (n, k).
func TestInvariantAlongExecutions(t *testing.T) {
	for _, k := range []int{2, 3, 4, 6} {
		for _, n := range []int{3, 7, 12, 25} {
			p := core.MustNew(k)
			pop := population.New(p, n)
			target, err := p.TargetCounts(n)
			if err != nil {
				t.Fatal(err)
			}
			stop := sim.NewCountTarget(p.CanonMap(), target)
			res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(1, uint64(k), uint64(n))), stop, sim.Options{
				MaxInteractions: 5_000_000,
				InvariantEvery:  7,
				Invariant: func(pop *population.Population) error {
					return p.CheckInvariant(pop.CountsView())
				},
			})
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			if !res.Converged {
				t.Fatalf("k=%d n=%d: did not stabilize in %d interactions", k, n, res.Interactions)
			}
		}
	}
}

func TestTargetCountsRejectsTinyN(t *testing.T) {
	p := core.MustNew(3)
	for _, n := range []int{0, 1, 2} {
		if _, err := p.TargetCounts(n); err == nil {
			t.Errorf("TargetCounts(%d) accepted", n)
		}
	}
}

// The stable signature of Lemmas 4–6 for each remainder class, spelled out.
func TestTargetCountsSignature(t *testing.T) {
	p := core.MustNew(4)
	canon := p.CanonMap()

	// n=12, r=0: all four groups get 3 g-agents, nothing else.
	tgt, err := p.TargetCounts(12)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x <= 4; x++ {
		if tgt[canon[p.G(x)]] != 3 {
			t.Errorf("n=12: target[g%d]=%d, want 3", x, tgt[canon[p.G(x)]])
		}
	}
	if tgt[0] != 0 {
		t.Errorf("n=12: free slot=%d, want 0", tgt[0])
	}

	// n=13, r=1: one leftover free agent.
	tgt, _ = p.TargetCounts(13)
	if tgt[0] != 1 {
		t.Errorf("n=13: free slot=%d, want 1", tgt[0])
	}
	for x := 1; x <= 4; x++ {
		if tgt[canon[p.G(x)]] != 3 {
			t.Errorf("n=13: target[g%d]=%d, want 3", x, tgt[canon[p.G(x)]])
		}
	}

	// n=14, r=2: g1 gets 4, one m2.
	tgt, _ = p.TargetCounts(14)
	if tgt[canon[p.G(1)]] != 4 || tgt[canon[p.G(2)]] != 3 {
		t.Errorf("n=14: g1=%d g2=%d, want 4,3", tgt[canon[p.G(1)]], tgt[canon[p.G(2)]])
	}
	if tgt[canon[p.M(2)]] != 1 {
		t.Errorf("n=14: m2=%d, want 1", tgt[canon[p.M(2)]])
	}

	// n=15, r=3: g1,g2 get 4, one m3.
	tgt, _ = p.TargetCounts(15)
	if tgt[canon[p.G(1)]] != 4 || tgt[canon[p.G(2)]] != 4 || tgt[canon[p.G(3)]] != 3 {
		t.Errorf("n=15: g=%d,%d,%d", tgt[canon[p.G(1)]], tgt[canon[p.G(2)]], tgt[canon[p.G(3)]])
	}
	if tgt[canon[p.M(3)]] != 1 {
		t.Errorf("n=15: m3=%d, want 1", tgt[canon[p.M(3)]])
	}
}

// The target signature must itself satisfy Lemma 1, sum to n, and induce a
// uniform partition — for every n and k in a grid. (The signature lives in
// canonical space; expand it back to raw states for the check.)
func TestTargetCountsConsistency(t *testing.T) {
	for k := 2; k <= 9; k++ {
		p := core.MustNew(k)
		canon := p.CanonMap()
		for n := 3; n <= 40; n++ {
			tgt, err := p.TargetCounts(n)
			if err != nil {
				t.Fatal(err)
			}
			raw := make([]int, p.NumStates())
			// Slot 0 (free) maps back to "initial"; other slots are 1:1.
			for s := 0; s < p.NumStates(); s++ {
				if s == int(p.InitialBar()) {
					continue // avoid double-counting the merged slot
				}
				raw[s] = tgt[canon[s]]
			}
			total := 0
			for _, c := range raw {
				total += c
			}
			if total != n {
				t.Fatalf("k=%d n=%d: target sums to %d", k, n, total)
			}
			if err := p.CheckInvariant(raw); err != nil {
				t.Fatalf("k=%d n=%d: target violates Lemma 1: %v", k, n, err)
			}
			sizes := p.GroupSizesFromCounts(raw)
			min, max := sizes[0], sizes[0]
			for _, v := range sizes {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if max-min > 1 {
				t.Fatalf("k=%d n=%d: spread %d (sizes %v)", k, n, max-min, sizes)
			}
			want := p.StableGroupSizes(n)
			for i := range sizes {
				if sizes[i] != want[i] {
					t.Fatalf("k=%d n=%d: group sizes %v, want %v", k, n, sizes, want)
				}
			}
			if !p.IsStable(raw) {
				t.Fatalf("k=%d n=%d: IsStable rejects its own target", k, n)
			}
		}
	}
}

func TestIsStableRejectsInitialConfig(t *testing.T) {
	p := core.MustNew(3)
	counts := make([]int, p.NumStates())
	counts[p.Initial()] = 9
	if p.IsStable(counts) {
		t.Error("all-initial configuration reported stable")
	}
}

// End-to-end: Theorem 1 observed under the random scheduler across a grid,
// including n < k and every remainder class.
func TestStabilizationGrid(t *testing.T) {
	grid := []struct{ n, k int }{
		{3, 2}, {4, 2}, {5, 2}, {10, 2},
		{3, 3}, {4, 3}, {5, 3}, {9, 3}, {10, 3}, {11, 3},
		{4, 4}, {6, 4}, {8, 4}, {9, 4}, {12, 4}, {15, 4},
		{3, 5}, {5, 5}, {7, 5}, {24, 5},
		{6, 6}, {13, 6}, {36, 6},
		{4, 8}, {16, 8}, {20, 8},
		{3, 7}, {3, 10}, // n < k: first n-1 groups get one agent each
	}
	for _, g := range grid {
		p := core.MustNew(g.k)
		pop := population.New(p, g.n)
		target, err := p.TargetCounts(g.n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(7, uint64(g.n), uint64(g.k))),
			sim.NewCountTarget(p.CanonMap(), target), sim.Options{MaxInteractions: 50_000_000})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", g.n, g.k, err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d: not stable after %d interactions: %v", g.n, g.k, res.Interactions, res.FinalCounts)
		}
		if !p.IsStable(res.FinalCounts) {
			t.Fatalf("n=%d k=%d: CountTarget fired on non-stable config %v", g.n, g.k, res.FinalCounts)
		}
		want := p.StableGroupSizes(g.n)
		for i := range want {
			if res.GroupSizes[i] != want[i] {
				t.Fatalf("n=%d k=%d: group sizes %v, want %v", g.n, g.k, res.GroupSizes, want)
			}
		}
	}
}

// Stability is permanent: after reaching the stable signature, further
// interactions never change group membership (they may flip the leftover
// free agent's I-state when n mod k == 1).
func TestStableIsClosed(t *testing.T) {
	for _, g := range []struct{ n, k int }{{12, 4}, {13, 4}, {14, 4}, {10, 3}} {
		p := core.MustNew(g.k)
		pop := population.New(p, g.n)
		target, _ := p.TargetCounts(g.n)
		res, err := sim.Run(pop, sched.NewRandom(11), sim.NewCountTarget(p.CanonMap(), target),
			sim.Options{MaxInteractions: 20_000_000})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d k=%d: setup failed: %v %+v", g.n, g.k, err, res)
		}
		sizes := append([]int(nil), pop.GroupSizes()...)
		// Hammer the stable config with more interactions.
		_, err = sim.Run(pop, sched.NewRandom(13), sim.After{N: pop.Interactions() + 100_000}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		after := pop.GroupSizes()
		for i := range sizes {
			if after[i] != sizes[i] {
				t.Fatalf("n=%d k=%d: group sizes drifted from %v to %v after stability", g.n, g.k, sizes, after)
			}
		}
		if !p.IsStable(pop.Counts()) {
			t.Fatalf("n=%d k=%d: left stable set", g.n, g.k)
		}
	}
}

// StableChecker must agree with IsStable at every configuration of a
// random execution (it is the allocation-free fast path used by the count
// engine's stop predicate).
func TestStableCheckerMatchesIsStable(t *testing.T) {
	p := core.MustNew(4)
	const n = 14
	check, err := p.StableChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(p, n)
	s := sched.NewRandom(21)
	for i := 0; i < 200000; i++ {
		a, b := s.Next(pop)
		pop.Interact(a, b)
		counts := pop.CountsView()
		if got, want := check(counts), p.IsStable(pop.Counts()); got != want {
			t.Fatalf("step %d: checker %v, IsStable %v", i, got, want)
		}
		if check(counts) {
			return
		}
	}
	t.Fatal("never stabilized")
}

func TestStableCheckerRejectsTinyN(t *testing.T) {
	if _, err := core.MustNew(3).StableChecker(2); err == nil {
		t.Fatal("n=2 accepted")
	}
}
