package twin

import (
	"errors"
	"testing"

	"repro/internal/harness"
	"repro/internal/markov"
)

// exactFixtures are the (n, k) points small enough for internal/markov's
// full configuration chain, covering r = 0 and r > 0, k = 2..4.
var exactFixtures = []struct{ n, k int }{
	{6, 2}, {7, 2}, {6, 3}, {7, 3}, {8, 3}, {9, 3}, {8, 4}, {9, 4},
}

func TestLumpedMatchesMarkovExactly(t *testing.T) {
	for _, fx := range exactFixtures {
		rep, err := CrossValidateExact(fx.n, fx.k)
		if err != nil {
			t.Fatalf("CrossValidateExact(%d, %d): %v", fx.n, fx.k, err)
		}
		// The contract is RelErrExact (0.1%); the actual agreement is at
		// solver tolerance. Assert well inside the contract so drift shows
		// up long before the gate trips.
		if rep.MaxRelErr > 1e-7 {
			t.Errorf("n=%d k=%d: max rel err %.3g (mean %.6f vs %.6f, std %.6f vs %.6f)",
				fx.n, fx.k, rep.MaxRelErr, rep.Mean, rep.ExactMean, rep.Std, rep.ExactStd)
		}
	}
}

func TestLumpedMilestonesShape(t *testing.T) {
	pr, err := NewLumped(DefaultStateBudget).Predict(Spec{N: 13, K: 3, Milestones: true})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	q := 13 / 3
	if len(pr.Milestones) != q {
		t.Fatalf("got %d milestones, want %d", len(pr.Milestones), q)
	}
	prev := 0.0
	for j, m := range pr.Milestones {
		if m <= prev {
			t.Errorf("milestone %d = %g not strictly increasing past %g", j+1, m, prev)
		}
		prev = m
	}
	if last := pr.Milestones[q-1]; last > pr.ExpectedInteractions+1e-9 {
		t.Errorf("last milestone %g exceeds stabilization %g", last, pr.ExpectedInteractions)
	}
}

// The reduced chain must be isomorphic to the full configuration
// graph: Lemma 1 makes the projection a bijection on
// reachable configurations, so the node counts must agree EXACTLY —
// fewer would mean an invalid merge, more would mean decode/encode
// disagree.
func TestLumpedBijectsOntoFullChain(t *testing.T) {
	for _, fx := range exactFixtures {
		pr, err := NewLumped(DefaultStateBudget).Predict(Spec{N: fx.n, K: fx.k})
		if err != nil {
			t.Fatalf("Predict(%d, %d): %v", fx.n, fx.k, err)
		}
		ch, err := markov.New(harness.Proto(fx.k), fx.n)
		if err != nil {
			t.Fatalf("markov.New(%d, %d): %v", fx.n, fx.k, err)
		}
		if full := len(ch.Graph.Nodes); pr.States != full {
			t.Errorf("n=%d k=%d: lumped %d states, full chain %d — projection is not a bijection",
				fx.n, fx.k, pr.States, full)
		}
		// lumpedCount enumerates all Lemma-1-consistent vectors, a superset
		// of the reachable set, so it must upper-bound the built chain.
		if cap := lumpedCount(fx.n, fx.k, 1<<30); pr.States > cap {
			t.Errorf("n=%d k=%d: built %d states above enumeration bound %d",
				fx.n, fx.k, pr.States, cap)
		}
	}
}

func TestLumpedBudgetExceeded(t *testing.T) {
	_, err := NewLumped(3).Predict(Spec{N: 30, K: 3})
	if err == nil {
		t.Fatal("expected budget error, got nil")
	}
}

func TestLumpedRejectsInvalidSpec(t *testing.T) {
	for _, s := range []Spec{{N: 0, K: 3}, {N: 10, K: 1}, {N: -2, K: 2}} {
		_, err := NewLumped(DefaultStateBudget).Predict(s)
		if !errors.Is(err, harness.ErrInvalidSpec) {
			t.Errorf("Predict(%+v): err = %v, want ErrInvalidSpec", s, err)
		}
	}
}

func TestEnumerateLevelConsistent(t *testing.T) {
	p := harness.Proto(4)
	n := 17
	for c := 0; c <= n/4; c++ {
		vecs := enumerateLevel(p, n, c)
		seen := make(map[string]bool, len(vecs))
		counts := make([]int, p.NumStates())
		for _, vec := range vecs {
			key := vecKey(vec)
			if seen[key] {
				t.Fatalf("level %d: duplicate vector %v", c, vec)
			}
			seen[key] = true
			decodeFull(p, vec, counts)
			pop := 0
			for _, ct := range counts {
				pop += ct
			}
			if pop != n {
				t.Fatalf("level %d: vector %v decodes to population %d, want %d", c, vec, pop, n)
			}
			if err := p.CheckInvariant(counts); err != nil {
				t.Fatalf("level %d: vector %v violates Lemma 1: %v", c, vec, err)
			}
		}
	}
}

func TestSelectPicksRungByBudget(t *testing.T) {
	if m := Select(10, 3, DefaultStateBudget); m.Name() != "lumped" {
		t.Errorf("Select(10, 3) = %s, want lumped", m.Name())
	}
	if m := Select(100_000, 3, DefaultStateBudget); m.Name() != "meanfield" {
		t.Errorf("Select(100000, 3) = %s, want meanfield", m.Name())
	}
	if m := Select(10, 3, 1); m.Name() != "meanfield" {
		t.Errorf("Select(10, 3, budget 1) = %s, want meanfield", m.Name())
	}
}
