package span

// Export and analysis: the JSONL exchange format (one span per line),
// the Collector that gathers finished traces and streams them to a
// sink, and the tree/critical-path/rollup computations shared by
// cmd/kpart-spans and the tests. Everything here is deterministic —
// spans are ordered by (trace, id), never by completion time.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Collector owns the traces a process records. Traces registered
// through NewTrace deliver themselves when their last open span ends;
// with a sink attached, a completed trace's not-yet-streamed spans are
// encoded and flushed as one JSONL block at that moment (so a
// long-lived server exports incrementally, and a trace that reopens —
// late spans after a transient zero — delivers only its new spans),
// and every trace also stays available to Export.
// A nil *Collector is a valid no-op: NewTrace returns nil, and the
// nil-span plumbing makes the entire pipeline untraced.
type Collector struct {
	mu     sync.Mutex
	sink   io.Writer // guarded by mu
	seq    Sequencer
	traces []*Trace // guarded by mu
	err    error    // guarded by mu
}

// NewCollector returns a collector delivering completed traces to sink
// (nil = in-memory only).
func NewCollector(sink io.Writer) *Collector {
	return &Collector{sink: sink}
}

// NewTrace starts a collected trace under the given ID. Nil collectors
// return a nil trace, which yields nil spans all the way down.
func (c *Collector) NewTrace(id string) *Trace {
	if c == nil {
		return nil
	}
	// The hook is installed at construction, before the trace is
	// published: setting t.onDone after handing t out would race with a
	// finish() reading it under t.mu.
	t := newHookedTrace(id, c.deliver)
	c.mu.Lock()
	c.traces = append(c.traces, t)
	c.mu.Unlock()
	return t
}

// TraceForSpec starts a collected trace whose ID derives from the
// spec's content hash plus this collector's per-process occurrence
// sequence (see DeriveTraceID).
func (c *Collector) TraceForSpec(specKey string) *Trace {
	return c.TraceForID(specKey)
}

// TraceForID starts a collected trace under a caller-supplied base ID
// (e.g. a client's X-Kpart-Trace header), run through the same
// occurrence sequence as spec-derived IDs: the second use of one ID in
// a process yields "id.2", so repeated or concurrent requests naming
// the same ID get distinct traces instead of colliding root span IDs
// inside one merged trace.
func (c *Collector) TraceForID(id string) *Trace {
	if c == nil {
		return nil
	}
	return c.NewTrace(DeriveTraceID(id, c.seq.Next(id)))
}

// deliver streams a completed trace's spans to the sink. The hook can
// fire more than once per trace (the open count may transiently reach
// zero mid-pipeline), so delivery takes only the spans not streamed
// yet — each span is written exactly once.
func (c *Collector) deliver(t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sink == nil || c.err != nil {
		return
	}
	spans := t.takeUndelivered()
	if len(spans) == 0 {
		return
	}
	if err := WriteJSONL(c.sink, spans); err != nil {
		c.err = err
	}
}

// Export returns every finished span across all collected traces,
// ordered by (trace, id).
func (c *Collector) Export() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	traces := append([]*Trace(nil), c.traces...)
	c.mu.Unlock()
	var out []Span
	for _, t := range traces {
		out = append(out, t.Spans()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Err reports the first sink write error, if any.
func (c *Collector) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// WriteJSONL writes spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses spans written by WriteJSONL. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(trimSpace(b)) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return out, fmt.Errorf("span: line %d: %w", line, err)
		}
		if s.Trace == "" || s.ID == "" {
			return out, fmt.Errorf("span: line %d: missing trace or id", line)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("span: reading JSONL: %w", err)
	}
	return out, nil
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// --- tree / analysis --------------------------------------------------------

// Node is one span with its children, ordered by span ID.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree is the reconstructed span forest of one trace.
type Tree struct {
	Trace string
	Roots []*Node
}

// BuildTrees groups spans by trace and links parents to children.
// Spans whose parent is absent from the set are treated as roots (a
// truncated export still renders). Traces and siblings come out in
// deterministic (trace, id) order.
func BuildTrees(spans []Span) []Tree {
	byTrace := make(map[string][]Span)
	var order []string
	for _, s := range spans {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	sort.Strings(order)
	trees := make([]Tree, 0, len(order))
	for _, tid := range order {
		group := byTrace[tid]
		sort.Slice(group, func(i, j int) bool { return group[i].ID < group[j].ID })
		nodes := make(map[string]*Node, len(group))
		for _, s := range group {
			nodes[s.ID] = &Node{Span: s}
		}
		tree := Tree{Trace: tid}
		for _, s := range group {
			n := nodes[s.ID]
			if p, ok := nodes[s.Parent]; ok && s.Parent != "" && s.Parent != s.ID {
				p.Children = append(p.Children, n)
			} else {
				tree.Roots = append(tree.Roots, n)
			}
		}
		trees = append(trees, tree)
	}
	return trees
}

// Cost is a node's duration for critical-path purposes: the wall
// interval when stamped, else the logical (interaction) interval.
func Cost(s Span) uint64 {
	if s.WallDurUS > 0 {
		return s.WallDurUS
	}
	if s.EndSeq > s.StartSeq {
		return s.EndSeq - s.StartSeq
	}
	return 0
}

// CriticalPath returns the root-to-leaf chain that dominates the
// tree's cost: from each node, descend into the costliest child (ties
// break toward the lower span ID, keeping the path deterministic).
func CriticalPath(root *Node) []*Node {
	path := []*Node{root}
	n := root
	for len(n.Children) > 0 {
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if Cost(c.Span) > Cost(best.Span) {
				best = c
			}
		}
		path = append(path, best)
		n = best
	}
	return path
}

// NameStat aggregates all spans sharing a name.
type NameStat struct {
	Name      string
	Count     int
	WallDurUS uint64
	SeqDelta  uint64
}

// Rollup aggregates spans by name, sorted by descending wall duration
// (then name). This is the per-phase attribution view: every
// "phase/grouping" span of a trial folds into one row.
func Rollup(spans []Span) []NameStat {
	agg := make(map[string]*NameStat)
	for _, s := range spans {
		st, ok := agg[s.Name]
		if !ok {
			st = &NameStat{Name: s.Name}
			agg[s.Name] = st
		}
		st.Count++
		st.WallDurUS += s.WallDurUS
		if s.EndSeq > s.StartSeq {
			st.SeqDelta += s.EndSeq - s.StartSeq
		}
	}
	out := make([]NameStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallDurUS != out[j].WallDurUS {
			return out[i].WallDurUS > out[j].WallDurUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}
