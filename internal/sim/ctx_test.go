package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
)

// A canceled Options.Ctx aborts the run at the next poll boundary with
// the context's error and a non-converged result whose counters reflect
// the work actually done.
func TestRunCtxCanceled(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(pop, sched.NewRandom(1), After{N: 1 << 40}, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("canceled run reported convergence")
	}
	// The poll mask fires at interaction 0, so a pre-canceled context
	// stops the run before any encounter.
	if res.Interactions != 0 {
		t.Fatalf("pre-canceled run walked %d interactions", res.Interactions)
	}
}

// A background (never-canceled) context must not perturb the run: same
// states and counters as the no-context run, seed for seed.
func TestRunCtxBackgroundIsTransparent(t *testing.T) {
	p := core.MustNew(3)
	run := func(ctx context.Context) (*population.Population, Result) {
		pop := population.New(p, 15)
		res, err := Run(pop, sched.NewRandom(77), After{N: 5000}, Options{Ctx: ctx})
		if err != nil {
			t.Fatal(err)
		}
		return pop, res
	}
	popA, resA := run(nil)
	popB, resB := run(context.Background())
	if resA.Interactions != resB.Interactions || resA.Productive != resB.Productive {
		t.Fatalf("context changed counters: %+v vs %+v", resA, resB)
	}
	for i := 0; i < 15; i++ {
		if popA.State(i) != popB.State(i) {
			t.Fatalf("agent %d diverged under a background context", i)
		}
	}
}
