package serve

// Loopback tests for the tracing edge: X-Kpart-Trace round-trips into
// the span export, the exported tree is complete (request → queue →
// trial → attempt → engine → #gk phases), span identity is stable
// across two runs of the same spec, and concurrent identical specs
// coalesce onto one in-flight job.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// tracedServer boots a loopback server with a fresh collector.
func tracedServer(t *testing.T) (*httptest.Server, *span.Collector, func()) {
	t.Helper()
	col := span.NewCollector(nil)
	srv := New(Config{Workers: 2, QueueDepth: 8, Spans: col})
	ts := httptest.NewServer(srv.Handler())
	return ts, col, func() { ts.Close(); srv.Shutdown() }
}

// postTrial posts a trial with an optional X-Kpart-Trace header.
func postTrial(t *testing.T, ts *httptest.Server, body, traceID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/trials", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(span.Header, traceID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// exportWhenDone waits for the request's trace to complete (the root
// span ends in a handler defer that may run after the response reaches
// the client) and returns the export.
func exportWhenDone(t *testing.T, col *span.Collector, n int) []span.Span {
	t.Helper()
	var out []span.Span
	waitFor(t, func() bool {
		out = col.Export()
		return len(out) >= n
	})
	return out
}

// TestTraceHeaderRoundTrip is the satellite acceptance: a client
// X-Kpart-Trace value is echoed on the response and names the trace in
// the span export, and the exported tree covers the whole pipeline.
func TestTraceHeaderRoundTrip(t *testing.T) {
	ts, col, stop := tracedServer(t)
	defer stop()

	const traceID = "client-trace.01"
	resp := postTrial(t, ts, `{"n":24,"k":4,"seed":7}`, traceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trial: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(span.Header); got != traceID {
		t.Fatalf("response %s = %q, want %q", span.Header, got, traceID)
	}

	// request + queue + trial + attempt + engine + ≥1 phase.
	spans := exportWhenDone(t, col, 6)
	count := make(map[string]int)
	byID := make(map[string]span.Span)
	for _, s := range spans {
		if s.Trace != traceID {
			t.Fatalf("span %s exported under trace %q, want %q", s.Name, s.Trace, traceID)
		}
		count[s.Name]++
		byID[s.ID] = s
	}
	for _, name := range []string{"request", "queue", "trial", "attempt", "engine/agent"} {
		if count[name] != 1 {
			t.Errorf("export has %d %q spans, want 1 (all: %v)", count[name], name, count)
		}
	}
	if count["phase/grouping"] == 0 {
		t.Errorf("export has no phase/grouping spans: %v", count)
	}
	for _, s := range spans {
		if s.Name == "request" {
			if s.Parent != "" {
				t.Errorf("request span has parent %q, want root", s.Parent)
			}
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %s/%s has missing parent %q", s.ID, s.Name, s.Parent)
		}
	}
}

// TestTraceDerivedID pins the no-header path: the trace ID is the
// spec's content hash, echoed on the response.
func TestTraceDerivedID(t *testing.T) {
	ts, col, stop := tracedServer(t)
	defer stop()

	spec := harness.TrialSpec{N: 12, K: 3, Seed: 1}
	resp := postTrial(t, ts, `{"n":12,"k":3,"seed":1}`, "")
	if got, want := resp.Header.Get(span.Header), harness.SpecKey(spec); got != want {
		t.Fatalf("derived trace ID %q, want SpecKey %q", got, want)
	}
	// An invalid client ID falls back to the derived form, occurrence 2.
	resp2 := postTrial(t, ts, `{"n":12,"k":3,"seed":1}`, "not a valid id!")
	if got, want := resp2.Header.Get(span.Header), harness.SpecKey(spec)+".2"; got != want {
		t.Fatalf("invalid header: trace ID %q, want %q", got, want)
	}
	exportWhenDone(t, col, 7) // both traces complete
}

// TestRepeatedClientTraceIDsDoNotCollide pins the header path through
// the occurrence sequencer: two requests naming the same X-Kpart-Trace
// value must record under distinct trace IDs ("id", "id.2") — one
// merged trace would collide the two root span IDs and corrupt the
// reconstructed tree.
func TestRepeatedClientTraceIDsDoNotCollide(t *testing.T) {
	ts, col, stop := tracedServer(t)
	defer stop()

	r1 := postTrial(t, ts, `{"n":12,"k":3,"seed":1}`, "shared-id")
	r2 := postTrial(t, ts, `{"n":12,"k":3,"seed":2}`, "shared-id")
	if got := r1.Header.Get(span.Header); got != "shared-id" {
		t.Fatalf("first response %s = %q, want shared-id", span.Header, got)
	}
	if got := r2.Header.Get(span.Header); got != "shared-id.2" {
		t.Fatalf("second response %s = %q, want shared-id.2", span.Header, got)
	}
	spans := exportWhenDone(t, col, 12) // two full pipelines
	roots := make(map[string]int)
	for _, s := range spans {
		if s.Name == "request" {
			roots[s.Trace]++
		}
	}
	if roots["shared-id"] != 1 || roots["shared-id.2"] != 1 {
		t.Fatalf("request roots per trace = %v, want exactly one under each ID", roots)
	}
}

// TestTraceIdentityStableAcrossRuns boots two independent servers and
// posts the same spec to each: the exported span identity (everything
// but the wall stamps) must match field for field.
func TestTraceIdentityStableAcrossRuns(t *testing.T) {
	run := func() []span.Span {
		ts, col, stop := tracedServer(t)
		defer stop()
		postTrial(t, ts, `{"n":24,"k":4,"seed":7}`, "")
		spans := exportWhenDone(t, col, 6)
		for i := range spans {
			spans[i].WallStartUS, spans[i].WallDurUS = 0, 0
		}
		return spans
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("exports differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Trace != b[i].Trace || a[i].ID != b[i].ID || a[i].Parent != b[i].Parent ||
			a[i].Name != b[i].Name || a[i].StartSeq != b[i].StartSeq || a[i].EndSeq != b[i].EndSeq {
			t.Errorf("span %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestSingleFlightCoalescing holds a trial in execution and submits the
// same spec again: the second submission must join the in-flight job
// (serve/coalesced counter), and both waiters must observe the same
// outcome.
func TestSingleFlightCoalescing(t *testing.T) {
	release := make(chan struct{})
	old := runTrialFn
	runTrialFn = func(ctx context.Context, spec harness.TrialSpec, _ harness.RunOptions) (harness.TrialResult, error) {
		select {
		case <-release:
			return harness.TrialResult{Spec: spec, Converged: true, Interactions: 42}, nil
		case <-ctx.Done():
			return harness.TrialResult{}, ctx.Err()
		}
	}
	defer func() { runTrialFn = old }()

	reg := obs.New("test")
	p := NewPool(1, 4, harness.RunOptions{}, nil, nil, reg)
	defer func() {
		close(release)
		p.Close()
	}()

	spec := harness.TrialSpec{N: 12, K: 3, Seed: 1}
	j1, err := p.TrySubmit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Inflight() == 1 })

	j2, err := p.TrySubmit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatal("identical in-flight spec did not coalesce onto the existing job")
	}
	j3, err := p.Submit(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j3 != j1 {
		t.Fatal("blocking Submit did not coalesce onto the existing job")
	}
	if got := counterValue(t, reg, "serve/coalesced"); got != 2 {
		t.Fatalf("serve/coalesced = %d, want 2", got)
	}
	// Only one job ever entered the queue.
	if got := counterValue(t, reg, "serve/admitted"); got != 1 {
		t.Fatalf("serve/admitted = %d, want 1", got)
	}

	var wg sync.WaitGroup
	bodies := make([][]byte, 3)
	for i, j := range []*Job{j1, j2, j3} {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			_, body, err := j.Wait(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			bodies[i] = body
		}(i, j)
	}
	release <- struct{}{}
	wg.Wait()
	for i := 1; i < 3; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("coalesced waiters saw different bodies:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	// The flight entry is gone: a fresh submission starts a new job.
	waitFor(t, func() bool {
		p.flight.mu.Lock()
		defer p.flight.mu.Unlock()
		return len(p.flight.pending) == 0
	})
}

// TestCoalescedWaiterNotStrandedOnAbandon pins the admission-failure
// broadcast: a request that coalesces onto a job whose admission is
// then abandoned (here, a blocking Submit whose client disconnects
// while it waits for queue space) must observe the admission error
// promptly — before the fix, the abandoned job's done channel never
// closed and the coalesced waiter blocked forever.
func TestCoalescedWaiterNotStrandedOnAbandon(t *testing.T) {
	release := make(chan struct{})
	old := runTrialFn
	runTrialFn = func(ctx context.Context, spec harness.TrialSpec, _ harness.RunOptions) (harness.TrialResult, error) {
		select {
		case <-release:
			return harness.TrialResult{Spec: spec, Converged: true}, nil
		case <-ctx.Done():
			return harness.TrialResult{}, ctx.Err()
		}
	}
	defer func() { runTrialFn = old }()

	p := NewPool(1, 1, harness.RunOptions{}, nil, nil, nil)
	defer func() {
		close(release)
		p.Close()
	}()

	// Occupy the single worker and fill the one-slot queue so the next
	// blocking Submit parks in the queue send.
	if _, err := p.TrySubmit(harness.TrialSpec{N: 12, K: 3, Seed: 1}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Inflight() == 1 })
	if _, err := p.TrySubmit(harness.TrialSpec{N: 12, K: 3, Seed: 2}, nil); err != nil {
		t.Fatal(err)
	}

	blocked := harness.TrialSpec{N: 12, K: 3, Seed: 3}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, blocked, nil)
		errc <- err
	}()

	// Once the Submit owns the flight entry it is parked in the queue
	// send; a TrySubmit for the same spec coalesces onto its job.
	key := harness.SpecKey(blocked)
	waitFor(t, func() bool {
		p.flight.mu.Lock()
		defer p.flight.mu.Unlock()
		return p.flight.pending[key] != nil
	})
	j, err := p.TrySubmit(blocked, nil)
	if err != nil {
		t.Fatal(err)
	}

	cancel() // the submitting client disconnects
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit returned %v, want context.Canceled", err)
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	if _, _, werr := j.Wait(waitCtx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("coalesced waiter got %v, want the admission error context.Canceled", werr)
	}
}

// TestMetricsEndpoint checks the server's own GET /metrics renders the
// RED metrics in text exposition format after a request.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.New("kpart_serve")
	srv := New(Config{Workers: 1, Registry: reg})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/trials", `{"n":12,"k":3,"seed":1}`)
	resp, body := getURL(t, ts.Client(), ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_http_trials_requests_total counter",
		`serve_http_trials_requests_total{registry="kpart_serve"} 1`,
		"# TYPE serve_http_trials_latency_us histogram",
		"serve_http_trials_latency_us_count",
		`serve_http_trials_status_2xx_total{registry="kpart_serve"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}
