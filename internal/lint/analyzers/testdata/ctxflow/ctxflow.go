// Package harness is the ctxflow golden fixture: an exported *Ctx
// entry point (the root) reaching helpers with unbounded loops and
// blocking channel operations, in every accept/poll combination the
// analyzer distinguishes.
package harness

import "context"

// RunTrialCtx is the root entry point; everything below is reachable
// from it.
func RunTrialCtx(ctx context.Context, ch chan int) {
	spinNoCtx()
	spinNoPoll(ctx)
	spinPolls(ctx)
	spinTransitive(ctx)
	recvNoCtx(ch)
	boundedLoop(ctx)
	spinAllowed()
	carrier{ctx: ctx}.spinViaField()
}

// spinNoCtx cannot receive a context at all.
func spinNoCtx() {
	for { // want `harness\.spinNoCtx is reachable from harness\.RunTrialCtx and contains a loop with no condition but cannot receive a context\.Context`
	}
}

// spinNoPoll accepts a context but never looks at it.
func spinNoPoll(ctx context.Context) {
	_ = ctx
	for { // want `harness\.spinNoPoll is reachable from harness\.RunTrialCtx and contains a loop with no condition but never polls its context`
	}
}

// spinPolls is the shape the invariant wants: loop, poll, bail.
func spinPolls(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// spinTransitive polls through a callee; the closure over call edges
// must see through shouldStop.
func spinTransitive(ctx context.Context) {
	for {
		if shouldStop(ctx) {
			return
		}
	}
}

func shouldStop(ctx context.Context) bool {
	return ctx.Err() != nil
}

// recvNoCtx blocks on a bare channel receive with no way to get a
// context.
func recvNoCtx(ch chan int) {
	<-ch // want `harness\.recvNoCtx is reachable from harness\.RunTrialCtx and contains a blocking channel receive but cannot receive a context\.Context`
}

// boundedLoop has a condition; nothing to report.
func boundedLoop(ctx context.Context) {
	for i := 0; i < 10; i++ {
		_ = ctx
	}
}

// spinAllowed carries a function-scoped suppression: the directive on
// the declaration line silences the interprocedural finding inside the
// body.
func spinAllowed() { //lint:allow ctxflow -- fixture: terminates by an argument the analyzer cannot see
	for {
	}
}

// carrier holds a context in a struct field; methods on it count as
// able to receive one.
type carrier struct {
	ctx context.Context
}

func (c carrier) spinViaField() {
	for {
		if c.ctx.Err() != nil {
			return
		}
	}
}

// orphan is not reachable from any root; its loop is out of scope.
func orphan() {
	for {
	}
}
