// Command kpart-exact computes EXACT expected stabilization times for
// small populations by solving the configuration Markov chain under the
// uniform-random scheduler (internal/markov), and optionally contrasts
// them with simulation means — a bias check for the whole simulation
// stack, and the exact version of Figure 3 at small n.
//
// Usage:
//
//	kpart-exact -k 3 -nmax 12 [-sim 2000] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/markov"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	var (
		k      = flag.Int("k", 3, "number of groups")
		nmin   = flag.Int("nmin", 3, "smallest population")
		nmax   = flag.Int("nmax", 12, "largest population")
		trials = flag.Int("sim", 2000, "simulation trials per n for comparison (0 = exact only)")
		seed   = flag.Uint64("seed", 5, "simulation seed")
	)
	flag.Parse()

	p, err := core.New(*k)
	if err != nil {
		fatal(err)
	}
	tbl := report.NewTable("n", "configs", "exact_E[interactions]", "sim_mean", "sim_ci95", "zscore")
	for n := *nmin; n <= *nmax; n++ {
		ch, err := markov.New(p, n)
		if err != nil {
			fatal(err)
		}
		E, err := ch.HittingTimes(1e-10, 0)
		if err != nil {
			fatal(fmt.Errorf("n=%d: %w", n, err))
		}
		exact := E[0]
		simMean, simCI := "", ""
		z := ""
		if *trials > 0 {
			xs := make([]float64, *trials)
			for t := 0; t < *trials; t++ {
				res, err := harness.RunTrial(harness.TrialSpec{
					N: n, K: *k, Seed: rng.StreamSeed(*seed, uint64(n), uint64(t)),
				})
				if err != nil {
					fatal(err)
				}
				xs[t] = float64(res.Interactions)
			}
			s, _ := stats.Summarize(xs)
			ci := stats.CI95(xs)
			simMean = report.FormatFloat(s.Mean)
			simCI = report.FormatFloat(ci)
			if ci > 0 {
				z = report.FormatFloat((s.Mean - exact) / (ci / 1.96))
			}
		}
		tbl.AddRow(n, len(ch.Graph.Nodes), exact, simMean, simCI, z)
	}
	fmt.Printf("Exact expected interactions to stability, k=%d (uniform-random scheduler)\n", *k)
	tbl.WriteTo(os.Stdout)
	if *trials > 0 {
		fmt.Println("\nzscore = (simulated mean − exact) / standard error; |z| ≲ 3 means the")
		fmt.Println("simulator is unbiased at this point to Monte-Carlo resolution.")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-exact:", err)
	os.Exit(1)
}
