package explore

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
)

func TestBuildRejectsTinyN(t *testing.T) {
	if _, err := Build(core.MustNew(3), 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestBuildInitialNode(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes[0].Counts[p.Initial()] != 5 {
		t.Fatalf("node 0 = %v", g.Nodes[0])
	}
	if g.Nodes[0].N() != 5 {
		t.Fatalf("N() = %d", g.Nodes[0].N())
	}
}

// Every node must preserve the population size and the Lemma 1 invariant —
// the graph enumerates exactly the reachable set the paper's proof reasons
// about.
func TestGraphNodesSatisfyLemma1(t *testing.T) {
	for _, cse := range []struct{ n, k int }{{5, 3}, {6, 3}, {7, 4}, {6, 5}} {
		p := core.MustNew(cse.k)
		g, err := Build(p, cse.n)
		if err != nil {
			t.Fatal(err)
		}
		for i, node := range g.Nodes {
			if node.N() != cse.n {
				t.Fatalf("n=%d k=%d node %d: population %d", cse.n, cse.k, i, node.N())
			}
			if err := p.CheckInvariant(node.Counts); err != nil {
				t.Fatalf("n=%d k=%d node %d (%s): %v", cse.n, cse.k, i, node.Format(p), err)
			}
		}
	}
}

// THEOREM 1, verified exhaustively: for a grid of (n, k), from every
// reachable configuration a stable configuration is reachable, and every
// stable configuration is a uniform partition. This is the fairness-free
// finite equivalent of the paper's main result.
func TestTheorem1Exhaustive(t *testing.T) {
	grid := []struct{ n, k int }{
		{3, 2}, {4, 2}, {5, 2}, {6, 2}, {7, 2}, {8, 2}, {9, 2}, {10, 2},
		{3, 3}, {4, 3}, {5, 3}, {6, 3}, {7, 3}, {8, 3}, {9, 3}, {10, 3},
		{4, 4}, {5, 4}, {6, 4}, {7, 4}, {8, 4}, {9, 4},
		{5, 5}, {6, 5}, {7, 5},
		{3, 4}, {3, 5}, {4, 6}, // n < k
	}
	for _, cse := range grid {
		rep, err := Check(core.MustNew(cse.k), cse.n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.LiveFromAll {
			t.Errorf("n=%d k=%d: configuration %v cannot reach a stable one",
				cse.n, cse.k, rep.FirstNonLive)
		}
		if !rep.Uniform {
			t.Errorf("n=%d k=%d: non-uniform stable configuration %v",
				cse.n, cse.k, rep.FirstNonUniform)
		}
		if rep.Stable == 0 {
			t.Errorf("n=%d k=%d: no stable configuration", cse.n, cse.k)
		}
	}
}

// The stable set must contain exactly the configurations matching the
// core package's closed-form signature — cross-validating IsStable (used
// by the O(1) runtime detector) against the semantic definition (used by
// the model checker). For n mod k == 1 the stable class has two members
// (leftover agent in initial or initial'); both canonicalize identically.
func TestStableSetMatchesSignature(t *testing.T) {
	for _, cse := range []struct{ n, k int }{{6, 3}, {7, 3}, {8, 3}, {8, 4}, {9, 4}, {10, 4}} {
		p := core.MustNew(cse.k)
		g, err := Build(p, cse.n)
		if err != nil {
			t.Fatal(err)
		}
		stable := g.StableNodes()
		for i, s := range stable {
			if got := p.IsStable(g.Nodes[i].Counts); got != s {
				t.Fatalf("n=%d k=%d node %s: checker says stable=%v, signature says %v",
					cse.n, cse.k, g.Nodes[i].Format(p), s, got)
			}
		}
	}
}

// n = 2 with a symmetric protocol can never break symmetry (Section 2.1):
// the two agents oscillate initial <-> initial' forever, a frozen loop in
// which both stay in group 1. The checker must therefore find that no
// reachable stable configuration is uniform — the impossibility the paper
// uses to justify assuming n >= 3.
func TestNEquals2CannotPartition(t *testing.T) {
	p := core.MustNew(2)
	rep, err := Check(p, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uniform {
		t.Fatal("n=2: checker claims a uniform stable partition exists")
	}
	// The oscillation itself IS membership-stable (both agents map to
	// group 1 throughout), so the stable set is the whole 2-cycle.
	if rep.Stable != 2 {
		t.Fatalf("n=2: stable set has %d members, want the 2-cycle", rep.Stable)
	}
}

// The checker must notice protocols that are NOT live. A deliberately
// broken variant: remove rule 8 (m-m demotion), so two m-heads can
// deadlock short of completing a grouping.
func TestCheckDetectsBrokenProtocol(t *testing.T) {
	k := 3
	b := protocol.NewBuilder("broken", true)
	ini := b.AddState("initial", 1)
	bar := b.AddState("initial'", 1)
	g1 := b.AddState("g1", 1)
	g2 := b.AddState("g2", 2)
	g3 := b.AddState("g3", 3)
	m2 := b.AddState("m2", 2)
	b.SetInitial(ini)
	b.AddRule(ini, ini, bar, bar)
	b.AddRule(bar, bar, ini, ini)
	for _, g := range []protocol.State{g1, g2, g3} {
		b.AddRule(g, ini, g, bar)
		b.AddRule(g, bar, g, ini)
	}
	b.AddRule(ini, bar, g1, m2)
	b.AddRule(ini, m2, g2, g3)
	b.AddRule(bar, m2, g2, g3)
	// rule 8 omitted: (m2, m2) is null, so two m2 agents with no free
	// agents left is a dead non-uniform configuration.
	broken := b.MustBuild()
	_ = k
	rep, err := Check(broken, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With n=4: (m2, m2, g1, g1) is reachable, frozen (m2-m2 null,
	// g-agents only flip nobody), and NOT uniform (group sizes 4,0,0...
	// wait: f(m2)=2, so sizes are g1:2, m2:2 -> 2,2,0). Spread 2 > 1.
	if rep.LiveFromAll && rep.Uniform {
		t.Fatal("checker passed a protocol missing rule 8")
	}
}

func TestLookup(t *testing.T) {
	p := core.MustNew(3)
	g, err := Build(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := g.Lookup(g.Nodes[0]); !ok || id != 0 {
		t.Fatalf("Lookup(start) = %d, %v", id, ok)
	}
	absent := Config{Counts: make([]int, p.NumStates())}
	absent.Counts[p.G(1)] = 4 // violates Lemma 1; unreachable
	if _, ok := g.Lookup(absent); ok {
		t.Fatal("unreachable configuration found in graph")
	}
}

func TestConfigFormat(t *testing.T) {
	p := core.MustNew(3)
	c := Config{Counts: make([]int, p.NumStates())}
	c.Counts[p.G(1)] = 2
	c.Counts[p.M(2)] = 1
	s := c.Format(p)
	if !strings.Contains(s, "g1:2") || !strings.Contains(s, "m2:1") {
		t.Errorf("Format = %q", s)
	}
}

// Growth sanity: the reachable set is much smaller than the full multiset
// space thanks to Lemma 1; record a couple of counts to catch regressions
// in the exploration (e.g. spurious transitions inflating the graph).
func TestReachableSetSizes(t *testing.T) {
	p := core.MustNew(3)
	g6, err := Build(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	g8, err := Build(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(g6.Nodes) >= len(g8.Nodes) {
		t.Fatalf("reachable set not growing with n: %d vs %d", len(g6.Nodes), len(g8.Nodes))
	}
	// Full multiset space for n=8 over 7 states is C(14,6) = 3003; the
	// reachable set must be a strict subset.
	if len(g8.Nodes) >= 3003 {
		t.Fatalf("reachable set %d >= full space 3003", len(g8.Nodes))
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	p := core.MustNew(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}
