// Golden input for the determinism analyzer's internal/serve scope:
// this file is named like the executor edge (edgeFiles), so its
// wall-clock use is legal when the package is loaded as
// "repro/internal/serve".
package serve

import "time"

func EdgeTiming() time.Duration {
	start := time.Now() // allowed: pool.go is the executor edge
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
