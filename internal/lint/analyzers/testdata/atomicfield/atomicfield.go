// Golden input for the atomicfield analyzer: a field touched by a
// sync/atomic function anywhere must be touched that way everywhere.
package counters

import "sync/atomic"

type Stats struct {
	hits uint64
	safe atomic.Uint64
}

func (s *Stats) Incr() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *Stats) RacyRead() uint64 {
	return s.hits // want `accessed with sync/atomic`
}

func (s *Stats) RacyReset() {
	s.hits = 0 // want `accessed with sync/atomic`
}

func (s *Stats) GoodRead() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// atomic.Uint64-typed fields are safe by construction: every method is
// atomic, so no diagnostics for safe.
func (s *Stats) SafeIncr()        { s.safe.Add(1) }
func (s *Stats) SafeRead() uint64 { return s.safe.Load() }

// A plain field never used atomically is none of this analyzer's
// business.
type Plain struct{ n int }

func (p *Plain) Bump() { p.n++ }
