package twin

import (
	"fmt"
	"math"

	"repro/internal/harness"
	"repro/internal/stats"
)

// Fidelity tags how a prediction was produced — which rung of the ladder
// answered, and therefore which error-budget contract applies.
type Fidelity string

// The fidelity tags of the ladder's rungs.
const (
	// FidelityExact marks lumped-chain predictions: exact expectations up
	// to solver tolerance (RelErrExact).
	FidelityExact Fidelity = "exact-lumped"
	// FidelityFluid marks mean-field predictions: fluid-limit expectations
	// with an exact endgame correction, accurate to the calibrated
	// RelErrFluid budget on the committed validation grid.
	FidelityFluid Fidelity = "mean-field"
)

// The error-budget contract per rung: the relative error each rung is
// allowed against its ground truth (internal/markov exact values for
// rung 1, multi-trial simulation means for rung 2). `make twin-check`
// enforces these against TWIN_baseline.json; DESIGN.md §10 documents the
// contract.
const (
	// RelErrExact is rung 1's budget against exact full-chain values.
	RelErrExact = 0.001
	// RelErrFluid is rung 2's budget against simulation means.
	RelErrFluid = 0.10
)

// Spec identifies a prediction question: a population and group count,
// and optionally the per-milestone breakdown (expected interactions at
// each #gk arrival, the analytical counterpart of a trial's Marks).
type Spec struct {
	N          int  `json:"n"`
	K          int  `json:"k"`
	Milestones bool `json:"milestones,omitempty"`
}

// Validate checks the spec against the same (n, k) admission predicate
// the trial pipeline uses, so the oracle and the simulator agree on what
// a well-posed question is. Failures wrap harness.ErrInvalidSpec.
func (s Spec) Validate() error {
	return harness.ValidatePartition(s.N, s.K)
}

// Prediction is a model's answer with its provenance and error bars.
type Prediction struct {
	N int `json:"n"`
	K int `json:"k"`
	// Model names the rung that answered ("lumped" or "meanfield");
	// Fidelity tags its accuracy class.
	Model    string   `json:"model"`
	Fidelity Fidelity `json:"fidelity"`
	// ExpectedInteractions is the predicted mean number of interactions
	// from the all-initial configuration to the stable configuration.
	ExpectedInteractions float64 `json:"expected_interactions"`
	// StdInteractions is the predicted standard deviation of that time —
	// exact on rung 1, calibrated on rung 2.
	StdInteractions float64 `json:"std_interactions"`
	// IntervalLow/IntervalHigh bound a single trial's stabilization time
	// with ~95% coverage (mean ± 1.96·std, clipped at 0).
	IntervalLow  float64 `json:"interval_low"`
	IntervalHigh float64 `json:"interval_high"`
	// RelErrBudget is the rung's documented accuracy contract for the
	// mean: RelErrExact or RelErrFluid.
	RelErrBudget float64 `json:"rel_err_budget"`
	// Milestones[j−1] is the expected number of interactions until #gk
	// first reaches j (the j-th complete group), for j = 1..⌊n/k⌋.
	// Present only when the spec asked for it.
	Milestones []float64 `json:"milestones,omitempty"`
	// States is the number of lumped states the answer solved over (the
	// whole chain on rung 1, the endgame sub-chain on rung 2).
	States int `json:"states,omitempty"`
}

// Model is one rung of the surrogate ladder.
type Model interface {
	// Name is the rung's short identifier, stable across releases (it is
	// part of the Prediction wire format).
	Name() string
	// Fidelity tags the rung's accuracy class.
	Fidelity() Fidelity
	// Supports reports whether the rung can answer for (n, k) within its
	// cost envelope. Specs must already be valid.
	Supports(n, k int) bool
	// Predict answers the spec. Invalid specs fail with an error wrapping
	// harness.ErrInvalidSpec.
	Predict(s Spec) (Prediction, error)
}

// DefaultStateBudget is the largest lumped chain Auto is willing to solve
// exactly before dropping to the mean-field rung: 200k states keeps the
// exact answer under ~1 s while covering populations far beyond
// internal/markov's full configuration graph.
const DefaultStateBudget = 200_000

// The shared default rungs: Lumped is stateless, MeanField caches its
// endgame chains, so Auto's repeat questions stay warm.
var (
	defaultLumped    = NewLumped(DefaultStateBudget)
	defaultMeanField = NewMeanField()
)

// Select returns the highest-fidelity rung that can answer (n, k) within
// the given state budget: the lumped chain when the reduced state space
// fits, the mean-field model otherwise.
func Select(n, k, budget int) Model {
	if LumpedFits(n, k, budget) {
		if budget == DefaultStateBudget {
			return defaultLumped
		}
		return NewLumped(budget)
	}
	return defaultMeanField
}

// Auto validates the spec, picks the rung with Select under the default
// budget, and answers. This is what POST /v1/predict and kpart-predict
// call.
func Auto(s Spec) (Prediction, error) {
	if err := s.Validate(); err != nil {
		return Prediction{}, err
	}
	return Select(s.N, s.K, DefaultStateBudget).Predict(s)
}

// finishPrediction fills the derived interval fields from the mean and
// std, clipping the lower bound at 0 (a stabilization time is never
// negative; the normal approximation does not know that).
func finishPrediction(pr *Prediction) {
	iv := stats.PredictionInterval(pr.ExpectedInteractions, pr.StdInteractions, stats.Z95)
	pr.IntervalLow = math.Max(0, iv.Low())
	pr.IntervalHigh = iv.High()
}

// checkSpec is the shared entry guard of the rungs' Predict methods.
func checkSpec(s Spec) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("twin: %w", err)
	}
	return nil
}
