// Sensornet: the paper's first motivating application — reducing energy
// consumption by switching groups on and off ("It can be used for reducing
// the energy consumption of the whole system by switching on some groups
// and switching off the others", Section 1.1).
//
// A flock of battery-powered wildlife sensors must keep roughly 1/k of
// the fleet awake at any time while the rest sleep. The sensors are
// anonymous, meet pairwise at random (two birds approaching each other),
// and have a handful of bits of state — exactly the population protocol
// model. This example:
//
//  1. runs the uniform k-partition protocol to assign every sensor a
//     duty-cycle shift,
//
//  2. simulates a day of rotating shifts, and
//
//  3. reports coverage (awake fraction per shift) and the per-sensor duty
//     cycle, which would be n/k-fair only if the partition is uniform.
//
//     go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/sim"
)

const (
	fleet  = 120 // sensors
	shifts = 6   // duty-cycle shifts (k)
	hours  = 24  // simulated day
	seed   = 99
)

func main() {
	proto, err := core.New(shifts)
	if err != nil {
		log.Fatal(err)
	}
	pop := population.New(proto, fleet)
	target, err := proto.TargetCounts(fleet)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: self-organize into shifts via pairwise encounters.
	res, err := sim.Run(pop, sched.NewRandom(seed),
		sim.NewCountTarget(proto.CanonMap(), target), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d sensors self-partitioned into %d shifts after %d encounters\n",
		fleet, shifts, res.Interactions)
	fmt.Printf("shift sizes: %v (spread %d agent)\n", res.GroupSizes, res.Spread())

	// Phase 2: rotate shifts over a day. Shift s is awake during hours
	// h with h mod shifts == s-1.
	shiftOf := make([]int, fleet)
	for i := range shiftOf {
		shiftOf[i] = proto.Group(pop.State(i))
	}
	awakeHours := make([]int, fleet)
	fmt.Println("\nhour  awake-shift  sensors-awake  coverage")
	for h := 0; h < hours; h++ {
		active := h%shifts + 1
		awake := 0
		for i, s := range shiftOf {
			if s == active {
				awake++
				awakeHours[i]++
			}
		}
		if h < 8 { // print the first cycle plus a bit
			fmt.Printf("%4d  %11d  %13d  %7.1f%%\n", h, active, awake, 100*float64(awake)/fleet)
		}
	}

	// Phase 3: fairness audit. With a uniform partition every sensor is
	// awake either ⌊24/6⌋ = 4 hours — perfect load balance.
	min, max := awakeHours[0], awakeHours[0]
	var total int
	for _, a := range awakeHours {
		total += a
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	fmt.Printf("\nduty cycle per sensor: min %dh, max %dh (ideal %dh)\n", min, max, hours/shifts)
	fmt.Printf("fleet-wide awake sensor-hours: %d (energy budget %.1f%% of always-on)\n",
		total, 100*float64(total)/float64(fleet*hours))
	if max-min > hours/shifts {
		log.Fatal("duty cycles unfair — partition was not uniform")
	}
	fmt.Println("duty-cycle fairness verified: no sensor works more than one extra shift")
}
