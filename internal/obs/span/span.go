// Package span is the distributed-tracing layer of the simulation
// stack: explicit, deterministic span trees that follow one trial from
// the HTTP edge (serve admission and queue) through the harness
// (trial, attempt) into the engines (per-#gk grouping phases), exported
// as JSONL and rendered by cmd/kpart-spans.
//
// The design constraint is the repository's determinism bar: a span
// tree's identity — trace ID, span IDs, parent links, names, attributes
// and the logical (interaction-count) intervals — must be a pure
// function of the trial spec, so two runs of the same spec export
// byte-comparable trees. Concretely:
//
//   - Trace IDs derive from harness.SpecKey content hashes plus a
//     per-process occurrence sequence (the second request for the same
//     spec in one process gets ".2"), never from randomness or time.
//   - Span IDs are the trace's start-order sequence, so a trace built
//     by one request pipeline numbers identically run to run.
//   - Engine-scope code records logical intervals only: StartSeq/EndSeq
//     are interaction counts, the paper's own time metric.
//   - Wall clock enters exclusively through wall.go, the sanctioned
//     timing edge (the determinism analyzer polices every other file of
//     this package like an engine package). Wall fields are attachment
//     metadata, excluded from identity comparisons.
//
// Propagation is explicit: a context carries the current *ActiveSpan,
// and the X-Kpart-Trace HTTP header carries a trace ID across the wire.
package span

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Attr is one key=value annotation on a span. Attrs are kept sorted by
// key at export so encoded spans are stable regardless of set order.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is the exported (finished) form of one span. The identity fields
// — Trace, ID, Parent, Name, Attrs, StartSeq, EndSeq — are deterministic
// for a fixed spec; the Wall* fields are edge-captured metadata that
// varies run to run and is omitted when never stamped.
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	Attrs  []Attr `json:"attrs,omitempty"`
	// StartSeq/EndSeq are the span's logical interval in engine
	// interaction counts (both zero for spans outside engine scope).
	StartSeq uint64 `json:"start_seq,omitempty"`
	EndSeq   uint64 `json:"end_seq,omitempty"`
	// WallStartUS/WallDurUS are microseconds since the process trace
	// epoch, stamped only through wall.go at the harness/serve edges.
	WallStartUS uint64 `json:"wall_start_us,omitempty"`
	WallDurUS   uint64 `json:"wall_dur_us,omitempty"`
}

// Trace is one in-flight span tree. All methods are safe for concurrent
// use (a request's queue span and a worker's trial span may end from
// different goroutines); span IDs are assigned in Start order, so a
// deterministic pipeline yields deterministic IDs.
type Trace struct {
	id string

	mu       sync.Mutex
	seq      int    // guarded by mu
	finished []Span // guarded by mu
	// prefix of finished already written to a sink
	// guarded by mu
	streamed int
	open     int          // guarded by mu
	onDone   func(*Trace) // guarded by mu
}

// NewTrace starts a trace under the given ID (see DeriveTraceID for the
// canonical spec-derived form).
func NewTrace(id string) *Trace {
	return newHookedTrace(id, nil)
}

// newHookedTrace constructs a trace with its completion hook installed
// before the trace is published to any other goroutine — the only place
// onDone may be set without holding mu.
func newHookedTrace(id string, onDone func(*Trace)) *Trace {
	return &Trace{id: id, onDone: onDone}
}

// ID returns the trace identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root starts the trace's root span. A trace may hold several roots
// (e.g. a retried request), though the serving pipeline uses one.
func (t *Trace) Root(name string) *ActiveSpan {
	return t.start(name, "")
}

func (t *Trace) start(name, parent string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	// Fixed-width IDs keep lexicographic order equal to start order;
	// eight hex digits hold any trace a process could physically record.
	id := fmt.Sprintf("%08x", t.seq)
	t.open++
	t.mu.Unlock()
	return &ActiveSpan{
		trace: t,
		span:  Span{Trace: t.id, ID: id, Parent: parent, Name: name},
	}
}

// finish records a completed span; whenever the open-span count reaches
// zero, the completion hook (Collector delivery) fires. Note that zero
// can be reached more than once — e.g. a request root ends while the
// job is still queued, and the worker's spans reopen the trace later —
// so the hook must tolerate repeated firing (see takeUndelivered).
func (t *Trace) finish(s Span) {
	t.mu.Lock()
	t.finished = append(t.finished, s)
	t.open--
	done := t.open == 0
	hook := t.onDone
	t.mu.Unlock()
	if done && hook != nil {
		hook(t)
	}
}

// Spans returns the finished spans sorted by span ID (= start order).
// Open spans are not included; callers exporting a trace end the root
// first.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.finished...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// takeUndelivered returns the finished spans a sink has not streamed
// yet, sorted by span ID among themselves, and marks them streamed.
// This is the delivery latch: the completion hook can fire every time
// the trace's open count transiently reaches zero, and the latch keeps
// each span from being written to the sink more than once.
func (t *Trace) takeUndelivered() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.finished[t.streamed:]...)
	t.streamed = len(t.finished)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveSpan is a started, not-yet-finished span. Not safe for
// concurrent mutation; hand distinct children to distinct goroutines.
// A nil *ActiveSpan is a valid no-op, so instrumented code never
// branches on whether tracing is on.
type ActiveSpan struct {
	trace *Trace
	span  Span
	done  bool
}

// Child starts a sub-span of s. Child of a nil span is nil, so an
// untraced call chain stays untraced without checks.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.trace.start(name, s.span.ID)
}

// Trace returns the owning trace (nil for a nil span).
func (s *ActiveSpan) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// ID returns the span's ID ("" for nil).
func (s *ActiveSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.ID
}

// SetAttr annotates the span. Setting an existing key overwrites it.
func (s *ActiveSpan) SetAttr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	for i := range s.span.Attrs {
		if s.span.Attrs[i].Key == key {
			s.span.Attrs[i].Value = value
			return s
		}
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
	return s
}

// SetSeq records the span's logical interval in engine interaction
// counts — the deterministic clock engine-scope spans are timed on.
func (s *ActiveSpan) SetSeq(start, end uint64) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.StartSeq, s.span.EndSeq = start, end
	return s
}

// SetWall records a wall-clock interval captured by the caller at a
// sanctioned timing edge (see wall.go's Stopwatch). The span package
// itself never reads the clock here.
func (s *ActiveSpan) SetWall(startUS, durUS uint64) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.WallStartUS, s.span.WallDurUS = startUS, durUS
	return s
}

// End finishes the span, sorting its attrs and delivering it to the
// trace. End is idempotent; ending a nil span is a no-op.
func (s *ActiveSpan) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	sort.Slice(s.span.Attrs, func(i, j int) bool { return s.span.Attrs[i].Key < s.span.Attrs[j].Key })
	s.trace.finish(s.span)
}

// --- spec-derived trace IDs -------------------------------------------------

// DeriveTraceID returns the canonical trace ID for the occurrence-th
// request (1-based) of the spec identified by specKey in this process:
// the content hash, suffixed with the occurrence past the first. Both
// inputs are deterministic, so the Nth request for a spec gets the same
// trace ID in every run.
func DeriveTraceID(specKey string, occurrence int) string {
	if occurrence <= 1 {
		return specKey
	}
	return fmt.Sprintf("%s.%d", specKey, occurrence)
}

// Sequencer hands out per-spec occurrence numbers for DeriveTraceID: a
// monotonic per-process sequence per spec key, so concurrent requests
// for one spec get distinct (but run-to-run stable) trace IDs.
type Sequencer struct {
	mu   sync.Mutex
	seen map[string]int // guarded by mu
}

// Next returns the next occurrence number for specKey (1 on first use).
func (q *Sequencer) Next(specKey string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.seen == nil {
		q.seen = make(map[string]int)
	}
	q.seen[specKey]++
	return q.seen[specKey]
}

// --- context propagation ----------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying s as the current span.
func NewContext(ctx context.Context, s *ActiveSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil (a valid no-op span)
// when ctx carries none.
func FromContext(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}

// --- X-Kpart-Trace header ---------------------------------------------------

// Header is the HTTP header that carries a trace ID across the wire:
// requests may supply one to name their trace, responses echo the
// trace ID the server recorded the request under.
const Header = "X-Kpart-Trace"

// maxHeaderID bounds a client-supplied trace ID.
const maxHeaderID = 128

// ValidID reports whether id is usable as a wire trace ID: 1..128 bytes
// of [A-Za-z0-9._-]. The derived SpecKey form always qualifies.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > maxHeaderID {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
