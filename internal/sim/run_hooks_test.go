package sim

// Hook-semantics contract tests: the obs layer (internal/obs) and the
// Figure 4 instrumentation both ride on exactly these guarantees, so
// they are pinned here against engine drift:
//
//  1. hooks observe every applied step, including the final one (the
//     step on which the stop condition fires);
//  2. hooks run after the stop condition, in Options.Hooks order;
//  3. a hook-counted tally of StepInfo.Changed equals Result.Productive.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sched"
)

// logHook appends its tag to a shared log on Init and every step.
type logHook struct {
	tag   string
	log   *[]string
	steps uint64
	inits int
}

func (h *logHook) Init(*population.Population) { h.inits++ }

func (h *logHook) OnStep(pop *population.Population, s StepInfo) {
	h.steps++
	*h.log = append(*h.log, h.tag)
}

// logStop is a stop condition that also writes to the shared log, so
// per-step ordering between condition and hooks is observable. It stops
// after `after` applied interactions.
type logStop struct {
	log   *[]string
	after uint64
}

func (c *logStop) Init(*population.Population) {}

func (c *logStop) Step(pop *population.Population, s StepInfo) bool {
	*c.log = append(*c.log, "stop")
	return pop.Interactions() >= c.after
}

func TestHooksFireOnEveryAppliedStep(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 20)
	var log []string
	h := &logHook{tag: "h", log: &log}
	res, err := Run(pop, sched.NewRandom(1), Never{}, Options{
		MaxInteractions: 500,
		Hooks:           []Hook{h},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.inits != 1 {
		t.Fatalf("Init called %d times, want 1", h.inits)
	}
	if h.steps != res.Interactions || h.steps != 500 {
		t.Fatalf("hook saw %d steps, result has %d interactions", h.steps, res.Interactions)
	}
}

func TestHooksSeeFinalStepAndRunAfterStop(t *testing.T) {
	const stopAfter = 37
	p := core.MustNew(3)
	pop := population.New(p, 12)
	var log []string
	a := &logHook{tag: "a", log: &log}
	b := &logHook{tag: "b", log: &log}
	res, err := Run(pop, sched.NewRandom(2), &logStop{log: &log, after: stopAfter}, Options{
		Hooks: []Hook{a, b},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != stopAfter {
		t.Fatalf("unexpected result %+v", res)
	}
	// Every applied step logs the triple (stop, a, b) — the hooks run
	// after the stop condition and still observe the terminating step.
	if len(log) != 3*stopAfter {
		t.Fatalf("log has %d entries, want %d", len(log), 3*stopAfter)
	}
	for i := 0; i < len(log); i += 3 {
		if log[i] != "stop" || log[i+1] != "a" || log[i+2] != "b" {
			t.Fatalf("step %d ordered %v, want [stop a b]", i/3, log[i:i+3])
		}
	}
	if a.steps != stopAfter || b.steps != stopAfter {
		t.Fatalf("hooks saw %d/%d steps, want %d (final step included)", a.steps, b.steps, stopAfter)
	}
}

func TestHookOrderingStableAcrossManySteps(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 16)
	var log []string
	hooks := []Hook{
		&logHook{tag: "h0", log: &log},
		&logHook{tag: "h1", log: &log},
		&logHook{tag: "h2", log: &log},
	}
	if _, err := Run(pop, sched.NewRandom(3), Never{}, Options{
		MaxInteractions: 200,
		Hooks:           hooks,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(log); i += 3 {
		if log[i] != "h0" || log[i+1] != "h1" || log[i+2] != "h2" {
			t.Fatalf("step %d ordered %v, want [h0 h1 h2]", i/3, log[i:i+3])
		}
	}
}

func TestProductiveMatchesHookTally(t *testing.T) {
	p := core.MustNew(4)
	pop := population.New(p, 24)
	var productive, total uint64
	counter := StepFunc(func(pop *population.Population, s StepInfo) {
		total++
		if s.Changed {
			productive++
		}
	})
	res, err := Run(pop, sched.NewRandom(4), mustTarget(t, p, 24), Options{
		Hooks: []Hook{counter},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if total != res.Interactions {
		t.Fatalf("hook counted %d steps, result has %d interactions", total, res.Interactions)
	}
	if productive != res.Productive {
		t.Fatalf("hook counted %d productive steps, result says %d", productive, res.Productive)
	}
	// StepInfo must be self-consistent: Changed iff Before != After.
	check := StepFunc(func(pop *population.Population, s StepInfo) {
		if s.Changed == (s.Before == s.After) {
			t.Fatalf("inconsistent StepInfo: %+v", s)
		}
	})
	pop2 := population.New(p, 24)
	if _, err := Run(pop2, sched.NewRandom(5), mustTarget(t, p, 24), Options{
		Hooks: []Hook{check},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHooksNotSteppedOnPreSatisfiedStop(t *testing.T) {
	p := core.MustNew(3)
	pop := population.FromStates(p, []uint16{
		p.G(1), p.G(1), p.G(2), p.G(2), p.G(3), p.G(3),
	})
	var log []string
	h := &logHook{tag: "h", log: &log}
	res, err := Run(pop, sched.NewRandom(1), mustTarget(t, p, 6), Options{Hooks: []Hook{h}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Interactions != 0 {
		t.Fatalf("pre-satisfied run: %+v", res)
	}
	if h.inits != 1 || h.steps != 0 {
		t.Fatalf("hook Init=%d steps=%d, want Init once and no steps", h.inits, h.steps)
	}
}
