// Golden input for the determinism analyzer's internal/obs/span scope:
// this file is named like the sanctioned timing edge (edgeFiles), so
// its wall-clock use is legal when the package is loaded as
// "repro/internal/obs/span".
package span

import "time"

func EdgeStopwatch() time.Duration {
	start := time.Now() // allowed: wall.go is the timing edge
	return time.Since(start)
}
