// Golden input for the docpresence analyzer; loaded as
// "repro/internal/foo" so the internal-package scope applies.
package foo

// Documented has a doc comment; no finding.
type Documented struct{}

type Naked struct{} // want `exported type Naked has no doc comment`

// DocumentedFunc is documented.
func DocumentedFunc() {}

func NakedFunc() {} // want `exported function NakedFunc has no doc comment`

func unexported() {} // unexported: exempt

// DocumentedMethod is documented.
func (Documented) DocumentedMethod() {}

func (Documented) NakedMethod() {} // want `exported method NakedMethod has no doc comment`

type hidden struct{}

// Exported methods on unexported types are interface plumbing; exempt.
func (hidden) Close() error { return nil }

// MaxThings is documented.
const MaxThings = 4

const NakedConst = 5 // want `exported const NakedConst has no doc comment`

// Grouped constants: the group doc covers every member.
const (
	GroupedA = iota
	GroupedB
)

const (
	// PerSpecDoc is documented spec by spec.
	PerSpecDoc = 1
	GroupNaked = 3 // want `exported const GroupNaked has no doc comment`
)

var NakedVar int // want `exported var NakedVar has no doc comment`

// DocumentedVar is documented.
var DocumentedVar int

func init() { unexported() } // init is unexported; exempt
