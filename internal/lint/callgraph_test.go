package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTestProgram writes a scratch module, loads each package dir as an
// analysis unit, and builds its call graph.
func loadTestProgram(t *testing.T, files map[string]string, pkgDirs ...string) (*CallGraph, []*Package) {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range pkgDirs {
		pkg, err := loader.Load(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return BuildCallGraph(loader.Fset, pkgs), pkgs
}

func findFunc(t *testing.T, g *CallGraph, name string) *Func {
	t.Helper()
	for _, fn := range g.Funcs {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("no node named %s in %d-node graph", name, len(g.Funcs))
	return nil
}

// calleeNames returns "kind name" for every edge out of fn, sorted.
func calleeNames(g *CallGraph, fn *Func) []string {
	var out []string
	for _, e := range g.Callees(fn) {
		out = append(out, e.Kind.String()+" "+e.Callee.Name())
	}
	return out
}

func hasEdge(g *CallGraph, fn *Func, want string) bool {
	for _, s := range calleeNames(g, fn) {
		if s == want {
			return true
		}
	}
	return false
}

func TestCallGraphEdgeKinds(t *testing.T) {
	g, _ := loadTestProgram(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"p/p.go": `package p

type runner interface{ Run() }

type fast struct{}

func (fast) Run() {}

type slow struct{}

func (*slow) Run() {}

func direct() {}

func dynTarget(x uint16) uint16 { return x }

func driver(r runner, f func(uint16) uint16) {
	direct()
	go direct()
	defer direct()
	r.Run()
	f(1)
	func() { direct() }()
}

func takeAddr() func(uint16) uint16 { return dynTarget }
`,
	}, "p")

	driver := findFunc(t, g, "p.driver")
	for _, want := range []string{
		"static p.direct",
		"go p.direct",
		"defer p.direct",
		"interface p.(fast).Run",
		"interface p.(slow).Run",
		"dynamic p.dynTarget",
	} {
		if !hasEdge(g, driver, want) {
			t.Errorf("driver is missing edge %q; has %v", want, calleeNames(g, driver))
		}
	}
	// The immediately-invoked literal is a node of its own, reached from
	// driver, and its body's call produces its own static edge.
	var lit *Func
	for _, e := range g.Callees(driver) {
		if e.Callee.Lit != nil {
			lit = e.Callee
		}
	}
	if lit == nil {
		t.Fatalf("driver has no literal callee; has %v", calleeNames(g, driver))
	}
	if lit.Parent != driver {
		t.Errorf("literal's Parent = %v, want driver", lit.Parent)
	}
	if !hasEdge(g, lit, "static p.direct") {
		t.Errorf("literal body edge missing; has %v", calleeNames(g, lit))
	}
}

func TestCallGraphGoSitesAndUnresolved(t *testing.T) {
	g, _ := loadTestProgram(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"p/p.go": `package p

func work() {}

func launch(f func(int8) int8) {
	go work()
	go f(0)
}
`,
	}, "p")
	if len(g.GoSites) != 2 {
		t.Fatalf("want 2 go sites, got %d", len(g.GoSites))
	}
	if n := len(g.GoSites[0].Targets); n != 1 || g.GoSites[0].Targets[0].Name() != "p.work" {
		t.Errorf("first go site targets = %v", g.GoSites[0].Targets)
	}
	// No address-taken function matches func(int8) int8, so the second
	// site must stay unresolved rather than guess.
	if n := len(g.GoSites[1].Targets); n != 0 {
		t.Errorf("second go site should be unresolved, got %d targets", n)
	}
}

func TestCallGraphReachableAndCrossPackage(t *testing.T) {
	g, pkgs := loadTestProgram(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

// Leaf is called from package b.
func Leaf() {}
`,
		"b/b.go": `package b

import "example.com/m/a"

func Root() { a.Leaf() }

func orphan() {}
`,
	}, "a", "b")
	_ = pkgs
	root := findFunc(t, g, "b.Root")
	leaf := findFunc(t, g, "a.Leaf")
	orphan := findFunc(t, g, "b.orphan")
	// The static call crosses the package boundary: b's view of a.Leaf is
	// a dependency-universe object, resolved to a's analysis node by
	// declaration position.
	if !hasEdge(g, root, "static a.Leaf") {
		t.Fatalf("cross-package static edge missing; has %v", calleeNames(g, root))
	}
	seen := g.Reachable([]*Func{root})
	if !seen[root] || !seen[leaf] {
		t.Errorf("Reachable(Root) should include Root and Leaf, got %d funcs", len(seen))
	}
	if seen[orphan] {
		t.Error("Reachable(Root) must not include orphan")
	}
	// Callers is the reverse index of Callees.
	var callers []string
	for _, e := range g.Callers(leaf) {
		callers = append(callers, e.Caller.Name())
	}
	if len(callers) != 1 || callers[0] != "b.Root" {
		t.Errorf("Callers(a.Leaf) = %v, want [b.Root]", callers)
	}
}

func TestCallGraphDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"p/p.go": `package p

func a() { b(); c() }
func b() { c() }
func c() {}
`,
	}
	g1, _ := loadTestProgram(t, files, "p")
	g2, _ := loadTestProgram(t, files, "p")
	names := func(g *CallGraph) string {
		var b strings.Builder
		for _, fn := range g.Funcs {
			b.WriteString(fn.Name())
			b.WriteByte('\n')
			for _, s := range calleeNames(g, fn) {
				b.WriteString("  " + s + "\n")
			}
		}
		return b.String()
	}
	if names(g1) != names(g2) {
		t.Errorf("graph order not deterministic:\n%s\nvs\n%s", names(g1), names(g2))
	}
}
