package rng

// This file provides small distribution helpers on top of a raw Source.
// They are methods of Rand, a convenience wrapper that callers embed or
// hold by value.

// Rand wraps a Source with the distribution helpers simulations need.
// The zero value is invalid; use New.
type Rand struct {
	src Source
}

// New returns a Rand drawing from a fresh Xoshiro256 seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{src: NewXoshiro256(seed)}
}

// FromSource returns a Rand drawing from src.
func FromSource(src Source) *Rand {
	return &Rand{src: src}
}

// Uint64 returns the next raw 64 bits.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of naive `Uint64() % n` and is branch-free in the common case.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire 2019, "Fast Random Integer Generation in an Interval".
	// hi of x*n is uniform in [0,n) except for a small biased region of the
	// low word, rejected below.
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := -n % n // == (2^64 - n) mod n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Pair returns two distinct uniform indices in [0, n). It panics if n < 2.
// The pair is unordered-uniform: every unordered pair {i, j} has equal
// probability, matching the interaction model of Section 5 of the paper
// ("selecting two agents uniformly at random").
func (r *Rand) Pair(n int) (int, int) {
	if n < 2 {
		panic("rng: Pair needs n >= 2")
	}
	i := r.Intn(n)
	j := r.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// Perm fills p with a uniform permutation of 0..len(p)-1 (Fisher–Yates).
func (r *Rand) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes s in place uniformly at random.
func (r *Rand) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
