package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// The writers must emit canonical (file, line, column, analyzer) order
// even when the caller's slice is not sorted — a Done or RunProgram
// phase appends after the per-file passes, so positions arrive out of
// order unless somebody sorts.
func unsortedDiags() []Diagnostic {
	mk := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}
	return []Diagnostic{
		mk("b.go", 10, 1, "zeta", "late phase"),
		mk("a.go", 99, 1, "alpha", "tail of a"),
		mk("a.go", 3, 7, "beta", "same line, later column"),
		mk("a.go", 3, 2, "gamma", "same line, early column"),
		mk("a.go", 3, 2, "alpha", "same position, earlier analyzer"),
	}
}

func TestWriteTextSortsCanonically(t *testing.T) {
	ds := unsortedDiags()
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := []string{
		"a.go:3:2: alpha: same position, earlier analyzer",
		"a.go:3:2: gamma: same line, early column",
		"a.go:3:7: beta: same line, later column",
		"a.go:99:1: alpha: tail of a",
		"b.go:10:1: zeta: late phase",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	// The caller's slice order is untouched.
	if ds[0].Analyzer != "zeta" {
		t.Error("WriteText mutated the caller's slice")
	}
}

func TestWriteJSONSortsCanonically(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, unsortedDiags()); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var keys []string
	for _, d := range got {
		keys = append(keys, d.File+":"+d.Analyzer)
	}
	want := []string{"a.go:alpha", "a.go:gamma", "a.go:beta", "a.go:alpha", "b.go:zeta"}
	if strings.Join(keys, " ") != strings.Join(want, " ") {
		t.Errorf("JSON order = %v, want %v", keys, want)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty diagnostics must encode as [], got %q", buf.String())
	}
}
