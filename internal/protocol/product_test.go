package protocol_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
	"repro/internal/protocols/bipartition"
	"repro/internal/protocols/classic"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestProductStructure(t *testing.T) {
	a := bipartition.New()
	b := classic.NewRumor()
	p, err := protocol.NewProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 4*2 {
		t.Fatalf("NumStates = %d", p.NumStates())
	}
	if err := protocol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Name(), "×") {
		t.Fatalf("Name %q", p.Name())
	}
	sa, sb := p.Unpack(p.Pack(3, 1))
	if sa != 3 || sb != 1 {
		t.Fatalf("pack/unpack: %d %d", sa, sb)
	}
	if !strings.Contains(p.StateName(p.Pack(2, 0)), "|") {
		t.Fatalf("StateName %q", p.StateName(p.Pack(2, 0)))
	}
}

func TestProductRejectsOversized(t *testing.T) {
	big := core.MustNew(1000) // 2998 states
	if _, err := protocol.NewProduct(big, big); err == nil {
		t.Fatal("oversized product accepted")
	}
}

// Both components must advance simultaneously and independently: running
// bipartition × rumor partitions the population AND spreads the rumor.
func TestProductRunsBothComponents(t *testing.T) {
	bp := bipartition.New()
	ru := classic.NewRumor()
	p, err := protocol.NewProduct(bp, ru)
	if err != nil {
		t.Fatal(err)
	}
	// 10 agents; one of them additionally knows the rumor.
	states := make([]protocol.State, 10)
	for i := range states {
		states[i] = p.Pack(bipartition.Initial, 1 /* susceptible */)
	}
	states[0] = p.Pack(bipartition.Initial, 0 /* informed */)
	pop := population.FromStates(p, states)

	done := sim.NewCountsPredicate(func(counts []int) bool {
		// Bipartition component stable AND rumor fully spread.
		free, informed := 0, 0
		for s, c := range counts {
			if c == 0 {
				continue
			}
			sa, sb := p.Unpack(protocol.State(s))
			if sa == bipartition.Initial || sa == bipartition.InitialBar {
				free += c
			}
			if sb == 0 {
				informed += c
			}
		}
		return free == 0 && informed == 10
	})
	res, err := sim.Run(pop, sched.NewRandom(9), done, sim.Options{MaxInteractions: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("product never converged: %v", res.FinalCounts)
	}
	// Output defaults to the first component: a uniform bipartition.
	if res.Spread() > 1 {
		t.Fatalf("bipartition component spread %d: %v", res.Spread(), res.GroupSizes)
	}
}

func TestProductOutputSelection(t *testing.T) {
	bp := bipartition.New()
	ru := classic.NewRumor()
	p, err := protocol.NewProduct(bp, ru)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Pack(bipartition.B /* group 2 */, 0 /* informed, group 1 */)
	if p.Group(s) != 2 {
		t.Fatalf("default output: group %d", p.Group(s))
	}
	p.SetOutput(1)
	if p.Group(s) != 1 || p.NumGroups() != ru.NumGroups() {
		t.Fatalf("component-1 output: group %d, k %d", p.Group(s), p.NumGroups())
	}
	p.SetOutput(0)
	if p.Group(s) != 2 {
		t.Fatal("switching back failed")
	}
}

// Symmetry: product of two symmetric protocols is symmetric; product with
// an asymmetric component is not.
func TestProductSymmetry(t *testing.T) {
	bp := bipartition.New()
	kp := core.MustNew(3)
	sym, err := protocol.NewProduct(bp, kp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := protocol.CheckSymmetric(sym); !ok {
		t.Fatal("product of symmetric protocols not symmetric")
	}
	le := classic.NewLeaderElection()
	asym, err := protocol.NewProduct(bp, le)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := protocol.CheckSymmetric(asym); ok {
		t.Fatal("product with leader election reported symmetric")
	}
}
