package core

import (
	"fmt"

	"repro/internal/protocol"
)

// This file implements the analytical backbone of the paper's correctness
// proof as executable checks: the Lemma 1 conservation invariant and the
// stable-configuration signature of Lemmas 4–6. The simulation engine and
// the model checker both consume these, and the property-based tests fuzz
// them along random executions.

// CheckInvariant verifies the Lemma 1 identity on a state-count vector:
//
//	#gx = Σ_{p=x+1}^{k−1} #mp + Σ_{q=x}^{k−2} #dq + #gk   for all 1 <= x <= k.
//
// counts must be indexed by dense state (len 3k−2). It returns a non-nil
// error naming the first violated x. The invariant holds at every
// configuration reachable from the all-initial configuration; a violation
// means either a corrupted configuration or a bug in the transition table.
func (p *Protocol) CheckInvariant(counts []int) error {
	if len(counts) != p.NumStates() {
		return fmt.Errorf("core: counts has %d entries, protocol has %d states", len(counts), p.NumStates())
	}
	k := p.k
	gk := counts[p.G(k)]
	// Suffix sums over M and D, accumulated while x descends from k to 1.
	mSuffix := 0 // Σ_{p=x+1}^{k-1} #mp
	dSuffix := 0 // Σ_{q=x}^{k-2} #dq
	for x := k; x >= 1; x-- {
		if x+1 <= k-1 {
			mSuffix += counts[p.M(x+1)]
		}
		if x <= k-2 {
			dSuffix += counts[p.D(x)]
		}
		want := mSuffix + dSuffix + gk
		if got := counts[p.G(x)]; got != want {
			return fmt.Errorf("core: Lemma 1 violated at x=%d: #g%d=%d, want %d (mSuffix=%d dSuffix=%d #gk=%d)",
				x, x, got, want, mSuffix, dSuffix, gk)
		}
	}
	return nil
}

// CanonMap returns the canonicalization used for stability detection: a
// slice mapping each dense state to a canonical slot, where initial and
// initial' share slot 0 (the definition of "free agent count" #ini in
// Section 4) and every other state keeps its own slot (shifted by one).
// Slot count is NumStates()−1.
func (p *Protocol) CanonMap() []int {
	m := make([]int, p.NumStates())
	m[p.Initial()] = 0
	m[p.InitialBar()] = 0
	for s := 2; s < p.NumStates(); s++ {
		m[s] = s - 1
	}
	return m
}

// TargetCounts returns the canonical state-count signature of the unique
// stable configuration for n agents (Lemmas 4–6), indexed by the slots of
// CanonMap. With q = ⌊n/k⌋ and r = n − k·q:
//
//	r = 0:  #gx = q for all x.
//	r = 1:  #gx = q for all x, and one free agent (slot 0).
//	r >= 2: #gx = q+1 for x <= r−1, #gx = q for x >= r, and #m_r = 1.
//
// The same formulas cover n < k (then q = 0, r = n). It returns an error
// for n < 3, where the symmetric protocol cannot stabilize (Section 2.1).
func (p *Protocol) TargetCounts(n int) ([]int, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: uniform k-partition undefined for n=%d < 3", n)
	}
	k := p.k
	q, r := n/k, n%k
	canon := p.CanonMap()
	target := make([]int, p.NumStates()-1)
	for x := 1; x <= k; x++ {
		c := q
		if x <= r-1 {
			c = q + 1
		}
		target[canon[p.G(x)]] = c
	}
	switch {
	case r == 1:
		target[0] = 1
	case r >= 2:
		target[canon[p.M(r)]] = 1
	}
	return target, nil
}

// IsStable reports whether the raw state-count vector is the stable
// signature for its population size.
func (p *Protocol) IsStable(counts []int) bool {
	n := 0
	for _, c := range counts {
		n += c
	}
	target, err := p.TargetCounts(n)
	if err != nil {
		return false
	}
	canon := p.CanonMap()
	got := make([]int, len(target))
	for s, c := range counts {
		got[canon[s]] += c
	}
	for i := range got {
		if got[i] != target[i] {
			return false
		}
	}
	return true
}

// StableChecker returns an allocation-free predicate equivalent to
// IsStable for a FIXED population size n: the canonicalization and target
// signature are computed once and reused. Use it on hot paths (the count
// engine's per-productive-step stop predicate); the returned closure is
// not safe for concurrent use.
func (p *Protocol) StableChecker(n int) (func(counts []int) bool, error) {
	target, err := p.TargetCounts(n)
	if err != nil {
		return nil, err
	}
	canon := p.CanonMap()
	scratch := make([]int, len(target))
	return func(counts []int) bool {
		for i := range scratch {
			scratch[i] = 0
		}
		for s, c := range counts {
			scratch[canon[s]] += c
		}
		for i := range scratch {
			if scratch[i] != target[i] {
				return false
			}
		}
		return true
	}, nil
}

// GroupSizesFromCounts computes the size of each group 1..k from a raw
// count vector without needing a Population.
func (p *Protocol) GroupSizesFromCounts(counts []int) []int {
	sizes := make([]int, p.k)
	for s, c := range counts {
		if c != 0 {
			sizes[p.Group(protocol.State(s))-1] += c
		}
	}
	return sizes
}

// StableGroupSizes returns the group sizes the stable configuration yields
// for n agents: n mod k groups of ⌈n/k⌉ and the rest of ⌊n/k⌋.
func (p *Protocol) StableGroupSizes(n int) []int {
	q, r := n/p.k, n%p.k
	sizes := make([]int, p.k)
	for i := range sizes {
		sizes[i] = q
		if i < r {
			sizes[i]++
		}
	}
	return sizes
}
