package harness

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// This file defines the four figure experiments of the paper's Section 5
// plus the growth-analysis readouts. Each Run* function returns the raw
// aggregated points; rendering lives in render.go and the binaries.

// Defaults matching the paper's setup where it states them. The paper
// conducts 100 trials per setting (Section 5, "we conduct a simulation 100
// times and show the average values").
const (
	DefaultTrials = 100
	DefaultSeed   = 20180725 // the paper's submission date, for flavor
)

// Fig3Config sweeps the population size n for several k (Figure 3): the
// jagged interactions-vs-n curves whose period is k.
type Fig3Config struct {
	Ks      []int // paper: {4, 6, 8}
	NMin    int   // sweep start (inclusive); defaults to max(k+2, 10)
	NMax    int   // sweep end (inclusive); paper plots to ~O(100)
	NStep   int   // step (1 reproduces the jaggedness)
	Trials  int
	Seed    uint64
	Workers int
	// Grouping additionally records per-grouping marks, turning the same
	// sweep into Figure 4.
	Grouping        bool
	MaxInteractions uint64
	// Engine selects the simulation backend for every trial.
	Engine Engine
}

func (c *Fig3Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []int{4, 6, 8}
	}
	if c.NMax == 0 {
		c.NMax = 60
	}
	if c.NStep == 0 {
		c.NStep = 1
	}
	if c.Trials == 0 {
		c.Trials = DefaultTrials
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// KSeries is one k's sweep over n.
type KSeries struct {
	K      int
	Points []Point
}

// RunFig3 executes the Figure 3 (and, with Grouping, Figure 4) sweep.
func RunFig3(cfg Fig3Config) ([]KSeries, error) {
	return RunFig3Ctx(context.Background(), cfg, RunOptions{})
}

// RunFig3Ctx is RunFig3 under a context and resilience policy: the sweep
// honors cancellation between (and, via the engines, within) trials, and
// with opts.Journal set it skips journaled trials and checkpoints each
// completed one — the resume workflow of cmd/kpart-experiments.
func RunFig3Ctx(ctx context.Context, cfg Fig3Config, opts RunOptions) ([]KSeries, error) {
	cfg.fill()
	var out []KSeries
	pointID := uint64(0)
	for _, k := range cfg.Ks {
		nMin := cfg.NMin
		if nMin < k+2 {
			// Below k+2 the first grouping cannot even leave a remainder
			// worth plotting; the paper's curves start around there.
			nMin = k + 2
		}
		if nMin < 3 {
			nMin = 3
		}
		s := KSeries{K: k}
		for n := nMin; n <= cfg.NMax; n += cfg.NStep {
			pt, err := SweepPointCtx(ctx, SweepSpec{
				N: n, K: k, Trials: cfg.Trials, Seed: cfg.Seed, PointID: pointID,
				Grouping: cfg.Grouping, Workers: cfg.Workers,
				MaxInteractions: cfg.MaxInteractions, Engine: cfg.Engine,
			}, opts)
			if err != nil {
				return nil, fmt.Errorf("fig3: %w", err)
			}
			s.Points = append(s.Points, pt)
			pointID++
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig5Config sweeps n = Base·n' for several k with n mod k == 0
// (Figure 5): growth in n without the remainder effect.
type Fig5Config struct {
	Ks              []int // paper: {3, 4, 5, 6}
	Base            int   // paper: 120 (divisible by all of 3,4,5,6)
	NFactors        []int // paper: 1..8
	Trials          int
	Seed            uint64
	Workers         int
	MaxInteractions uint64
	Engine          Engine
}

func (c *Fig5Config) fill() {
	if len(c.Ks) == 0 {
		c.Ks = []int{3, 4, 5, 6}
	}
	if c.Base == 0 {
		c.Base = 120
	}
	if len(c.NFactors) == 0 {
		c.NFactors = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if c.Trials == 0 {
		c.Trials = DefaultTrials
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// RunFig5 executes the Figure 5 sweep.
func RunFig5(cfg Fig5Config) ([]KSeries, error) {
	return RunFig5Ctx(context.Background(), cfg, RunOptions{})
}

// RunFig5Ctx is RunFig5 with cancellation and checkpoint/resume (see
// RunFig3Ctx).
func RunFig5Ctx(ctx context.Context, cfg Fig5Config, opts RunOptions) ([]KSeries, error) {
	cfg.fill()
	var out []KSeries
	pointID := uint64(1 << 20) // disjoint from fig3's ids
	for _, k := range cfg.Ks {
		s := KSeries{K: k}
		for _, f := range cfg.NFactors {
			n := cfg.Base * f
			if n%k != 0 {
				return nil, fmt.Errorf("fig5: n=%d not divisible by k=%d", n, k)
			}
			pt, err := SweepPointCtx(ctx, SweepSpec{
				N: n, K: k, Trials: cfg.Trials, Seed: cfg.Seed, PointID: pointID,
				Workers: cfg.Workers, MaxInteractions: cfg.MaxInteractions, Engine: cfg.Engine,
			}, opts)
			if err != nil {
				return nil, fmt.Errorf("fig5: %w", err)
			}
			s.Points = append(s.Points, pt)
			pointID++
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig6Config fixes n and sweeps k over divisors of n (Figure 6): the
// log-scale exponential-in-k curve.
type Fig6Config struct {
	N               int   // paper: 960
	Ks              []int // divisors of N; default {2,3,4,5,6,8,10,12}
	Trials          int
	Seed            uint64
	Workers         int
	MaxInteractions uint64
	Engine          Engine
}

func (c *Fig6Config) fill() {
	if c.N == 0 {
		c.N = 960
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{2, 3, 4, 5, 6, 8, 10, 12}
	}
	if c.Trials == 0 {
		c.Trials = DefaultTrials
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	sort.Ints(c.Ks)
}

// RunFig6 executes the Figure 6 sweep; the returned points share N and
// vary K.
func RunFig6(cfg Fig6Config) ([]Point, error) {
	return RunFig6Ctx(context.Background(), cfg, RunOptions{})
}

// RunFig6Ctx is RunFig6 with cancellation and checkpoint/resume (see
// RunFig3Ctx).
func RunFig6Ctx(ctx context.Context, cfg Fig6Config, opts RunOptions) ([]Point, error) {
	cfg.fill()
	var out []Point
	pointID := uint64(1 << 21)
	for _, k := range cfg.Ks {
		if cfg.N%k != 0 {
			return nil, fmt.Errorf("fig6: n=%d not divisible by k=%d", cfg.N, k)
		}
		pt, err := SweepPointCtx(ctx, SweepSpec{
			N: cfg.N, K: k, Trials: cfg.Trials, Seed: cfg.Seed, PointID: pointID,
			Workers: cfg.Workers, MaxInteractions: cfg.MaxInteractions, Engine: cfg.Engine,
		}, opts)
		if err != nil {
			return nil, fmt.Errorf("fig6: %w", err)
		}
		out = append(out, pt)
		pointID++
	}
	return out, nil
}

// SeedForCell reproduces the seed of one trial of one point, matching the
// derivation SweepPoint uses. Exposed so a single cell can be re-run in
// isolation (e.g. while debugging an outlier trial from a CSV).
func SeedForCell(rootSeed, pointID uint64, trial int) uint64 {
	return rng.StreamSeed(rootSeed, pointID, uint64(trial))
}
