package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/protocol"
)

// The weak-fairness bound: in any window of Patience·|domain| steps the
// rotation schedules every domain pair at least once, so no pair's
// starvation gap can exceed it.
func TestWeakAdversaryWeakFairnessBound(t *testing.T) {
	p := core.MustNew(3)
	const n = 6
	pop := population.New(p, n)
	w := NewWeakAdversary(1, WeakOptions{IsFree: p.IsFree, Patience: 4})
	if w.Name() != "weak-adversary" {
		t.Errorf("Name = %q", w.Name())
	}
	domain := n * (n - 1) // ordered pairs
	window := 4 * domain
	lastSeen := map[[2]int]int{}
	for step := 1; step <= 3*window; step++ {
		a, b := w.Next(pop)
		if a == b || a < 0 || b < 0 || a >= n || b >= n {
			t.Fatalf("invalid pair (%d,%d)", a, b)
		}
		lastSeen[[2]int{a, b}] = step
		// Drive the population too, so the adversarial branch sees
		// evolving states rather than the all-initial configuration.
		pop.Interact(a, b)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			seen, ok := lastSeen[[2]int{i, j}]
			if !ok {
				t.Fatalf("pair (%d,%d) never scheduled in %d steps", i, j, 3*window)
			}
			if gap := 3*window - seen; gap > window {
				t.Errorf("pair (%d,%d) starved for %d steps, weak-fairness bound is %d", i, j, gap, window)
			}
		}
	}
}

// With an explicit pair domain (a graph's edge orientations) the
// adversary never schedules outside it and still rotates through all of
// it.
func TestWeakAdversaryRespectsPairDomain(t *testing.T) {
	p := core.MustNew(2)
	const n = 5
	pop := population.New(p, n)
	// A 5-cycle, both orientations.
	var pairs [][2]int
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]int{i, (i + 1) % n}, [2]int{(i + 1) % n, i})
	}
	allowed := map[[2]int]bool{}
	for _, pr := range pairs {
		allowed[pr] = true
	}
	w := NewWeakAdversary(7, WeakOptions{Pairs: pairs, IsFree: p.IsFree})
	seen := map[[2]int]bool{}
	for step := 0; step < 4*len(pairs)*3; step++ {
		a, b := w.Next(pop)
		if !allowed[[2]int{a, b}] {
			t.Fatalf("scheduled (%d,%d) outside the pair domain", a, b)
		}
		seen[[2]int{a, b}] = true
		pop.Interact(a, b)
	}
	if len(seen) != len(pairs) {
		t.Errorf("covered %d domain pairs, want all %d", len(seen), len(pairs))
	}
}

// Without an IsFree classifier the adversary degenerates to rotation
// plus random fallback and stays within bounds.
func TestWeakAdversaryNoClassifier(t *testing.T) {
	p := core.MustNew(2)
	pop := population.New(p, 4)
	w := NewWeakAdversary(3, WeakOptions{})
	for i := 0; i < 1000; i++ {
		a, b := w.Next(pop)
		if a == b || a < 0 || b < 0 || a >= 4 || b >= 4 {
			t.Fatalf("invalid pair (%d,%d)", a, b)
		}
	}
}

// The free-state scan must key on the concrete I-state, not merely
// freeness: a mixed-parity free population has no hostile pair until
// two agents share parity.
func TestWeakAdversaryHostilePairSameState(t *testing.T) {
	p := core.MustNew(3)
	states := []protocol.State{p.Initial(), p.InitialBar(), p.G(1), p.G(2)}
	pop := population.FromStates(p, states)
	w := NewWeakAdversary(5, WeakOptions{IsFree: p.IsFree, Patience: 1 << 30})
	if _, _, ok := w.hostilePair(pop); ok {
		t.Fatal("found a hostile pair in a mixed-parity free set of size 2")
	}
	states[1] = p.Initial()
	pop = population.FromStates(p, states)
	i, j, ok := w.hostilePair(pop)
	if !ok || pop.State(i) != pop.State(j) || !p.IsFree(pop.State(i)) {
		t.Fatalf("hostilePair = (%d,%d,%t), want a same-state free pair", i, j, ok)
	}
}
