package rng

// Statistical verification of the distribution samplers. Every test runs
// under a fixed seed, so the chi-square gates pass or fail
// deterministically: a failure means the sampler (or an edit to its
// frozen enumeration constants) changed the law, not that CI rolled an
// unlucky stream. The 99.9% critical values leave the pinned streams
// comfortable margin.

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// binomialPMF returns the exact Binomial(n, p) pmf over 0..n.
func binomialPMF(n int64, p float64) []float64 {
	pmf := make([]float64, n+1)
	for k := int64(0); k <= n; k++ {
		pmf[k] = math.Exp(lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
	}
	return pmf
}

// hyperPMF returns the exact hypergeometric pmf over 0..draws (zero
// outside the support).
func hyperPMF(draws, good, bad int64) []float64 {
	pmf := make([]float64, draws+1)
	for k := int64(0); k <= draws; k++ {
		if k > good || draws-k > bad {
			continue
		}
		pmf[k] = math.Exp(lchoose(good, k) + lchoose(bad, draws-k) - lchoose(good+bad, draws))
	}
	return pmf
}

// poissonPMF returns the Poisson(lambda) pmf over 0..max.
func poissonPMF(lambda float64, max int64) []float64 {
	pmf := make([]float64, max+1)
	for k := int64(0); k <= max; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		pmf[k] = math.Exp(-lambda + float64(k)*math.Log(lambda) - lg)
	}
	return pmf
}

// checkChiSquare draws `draws` samples, bins them against pmf (values past
// the pmf's support pool into the last cell), pools low-expectation cells
// into their neighbors, and fails if the statistic exceeds the 99.9%
// critical value.
func checkChiSquare(t *testing.T, name string, pmf []float64, draws int, sample func() int64) {
	t.Helper()
	obs := make([]float64, len(pmf))
	for i := 0; i < draws; i++ {
		x := sample()
		if x < 0 {
			t.Fatalf("%s: negative draw %d", name, x)
		}
		if x >= int64(len(obs)) {
			x = int64(len(obs)) - 1
		}
		obs[x]++
	}
	exp := make([]float64, len(pmf))
	for i, p := range pmf {
		exp[i] = p * float64(draws)
	}
	// Pool cells with expectation below 5 into a running remainder cell so
	// the asymptotic chi-square approximation holds.
	var pooledObs, pooledExp []float64
	var ro, re float64
	for i := range exp {
		ro += obs[i]
		re += exp[i]
		if re >= 5 {
			pooledObs = append(pooledObs, ro)
			pooledExp = append(pooledExp, re)
			ro, re = 0, 0
		}
	}
	if re > 0 && len(pooledExp) > 0 {
		pooledObs[len(pooledObs)-1] += ro
		pooledExp[len(pooledExp)-1] += re
	}
	stat, used, err := stats.ChiSquare(pooledObs, pooledExp)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if used < 2 {
		t.Fatalf("%s: only %d usable cells", name, used)
	}
	if crit := stats.ChiSquareCritical999(used - 1); stat > crit {
		t.Errorf("%s: chi-square %.2f exceeds 99.9%% critical %.2f at df=%d", name, stat, crit, used-1)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(10, -0.5); got != 0 {
		t.Errorf("Binomial(10, -.5) = %d", got)
	}
	if got := r.Binomial(10, 1.5); got != 10 {
		t.Errorf("Binomial(10, 1.5) = %d", got)
	}
}

// Low-end inversion branch (mean < binvCutoff), both tails.
func TestBinomialLowMatchesPMF(t *testing.T) {
	r := New(0xb10)
	checkChiSquare(t, "Binomial(10, 0.3)", binomialPMF(10, 0.3), 60_000,
		func() int64 { return r.Binomial(10, 0.3) })
	checkChiSquare(t, "Binomial(10, 0.7)", binomialPMF(10, 0.7), 60_000,
		func() int64 { return r.Binomial(10, 0.7) })
}

// Mode-inversion branch (mean >= binvCutoff, n <= poissonCutoff).
func TestBinomialModeMatchesPMF(t *testing.T) {
	const n, p = 400, 0.25 // mean 100
	r := New(0xb11)
	checkChiSquare(t, "Binomial(400, 0.25)", binomialPMF(n, p), 60_000,
		func() int64 { return r.Binomial(n, p) })
}

// Poisson branch (n > poissonCutoff): the sampler's law there IS
// Poisson(np) — Le Cam bounds its distance to the true binomial by p,
// which at this scale is ~2e-11 — so the fit is checked against Poisson.
func TestBinomialPoissonBranchMatchesPMF(t *testing.T) {
	const n = int64(1) << 41
	lambda := 48.0
	p := lambda / float64(n)
	pmf := poissonPMF(lambda, 120)
	r := New(0xb12)
	checkChiSquare(t, "Binomial(2^41, 48/2^41)", pmf, 60_000,
		func() int64 { return r.Binomial(n, p) })
}

func TestHypergeometricMatchesPMF(t *testing.T) {
	const draws, good, bad = 10, 12, 18
	r := New(0x49e)
	checkChiSquare(t, "Hypergeometric(10;12,18)", hyperPMF(draws, good, bad), 60_000,
		func() int64 { return r.Hypergeometric(draws, good, bad) })
	// A wide case through the mode-walk guards.
	checkChiSquare(t, "Hypergeometric(200;300,500)", hyperPMF(200, 300, 500), 40_000,
		func() int64 { return r.Hypergeometric(200, 300, 500) })
}

func TestHypergeometricSupport(t *testing.T) {
	r := New(2)
	for i := 0; i < 2000; i++ {
		// Support forced from below: draws=8 with only bad=3 others.
		if got := r.Hypergeometric(8, 7, 3); got < 5 || got > 7 {
			t.Fatalf("draw %d outside support [5,7]", got)
		}
	}
	if got := r.Hypergeometric(4, 4, 0); got != 4 {
		t.Errorf("single-point support: got %d, want 4", got)
	}
	if got := r.Hypergeometric(0, 5, 5); got != 0 {
		t.Errorf("zero draws: got %d", got)
	}
}

func TestHypergeometricPanics(t *testing.T) {
	for name, f := range map[string]func(*Rand){
		"negative draws": func(r *Rand) { r.Hypergeometric(-1, 2, 2) },
		"negative good":  func(r *Rand) { r.Hypergeometric(1, -2, 2) },
		"over-draw":      func(r *Rand) { r.Hypergeometric(5, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(New(1))
		}()
	}
}

func TestMultinomialSumsExactly(t *testing.T) {
	r := New(3)
	weights := []int64{3, 0, 5, 1, 0, 11}
	out := make([]int64, len(weights))
	for i := 0; i < 5000; i++ {
		total := int64(i % 97)
		r.Multinomial(total, weights, out)
		var sum int64
		for j, v := range out {
			if v < 0 {
				t.Fatalf("negative cell %d", v)
			}
			if weights[j] == 0 && v != 0 {
				t.Fatalf("zero-weight cell drew %d", v)
			}
			sum += v
		}
		if sum != total {
			t.Fatalf("cells sum to %d, want %d", sum, total)
		}
	}
}

// The first cell of a multinomial is marginally Binomial(total, w0/wsum).
func TestMultinomialMarginalMatchesPMF(t *testing.T) {
	weights := []int64{3, 5, 2}
	out := make([]int64, 3)
	r := New(0x3a1)
	checkChiSquare(t, "Multinomial marginal", binomialPMF(24, 0.3), 40_000,
		func() int64 {
			r.Multinomial(24, weights, out)
			return out[0]
		})
}

func TestMultinomialPanics(t *testing.T) {
	for name, f := range map[string]func(*Rand){
		"negative weight":   func(r *Rand) { r.Multinomial(3, []int64{1, -1}, make([]int64, 2)) },
		"zero total weight": func(r *Rand) { r.Multinomial(3, []int64{0, 0}, make([]int64, 2)) },
		"length mismatch":   func(r *Rand) { r.Multinomial(3, []int64{1, 1}, make([]int64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(New(1))
		}()
	}
}

func TestMultivariateHypergeometricSumsExactly(t *testing.T) {
	r := New(4)
	counts := []int64{4, 0, 9, 2, 7}
	out := make([]int64, len(counts))
	for i := 0; i < 5000; i++ {
		draws := int64(i % 23)
		r.MultivariateHypergeometric(draws, counts, out)
		var sum int64
		for j, v := range out {
			if v < 0 || v > counts[j] {
				t.Fatalf("cell %d drew %d of %d available", j, v, counts[j])
			}
			sum += v
		}
		if sum != draws {
			t.Fatalf("cells sum to %d, want %d", sum, draws)
		}
	}
}

// The first class of an MVH draw is marginally Hypergeometric.
func TestMultivariateHypergeometricMarginalMatchesPMF(t *testing.T) {
	counts := []int64{12, 10, 8}
	out := make([]int64, 3)
	r := New(0x3a2)
	checkChiSquare(t, "MVH marginal", hyperPMF(10, 12, 18), 40_000,
		func() int64 {
			r.MultivariateHypergeometric(10, counts, out)
			return out[0]
		})
}

func TestMultivariateHypergeometricPanics(t *testing.T) {
	for name, f := range map[string]func(*Rand){
		"negative count": func(r *Rand) { r.MultivariateHypergeometric(1, []int64{2, -1}, make([]int64, 2)) },
		"over-draw":      func(r *Rand) { r.MultivariateHypergeometric(9, []int64{4, 4}, make([]int64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(New(1))
		}()
	}
}

// Every scalar draw consumes exactly one Float64 (zero for forced
// outcomes), so the stream position after a draw is a pure function of
// the call — the seed-stability contract of the batched engine.
func TestScalarDrawsConsumeOneUniform(t *testing.T) {
	cases := []struct {
		name     string
		uniforms int // uniforms the call must consume
		draw     func(r *Rand)
	}{
		{"binomial low", 1, func(r *Rand) { r.Binomial(10, 0.3) }},
		{"binomial mode", 1, func(r *Rand) { r.Binomial(400, 0.25) }},
		{"binomial poisson", 1, func(r *Rand) { r.Binomial(int64(1)<<41, 48.0/float64(int64(1)<<41)) }},
		{"binomial degenerate", 0, func(r *Rand) { r.Binomial(10, 0) }},
		{"hypergeometric", 1, func(r *Rand) { r.Hypergeometric(10, 12, 18) }},
		{"hypergeometric forced", 0, func(r *Rand) { r.Hypergeometric(4, 4, 0) }},
	}
	for _, c := range cases {
		a, b := New(77), New(77)
		c.draw(a)
		for i := 0; i < c.uniforms; i++ {
			b.Float64()
		}
		for i := 0; i < 8; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Errorf("%s: stream diverged at +%d (%v vs %v): draw consumed a different number of uniforms than documented",
					c.name, i, x, y)
				break
			}
		}
	}
}

func TestDistDeterminism(t *testing.T) {
	seq := func() []int64 {
		r := New(0xd15)
		out := make([]int64, 0, 64)
		vec := make([]int64, 3)
		for i := 0; i < 16; i++ {
			out = append(out, r.Binomial(100, 0.4))
			out = append(out, r.Hypergeometric(5, 9, 7))
			r.Multinomial(12, []int64{2, 3, 4}, vec)
			out = append(out, vec...)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
