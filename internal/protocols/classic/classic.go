// Package classic provides well-known building-block population protocols
// the paper cites as context (leader election, majority). They make the
// framework a general-purpose population-protocols library and give the
// test suite protocols with different structure than the partition family:
// asymmetric rules, input-dependent initial configurations, and
// convergence notions other than a closed-form count signature.
package classic

import "repro/internal/protocol"

// LeaderStates for the pairwise leader-election protocol.
const (
	Leader   protocol.State = 0
	Follower protocol.State = 1
)

// NewLeaderElection returns the classic two-state leader election protocol
// with designated initial state "leader": (L, L) -> (L, F). Every agent
// starts a leader; encounters between leaders demote one of them, so
// exactly one leader survives. The demotion rule is asymmetric — the
// canonical example of a problem unsolvable by symmetric protocols, in
// contrast to the paper's protocol class.
//
// Group mapping: leaders are group 1, followers group 2 (so a "partition"
// view of the output is available, though sizes are 1 and n−1).
func NewLeaderElection() *protocol.Table {
	b := protocol.NewBuilder("leader-election", false)
	l := b.AddState("leader", 1)
	f := b.AddState("follower", 2)
	b.SetInitial(l)
	b.AddRule(l, l, l, f)
	_ = f
	return b.MustBuild()
}

// Majority states for the 3-state approximate majority protocol.
const (
	MajX     protocol.State = 0 // opinion x
	MajY     protocol.State = 1 // opinion y
	MajBlank protocol.State = 2 // undecided
)

// NewApproxMajority returns the three-state approximate majority protocol
// of Angluin, Aspnes and Eisenstat (Distributed Computing 2008):
//
//	(x, y) -> (x, blank)     (y, x) -> (y, blank)
//	(x, blank) -> (x, x)     (y, blank) -> (y, y)
//
// Initial configurations carry the input: each agent starts in x or y
// (build them with population.FromStates). With high probability the
// population converges to the initial majority opinion. Group 1 = x-side,
// group 2 = y-side; blanks count toward group 1 by f, though runs are
// normally stopped at consensus when no blanks remain.
func NewApproxMajority() *protocol.Table {
	b := protocol.NewBuilder("approximate-majority", false)
	x := b.AddState("x", 1)
	y := b.AddState("y", 2)
	bl := b.AddState("blank", 1)
	b.SetInitial(x)
	// One-way rules: the initiator converts the responder, so (x, y) and
	// (y, x) coexist without contradiction.
	b.AddOrderedRule(x, y, x, bl)
	b.AddOrderedRule(y, x, y, bl)
	b.AddOrderedRule(x, bl, x, x)
	b.AddOrderedRule(y, bl, y, y)
	return b.MustBuild()
}

// NewRumor returns the one-way epidemic ("rumor spreading") protocol:
// (informed, susceptible) -> (informed, informed). It is the standard
// warm-up protocol of the population-protocol literature and gives tests a
// protocol with monotone state counts. Group 1 = informed, group 2 = not.
func NewRumor() *protocol.Table {
	b := protocol.NewBuilder("rumor", false)
	inf := b.AddState("informed", 1)
	sus := b.AddState("susceptible", 2)
	b.SetInitial(sus)
	b.AddRule(inf, sus, inf, inf)
	return b.MustBuild()
}
