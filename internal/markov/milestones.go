package markov

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Per-milestone hitting times: the exact counterpart of the simulation's
// GroupingCounter marks (sim.GroupingCounter). Milestone j is the first
// time #gk — the count of agents in the terminal group state — reaches j,
// and because gk-agents never leave gk (Section 5.1 of the paper), the set
// {configurations with #gk ≥ j} is closed, making each milestone an
// absorption problem on the same chain with a different target set. The
// analytical twin's rung-1 validation compares these phase-by-phase
// against its lumped-chain milestones.

// HittingTimesTo solves for the expected number of interactions from every
// configuration until a configuration in the absorb set is first entered,
// by the same Gauss–Seidel sweeps as HittingTimes. absorb must have one
// entry per chain node; absorbed nodes get 0. The first-step analysis
// behind the linear system holds for ANY target set — closure is not
// required for first-hitting times — but every node must be able to reach
// the set or its expectation is infinite, which the solver detects and
// reports rather than looping forever.
func (ch *Chain) HittingTimesTo(absorb []bool, tol float64, maxIter int) ([]float64, error) {
	nNodes := len(ch.Graph.Nodes)
	if len(absorb) != nNodes {
		return nil, fmt.Errorf("markov: absorb has %d entries, chain has %d nodes", len(absorb), nNodes)
	}
	hasTarget := false
	for _, s := range absorb {
		if s {
			hasTarget = true
			break
		}
	}
	if !hasTarget {
		return nil, ErrNoStable
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 2_000_000
	}
	reach := ch.Graph.CanReach(absorb)
	for i, ok := range reach {
		if !ok {
			return nil, fmt.Errorf("%w: node %d", ErrNoStable, i)
		}
	}
	E := make([]float64, nNodes)
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := 0; i < nNodes; i++ {
			if absorb[i] {
				continue
			}
			sum := 1.0
			for _, e := range ch.Out[i] {
				sum += e.P * E[e.To]
			}
			denom := 1 - ch.SelfLoop[i]
			if denom <= 0 {
				return nil, fmt.Errorf("%w: node %d is fully self-looping", ErrNoStable, i)
			}
			next := sum / denom
			if d := math.Abs(next - E[i]); d > maxDelta {
				maxDelta = d
			}
			E[i] = next
		}
		if maxDelta < tol {
			return E, nil
		}
	}
	return nil, ErrNoConverge
}

// Milestones returns the exact expected number of interactions from the
// all-initial configuration until #gk first reaches j, for j = 1..⌊n/k⌋
// (index j−1 in the returned slice — the same layout as a simulated
// GroupingCounter's Marks). The final milestone is the completion of the
// last full group; the terminal stabilization time additionally pays for
// settling the n mod k leftover agents, so Milestones[q−1] ≤
// ExpectedStabilization, with equality only when the last gk arrival
// happens to coincide with stability.
func Milestones(p *core.Protocol, n int) ([]float64, error) {
	ch, err := New(p, n)
	if err != nil {
		return nil, err
	}
	return ch.MilestonesFrom(p, n)
}

// MilestonesFrom computes the per-milestone hitting times on an already
// built chain (callers validating several things against one chain avoid
// rebuilding the reachable graph per question). p and n must be the
// protocol and population the chain was built with.
func (ch *Chain) MilestonesFrom(p *core.Protocol, n int) ([]float64, error) {
	q := n / p.K()
	if q == 0 {
		return nil, fmt.Errorf("markov: population %d cannot fill any group of k=%d", n, p.K())
	}
	gk := p.G(p.K())
	out := make([]float64, q)
	absorb := make([]bool, len(ch.Graph.Nodes))
	for j := 1; j <= q; j++ {
		for i, node := range ch.Graph.Nodes {
			absorb[i] = node.Counts[gk] >= j
		}
		E, err := ch.HittingTimesTo(absorb, 1e-12, 0)
		if err != nil {
			return nil, fmt.Errorf("markov: milestone %d: %w", j, err)
		}
		out[j-1] = E[0]
	}
	return out, nil
}
