package repro_test

// One benchmark family per figure of the paper's evaluation (Section 5)
// plus the DESIGN.md ablations. Each bench measures complete
// runs-to-stability at representative parameter points; sub-benchmark
// names carry the point so `go test -bench Fig3` prints a sweep. The
// custom metric "interactions/run" is the paper's y-axis — wall-clock
// ns/op additionally shows the simulator's own cost.
//
// Full sweeps with 100 trials and confidence intervals are the job of
// cmd/kpart-experiments; benches keep points small enough for -bench=. to
// finish in minutes.

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// benchRun executes one trial per iteration with per-iteration seeds and
// reports the mean interaction count as a custom metric.
func benchRun(b *testing.B, n, k int, grouping bool) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTrial(harness.TrialSpec{
			N: n, K: k,
			Seed:     rng.StreamSeed(0xbe9c4, uint64(n), uint64(k), uint64(i)),
			Grouping: grouping,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("n=%d k=%d did not stabilize", n, k)
		}
		total += res.Interactions
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
}

// BenchmarkFig3 regenerates Figure 3 points: interactions vs n for
// k ∈ {4, 6, 8}, including off-multiple n to exercise the n mod k
// jaggedness the paper highlights.
func BenchmarkFig3(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		for _, n := range []int{2 * k, 2*k + 1, 4 * k, 4*k + k - 1, 6 * k} {
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				benchRun(b, n, k, false)
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 points: the same sweep with
// per-grouping instrumentation enabled (GroupingCounter hook), verifying
// the instrumentation's overhead is negligible and the marks are produced.
func BenchmarkFig4(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		n := 5 * k
		b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
			benchRun(b, n, k, true)
		})
	}
}

// BenchmarkFig5 regenerates Figure 5 points: interactions vs n = 120·n'
// for k ∈ {3, 4, 5, 6} with n mod k == 0 (growth in n).
func BenchmarkFig5(b *testing.B) {
	for _, k := range []int{3, 4, 5, 6} {
		for _, f := range []int{1, 2, 4} {
			n := 120 * f
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				benchRun(b, n, k, false)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 points: interactions vs k at n = 960
// (exponential growth in k). Larger k (15, 16, 20, 24) are reachable via
// cmd/kpart-experiments -fig6max; the bench stops at 12 to keep -bench=.
// affordable.
func BenchmarkFig6(b *testing.B) {
	for _, k := range []int{2, 3, 4, 6, 8, 12} {
		b.Run(fmt.Sprintf("n=960/k=%d", k), func(b *testing.B) {
			benchRun(b, 960, k, false)
		})
	}
}

// BenchmarkAblationComposed compares the paper's protocol against repeated
// bipartition at k = 2^h (DESIGN.md A1). Both use 3k−2 states; the bench
// contrasts their convergence cost (their output quality is contrasted by
// the harness tests and kpart-compare).
func BenchmarkAblationComposed(b *testing.B) {
	for _, cse := range []struct{ n, k int }{{64, 4}, {64, 8}} {
		rows := func(b *testing.B, name string) {
			b.Run(fmt.Sprintf("%s/k=%d/n=%d", name, cse.k, cse.n), func(b *testing.B) {
				var total uint64
				c := contenderByName(b, name)
				for i := 0; i < b.N; i++ {
					proto, stop, err := c.Build(cse.k, cse.n)
					if err != nil {
						b.Fatal(err)
					}
					pop := population.New(proto, cse.n)
					s := sched.NewRandom(rng.StreamSeed(0xab1a, uint64(cse.n), uint64(i)))
					res, err := sim.Run(pop, s, stop, sim.Options{})
					if err != nil || !res.Converged {
						b.Fatalf("%v %+v", err, res)
					}
					total += res.Interactions
				}
				b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
			})
		}
		rows(b, "k-partition (paper)")
		rows(b, "repeated bipartition")
	}
}

// contenderByName resolves a harness contender or fails the benchmark.
func contenderByName(b *testing.B, name string) harness.Contender {
	b.Helper()
	for _, c := range harness.Contenders() {
		if c.Name == name {
			return c
		}
	}
	b.Fatalf("no contender named %q", name)
	return harness.Contender{}
}

// BenchmarkAblationInterval compares against the approximate interval
// baseline (DESIGN.md A2) on convergence cost.
func BenchmarkAblationInterval(b *testing.B) {
	for _, cse := range []struct{ n, k int }{{64, 4}, {120, 6}} {
		for _, name := range []string{"k-partition (paper)", "interval baseline"} {
			c := contenderByName(b, name)
			b.Run(fmt.Sprintf("%s/k=%d/n=%d", name, cse.k, cse.n), func(b *testing.B) {
				var total uint64
				for i := 0; i < b.N; i++ {
					proto, stop, err := c.Build(cse.k, cse.n)
					if err != nil {
						b.Fatal(err)
					}
					pop := population.New(proto, cse.n)
					s := sched.NewRandom(rng.StreamSeed(0xab2b, uint64(cse.n), uint64(i)))
					res, err := sim.Run(pop, s, stop, sim.Options{})
					if err != nil || !res.Converged {
						b.Fatalf("%v %+v", err, res)
					}
					total += res.Interactions
				}
				b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
			})
		}
	}
}

// BenchmarkAblationScheduler contrasts the random scheduler against the
// deterministic sweep scheduler (DESIGN.md A3).
func BenchmarkAblationScheduler(b *testing.B) {
	const n, k = 48, 4
	p := harness.Proto(k)
	target, err := p.TargetCounts(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("random", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			pop := population.New(p, n)
			res, err := sim.Run(pop, sched.NewRandom(rng.StreamSeed(0xab3c, uint64(i))),
				sim.NewCountTarget(p.CanonMap(), target), sim.Options{})
			if err != nil || !res.Converged {
				b.Fatalf("%v %+v", err, res)
			}
			total += res.Interactions
		}
		b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
	})
	b.Run("sweep", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			pop := population.New(p, n)
			res, err := sim.Run(pop, sched.NewSweep(),
				sim.NewCountTarget(p.CanonMap(), target), sim.Options{})
			if err != nil || !res.Converged {
				b.Fatalf("%v %+v", err, res)
			}
			total += res.Interactions
		}
		b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
	})
}

// BenchmarkFig6CountEngine reruns representative Figure 6 points on the
// count-based engine (internal/countsim): the same output distribution as
// BenchmarkFig6, but the null-dominated tail is skipped geometrically —
// compare ns/op between the two benches for the speedup, and
// interactions/run for the distributional agreement.
func BenchmarkFig6CountEngine(b *testing.B) {
	for _, k := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=960/k=%d", k), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunTrial(harness.TrialSpec{
					N: 960, K: k,
					Seed:   rng.StreamSeed(0xbe9c4, 960, uint64(k), uint64(i)),
					Engine: harness.EngineCount,
				})
				if err != nil || !res.Converged {
					b.Fatalf("%v", err)
				}
				total += res.Interactions
			}
			b.ReportMetric(float64(total)/float64(b.N), "interactions/run")
		})
	}
}

// BenchmarkEngineThroughput isolates the simulator's raw speed (the
// substrate cost underlying every figure): interactions per second on the
// Figure 6 workload shape, without stability detection overhead beyond
// the O(1) CountTarget.
func BenchmarkEngineThroughput(b *testing.B) {
	p := harness.Proto(8)
	pop := population.New(p, 960)
	s := sched.NewRandom(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := s.Next(pop)
		pop.Interact(x, y)
	}
}
