// Golden input for the //lint:allow machinery, run against the full
// analyzer suite under the import path "repro/internal/harness" (so
// errclose applies). It pins down the three hygiene rules: a directive
// silences exactly one line, unknown analyzer names are diagnostics,
// and unused directives are diagnostics.
package suppressed

import "os"

// Exactly one of these two unchecked closes is suppressed; the other
// must still be reported.
func TwoCloses(a, b *os.File) {
	a.Close() //lint:allow errclose -- testdata: deliberately dropped
	b.Close() // want `error from Close\(\) is silently dropped`
}

// The standalone form covers the line directly below the directive.
func Standalone(f *os.File) {
	//lint:allow errclose -- testdata: standalone form covers the next line
	f.Close()
}

//lint:allow docpresence -- testdata: the escape hatch is itself under test
func AllowedUndocumented() {}

// Hygiene exercises the directive-hygiene diagnostics.
func Hygiene(f *os.File) {
	var x int //lint:allow nosuch -- testdata // want `unknown analyzer "nosuch"`
	_ = x
	var y int //lint:allow errclose extra -- testdata // want `takes one analyzer name`
	_ = y
	var z int //lint:allow errclose -- testdata: nothing here to silence // want `unused //lint:allow errclose`
	_ = z
	// Naming the wrong analyzer both leaves the finding alive and
	// reports the directive as unused.
	f.Close() //lint:allow determinism -- testdata: wrong analyzer // want `silently dropped` `unused //lint:allow determinism`
}
