package twin

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
)

// Rung 2: the mean-field (fluid) model with an exact endgame.
//
// The fluid state drops one more coordinate than the lumped chain: instead
// of (a, b) it tracks only F = a + b. The parity split is the chain's one
// fast degree of freedom — rules 1–4 shuffle initial ↔ initial' on a much
// shorter timescale than groups form once the bulk phase is underway — so
// integrating it explicitly would make the ODE stiff (step size pinned by
// parity mixing, ~n× more steps than the slow dynamics needs). The
// quasi-steady substitution replaces it: with parity well mixed, a is
// Binomial(F, 1/2)-distributed, so the rule 5 pair count 2ab averages to
// F(F−1)/2 — the only place the split enters the slow dynamics, since
// rules 6 and 7 fire at 2·(a+b)·m regardless of the split and rules 1–4
// do not move F at all. The substitution is exact up to the initial
// transient (~n interactions out of a Θ(n²)-and-worse total) and O(1/F)
// integer effects — which is why the fluid hands off to an exact sub-chain
// before F gets small.
//
// The endgame: the fluid is integrated only until #gk reaches
// cStop = ⌊n/k⌋ − J; the remaining levels — where the last groups form,
// integer effects dominate, and most of the variance lives — are solved
// exactly on the lumped sub-chain restricted to #gk ≥ cStop (residual
// non-g population ≤ k·J + n mod k agents, so the sub-chain stays small
// for any n). The fluid state at the crossing rounds to the sub-chain
// entry node; expected totals add, and milestones past cStop come from
// the sub-chain's level hitting times.

// fluidState indexes: y[0] = F, y[i−1] = #m_i (i = 2..k−1),
// y[k−2+i] = #d_i (i = 1..k−2), y[2k−3] = #gk.
func fluidLen(k int) int { return 2*k - 2 }

// fluid evaluates the finite-n drift of the reduced vector: expected
// change per interaction, E[ΔY | Y], with exact ordered-pair counts.
type fluid struct {
	k int
	t float64 // n(n−1), the ordered-pair normalizer
}

func (f *fluid) mIdx(i int) int { return i - 1 }       // i in 2..k−1
func (f *fluid) dIdx(i int) int { return f.k - 2 + i } // i in 1..k−2
func (f *fluid) cIdx() int      { return 2*f.k - 3 }

// drift writes E[ΔY]/Δτ into dy.
func (f *fluid) drift(y, dy []float64) {
	k := f.k
	w := 1 / f.t
	for i := range dy {
		dy[i] = 0
	}
	F := y[0]
	c := y[f.cIdx()]
	// g_i via Lemma 1: suffix sums of m and d over levels >= i.
	// gSuf[i] = g_i for i = 1..k−1 (only rules 9/10 need them).
	gSuf := make([]float64, k+1)
	gSuf[k] = c
	for i := k - 1; i >= 1; i-- {
		g := gSuf[i+1]
		if i+1 <= k-1 {
			g += y[f.mIdx(i+1)]
		}
		if i <= k-2 {
			g += y[f.dIdx(i)]
		}
		gSuf[i] = g
	}
	// Rule 5 under the quasi-steady parity split: E[2ab] = F(F−1)/2.
	r5 := F * (F - 1) / 2 * w
	if r5 > 0 {
		dy[0] -= 2 * r5
		if k >= 3 {
			dy[f.mIdx(2)] += r5
		} else {
			dy[f.cIdx()] += r5
		}
	}
	// Rules 6 and 7: a free agent feeds the m-head; rate 2·F·m_i.
	for i := 2; i <= k-1; i++ {
		r := 2 * F * y[f.mIdx(i)] * w
		if r <= 0 {
			continue
		}
		dy[0] -= r
		dy[f.mIdx(i)] -= r
		if i < k-1 {
			dy[f.mIdx(i+1)] += r
		} else {
			dy[f.cIdx()] += r
		}
	}
	// Rule 8: ordered head collisions (m_i, m_j), rate m_i·(m_j − [i=j]);
	// each firing demotes both heads, so the ordered loop applies the full
	// two-agent delta and the two orders of an (i, j) pair sum to the
	// unordered rate 2·m_i·m_j.
	for i := 2; i <= k-1; i++ {
		mi := y[f.mIdx(i)]
		if mi <= 0 {
			continue
		}
		for j := 2; j <= k-1; j++ {
			mj := y[f.mIdx(j)]
			if i == j {
				mj--
			}
			if mj <= 0 {
				continue
			}
			r := mi * mj * w
			dy[f.mIdx(i)] -= r
			dy[f.mIdx(j)] -= r
			dy[f.dIdx(i-1)] += r
			dy[f.dIdx(j-1)] += r
		}
	}
	// Rules 9 and 10: demolition unwinding, rate 2·d_i·g_i.
	for i := 2; i <= k-2; i++ {
		r := 2 * y[f.dIdx(i)] * gSuf[i] * w
		if r <= 0 {
			continue
		}
		dy[f.dIdx(i)] -= r
		dy[f.dIdx(i-1)] += r
		dy[0] += r
	}
	if k >= 3 {
		r := 2 * y[f.dIdx(1)] * gSuf[1] * w
		if r > 0 {
			dy[f.dIdx(1)] -= r
			dy[0] += 2 * r
		}
	}
}

// rk4 advances y by one classical Runge–Kutta step of size h into out.
func (f *fluid) rk4(y []float64, h float64, out []float64, k1, k2, k3, k4, tmp []float64) {
	n := len(y)
	f.drift(y, k1)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h/2*k1[i]
	}
	f.drift(tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h/2*k2[i]
	}
	f.drift(tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h*k3[i]
	}
	f.drift(tmp, k4)
	for i := 0; i < n; i++ {
		out[i] = y[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
		if out[i] < 0 {
			out[i] = 0 // float undershoot on depleted coordinates
		}
	}
}

// Integration parameters: per-step relative error target for the
// step-doubling control, step growth/shrink factors, and a hard step cap
// so a wedged trajectory errors instead of spinning.
const (
	fluidTol      = 1e-7
	fluidMaxSteps = 5_000_000
)

// fluidResult is the integrated bulk phase: time to the handoff level,
// the state at the crossing, and the milestone crossing times recorded on
// the way (crossings[j−1] for #gk = j, j = 1..cStop).
type fluidResult struct {
	tau       float64
	y         []float64
	crossings []float64
}

// integrate runs the fluid from all-free until #gk reaches cStop. The
// step size adapts by step doubling: a full step is compared against two
// half steps, accepted when they agree to fluidTol, and the richer
// two-half-step estimate is kept. The next step size follows the
// standard proportional controller h·0.9·(tol/err)^(1/5) (clamped) —
// always adjusting, so h keeps growing geometrically along the long
// quiet tail instead of freezing the first time the error lands between
// tol/64 and tol (which once stalled million-agent runs mid-trajectory).
func (f *fluid) integrate(n, cStop int) (fluidResult, error) {
	dim := fluidLen(f.k)
	y := make([]float64, dim)
	y[0] = float64(n)
	res := fluidResult{crossings: make([]float64, cStop)}
	if cStop <= 0 {
		res.y = y
		return res, nil
	}
	full := make([]float64, dim)
	half := make([]float64, dim)
	half2 := make([]float64, dim)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	ci := f.cIdx()
	tau := 0.0
	h := 1.0
	nextMilestone := 1
	for step := 0; step < fluidMaxSteps; step++ {
		f.rk4(y, h, full, k1, k2, k3, k4, tmp)
		f.rk4(y, h/2, half, k1, k2, k3, k4, tmp)
		f.rk4(half, h/2, half2, k1, k2, k3, k4, tmp)
		errEst := 0.0
		for i := 0; i < dim; i++ {
			d := math.Abs(full[i] - half2[i])
			scale := 1 + math.Abs(half2[i])
			if e := d / scale; e > errEst {
				errEst = e
			}
		}
		// Proportional controller, shared by accept and reject.
		fac := 5.0
		if errEst > 0 {
			fac = 0.9 * math.Pow(fluidTol/errEst, 0.2)
			if fac < 0.2 {
				fac = 0.2
			} else if fac > 5 {
				fac = 5
			}
		}
		if errEst > fluidTol {
			h *= fac
			if h < 1e-9 {
				return res, fmt.Errorf("twin: fluid step underflow at τ=%g", tau)
			}
			continue
		}
		cPrev, cNext := y[ci], half2[ci]
		// Record integer crossings inside this step by linear
		// interpolation of #gk.
		for nextMilestone <= cStop && cNext >= float64(nextMilestone) {
			frac := 1.0
			if cNext > cPrev {
				frac = (float64(nextMilestone) - cPrev) / (cNext - cPrev)
			}
			res.crossings[nextMilestone-1] = tau + frac*h
			if nextMilestone == cStop {
				// Hand off: interpolate the whole state to the crossing.
				res.tau = tau + frac*h
				res.y = make([]float64, dim)
				for i := 0; i < dim; i++ {
					res.y[i] = y[i] + frac*(half2[i]-y[i])
				}
				res.y[ci] = float64(cStop)
				return res, nil
			}
			nextMilestone++
		}
		copy(y, half2)
		tau += h
		h *= fac
	}
	return res, fmt.Errorf("twin: fluid did not reach #gk=%d within %d steps (stalled at %g)", cStop, fluidMaxSteps, y[ci])
}

// entryVec rounds the fluid state at the handoff to a canonical reduced
// vector at level cStop with the exact residual population: m and d round
// to nearest (greedily trimmed if the weighted sum overshoots), the
// leftover becomes free agents split as evenly as parity mixing leaves
// them.
func (f *fluid) entryVec(y []float64, n, cStop int) []int32 {
	k := f.k
	vec := make([]int32, vecLen(k))
	vec[2*k-2] = int32(cStop)
	residual := n - k*cStop
	type slot struct {
		idx int // position in vec
		w   int
		val float64
	}
	var slots []slot
	for i := 2; i <= k-1; i++ {
		slots = append(slots, slot{idx: i, w: i, val: y[f.mIdx(i)]})
	}
	for i := 1; i <= k-2; i++ {
		slots = append(slots, slot{idx: k + i - 1, w: i + 1, val: y[f.dIdx(i)]})
	}
	used := 0
	for _, s := range slots {
		cnt := int(math.Round(s.val))
		if cnt < 0 {
			cnt = 0
		}
		vec[s.idx] = int32(cnt)
		used += cnt * s.w
	}
	// Trim overshoot, heaviest slots first, so free agents stay >= 0.
	if used > residual {
		sort.Slice(slots, func(a, b int) bool { return slots[a].w > slots[b].w })
		for used > residual {
			trimmed := false
			for _, s := range slots {
				for vec[s.idx] > 0 && used > residual {
					vec[s.idx]--
					used -= s.w
					trimmed = true
				}
			}
			if !trimmed {
				break
			}
		}
	}
	free := residual - used
	vec[0] = int32((free + 1) / 2)
	vec[1] = int32(free / 2)
	return vec
}

// entryDist approximates the configuration distribution at the moment
// #gk first reaches the handoff level, as weights over the endgame
// chain's floor-level states: independent Poisson marginals for each m/d
// count around its fluid mean, a Binomial(F, 1/2) parity split of the
// free agents (rules 1–4 mix parity fast), conditioned on the exact
// residual population by restricting to the floor level and
// renormalizing. A point mass at the rounded fluid state would inherit
// the fluid's blindness to spread — hitting times are convex in the
// entry state, so averaging over a distribution matters (the measured
// point-mass bias at k = 3 was ~3%, an order of magnitude above what
// this leaves).
func entryDist(ch *lchain, f *fluid, y []float64) (ids []int, ws []float64) {
	floor := ch.levels[0]
	ws = make([]float64, 0, len(floor))
	ids = make([]int, 0, len(floor))
	k := f.k
	total := 0.0
	for _, id := range floor {
		vec := ch.nodes[id]
		w := 1.0
		for i := 2; i <= k-1; i++ {
			w *= poissonPMF(y[f.mIdx(i)], int(vec[i]))
		}
		for i := 1; i <= k-2; i++ {
			w *= poissonPMF(y[f.dIdx(i)], int(vec[k+i-1]))
		}
		w *= binomialHalfPMF(int(vec[0]), int(vec[1]))
		ids = append(ids, id)
		ws = append(ws, w)
		total += w
	}
	if total <= 0 {
		return nil, nil
	}
	for i := range ws {
		ws[i] /= total
	}
	return ids, ws
}

// poissonPMF is e^−λ λ^x / x! with the λ = 0 limit (point mass at 0).
func poissonPMF(lambda float64, x int) float64 {
	if lambda <= 0 {
		if x == 0 {
			return 1
		}
		return 0
	}
	logp := -lambda + float64(x)*math.Log(lambda)
	for i := 2; i <= x; i++ {
		logp -= math.Log(float64(i))
	}
	return math.Exp(logp)
}

// binomialHalfPMF is C(a+b, a) / 2^(a+b): the stationary parity split of
// a + b free agents under the rule 1–4 mixing.
func binomialHalfPMF(a, b int) float64 {
	n := a + b
	logp := -float64(n) * math.Ln2
	// log C(n, a) summed incrementally to stay in range for any n.
	for i := 1; i <= a; i++ {
		logp += math.Log(float64(n-a+i)) - math.Log(float64(i))
	}
	return math.Exp(logp)
}

// MeanField is rung 2 of the ladder: fluid bulk dynamics plus the exact
// endgame sub-chain, for arbitrary populations. Safe for concurrent use;
// built endgame chains are cached per (n, k).
type MeanField struct {
	// endgameLevels is the preferred number of exactly-solved #gk levels
	// (J); the effective J shrinks if the sub-chain would exceed
	// endgameBudget states.
	endgameLevels int
	endgameBudget int

	mu    sync.Mutex
	cache map[[2]int]*lchain // keyed by (n, k); cleared when it outgrows cacheCap
}

// Endgame sizing defaults: 8 exact levels when they fit, shrinking to
// whatever does; the budget keeps a cold prediction fast and the cache
// keeps a warm one microseconds-fast.
const (
	defaultEndgameLevels = 8
	defaultEndgameBudget = 20_000
	meanFieldCacheCap    = 32
)

// NewMeanField returns the mean-field rung with default endgame sizing.
func NewMeanField() *MeanField {
	return &MeanField{
		endgameLevels: defaultEndgameLevels,
		endgameBudget: defaultEndgameBudget,
		cache:         make(map[[2]int]*lchain),
	}
}

// Name implements Model.
func (m *MeanField) Name() string { return "meanfield" }

// Fidelity implements Model.
func (m *MeanField) Fidelity() Fidelity { return FidelityFluid }

// Supports implements Model: the fluid answers for any valid (n, k).
func (m *MeanField) Supports(n, k int) bool {
	return Spec{N: n, K: k}.Validate() == nil
}

// chooseEndgame picks the deepest handoff level whose sub-chain
// (#gk >= cStop) fits the budget AND whose floor level — the largest of
// the sub-chain, since levels shrink as #gk grows — fits the dense solver
// cap. The second condition keeps every endgame solve on the exact LU
// path; the Gauss–Seidel fallback does not converge on the near-degenerate
// level systems that large populations produce. cStop ranges from
// q − endgameLevels up to q−1 (the fluid's #gk tends to q, so any level
// below q is crossed in finite time); q = 0 means the "endgame" is the
// whole chain and the prediction is exact. ok=false means even one exact
// level is too big (extreme k) and the caller must fall back.
func (m *MeanField) chooseEndgame(n, k, q int) (cStop int, ok bool) {
	lo := q - m.endgameLevels
	if lo < 0 {
		lo = 0
	}
	hi := q - 1
	if q == 0 {
		hi = 0
	}
	for stop := lo; stop <= hi; stop++ {
		if levelCount(n-k*stop, k, denseLevelCap+1) > denseLevelCap {
			continue
		}
		if endgameCount(n, k, stop, m.endgameBudget+1) <= m.endgameBudget {
			return stop, true
		}
	}
	return 0, false
}

// endgameCount counts reduced states with #gk >= cStop, saturating at
// limit.
func endgameCount(n, k, cStop, limit int) int {
	total := 0
	for c := cStop; k*c <= n; c++ {
		residual := n - k*c
		total += levelCount(residual, k, limit)
		if total > limit {
			return limit
		}
	}
	return total
}

// levelCount counts the (a, b, m, d) splits of a residual weight — the
// states of one #gk level.
func levelCount(residual, k, limit int) int {
	w := []int{1, 1} // a and b
	for i := 2; i <= k-1; i++ {
		w = append(w, i)
	}
	for i := 1; i <= k-2; i++ {
		w = append(w, i+1)
	}
	return countSolutions(residual, w, limit)
}

// endgameChain returns the (possibly cached) endgame sub-chain for (n, k)
// at the given floor level.
func (m *MeanField) endgameChain(p *core.Protocol, n, cStop int) (*lchain, error) {
	key := [2]int{n, p.K()}
	m.mu.Lock()
	ch, ok := m.cache[key]
	m.mu.Unlock()
	if ok && ch.cMin == cStop {
		return ch, nil
	}
	ch, err := buildEndgame(p, n, cStop, 0)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if len(m.cache) >= meanFieldCacheCap {
		m.cache = make(map[[2]int]*lchain)
	}
	m.cache[key] = ch
	m.mu.Unlock()
	return ch, nil
}

// Predict implements Model: integrate the fluid to the handoff level,
// solve the endgame exactly from the smoothed entry distribution, and
// combine.
func (m *MeanField) Predict(s Spec) (Prediction, error) {
	if err := checkSpec(s); err != nil {
		return Prediction{}, err
	}
	p, err := core.New(s.K)
	if err != nil {
		return Prediction{}, fmt.Errorf("twin: %v", err)
	}
	n, k := s.N, s.K
	q := n / k
	f := &fluid{k: k, t: float64(n) * float64(n-1)}
	cStop, ok := m.chooseEndgame(n, k, q)
	if !ok {
		return m.predictFluidOnly(s, f, q)
	}
	fr, err := f.integrate(n, cStop)
	if err != nil {
		return Prediction{}, err
	}
	ch, err := m.endgameChain(p, n, cStop)
	if err != nil {
		return Prediction{}, err
	}
	var ids []int
	var ws []float64
	if cStop == 0 {
		// No fluid phase ran: the entry is the true all-initial state,
		// not a parity-mixed smoothing of it, and the answer is exact.
		entry := make([]int32, vecLen(k))
		entry[0] = int32(n)
		entryID, found := ch.index[vecKey(entry)]
		if !found {
			return Prediction{}, fmt.Errorf("twin: entry state %v missing from endgame chain", entry)
		}
		ids, ws = []int{entryID}, []float64{1}
	} else {
		ids, ws = entryDist(ch, f, fr.y)
		if len(ids) == 0 {
			// Degenerate weights; fall back to the rounded point mass.
			entry := f.entryVec(fr.y, n, cStop)
			entryID, found := ch.index[vecKey(entry)]
			if !found {
				return Prediction{}, fmt.Errorf("twin: entry state %v missing from endgame chain", entry)
			}
			ids, ws = []int{entryID}, []float64{1}
		}
	}
	E, M, err := ch.momentsCached()
	if err != nil {
		return Prediction{}, err
	}
	// Mix moments over the entry distribution: the entry spread's own
	// variance lands in endVar through the mixture second moment.
	var entryE, entryM float64
	for i, id := range ids {
		entryE += ws[i] * E[id]
		entryM += ws[i] * M[id]
	}
	endVar := entryM - entryE*entryE
	if endVar < 0 {
		endVar = 0
	}
	fStd := fluidPhaseStd(k, n, fr.tau)
	pr := Prediction{
		N: n, K: k,
		Model:                m.Name(),
		Fidelity:             m.Fidelity(),
		ExpectedInteractions: calibrateMean(k, fr.tau+entryE, fr.tau),
		StdInteractions:      math.Sqrt(endVar + fStd*fStd),
		RelErrBudget:         RelErrFluid,
		States:               len(ch.nodes),
	}
	if s.Milestones {
		ms := make([]float64, q)
		copy(ms, fr.crossings)
		for j := cStop + 1; j <= q; j++ {
			Ej, err := ch.hitLevel(j)
			if err != nil {
				return Prediction{}, err
			}
			var mix float64
			for i, id := range ids {
				mix += ws[i] * Ej[id]
			}
			ms[j-1] = fr.tau + mix
		}
		pr.Milestones = ms
	}
	finishPrediction(&pr)
	return pr, nil
}

// predictFluidOnly is the fallback when no endgame sub-chain fits (an
// extreme k whose level state space alone exceeds the budget): integrate
// the fluid to level q−1 — always crossable — and extrapolate the final
// level's cost from the previous one. The estimate is outside the gated
// accuracy envelope; the fidelity tag and RelErrBudget still say
// mean-field, and DESIGN.md §10 documents the degradation.
func (m *MeanField) predictFluidOnly(s Spec, f *fluid, q int) (Prediction, error) {
	if q < 2 {
		return Prediction{}, fmt.Errorf(
			"twin: n=%d k=%d is below the mean-field envelope and its exact chain exceeds the state budget", s.N, s.K)
	}
	fr, err := f.integrate(s.N, q-1)
	if err != nil {
		return Prediction{}, err
	}
	// The last level costs at least as much as the one before it; reusing
	// that cost is a deliberate (and reported) underestimate.
	tail := fr.tau
	if q >= 3 {
		tail = fr.tau - fr.crossings[q-3]
	}
	total := fr.tau + tail
	fStd := fluidPhaseStd(s.K, s.N, total)
	pr := Prediction{
		N: s.N, K: s.K,
		Model:                m.Name(),
		Fidelity:             m.Fidelity(),
		ExpectedInteractions: calibrateMean(s.K, total, total),
		StdInteractions:      fStd,
		RelErrBudget:         RelErrFluid,
	}
	if s.Milestones {
		ms := make([]float64, q)
		copy(ms, fr.crossings)
		ms[q-1] = total
		pr.Milestones = ms
	}
	finishPrediction(&pr)
	return pr, nil
}
