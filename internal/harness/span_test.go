package harness

import (
	"context"
	"testing"

	"repro/internal/obs/span"
)

// traceTrial runs one traced trial and returns the exported spans.
func traceTrial(t *testing.T, spec TrialSpec) []span.Span {
	t.Helper()
	col := span.NewCollector(nil)
	tr := col.TraceForSpec(SpecKey(spec))
	root := tr.Root("request")
	ctx := span.NewContext(context.Background(), root)
	if _, err := RunTrialCtx(ctx, spec, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	root.End()
	return col.Export()
}

// identity strips the wall fields, which are edge-captured and vary run
// to run; everything else in a span is deterministic for a fixed spec.
func identity(spans []span.Span) []span.Span {
	out := append([]span.Span(nil), spans...)
	for i := range out {
		out[i].WallStartUS, out[i].WallDurUS = 0, 0
	}
	return out
}

func spansEqual(a, b []span.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Trace != y.Trace || x.ID != y.ID || x.Parent != y.Parent || x.Name != y.Name ||
			x.StartSeq != y.StartSeq || x.EndSeq != y.EndSeq || len(x.Attrs) != len(y.Attrs) {
			return false
		}
		for j := range x.Attrs {
			if x.Attrs[j] != y.Attrs[j] {
				return false
			}
		}
	}
	return true
}

// TestTrialSpanTreeDeterministic pins the acceptance property: two runs
// of the same spec export identical span trees — same trace ID, span
// IDs, structure, names, attrs, and logical intervals — on both engines.
func TestTrialSpanTreeDeterministic(t *testing.T) {
	for _, eng := range []Engine{EngineAgent, EngineCount} {
		spec := TrialSpec{N: 24, K: 4, Seed: 7, Engine: eng}
		a := identity(traceTrial(t, spec))
		b := identity(traceTrial(t, spec))
		if !spansEqual(a, b) {
			t.Errorf("engine %v: two runs of the same spec exported different trees:\n%v\n%v", eng, a, b)
		}
	}
}

// TestTrialSpanTreeShape checks the exported tree is complete and
// properly nested: request → trial → attempt → engine → one
// phase/grouping span per #gk milestone, with every child's logical
// interval inside its parent's and every child's wall interval inside
// its parent's (where both are stamped).
func TestTrialSpanTreeShape(t *testing.T) {
	for _, tc := range []struct {
		engine Engine
		eng    string
	}{
		{EngineAgent, "engine/agent"},
		{EngineCount, "engine/count"},
	} {
		spec := TrialSpec{N: 24, K: 4, Seed: 7, Engine: tc.engine}
		spans := traceTrial(t, spec)

		byID := make(map[string]span.Span)
		count := make(map[string]int)
		for _, s := range spans {
			byID[s.ID] = s
			count[s.Name]++
		}
		// n=24, k=4 converges to exactly 6 complete groupings.
		want := map[string]int{"request": 1, "trial": 1, "attempt": 1, tc.eng: 1, "phase/grouping": 6}
		for name, n := range want {
			if count[name] != n {
				t.Errorf("engine %v: %d %q spans, want %d (all: %v)", tc.engine, count[name], name, n, count)
			}
		}

		for _, s := range spans {
			if s.Parent == "" {
				if s.Name != "request" {
					t.Errorf("engine %v: root span is %q, want request", tc.engine, s.Name)
				}
				continue
			}
			p, ok := byID[s.Parent]
			if !ok {
				t.Errorf("engine %v: span %s/%s has missing parent %s", tc.engine, s.ID, s.Name, s.Parent)
				continue
			}
			if s.EndSeq > 0 && p.EndSeq > 0 {
				if s.StartSeq < p.StartSeq || s.EndSeq > p.EndSeq {
					t.Errorf("engine %v: %q seq [%d,%d] escapes parent %q [%d,%d]",
						tc.engine, s.Name, s.StartSeq, s.EndSeq, p.Name, p.StartSeq, p.EndSeq)
				}
			}
			if s.WallDurUS > 0 && p.WallDurUS > 0 {
				if s.WallStartUS < p.WallStartUS ||
					s.WallStartUS+s.WallDurUS > p.WallStartUS+p.WallDurUS {
					t.Errorf("engine %v: %q wall [%d,+%d] escapes parent %q [%d,+%d]",
						tc.engine, s.Name, s.WallStartUS, s.WallDurUS, p.Name, p.WallStartUS, p.WallDurUS)
				}
			}
		}

		// Phase spans partition the engine interval: contiguous, ordered,
		// ending at the engine span's end-of-convergence marks.
		var phases []span.Span
		for _, s := range spans {
			if s.Name == "phase/grouping" {
				phases = append(phases, s)
			}
		}
		var prev uint64
		for i, ph := range phases {
			if ph.StartSeq != prev {
				t.Errorf("engine %v: phase %d starts at %d, want %d (contiguous)", tc.engine, i+1, ph.StartSeq, prev)
			}
			if ph.EndSeq < ph.StartSeq {
				t.Errorf("engine %v: phase %d interval inverted", tc.engine, i+1)
			}
			prev = ph.EndSeq
		}
	}
}

// TestUntracedContextRunsClean pins the no-op path: without a span in
// the context the trial must behave exactly as before (and not panic).
func TestUntracedContextRunsClean(t *testing.T) {
	spec := TrialSpec{N: 12, K: 3, Seed: 1}
	traced := traceTrial(t, spec)
	res, err := RunTrialCtx(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("trial did not converge")
	}
	// Tracing must not perturb the result: compare against the traced run.
	tres, err := RunTrialCtx(span.NewContext(context.Background(), span.NewTrace("t").Root("r")), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions != tres.Interactions || res.Productive != tres.Productive {
		t.Fatalf("tracing perturbed the result: %+v vs %+v", res, tres)
	}
	if len(traced) == 0 {
		t.Fatal("traced run exported nothing")
	}
}
