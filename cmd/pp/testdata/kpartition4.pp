# The paper's uniform k-partition protocol for k = 4 (Algorithm 1),
# emitted by parse.Format from the generated table. Run with a
# population divisible by 4 so the stable configuration is quiescent:
#   pp -f kpartition4.pp -n 40
protocol uniform-4-partition
symmetric
init initial
group g2 2
group g3 3
group g4 4
group m2 2
group m3 3
rule initial initial -> initial' initial'
rule initial initial' -> g1 m2
rule initial g1 -> initial' g1
rule initial g2 -> initial' g2
rule initial g3 -> initial' g3
rule initial g4 -> initial' g4
rule initial m2 -> g2 m3
rule initial m3 -> g3 g4
rule initial d1 -> initial' d1
rule initial d2 -> initial' d2
rule initial' initial' -> initial initial
rule initial' g1 -> initial g1
rule initial' g2 -> initial g2
rule initial' g3 -> initial g3
rule initial' g4 -> initial g4
rule initial' m2 -> g2 m3
rule initial' m3 -> g3 g4
rule initial' d1 -> initial d1
rule initial' d2 -> initial d2
rule g1 d1 -> initial initial
rule g2 d2 -> initial d1
rule m2 m2 -> d1 d1
rule m2 m3 -> d1 d2
rule m3 m3 -> d2 d2
