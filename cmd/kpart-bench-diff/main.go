// Command kpart-bench-diff is the benchmark regression gate: it
// compares a current benchmark document (BENCH_kpart.json or
// BENCH_serve.json) against a committed baseline and exits non-zero
// when a gated metric worsened past its threshold (throughput-class
// metrics gate at 20%, latency-class at 75%; see internal/benchdiff
// for the policy and DESIGN.md for its rationale).
//
// Usage:
//
//	kpart-bench-diff [-report-only] [-v] baseline.json current.json
//
// `make bench-diff` produces a fresh BENCH_serve.json in a temp
// directory and diffs it against the committed baseline; -report-only
// (used by `make check`) prints the comparison without failing the
// build, so the gate is informative on noisy hardware and enforcing
// where the operator opts in.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchdiff"
)

func main() {
	var (
		reportOnly = flag.Bool("report-only", false, "print the comparison but always exit 0")
		verbose    = flag.Bool("v", false, "show every compared metric, not just gated/moved ones")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kpart-bench-diff [-report-only] [-v] baseline.json current.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := benchdiff.LoadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := benchdiff.LoadFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	findings := benchdiff.Compare(base, cur, benchdiff.DefaultRules())
	fmt.Printf("bench-diff: %s -> %s\n", flag.Arg(0), flag.Arg(1))
	benchdiff.Render(os.Stdout, findings, *verbose)

	if reg := benchdiff.Regressions(findings); len(reg) > 0 {
		if *reportOnly {
			fmt.Printf("bench-diff: %d regression(s) found (report-only mode, not failing)\n", len(reg))
			return
		}
		fmt.Fprintf(os.Stderr, "bench-diff: %d regression(s) past threshold\n", len(reg))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpart-bench-diff:", err)
	os.Exit(2)
}
