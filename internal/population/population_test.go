package population

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestNewAllInitial(t *testing.T) {
	p := core.MustNew(4)
	pop := New(p, 10)
	if pop.N() != 10 {
		t.Fatalf("N=%d", pop.N())
	}
	if pop.Count(p.Initial()) != 10 {
		t.Fatalf("initial count %d", pop.Count(p.Initial()))
	}
	for i := 0; i < 10; i++ {
		if pop.State(i) != p.Initial() {
			t.Fatalf("agent %d in state %d", i, pop.State(i))
		}
	}
	if pop.Interactions() != 0 || pop.Productive() != 0 {
		t.Fatal("fresh population has nonzero counters")
	}
}

func TestNewPanicsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(p,1) did not panic")
		}
	}()
	New(core.MustNew(3), 1)
}

func TestFromStates(t *testing.T) {
	p := core.MustNew(3)
	states := []protocol.State{p.G(1), p.G(2), p.Initial(), p.Initial()}
	pop := FromStates(p, states)
	if pop.Count(p.G(1)) != 1 || pop.Count(p.Initial()) != 2 {
		t.Fatalf("counts wrong: %v", pop.Counts())
	}
	// The input slice must be copied, not aliased.
	states[0] = p.G(2)
	if pop.State(0) != p.G(1) {
		t.Fatal("FromStates aliases caller slice")
	}
}

func TestFromStatesRejectsOutOfRange(t *testing.T) {
	p := core.MustNew(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range state accepted")
		}
	}()
	FromStates(p, []protocol.State{0, 99})
}

func TestInteractAppliesRule(t *testing.T) {
	p := core.MustNew(3)
	pop := FromStates(p, []protocol.State{p.Initial(), p.InitialBar(), p.Initial()})
	changed := pop.Interact(0, 1) // rule 5: (initial, initial') -> (g1, m2)
	if !changed {
		t.Fatal("rule 5 reported unchanged")
	}
	if pop.State(0) != p.G(1) || pop.State(1) != p.M(2) {
		t.Fatalf("states after rule 5: %d %d", pop.State(0), pop.State(1))
	}
	if pop.Count(p.G(1)) != 1 || pop.Count(p.M(2)) != 1 || pop.Count(p.Initial()) != 1 {
		t.Fatalf("counts desynced: %v", pop.Counts())
	}
	if pop.Interactions() != 1 || pop.Productive() != 1 {
		t.Fatalf("counters: %d %d", pop.Interactions(), pop.Productive())
	}
}

func TestInteractNull(t *testing.T) {
	p := core.MustNew(3)
	pop := FromStates(p, []protocol.State{p.G(1), p.G(2), p.G(3)})
	if pop.Interact(0, 1) {
		t.Fatal("null interaction reported change")
	}
	if pop.Interactions() != 1 || pop.Productive() != 0 {
		t.Fatalf("counters after null: %d %d", pop.Interactions(), pop.Productive())
	}
}

func TestInteractSelfPanics(t *testing.T) {
	p := core.MustNew(3)
	pop := New(p, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("self-interaction did not panic")
		}
	}()
	pop.Interact(2, 2)
}

func TestGroupSizesAndSpread(t *testing.T) {
	p := core.MustNew(4)
	// g1, g1, g2, m3 (group 3), initial (group 1); group 4 empty.
	pop := FromStates(p, []protocol.State{p.G(1), p.G(1), p.G(2), p.M(3), p.Initial()})
	sizes := pop.GroupSizes()
	want := []int{3, 1, 1, 0}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("GroupSizes = %v, want %v", sizes, want)
		}
	}
	if pop.Spread() != 3 {
		t.Fatalf("Spread = %d, want 3", pop.Spread())
	}
}

func TestSnapshotIndependent(t *testing.T) {
	p := core.MustNew(3)
	pop := New(p, 5)
	snap := pop.Snapshot()
	pop.Interact(0, 1)
	if snap[0] != p.Initial() {
		t.Fatal("snapshot mutated by later interaction")
	}
}

func TestCloneDeep(t *testing.T) {
	p := core.MustNew(3)
	pop := New(p, 6)
	pop.Interact(0, 1) // rule 1
	cl := pop.Clone()
	if cl.Interactions() != 1 {
		t.Fatal("clone lost counters")
	}
	pop.Interact(2, 3)
	if cl.Interactions() != 1 || cl.State(2) != p.Initial() {
		t.Fatal("clone shares state with original")
	}
}

func TestResetRestoresInitial(t *testing.T) {
	p := core.MustNew(4)
	pop := New(p, 8)
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		a, b := r.Pair(8)
		pop.Interact(a, b)
	}
	pop.Reset()
	if pop.Count(p.Initial()) != 8 || pop.Interactions() != 0 || pop.Productive() != 0 {
		t.Fatalf("Reset incomplete: %v %d", pop.Counts(), pop.Interactions())
	}
}

func TestStringRendersCounts(t *testing.T) {
	p := core.MustNew(3)
	pop := FromStates(p, []protocol.State{p.G(1), p.G(1), p.M(2)})
	s := pop.String()
	if !strings.Contains(s, "g1:2") || !strings.Contains(s, "m2:1") {
		t.Errorf("String = %q", s)
	}
}

// Property: counts always equal the histogram of states, and their sum is
// n, under arbitrary random interaction sequences.
func TestCountsStayConsistent(t *testing.T) {
	p := core.MustNew(5)
	f := func(seed uint64) bool {
		pop := New(p, 15)
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			a, b := r.Pair(15)
			pop.Interact(a, b)
		}
		hist := make([]int, p.NumStates())
		for i := 0; i < pop.N(); i++ {
			hist[pop.State(i)]++
		}
		total := 0
		for s, c := range pop.Counts() {
			if hist[s] != c {
				return false
			}
			total += c
		}
		return total == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Interactions == Productive + nulls, and Productive only grows
// on actual changes.
func TestCounterAccounting(t *testing.T) {
	p := core.MustNew(4)
	pop := New(p, 9)
	r := rng.New(77)
	var productive uint64
	for i := 0; i < 2000; i++ {
		a, b := r.Pair(9)
		before0, before1 := pop.State(a), pop.State(b)
		changed := pop.Interact(a, b)
		if changed != (pop.State(a) != before0 || pop.State(b) != before1) {
			t.Fatal("Interact return value inconsistent with state change")
		}
		if changed {
			productive++
		}
	}
	if pop.Productive() != productive || pop.Interactions() != 2000 {
		t.Fatalf("counters %d/%d, want %d/2000", pop.Productive(), pop.Interactions(), productive)
	}
}

func BenchmarkInteract(b *testing.B) {
	p := core.MustNew(8)
	pop := New(p, 960)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := r.Pair(960)
		pop.Interact(x, y)
	}
}
