package benchdiff

import (
	"bytes"
	"strings"
	"testing"
)

const serveDoc = `{
  "created_at": "2026-08-05T01:24:13Z",
  "go": "go1.24.0",
  "requests_per_sec": 27000.0,
  "latency_ns_p50": 225621,
  "latency_ns_p99": 2077377,
  "cache_hit_rate": 0.968,
  "rejected_429": 0,
  "trials_run": 64
}`

const kpartDoc = `{
  "go_version": "go1.24.0",
  "points": [
    {"name": "classic/agent", "n": 100, "interactions_per_sec": 1e7, "wall_ns_mean": 100},
    {"name": "count/count", "n": 100, "interactions_per_sec": 5e7, "wall_ns_mean": 50}
  ]
}`

func mustLoad(t *testing.T, doc string) map[string]float64 {
	t.Helper()
	m, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFlattenServeDoc(t *testing.T) {
	m := mustLoad(t, serveDoc)
	if m["requests_per_sec"] != 27000 {
		t.Fatalf("requests_per_sec = %v", m["requests_per_sec"])
	}
	if _, ok := m["created_at"]; ok {
		t.Fatal("non-numeric leaf must be dropped")
	}
}

func TestFlattenKpartDocNamesPoints(t *testing.T) {
	m := mustLoad(t, kpartDoc)
	if m["points[classic/agent].interactions_per_sec"] != 1e7 {
		t.Fatalf("named point path missing: %v", m)
	}
	if m["points[count/count].wall_ns_mean"] != 50 {
		t.Fatalf("named point path missing: %v", m)
	}
}

// TestThroughputRegressionGates is the acceptance case: an injected
// >20% requests_per_sec drop must come back Regressed.
func TestThroughputRegressionGates(t *testing.T) {
	base := mustLoad(t, serveDoc)
	cur := mustLoad(t, strings.Replace(serveDoc, "27000.0", "21000.0", 1)) // -22%
	findings := Compare(base, cur, DefaultRules())
	reg := Regressions(findings)
	if len(reg) != 1 || reg[0].Path != "requests_per_sec" {
		t.Fatalf("regressions = %+v, want exactly requests_per_sec", reg)
	}
}

func TestSmallMovementPasses(t *testing.T) {
	base := mustLoad(t, serveDoc)
	cur := mustLoad(t, strings.Replace(serveDoc, "27000.0", "24000.0", 1)) // -11%
	if reg := Regressions(Compare(base, cur, DefaultRules())); len(reg) != 0 {
		t.Fatalf("11%% drop must pass, got %+v", reg)
	}
}

func TestLatencyUsesWiderThreshold(t *testing.T) {
	base := mustLoad(t, serveDoc)
	// +50% latency: inside the 75% latency gate.
	cur := mustLoad(t, strings.Replace(serveDoc, "225621", "338431", 1))
	if reg := Regressions(Compare(base, cur, DefaultRules())); len(reg) != 0 {
		t.Fatalf("+50%% p50 must pass the latency gate, got %+v", reg)
	}
	// +100% latency: regression.
	cur = mustLoad(t, strings.Replace(serveDoc, "225621", "451242", 1))
	reg := Regressions(Compare(base, cur, DefaultRules()))
	if len(reg) != 1 || reg[0].Path != "latency_ns_p50" {
		t.Fatalf("+100%% p50 must gate, got %+v", reg)
	}
}

func TestImprovementNeverGates(t *testing.T) {
	base := mustLoad(t, serveDoc)
	cur := mustLoad(t, strings.Replace(strings.Replace(serveDoc,
		"27000.0", "54000.0", 1), // throughput doubles
		"225621", "10", 1)) // p50 collapses
	if reg := Regressions(Compare(base, cur, DefaultRules())); len(reg) != 0 {
		t.Fatalf("improvements gated: %+v", reg)
	}
}

func TestZeroBaselineNeverGates(t *testing.T) {
	base := mustLoad(t, `{"requests_per_sec": 0}`)
	cur := mustLoad(t, `{"requests_per_sec": 100}`)
	if reg := Regressions(Compare(base, cur, DefaultRules())); len(reg) != 0 {
		t.Fatalf("zero baseline gated: %+v", reg)
	}
}

func TestPerPointRulesApply(t *testing.T) {
	base := mustLoad(t, kpartDoc)
	cur := mustLoad(t, strings.Replace(kpartDoc, "1e7", "7e6", 1)) // -30%
	reg := Regressions(Compare(base, cur, DefaultRules()))
	if len(reg) != 1 || reg[0].Path != "points[classic/agent].interactions_per_sec" {
		t.Fatalf("per-point throughput must gate: %+v", reg)
	}
}

func TestRenderReportsVerdicts(t *testing.T) {
	base := mustLoad(t, serveDoc)
	cur := mustLoad(t, strings.Replace(serveDoc, "27000.0", "21000.0", 1))
	var buf bytes.Buffer
	findings := Compare(base, cur, DefaultRules())
	Render(&buf, findings, false)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "requests_per_sec") {
		t.Fatalf("render missing verdict:\n%s", out)
	}
	if !strings.Contains(out, "1 regressed") {
		t.Fatalf("render missing summary:\n%s", out)
	}
}

func TestLoadRejectsNonObject(t *testing.T) {
	if _, err := Load(strings.NewReader(`[1,2,3]`)); err == nil {
		t.Fatal("array document must be rejected")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
