package countsim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rng"
)

// The Lemma 1 conservation invariant
//
//	#gx = Σ_{p>x} #mp + Σ_{q>=x} #dq + #gk   for all 1 <= x <= k
//
// is fuzzed along full executions of the AGENT engine in
// internal/core/invariant_test.go; this is the same property test for the
// count-based engine, testing/quick style across randomized (n, k, seed).
// The count engine reaches configurations through a completely different
// code path (geometric null-run skipping plus incremental weight
// bookkeeping), so an apply/adjust bug here would not be caught by the
// agent-engine tests — the invariant must hold after EVERY productive
// step it takes.
func TestCountEngineInvariantAlongExecutions(t *testing.T) {
	f := func(seed uint64, nRaw uint8, kRaw uint8) bool {
		n := 3 + int(nRaw)%38 // 3..40
		k := 2 + int(kRaw)%7  // 2..8
		p := core.MustNew(k)
		s, err := New(p, n, rng.StreamSeed(seed, uint64(n), uint64(k)))
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		stable, err := p.StableChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		// Walk productive steps directly (not RunUntil) so the check runs
		// after every single application, with no predicate in between.
		const maxSteps = 20000
		for step := 0; step < maxSteps; step++ {
			if _, _, err := s.Step(); err != nil {
				if errors.Is(err, ErrDead) {
					break
				}
				t.Fatalf("n=%d k=%d step %d: %v", n, k, step, err)
			}
			if err := p.CheckInvariant(s.CountsView()); err != nil {
				t.Errorf("n=%d k=%d seed=%#x: invariant violated after productive step %d: %v",
					n, k, seed, step, err)
				return false
			}
			if stable(s.CountsView()) {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The invariant also survives RunUntilCtx's cancellation path: a run cut
// off mid-flight leaves a configuration that still satisfies Lemma 1
// (cancellation may not tear a half-applied transition).
func TestCountEngineInvariantAfterCancel(t *testing.T) {
	p := core.MustNew(5)
	s, err := New(p, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	pred := func([]int) bool {
		steps++
		if steps == 600 {
			cancel() // fires mid-run; next poll aborts
		}
		return false
	}
	_, err = s.RunUntilCtx(ctx, pred, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := p.CheckInvariant(s.CountsView()); err != nil {
		t.Fatalf("invariant violated after cancellation: %v", err)
	}
	if s.Productive() == 0 {
		t.Fatal("cancelled before any progress")
	}
}

// A nil context must behave exactly like RunUntil (the hot path carries
// no polling cost and no behavior change).
func TestRunUntilCtxNilMatchesRunUntil(t *testing.T) {
	p := core.MustNew(4)
	run := func(viaCtx bool) (uint64, uint64) {
		s, err := New(p, 60, 99)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := p.StableChecker(60)
		if err != nil {
			t.Fatal(err)
		}
		var ok bool
		if viaCtx {
			ok, err = s.RunUntilCtx(nil, stable, 1<<40)
		} else {
			ok, err = s.RunUntil(stable, 1<<40)
		}
		if err != nil || !ok {
			t.Fatalf("viaCtx=%t: ok=%t err=%v", viaCtx, ok, err)
		}
		return s.Interactions(), s.Productive()
	}
	i1, p1 := run(false)
	i2, p2 := run(true)
	if i1 != i2 || p1 != p2 {
		t.Fatalf("nil-ctx run diverged: %d/%d vs %d/%d", i1, p1, i2, p2)
	}
}
