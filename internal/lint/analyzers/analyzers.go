// Package analyzers holds the repo-specific checks kpart-lint runs.
// Each analyzer mechanizes one invariant the reproduction's claims rest
// on; each has a golden testdata package with // want annotations under
// testdata/, run by linttest. To add an analyzer: write the lint.
// Analyzer in its own file, add a testdata package, and list it in
// All() — the suppression machinery, driver, and Makefile pick it up
// from there.
package analyzers

import (
	"strings"

	"repro/internal/lint"
)

// modPath is this module's path. The analyzer scopes are repo-specific
// by design (kpart-lint is this repo's linter, not a general tool), so
// the package lists live here as code, reviewable like any invariant.
const modPath = "repro"

// All returns the full analyzer suite in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		Determinism,
		RNGDiscipline,
		MapOrder,
		AtomicField,
		ErrClose,
		TableClosure,
		DocPresence,
		CtxFlow,
		LockGuard,
		GoroutineLife,
		SpecClosure,
	}
}

// deterministicPkgs are the engine packages whose outputs must be a
// pure function of (spec, seed): the interaction-level simulator, the
// counting engine, the protocol definitions, population state, the
// state-space explorer, and the Markov solver. Wall-clock reads or
// stray RNGs here silently break bit-for-bit reproducibility.
func inDeterministicPkg(path string) bool {
	switch path {
	case modPath + "/internal/sim",
		modPath + "/internal/countsim",
		modPath + "/internal/population",
		modPath + "/internal/explore",
		modPath + "/internal/markov",
		// The serving layer's deterministic half: request/record
		// documents and the content-addressed cache. Its HTTP/executor
		// edge files are allowlisted in runDeterminism (edgeFiles).
		modPath + "/internal/serve",
		// The span tracer: trace/span IDs, structure, and sequence
		// intervals are replay identity and must never depend on when a
		// run happened. Only its wall.go edge file (edgeFiles) may stamp
		// wall durations.
		modPath + "/internal/obs/span",
		// The analytical twin: predictions are the /v1/predict cache's
		// content and the accuracy gate's subject — a pure function of the
		// spec with no edge files at all. Latency is measured by the
		// callers (serve's instrument wrapper, the CLIs).
		modPath + "/internal/twin":
		return true
	}
	// internal/protocol and every internal/protocols/... variant.
	return path == modPath+"/internal/protocol" ||
		strings.HasPrefix(path, modPath+"/internal/protocols/")
}

// persistencePkgs are the paths that write experiment artifacts (CSV,
// JSON docs, journals, traces, checkpoints) — the places where a
// swallowed Close/Flush error turns into a silently truncated result
// file.
func inPersistencePkg(path string) bool {
	switch path {
	case modPath + "/internal/harness",
		modPath + "/internal/checkpoint",
		modPath + "/internal/trace":
		return true
	}
	return strings.HasPrefix(path, modPath+"/cmd/")
}
